#!/usr/bin/env bash
# Full local CI matrix: builds and tests metablink under every supported
# hardening configuration, then runs the static analyzers.
#
# Stages (each in its own build tree, so they never poison each other):
#   1. default    — RelWithDebInfo build + full ctest suite
#   2. asan-ubsan — METABLINK_SANITIZE=address,undefined build + full ctest
#   3. tsan       — METABLINK_SANITIZE=thread build + full ctest
#   4. clang-tidy — bugprone/performance/concurrency checks over src/
#                   (SKIPped when clang-tidy is not installed)
#   5. graphlint  — the analyzer self-checks: analysis_test (GraphLint
#                   seeded-defect fixtures + WriteSetChecker) from stage 1's
#                   tree, rerun explicitly so a filtered ctest cannot hide it
#   6. serving    — bench_serving --smoke from stage 1's tree: a reduced
#                   end-to-end run of the inference engine that exits
#                   non-zero if tape vs tape-free parity or int8 recall
#                   drifts
#   7. checkpoint — bench_checkpoint --smoke from stage 1's tree: checkpoint
#                   round-trip + kill/resume bit-identity gates and the
#                   hot-swap hammer (exit 1 if any Link fails or a swap
#                   doesn't publish)
#   8. retrieval  — bench_retrieval --smoke from stage 1's tree: clustered
#                   IVF gates (probe-all == exhaustive bit-for-bit, sharded
#                   == serial, deterministic rebuild, R@64 >= 0.98 at the
#                   default nprobe)
#   9. cascade    — bench_serving --cascade-smoke from stage 1's tree: the
#                   adaptive rerank cascade contracts (cascade-off and
#                   forced-full-head byte identity, tier counters summing
#                   to requests, serial == pooled determinism, accuracy
#                   delta <= 0.2 pts)
#  10. pq         — bench_retrieval --pq-smoke from stage 1's tree: the
#                   PQ/sharding contracts (PQ probe-all full-pool ==
#                   exhaustive fp32, KB-sharded == single index
#                   bit-for-bit, deterministic PQ rebuild, PQ marginal
#                   bytes/entity <= 25% of int8, int8 entry dispatching
#                   to the exact scan below the crossover)
#  11. traffic    — bench_traffic --smoke from stage 1's tree: the load
#                   subsystem contracts (generator determinism across
#                   runs/seeds, Zipf skew + LRU hit-rate ordering,
#                   open-loop pacing sanity, max_queue=0 byte identity,
#                   and both shed policies reconciling their admission
#                   ledgers under an 8-thread hammer)
#
# Fails fast: the first failing stage stops the run; a summary table of
# per-stage PASS/FAIL/SKIP status is always printed on exit.
#
# Usage: tools/check.sh [jobs]   (default: nproc)

set -u -o pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

STAGES=(default asan-ubsan tsan clang-tidy graphlint serving checkpoint retrieval cascade pq traffic)
declare -A STATUS
for s in "${STAGES[@]}"; do STATUS[$s]="not run"; done

summary() {
  echo
  echo "== check.sh summary =="
  printf '%-12s %s\n' "stage" "status"
  printf '%-12s %s\n' "-----" "------"
  for s in "${STAGES[@]}"; do
    printf '%-12s %s\n' "$s" "${STATUS[$s]}"
  done
}
trap summary EXIT

fail() {
  STATUS[$1]="FAIL"
  echo "check.sh: stage '$1' failed" >&2
  exit 1
}

build_and_test() {
  local stage="$1" dir="$2"
  shift 2
  echo
  echo "== stage: $stage ($dir) =="
  cmake -B "$dir" -S . "$@" || fail "$stage"
  cmake --build "$dir" -j "$JOBS" || fail "$stage"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS") || fail "$stage"
  STATUS[$stage]="PASS"
}

build_and_test default build-check-default

build_and_test asan-ubsan build-check-asan-ubsan \
  "-DMETABLINK_SANITIZE=address,undefined"

build_and_test tsan build-check-tsan "-DMETABLINK_SANITIZE=thread"

echo
echo "== stage: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # Stage 1's tree provides the compilation database.
  cmake -B build-check-default -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || fail clang-tidy
  mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
  clang-tidy -p build-check-default "${TIDY_SOURCES[@]}" || fail clang-tidy
  STATUS[clang-tidy]="PASS"
else
  echo "clang-tidy not installed; skipping"
  STATUS[clang-tidy]="SKIP"
fi

echo
echo "== stage: graphlint =="
# Explicit analyzer self-check: GraphLint seeded-defect fixtures, the
# WriteSetChecker race fixtures, and the instrumented-kernel proofs.
./build-check-default/tests/analysis_test || fail graphlint
STATUS[graphlint]="PASS"

echo
echo "== stage: serving =="
# Reduced serving run: checks tape vs tape-free score parity and int8
# retrieval recall end to end (exit 1 on drift), without the full-scale
# benchmark timings.
./build-check-default/bench/bench_serving --smoke /tmp/metablink-smoke-serving.json \
  || fail serving
STATUS[serving]="PASS"

echo
echo "== stage: checkpoint =="
# Reduced checkpoint/store run: framed-container round-trip and meta-reweight
# kill/resume bit-identity gates, plus the SwapModel hammer (every Link must
# succeed and every swap must publish).
./build-check-default/bench/bench_checkpoint --smoke /tmp/metablink-smoke-checkpoint.json \
  || fail checkpoint
STATUS[checkpoint]="PASS"

echo
echo "== stage: retrieval =="
# Reduced clustered-index run: probe-all vs exhaustive bit-identity, sharded
# vs serial bit-identity, deterministic-rebuild, and R@64 recall gates
# (exit 1 on any violation), without the full-scale benchmark timings.
./build-check-default/bench/bench_retrieval --smoke /tmp/metablink-smoke-retrieval.json \
  || fail retrieval
STATUS[retrieval]="PASS"

echo
echo "== stage: cascade =="
# Reduced cascade run: calibrates the three-tier rerank cascade on the
# smoke world and checks its serving contracts — cascade-off and
# forced-full-head byte identity vs full rerank, tier counters summing to
# requests, serial == pooled determinism, and the accuracy-delta gate
# (exit 1 on any violation), without the full-scale benchmark timings.
./build-check-default/bench/bench_serving --cascade-smoke /tmp/metablink-smoke-cascade.json \
  || fail cascade
STATUS[cascade]="PASS"

echo
echo "== stage: pq =="
# Reduced PQ/sharding run: PQ probe-all with a full re-score pool must be
# bit-identical to the exhaustive fp32 scan, the KB-sharded index must be
# bit-identical to the single index (serial and pool-parallel), rebuilds
# must be deterministic, PQ marginal bytes/entity must stay <= 25% of
# int8's, and the int8 entry point must dispatch to the exact scan below
# the crossover size (exit 1 on any violation).
./build-check-default/bench/bench_retrieval --pq-smoke /tmp/metablink-smoke-pq.json \
  || fail pq
STATUS[pq]="PASS"

echo
echo "== stage: traffic =="
# Reduced traffic-harness run: workload generators must be deterministic
# per seed and differ across seeds, Zipf(0.99) must out-hit uniform on an
# equal-size LRU, the open-loop driver must pace its no-op target, an
# unbounded server must answer byte-identically to a never-full bounded
# one, and both shed policies must reconcile accepted/rejected/shed with
# completed requests under an 8-thread overload hammer (exit 1 on any
# violation), without the full-scale latency-under-load sweep.
./build-check-default/bench/bench_traffic --smoke /tmp/metablink-smoke-traffic.json \
  || fail traffic
STATUS[traffic]="PASS"

echo
echo "check.sh: all stages passed (or were skipped)"
