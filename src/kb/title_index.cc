#include "kb/title_index.h"

#include "text/tokenizer.h"

namespace metablink::kb {

namespace {
const std::vector<EntityId> kEmpty;
}  // namespace

TitleIndex::TitleIndex(const KnowledgeBase& kb, std::string domain) {
  for (const Entity& e : kb.entities()) {
    if (!domain.empty() && e.domain != domain) continue;
    ++num_indexed_;
    const std::string norm = text::NormalizeForMatch(e.title);
    exact_[norm].push_back(e.id);
    std::string phrase;
    const std::string stripped = text::StripDisambiguation(e.title, &phrase);
    if (!phrase.empty()) {
      base_[text::NormalizeForMatch(stripped)].push_back(e.id);
    }
  }
}

const std::vector<EntityId>& TitleIndex::LookupExact(
    std::string_view mention) const {
  auto it = exact_.find(text::NormalizeForMatch(mention));
  return it == exact_.end() ? kEmpty : it->second;
}

const std::vector<EntityId>& TitleIndex::LookupBase(
    std::string_view mention) const {
  auto it = base_.find(text::NormalizeForMatch(mention));
  return it == base_.end() ? kEmpty : it->second;
}

std::vector<EntityId> TitleIndex::LookupAll(std::string_view mention) const {
  std::vector<EntityId> out = LookupExact(mention);
  for (EntityId id : LookupBase(mention)) out.push_back(id);
  return out;
}

}  // namespace metablink::kb
