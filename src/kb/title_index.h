#ifndef METABLINK_KB_TITLE_INDEX_H_
#define METABLINK_KB_TITLE_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"

namespace metablink::kb {

/// Exact-match index from normalized title text to entity ids, optionally
/// restricted to one domain. Backs both the Name Matching baseline and the
/// Exact Matching weak-supervision step: a mention whose normalized text
/// equals a title (or a title minus its disambiguation phrase) hits here.
class TitleIndex {
 public:
  /// Builds the index over all entities of `kb` whose domain equals
  /// `domain`, or over every entity if `domain` is empty. The KnowledgeBase
  /// must outlive the index.
  TitleIndex(const KnowledgeBase& kb, std::string domain = "");

  /// Entities whose full normalized title equals normalized `mention`.
  const std::vector<EntityId>& LookupExact(std::string_view mention) const;

  /// Entities whose title *minus a trailing disambiguation phrase* equals
  /// normalized `mention` (the paper's Multiple Categories situation:
  /// title = mention + " (phrase)"). Excludes exact full-title matches.
  const std::vector<EntityId>& LookupBase(std::string_view mention) const;

  /// Union of LookupExact and LookupBase, exact matches first.
  std::vector<EntityId> LookupAll(std::string_view mention) const;

  std::size_t num_indexed() const { return num_indexed_; }

 private:
  std::unordered_map<std::string, std::vector<EntityId>> exact_;
  std::unordered_map<std::string, std::vector<EntityId>> base_;
  std::size_t num_indexed_ = 0;
};

}  // namespace metablink::kb

#endif  // METABLINK_KB_TITLE_INDEX_H_
