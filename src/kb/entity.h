#ifndef METABLINK_KB_ENTITY_H_
#define METABLINK_KB_ENTITY_H_

#include <cstdint>
#include <string>

namespace metablink::kb {

/// Unique entity identifier within a KnowledgeBase.
using EntityId = std::uint32_t;

/// Sentinel "no entity".
inline constexpr EntityId kInvalidEntityId = 0xFFFFFFFFu;

/// An entity in the knowledge base, described (as in Wikia/Zeshel) by a
/// title and a free-text description, and belonging to exactly one domain
/// (a specialized entity dictionary in the paper's terminology).
struct Entity {
  EntityId id = kInvalidEntityId;
  std::string title;
  std::string description;
  std::string domain;
};

}  // namespace metablink::kb

#endif  // METABLINK_KB_ENTITY_H_
