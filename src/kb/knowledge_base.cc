#include "kb/knowledge_base.h"

#include <cstring>

#include "store/checkpoint.h"
#include "util/string_util.h"

namespace metablink::kb {

namespace {
std::string TitleKey(const std::string& domain, const std::string& title) {
  std::string key = domain;
  key += '\x1f';
  key += title;
  return key;
}
const std::vector<EntityId> kEmptyIdList;
const std::string kEmptyString;
}  // namespace

util::Result<EntityId> KnowledgeBase::AddEntity(Entity entity) {
  if (entity.title.empty()) {
    return util::Status::InvalidArgument("entity title must be non-empty");
  }
  std::string key = TitleKey(entity.domain, entity.title);
  if (title_index_.count(key) > 0) {
    return util::Status::AlreadyExists(util::StrFormat(
        "entity '%s' already exists in domain '%s'", entity.title.c_str(),
        entity.domain.c_str()));
  }
  EntityId id = static_cast<EntityId>(entities_.size());
  entity.id = id;
  title_index_.emplace(std::move(key), id);
  auto [it, inserted] = domain_entities_.try_emplace(entity.domain);
  if (inserted) domain_order_.push_back(entity.domain);
  it->second.push_back(id);
  entities_.push_back(std::move(entity));
  return id;
}

util::Result<Entity> KnowledgeBase::GetEntity(EntityId id) const {
  if (id >= entities_.size()) {
    return util::Status::NotFound(
        util::StrFormat("no entity with id %u", id));
  }
  return entities_[id];
}

util::Result<EntityId> KnowledgeBase::FindByTitle(
    const std::string& domain, const std::string& title) const {
  auto it = title_index_.find(TitleKey(domain, title));
  if (it == title_index_.end()) {
    return util::Status::NotFound(util::StrFormat(
        "entity '%s' not found in domain '%s'", title.c_str(),
        domain.c_str()));
  }
  return it->second;
}

const std::vector<EntityId>& KnowledgeBase::EntitiesInDomain(
    const std::string& domain) const {
  auto it = domain_entities_.find(domain);
  return it == domain_entities_.end() ? kEmptyIdList : it->second;
}

std::vector<std::string> KnowledgeBase::DomainNames() const {
  return domain_order_;
}

RelationId KnowledgeBase::AddRelation(const std::string& name) {
  auto it = relation_ids_.find(name);
  if (it != relation_ids_.end()) return it->second;
  RelationId id = static_cast<RelationId>(relation_names_.size());
  relation_ids_.emplace(name, id);
  relation_names_.push_back(name);
  return id;
}

const std::string& KnowledgeBase::RelationName(RelationId id) const {
  if (id >= relation_names_.size()) return kEmptyString;
  return relation_names_[id];
}

util::Status KnowledgeBase::AddTriple(EntityId head, RelationId relation,
                                      EntityId tail) {
  if (head >= entities_.size() || tail >= entities_.size()) {
    return util::Status::InvalidArgument("triple references unknown entity");
  }
  if (relation >= relation_names_.size()) {
    return util::Status::InvalidArgument("triple references unknown relation");
  }
  triples_.push_back(Triple{head, relation, tail});
  return util::Status::OK();
}

std::vector<Triple> KnowledgeBase::TriplesFrom(EntityId head) const {
  std::vector<Triple> out;
  for (const Triple& t : triples_) {
    if (t.head == head) out.push_back(t);
  }
  return out;
}

void KnowledgeBase::Save(util::BinaryWriter* writer) const {
  writer->WriteU64(entities_.size());
  for (const Entity& e : entities_) {
    writer->WriteString(e.title);
    writer->WriteString(e.description);
    writer->WriteString(e.domain);
  }
  writer->WriteU64(relation_names_.size());
  for (const auto& r : relation_names_) writer->WriteString(r);
  writer->WriteU64(triples_.size());
  for (const Triple& t : triples_) {
    writer->WriteU32(t.head);
    writer->WriteU32(t.relation);
    writer->WriteU32(t.tail);
  }
}

util::Result<KnowledgeBase> KnowledgeBase::Load(util::BinaryReader* reader) {
  KnowledgeBase kb;
  std::uint64_t num_entities = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&num_entities));
  for (std::uint64_t i = 0; i < num_entities; ++i) {
    Entity e;
    METABLINK_RETURN_IF_ERROR(reader->ReadString(&e.title));
    METABLINK_RETURN_IF_ERROR(reader->ReadString(&e.description));
    METABLINK_RETURN_IF_ERROR(reader->ReadString(&e.domain));
    auto r = kb.AddEntity(std::move(e));
    if (!r.ok()) return r.status();
  }
  std::uint64_t num_relations = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&num_relations));
  for (std::uint64_t i = 0; i < num_relations; ++i) {
    std::string name;
    METABLINK_RETURN_IF_ERROR(reader->ReadString(&name));
    kb.AddRelation(name);
  }
  std::uint64_t num_triples = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&num_triples));
  for (std::uint64_t i = 0; i < num_triples; ++i) {
    std::uint32_t h = 0, r = 0, t = 0;
    METABLINK_RETURN_IF_ERROR(reader->ReadU32(&h));
    METABLINK_RETURN_IF_ERROR(reader->ReadU32(&r));
    METABLINK_RETURN_IF_ERROR(reader->ReadU32(&t));
    METABLINK_RETURN_IF_ERROR(kb.AddTriple(h, r, t));
  }
  return kb;
}

util::Status KnowledgeBase::SaveToFile(const std::string& path) const {
  store::CheckpointWriter ckpt;
  Save(ckpt.AddSection("kb"));
  return ckpt.WriteToFile(path);
}

util::Result<KnowledgeBase> KnowledgeBase::LoadFromFile(
    const std::string& path) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::vector<std::uint8_t> bytes;
  METABLINK_RETURN_IF_ERROR(reader->ReadBytes(reader->Remaining(), &bytes));
  if (bytes.size() >= 4) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    if (magic == store::kCheckpointMagic) {
      auto ckpt = store::CheckpointReader::Parse(std::move(bytes));
      if (!ckpt.ok()) return ckpt.status();
      auto section = ckpt->Section("kb");
      if (!section.ok()) return section.status();
      return Load(&*section);
    }
  }
  // Legacy headerless format: the raw entity/relation/triple stream.
  util::BinaryReader legacy(std::move(bytes));
  return Load(&legacy);
}

}  // namespace metablink::kb
