#ifndef METABLINK_KB_KNOWLEDGE_BASE_H_
#define METABLINK_KB_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kb/entity.h"
#include "util/serialize.h"
#include "util/status.h"

namespace metablink::kb {

/// Relation identifier.
using RelationId = std::uint32_t;

/// A (head, relation, tail) fact triple; G = {E; R; T} in the paper's
/// preliminaries.
struct Triple {
  EntityId head = kInvalidEntityId;
  RelationId relation = 0;
  EntityId tail = kInvalidEntityId;

  bool operator==(const Triple& o) const {
    return head == o.head && relation == o.relation && tail == o.tail;
  }
};

/// In-memory knowledge base: an entity set partitioned into domains, a
/// relation vocabulary, and fact triples. Entities are append-only and
/// densely numbered, which lets downstream components (retrieval index,
/// embedding matrices) use EntityId as a direct row index.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  // ---- Entities ----------------------------------------------------------

  /// Adds an entity (id is assigned; `entity.id` is ignored). Titles must be
  /// unique within a domain. Returns the assigned id.
  util::Result<EntityId> AddEntity(Entity entity);

  /// Looks up an entity by id.
  util::Result<Entity> GetEntity(EntityId id) const;

  /// Borrowing accessor; pre: `id` < num_entities().
  const Entity& entity(EntityId id) const { return entities_[id]; }

  std::size_t num_entities() const { return entities_.size(); }
  const std::vector<Entity>& entities() const { return entities_; }

  /// Finds an entity id by (domain, title); NotFound if absent.
  util::Result<EntityId> FindByTitle(const std::string& domain,
                                     const std::string& title) const;

  // ---- Domains -----------------------------------------------------------

  /// All entity ids belonging to `domain` (empty if unknown domain).
  const std::vector<EntityId>& EntitiesInDomain(
      const std::string& domain) const;

  /// Names of all domains in insertion order.
  std::vector<std::string> DomainNames() const;

  // ---- Relations and triples ---------------------------------------------

  /// Interns a relation name, returning its id.
  RelationId AddRelation(const std::string& name);

  /// Returns the relation name for `id` (empty if out of range).
  const std::string& RelationName(RelationId id) const;

  std::size_t num_relations() const { return relation_names_.size(); }

  /// Adds a fact triple. Both entity ids must exist.
  util::Status AddTriple(EntityId head, RelationId relation, EntityId tail);

  const std::vector<Triple>& triples() const { return triples_; }

  /// All triples with `head` as the subject.
  std::vector<Triple> TriplesFrom(EntityId head) const;

  // ---- Serialization -----------------------------------------------------

  void Save(util::BinaryWriter* writer) const;
  static util::Result<KnowledgeBase> Load(util::BinaryReader* reader);

  /// Writes a framed checkpoint container with one "kb" section.
  util::Status SaveToFile(const std::string& path) const;
  /// Loads either a framed container or the legacy headerless raw stream
  /// (files written before the store subsystem existed).
  static util::Result<KnowledgeBase> LoadFromFile(const std::string& path);

 private:
  std::vector<Entity> entities_;
  std::unordered_map<std::string, std::vector<EntityId>> domain_entities_;
  std::vector<std::string> domain_order_;
  // (domain + '\x1f' + title) -> id, for uniqueness and FindByTitle.
  std::unordered_map<std::string, EntityId> title_index_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, RelationId> relation_ids_;
  std::vector<Triple> triples_;
};

}  // namespace metablink::kb

#endif  // METABLINK_KB_KNOWLEDGE_BASE_H_
