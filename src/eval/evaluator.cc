#include "eval/evaluator.h"

#include <algorithm>
#include <atomic>

namespace metablink::eval {

TwoStageEvaluator::TwoStageEvaluator(EvaluatorOptions options)
    : options_(options), pool_(options.num_threads) {}

util::Result<std::vector<std::vector<retrieval::ScoredEntity>>>
TwoStageEvaluator::RetrieveCandidates(
    const model::BiEncoder& bi_encoder, const kb::KnowledgeBase& kb,
    const std::string& domain,
    const std::vector<data::LinkingExample>& examples) const {
  const std::vector<kb::EntityId>& ids = kb.EntitiesInDomain(domain);
  if (ids.empty()) {
    return util::Status::NotFound("domain has no entities: " + domain);
  }
  // Embed the domain's entities in chunks (keeps per-graph memory small).
  tensor::Tensor all(ids.size(), bi_encoder.dim());
  const std::size_t chunk = 256;
  for (std::size_t begin = 0; begin < ids.size(); begin += chunk) {
    const std::size_t end = std::min(ids.size(), begin + chunk);
    std::vector<kb::EntityId> part(ids.begin() + begin, ids.begin() + end);
    tensor::Tensor emb = bi_encoder.EmbedEntityIds(part, kb);
    for (std::size_t r = 0; r < emb.rows(); ++r) {
      std::copy(emb.row_data(r), emb.row_data(r) + emb.cols(),
                all.row_data(begin + r));
    }
  }
  retrieval::DenseIndex index;
  METABLINK_RETURN_IF_ERROR(index.Build(std::move(all), ids));

  tensor::Tensor queries(examples.size(), bi_encoder.dim());
  for (std::size_t begin = 0; begin < examples.size(); begin += chunk) {
    const std::size_t end = std::min(examples.size(), begin + chunk);
    std::vector<data::LinkingExample> part(examples.begin() + begin,
                                           examples.begin() + end);
    tensor::Tensor emb = bi_encoder.EmbedMentions(part);
    for (std::size_t r = 0; r < emb.rows(); ++r) {
      std::copy(emb.row_data(r), emb.row_data(r) + emb.cols(),
                queries.row_data(begin + r));
    }
  }
  return index.BatchTopK(queries, options_.k, &pool_);
}

util::Result<EvalResult> TwoStageEvaluator::Evaluate(
    const model::BiEncoder& bi_encoder,
    const model::CrossEncoder* cross_encoder, const kb::KnowledgeBase& kb,
    const std::string& domain,
    const std::vector<data::LinkingExample>& examples) const {
  if (examples.empty()) {
    return util::Status::InvalidArgument("no examples to evaluate");
  }
  auto candidates =
      RetrieveCandidates(bi_encoder, kb, domain, examples);
  if (!candidates.ok()) return candidates.status();

  std::atomic<std::size_t> in_candidates{0};
  std::atomic<std::size_t> top1{0};
  pool_.ParallelFor(examples.size(), [&](std::size_t i) {
    const auto& cands = (*candidates)[i];
    const kb::EntityId gold = examples[i].entity_id;
    std::size_t gold_pos = cands.size();
    for (std::size_t c = 0; c < cands.size(); ++c) {
      if (cands[c].id == gold) {
        gold_pos = c;
        break;
      }
    }
    if (gold_pos == cands.size()) return;  // stage-1 miss
    in_candidates.fetch_add(1);
    std::size_t best = 0;
    if (cross_encoder != nullptr) {
      std::vector<kb::Entity> entities;
      entities.reserve(cands.size());
      for (const auto& c : cands) entities.push_back(kb.entity(c.id));
      const std::vector<float> scores =
          cross_encoder->Score(examples[i], entities);
      best = static_cast<std::size_t>(
          std::max_element(scores.begin(), scores.end()) - scores.begin());
    }
    // With no cross-encoder, stage-1 order ranks (best = 0 already).
    if (cands[best].id == gold) top1.fetch_add(1);
  });
  return MakeEvalResult(examples.size(), in_candidates.load(), top1.load());
}

double NameMatchingAccuracy(const kb::KnowledgeBase& kb,
                            const std::string& domain,
                            const std::vector<data::LinkingExample>& examples,
                            util::Rng* rng) {
  if (examples.empty()) return 0.0;
  kb::TitleIndex index(kb, domain);
  std::size_t correct = 0;
  for (const auto& ex : examples) {
    const auto& exact = index.LookupExact(ex.mention);
    const std::vector<kb::EntityId>* pool = &exact;
    if (pool->empty()) pool = &index.LookupBase(ex.mention);
    if (pool->empty()) continue;
    const kb::EntityId pick = (*pool)[rng->NextUint64(pool->size())];
    if (pick == ex.entity_id) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace metablink::eval
