#include "eval/metrics.h"

namespace metablink::eval {

double RecallAtK(
    const std::vector<std::vector<retrieval::ScoredEntity>>& candidate_lists,
    const std::vector<kb::EntityId>& gold) {
  if (candidate_lists.empty() || candidate_lists.size() != gold.size()) {
    return 0.0;
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < gold.size(); ++i) {
    for (const auto& cand : candidate_lists[i]) {
      if (cand.id == gold[i]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(gold.size());
}

EvalResult MakeEvalResult(std::size_t num_examples,
                          std::size_t num_in_candidates,
                          std::size_t num_top1) {
  EvalResult r;
  r.num_examples = num_examples;
  r.num_in_candidates = num_in_candidates;
  r.num_top1 = num_top1;
  if (num_examples > 0) {
    r.recall_at_k = static_cast<double>(num_in_candidates) /
                    static_cast<double>(num_examples);
    r.unnormalized_acc =
        static_cast<double>(num_top1) / static_cast<double>(num_examples);
  }
  if (num_in_candidates > 0) {
    r.normalized_acc = static_cast<double>(num_top1) /
                       static_cast<double>(num_in_candidates);
  }
  return r;
}

}  // namespace metablink::eval
