#ifndef METABLINK_EVAL_METRICS_H_
#define METABLINK_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "kb/entity.h"
#include "retrieval/dense_index.h"

namespace metablink::eval {

/// Two-stage evaluation result (the paper's protocol, Sec. VI-A):
///  - recall_at_k:   stage-1 recall (gold entity among retrieved candidates)
///  - normalized_acc (N.Acc.): stage-2 ranking accuracy on the subset of
///    mentions whose gold entity was retrieved
///  - unnormalized_acc (U.Acc.): recall × N.Acc — end-to-end accuracy.
struct EvalResult {
  double recall_at_k = 0.0;
  double normalized_acc = 0.0;
  double unnormalized_acc = 0.0;
  std::size_t num_examples = 0;
  std::size_t num_in_candidates = 0;
  std::size_t num_top1 = 0;  // stage-2 correct
};

/// Stage-1 recall@k given candidate lists aligned with gold ids.
double RecallAtK(const std::vector<std::vector<retrieval::ScoredEntity>>&
                     candidate_lists,
                 const std::vector<kb::EntityId>& gold);

/// Combines stage counts into an EvalResult.
EvalResult MakeEvalResult(std::size_t num_examples,
                          std::size_t num_in_candidates,
                          std::size_t num_top1);

}  // namespace metablink::eval

#endif  // METABLINK_EVAL_METRICS_H_
