#ifndef METABLINK_EVAL_EVALUATOR_H_
#define METABLINK_EVAL_EVALUATOR_H_

#include <string>
#include <vector>

#include "data/example.h"
#include "eval/metrics.h"
#include "kb/knowledge_base.h"
#include "kb/title_index.h"
#include "model/bi_encoder.h"
#include "model/cross_encoder.h"
#include "retrieval/dense_index.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::eval {

/// Evaluation knobs.
struct EvaluatorOptions {
  /// Stage-1 candidate count (paper: 64).
  std::size_t k = 64;
  /// Worker threads for retrieval / cross scoring (0 = hardware).
  std::size_t num_threads = 0;
};

/// Runs the paper's two-stage evaluation protocol: bi-encoder retrieval of
/// the top-k entities of the mention's domain, then cross-encoder ranking of
/// the retrieved candidates.
class TwoStageEvaluator {
 public:
  explicit TwoStageEvaluator(EvaluatorOptions options = {});

  /// Full two-stage evaluation of `examples` (all of one domain) against
  /// the entities of `domain`. Pass a null cross_encoder to rank candidates
  /// by the stage-1 score instead (bi-encoder-only evaluation). Safe to
  /// call concurrently: all mutable state is per-call, and the shared
  /// thread pool's scheduling APIs are thread-safe.
  util::Result<EvalResult> Evaluate(
      const model::BiEncoder& bi_encoder,
      const model::CrossEncoder* cross_encoder, const kb::KnowledgeBase& kb,
      const std::string& domain,
      const std::vector<data::LinkingExample>& examples) const;

  /// Stage-1 only: builds the domain index and returns per-example
  /// candidate lists (used by cross-encoder training to mine candidates).
  /// Safe to call concurrently (see Evaluate).
  util::Result<std::vector<std::vector<retrieval::ScoredEntity>>>
  RetrieveCandidates(const model::BiEncoder& bi_encoder,
                     const kb::KnowledgeBase& kb, const std::string& domain,
                     const std::vector<data::LinkingExample>& examples) const;

 private:
  EvaluatorOptions options_;
  // The pool's Submit/ParallelFor* entry points are internally
  // synchronized; mutable lets the logically-const evaluation paths share
  // one pool across concurrent callers.
  mutable util::ThreadPool pool_;
};

/// The Name Matching baseline (Riedel et al.): a mention links to the
/// entity whose title exactly matches it (falling back to disambiguated
/// base-title matches); ties are broken uniformly at random with `rng`;
/// unmatched mentions count as wrong. Returns end-to-end accuracy (U.Acc.).
double NameMatchingAccuracy(const kb::KnowledgeBase& kb,
                            const std::string& domain,
                            const std::vector<data::LinkingExample>& examples,
                            util::Rng* rng);

}  // namespace metablink::eval

#endif  // METABLINK_EVAL_EVALUATOR_H_
