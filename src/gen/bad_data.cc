#include "gen/bad_data.h"

namespace metablink::gen {

std::vector<data::LinkingExample> InjectBadData(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& source, std::size_t count,
    util::Rng* rng) {
  std::vector<data::LinkingExample> out;
  if (source.empty()) return out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const data::LinkingExample& base =
        source[rng->NextUint64(source.size())];
    const auto& pool = kb.EntitiesInDomain(base.domain);
    if (pool.size() < 2) continue;
    data::LinkingExample bad = base;
    do {
      bad.entity_id = pool[rng->NextUint64(pool.size())];
    } while (bad.entity_id == base.entity_id);
    bad.source = data::ExampleSource::kInjectedBad;
    out.push_back(std::move(bad));
  }
  return out;
}

}  // namespace metablink::gen
