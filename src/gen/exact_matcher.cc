#include "gen/exact_matcher.h"

#include <algorithm>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace metablink::gen {

ExactMatcher::ExactMatcher(const kb::KnowledgeBase& kb,
                           const std::string& domain,
                           ExactMatcherOptions options)
    : kb_(kb), domain_(domain), options_(options) {
  for (kb::EntityId id : kb.EntitiesInDomain(domain)) {
    const std::string norm = text::NormalizeForMatch(kb.entity(id).title);
    titles_[norm].push_back(id);
  }
}

void ExactMatcher::MatchDocument(
    const std::string& document,
    std::vector<data::LinkingExample>* out) const {
  text::Tokenizer tokenizer;
  const std::vector<std::string> tokens = tokenizer.Tokenize(document);
  if (tokens.empty()) return;

  std::size_t i = 0;
  while (i < tokens.size()) {
    // Greedy longest-window match starting at i.
    std::size_t best_len = 0;
    const std::vector<kb::EntityId>* best_ids = nullptr;
    const std::size_t max_len =
        std::min(options_.max_title_tokens, tokens.size() - i);
    std::string window;
    for (std::size_t len = 1; len <= max_len; ++len) {
      if (len > 1) window += ' ';
      window += tokens[i + len - 1];
      auto it = titles_.find(window);
      if (it != titles_.end()) {
        best_len = len;
        best_ids = &it->second;
      }
    }
    if (best_ids == nullptr ||
        (options_.skip_ambiguous && best_ids->size() > 1)) {
      ++i;
      continue;
    }
    data::LinkingExample ex;
    ex.entity_id = (*best_ids)[0];
    ex.mention = kb_.entity(ex.entity_id).title;
    const std::size_t lb =
        i > options_.context_len ? i - options_.context_len : 0;
    const std::size_t re =
        std::min(tokens.size(), i + best_len + options_.context_len);
    ex.left_context = util::Join(
        std::vector<std::string>(tokens.begin() + lb, tokens.begin() + i),
        " ");
    ex.right_context = util::Join(
        std::vector<std::string>(tokens.begin() + i + best_len,
                                 tokens.begin() + re),
        " ");
    ex.domain = domain_;
    ex.source = data::ExampleSource::kExactMatch;
    out->push_back(std::move(ex));
    i += best_len;
  }
}

std::vector<data::LinkingExample> ExactMatcher::MatchAll(
    const std::vector<std::string>& documents) const {
  std::vector<data::LinkingExample> out;
  for (const auto& doc : documents) MatchDocument(doc, &out);
  return out;
}

}  // namespace metablink::gen
