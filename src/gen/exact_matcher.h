#ifndef METABLINK_GEN_EXACT_MATCHER_H_
#define METABLINK_GEN_EXACT_MATCHER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"

namespace metablink::gen {

/// Options for exact-match weak supervision.
struct ExactMatcherOptions {
  /// Longest title (in tokens) considered when scanning windows.
  std::size_t max_title_tokens = 5;
  /// Context tokens kept on each side of a matched mention.
  std::size_t context_len = 16;
  /// Skip windows that match more than one entity (ambiguous bases would
  /// inject label noise we cannot attribute).
  bool skip_ambiguous = true;
};

/// The paper's "Exact Matching" weak-supervision step (Sec. IV-A, following
/// Le & Titov): scan a domain's unlabeled documents for token windows whose
/// normalized text equals an entity title, and emit each hit as a training
/// pair whose mention text equals the title. These pairs are trivially
/// linkable by surface form — the bias the mention rewriter later removes.
class ExactMatcher {
 public:
  /// Builds matching structures for `domain` of `kb`. The KnowledgeBase must
  /// outlive the matcher.
  ExactMatcher(const kb::KnowledgeBase& kb, const std::string& domain,
               ExactMatcherOptions options = {});

  /// Scans one document, appending matches to `*out`.
  void MatchDocument(const std::string& document,
                     std::vector<data::LinkingExample>* out) const;

  /// Scans every document, returning all matches.
  std::vector<data::LinkingExample> MatchAll(
      const std::vector<std::string>& documents) const;

 private:
  const kb::KnowledgeBase& kb_;
  std::string domain_;
  ExactMatcherOptions options_;
  // normalized title -> entity ids with that exact title.
  std::unordered_map<std::string, std::vector<kb::EntityId>> titles_;
};

}  // namespace metablink::gen

#endif  // METABLINK_GEN_EXACT_MATCHER_H_
