#ifndef METABLINK_GEN_REWRITER_H_
#define METABLINK_GEN_REWRITER_H_

#include <string>
#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "text/tfidf.h"
#include "util/rng.h"
#include "util/status.h"

namespace metablink::gen {

/// Options for the mention rewriter.
struct RewriterOptions {
  /// Max words in a generated mention.
  std::size_t max_mention_words = 3;
  /// Probability of emitting a garbage mention (random filler words instead
  /// of salient description words) — models T5's occasional fluent-nonsense
  /// output. The domain-adapted rewriter (syn*) detects and resamples most
  /// of these, which is what makes syn* cleaner than syn.
  double garbage_rate = 0.18;
  /// Probability of pairing the rewritten mention/context with the *wrong*
  /// entity — models alignment noise in weak supervision.
  double mislabel_rate = 0.08;
  /// Salience-model training: SGD epochs and learning rate.
  std::size_t train_epochs = 6;
  float train_lr = 0.1f;
  /// Perplexity-proxy threshold (in std-devs above the domain mean) above
  /// which an adapted rewriter rejects a candidate mention and resamples.
  double adapted_reject_zscore = 0.5;
};

/// Trainable stand-in for the paper's fine-tuned T5 rewriter (eq. 1-2).
///
/// The paper trains T5 on source-domain (entity description → mention)
/// pairs with a "summarize:" prefix, then rewrites target-domain mentions by
/// summarizing the entity description. This class learns the same mapping
/// as an extractive summarizer: a logistic salience model over description
/// tokens (features: TF-IDF, position, title membership, document
/// frequency) fit on the source domains, which then selects the most
/// salient non-title description words as the rewritten mention.
///
/// `AdaptToDomain` mirrors the paper's unsupervised denoising fine-tuning:
/// it fits target-domain unigram statistics and uses them to reject
/// out-of-domain garbage candidates (producing the cleaner syn* data).
class MentionRewriter {
 public:
  explicit MentionRewriter(RewriterOptions options = {});

  /// Fits the salience model on source-domain gold pairs: for each example,
  /// description tokens that also occur in the gold mention are positive.
  util::Status Train(const kb::KnowledgeBase& kb,
                     const std::vector<data::LinkingExample>& source_examples,
                     util::Rng* rng);

  /// Unsupervised adaptation to a target domain's raw documents (syn*).
  void AdaptToDomain(const std::vector<std::string>& documents);

  bool trained() const { return trained_; }
  bool adapted() const { return adapted_; }

  /// Generates a rewritten mention for `entity` (eq. 2). Never returns the
  /// entity's own title text.
  std::string Rewrite(const kb::Entity& entity, util::Rng* rng) const;

  /// Rewrites a batch of exact-match pairs into synthetic pairs: the
  /// original mention is replaced by a generated mention (forming the new
  /// context of Fig. 3), with the configured noise channels applied.
  /// `domain_entities` supplies wrong-entity candidates for mislabel noise.
  std::vector<data::LinkingExample> GenerateSyntheticData(
      const kb::KnowledgeBase& kb,
      const std::vector<data::LinkingExample>& exact_pairs,
      const std::vector<kb::EntityId>& domain_entities, util::Rng* rng) const;

  /// Salience scores for each token of `description_tokens` (higher = more
  /// mention-worthy). Exposed for tests and diagnostics.
  std::vector<double> ScoreTokens(
      const std::vector<std::string>& description_tokens,
      const std::vector<std::string>& title_tokens) const;

 private:
  static constexpr std::size_t kNumFeatures = 6;

  void TokenFeatures(const std::vector<std::string>& desc_tokens,
                     const std::vector<std::string>& title_tokens,
                     std::size_t position, double feats[kNumFeatures]) const;

  RewriterOptions options_;
  bool trained_ = false;
  bool adapted_ = false;
  double weights_[kNumFeatures] = {0};
  text::TfIdfStats source_stats_;   // fit during Train (all descriptions)
  text::TfIdfStats domain_stats_;   // fit during AdaptToDomain
  double domain_ppl_mean_ = 0.0;
  double domain_ppl_std_ = 1.0;
};

}  // namespace metablink::gen

#endif  // METABLINK_GEN_REWRITER_H_
