#ifndef METABLINK_GEN_SEED_SELECTOR_H_
#define METABLINK_GEN_SEED_SELECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "util/rng.h"

namespace metablink::gen {

/// Zero-shot seed heuristics (Sec. VI-C): with no labeled target-domain data
/// at all, MetaBLINK still needs a small trusted seed set for the
/// meta-backward update. The paper builds it two ways, both implemented
/// here.

/// Strategy (1): rule-filter the synthetic data. Keeps pairs where
///  - the mention is non-empty and within a word-count bound,
///  - mention and entity title share no normalized tokens (so the pair
///    cannot be solved by the surface shortcut), and
///  - every mention word occurs in the entity description (a strong signal
///    the rewrite is faithful).
/// Returns at most `max_seeds`, preferring pairs whose mention words are
/// rarer in the description corpus (more discriminative).
std::vector<data::LinkingExample> FilterSeeds(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& synthetic,
    std::size_t max_seeds);

/// Strategy (2): self-match. For entities whose title carries a
/// disambiguation phrase ("X (phrase)"), find the occurrence of "X" inside
/// the entity's own description and emit it as a seed mention with the
/// surrounding description text as context. These cover the Multiple
/// Categories type that rewriting rarely produces.
std::vector<data::LinkingExample> SelfMatchSeeds(const kb::KnowledgeBase& kb,
                                                 const std::string& domain,
                                                 std::size_t max_seeds);

/// Paper recipe: combine both strategies, self-match first, then filtered
/// synthetic pairs, up to `max_seeds` total.
std::vector<data::LinkingExample> HeuristicSeeds(
    const kb::KnowledgeBase& kb, const std::string& domain,
    const std::vector<data::LinkingExample>& synthetic, std::size_t max_seeds);

}  // namespace metablink::gen

#endif  // METABLINK_GEN_SEED_SELECTOR_H_
