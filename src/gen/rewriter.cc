#include "gen/rewriter.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace metablink::gen {

namespace {

double SigmoidD(double z) { return 1.0 / (1.0 + std::exp(-z)); }

std::unordered_set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::unordered_set<std::string>(v.begin(), v.end());
}

}  // namespace

MentionRewriter::MentionRewriter(RewriterOptions options)
    : options_(options) {}

void MentionRewriter::TokenFeatures(
    const std::vector<std::string>& desc_tokens,
    const std::vector<std::string>& title_tokens, std::size_t position,
    double feats[kNumFeatures]) const {
  const std::string& tok = desc_tokens[position];
  const double n = static_cast<double>(desc_tokens.size());
  feats[0] = 1.0;  // bias
  feats[1] = source_stats_.Idf(tok) / 10.0;
  feats[2] = 1.0 - static_cast<double>(position) / std::max(1.0, n - 1.0);
  feats[3] = std::count(title_tokens.begin(), title_tokens.end(), tok) > 0
                 ? 1.0
                 : 0.0;
  feats[4] = static_cast<double>(tok.size()) / 12.0;
  // Repetition inside the description is a salience cue (aliases and
  // signature words recur; filler mostly does not).
  feats[5] =
      static_cast<double>(std::count(desc_tokens.begin(), desc_tokens.end(),
                                     tok)) /
      4.0;
}

util::Status MentionRewriter::Train(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& source_examples,
    util::Rng* rng) {
  if (source_examples.empty()) {
    return util::Status::InvalidArgument(
        "rewriter training needs source-domain examples");
  }
  text::Tokenizer tokenizer;

  // Corpus statistics over the source descriptions (for IDF features).
  std::unordered_set<kb::EntityId> seen;
  for (const auto& ex : source_examples) {
    if (ex.entity_id >= kb.num_entities()) {
      return util::Status::InvalidArgument("example references unknown entity");
    }
    if (seen.insert(ex.entity_id).second) {
      source_stats_.AddDocument(
          tokenizer.Tokenize(kb.entity(ex.entity_id).description));
    }
  }

  // Assemble per-token training rows: is this description token part of the
  // gold mention for the entity?
  struct RowData {
    double feats[kNumFeatures];
    double label;
  };
  std::vector<RowData> rows;
  for (const auto& ex : source_examples) {
    const kb::Entity& entity = kb.entity(ex.entity_id);
    const auto desc_tokens = tokenizer.Tokenize(entity.description);
    const auto title_tokens = tokenizer.Tokenize(entity.title);
    const auto mention_set = ToSet(tokenizer.Tokenize(ex.mention));
    for (std::size_t i = 0; i < desc_tokens.size(); ++i) {
      RowData row;
      TokenFeatures(desc_tokens, title_tokens, i, row.feats);
      row.label = mention_set.count(desc_tokens[i]) > 0 ? 1.0 : 0.0;
      rows.push_back(row);
    }
  }
  if (rows.empty()) {
    return util::Status::InvalidArgument("no training rows derived");
  }

  // Logistic regression by SGD.
  std::fill(std::begin(weights_), std::end(weights_), 0.0);
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t epoch = 0; epoch < options_.train_epochs; ++epoch) {
    rng->Shuffle(&order);
    for (std::size_t idx : order) {
      const RowData& row = rows[idx];
      double z = 0.0;
      for (std::size_t f = 0; f < kNumFeatures; ++f) {
        z += weights_[f] * row.feats[f];
      }
      const double err = SigmoidD(z) - row.label;
      for (std::size_t f = 0; f < kNumFeatures; ++f) {
        weights_[f] -= options_.train_lr * err * row.feats[f];
      }
    }
  }
  trained_ = true;
  return util::Status::OK();
}

void MentionRewriter::AdaptToDomain(
    const std::vector<std::string>& documents) {
  text::Tokenizer tokenizer;
  domain_stats_ = text::TfIdfStats();
  std::vector<double> ppls;
  for (const auto& doc : documents) {
    domain_stats_.AddDocument(tokenizer.Tokenize(doc));
  }
  for (const auto& doc : documents) {
    ppls.push_back(domain_stats_.PerplexityProxy(tokenizer.Tokenize(doc)));
  }
  if (!ppls.empty()) {
    double mean = std::accumulate(ppls.begin(), ppls.end(), 0.0) /
                  static_cast<double>(ppls.size());
    double var = 0.0;
    for (double p : ppls) var += (p - mean) * (p - mean);
    var /= static_cast<double>(ppls.size());
    domain_ppl_mean_ = mean;
    domain_ppl_std_ = std::max(1e-6, std::sqrt(var));
  }
  adapted_ = true;
}

std::vector<double> MentionRewriter::ScoreTokens(
    const std::vector<std::string>& description_tokens,
    const std::vector<std::string>& title_tokens) const {
  std::vector<double> scores(description_tokens.size(), 0.0);
  for (std::size_t i = 0; i < description_tokens.size(); ++i) {
    double feats[kNumFeatures];
    TokenFeatures(description_tokens, title_tokens, i, feats);
    double z = 0.0;
    for (std::size_t f = 0; f < kNumFeatures; ++f) z += weights_[f] * feats[f];
    scores[i] = SigmoidD(z);
  }
  return scores;
}

std::string MentionRewriter::Rewrite(const kb::Entity& entity,
                                     util::Rng* rng) const {
  text::Tokenizer tokenizer;
  const auto desc_tokens = tokenizer.Tokenize(entity.description);
  const auto title_tokens = tokenizer.Tokenize(entity.title);
  const auto title_set = ToSet(title_tokens);
  if (desc_tokens.empty()) return entity.title;

  const int max_attempts = adapted_ ? 4 : 1;
  std::string candidate;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    candidate.clear();
    if (rng->NextDouble() < options_.garbage_rate) {
      // Garbage channel: random description filler, ignoring salience —
      // fluent-looking but semantically vacuous output.
      const std::size_t k =
          1 + rng->NextUint64(options_.max_mention_words);
      std::vector<std::string> toks;
      for (std::size_t i = 0; i < k; ++i) {
        toks.push_back(desc_tokens[rng->NextUint64(desc_tokens.size())]);
      }
      candidate = util::Join(toks, " ");
    } else {
      // Salience channel: highest-scoring non-title tokens, in description
      // order (deduplicated).
      std::vector<double> scores = ScoreTokens(desc_tokens, title_tokens);
      std::vector<std::size_t> order(desc_tokens.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return scores[a] > scores[b];
      });
      const std::size_t want =
          1 + rng->NextUint64(options_.max_mention_words);
      std::vector<std::size_t> picked;
      std::unordered_set<std::string> used;
      for (std::size_t idx : order) {
        if (picked.size() >= want) break;
        const std::string& tok = desc_tokens[idx];
        if (title_set.count(tok) > 0) continue;
        if (!used.insert(tok).second) continue;
        picked.push_back(idx);
      }
      std::sort(picked.begin(), picked.end());
      std::vector<std::string> toks;
      for (std::size_t idx : picked) toks.push_back(desc_tokens[idx]);
      candidate = util::Join(toks, " ");
    }
    if (candidate.empty()) continue;
    if (!adapted_) break;
    // syn*: reject candidates that look out-of-domain (high perplexity
    // proxy) and resample; keeps the garbage channel mostly filtered out.
    const double ppl =
        domain_stats_.PerplexityProxy(tokenizer.Tokenize(candidate));
    const double z = (ppl - domain_ppl_mean_) / domain_ppl_std_;
    if (z <= options_.adapted_reject_zscore) break;
  }
  if (candidate.empty()) {
    candidate = desc_tokens[rng->NextUint64(desc_tokens.size())];
  }
  return candidate;
}

std::vector<data::LinkingExample> MentionRewriter::GenerateSyntheticData(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& exact_pairs,
    const std::vector<kb::EntityId>& domain_entities, util::Rng* rng) const {
  std::vector<data::LinkingExample> out;
  out.reserve(exact_pairs.size());
  for (const auto& pair : exact_pairs) {
    data::LinkingExample ex = pair;
    ex.source = data::ExampleSource::kRewritten;
    ex.mention = Rewrite(kb.entity(pair.entity_id), rng);
    if (!domain_entities.empty() &&
        rng->NextDouble() < options_.mislabel_rate) {
      // Alignment-noise channel: keep the text, flip the label.
      ex.entity_id = domain_entities[rng->NextUint64(domain_entities.size())];
    }
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace metablink::gen
