#ifndef METABLINK_GEN_BAD_DATA_H_
#define METABLINK_GEN_BAD_DATA_H_

#include <cstddef>
#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "util/rng.h"

namespace metablink::gen {

/// The Fig. 4 bad-data generator: copies `count` examples sampled from
/// `source` and relinks each mention to a uniformly random entity of the
/// same domain (guaranteed different from the gold one). The copies are
/// tagged ExampleSource::kInjectedBad so the selection-ratio experiment can
/// tell the populations apart.
std::vector<data::LinkingExample> InjectBadData(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& source, std::size_t count,
    util::Rng* rng);

}  // namespace metablink::gen

#endif  // METABLINK_GEN_BAD_DATA_H_
