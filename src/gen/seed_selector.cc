#include "gen/seed_selector.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace metablink::gen {

namespace {
std::unordered_set<std::string> TokenSet(const std::string& s) {
  text::Tokenizer tok;
  auto v = tok.Tokenize(s);
  return std::unordered_set<std::string>(v.begin(), v.end());
}
}  // namespace

std::vector<data::LinkingExample> FilterSeeds(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& synthetic,
    std::size_t max_seeds) {
  text::Tokenizer tokenizer;
  struct Scored {
    const data::LinkingExample* ex;
    double score;
  };
  std::vector<Scored> kept;
  for (const auto& ex : synthetic) {
    if (ex.entity_id >= kb.num_entities()) continue;
    const auto mention_tokens = tokenizer.Tokenize(ex.mention);
    if (mention_tokens.empty() || mention_tokens.size() > 4) continue;
    const kb::Entity& entity = kb.entity(ex.entity_id);
    const auto title_set = TokenSet(entity.title);
    const auto desc_tokens = tokenizer.Tokenize(entity.description);
    const std::unordered_set<std::string> desc_set(desc_tokens.begin(),
                                                   desc_tokens.end());
    bool overlaps_title = false;
    bool all_in_description = true;
    for (const auto& t : mention_tokens) {
      if (title_set.count(t) > 0) overlaps_title = true;
      if (desc_set.count(t) == 0) all_in_description = false;
    }
    if (overlaps_title || !all_in_description) continue;
    // Prefer rarer (more discriminative) mention words: score by the
    // inverse of how often the words recur in the description.
    double score = 0.0;
    for (const auto& t : mention_tokens) {
      score += 1.0 / static_cast<double>(1 + std::count(desc_tokens.begin(),
                                                        desc_tokens.end(), t));
    }
    kept.push_back({&ex, score / static_cast<double>(mention_tokens.size())});
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });
  std::vector<data::LinkingExample> out;
  for (const auto& s : kept) {
    if (out.size() >= max_seeds) break;
    data::LinkingExample ex = *s.ex;
    ex.source = data::ExampleSource::kGold;  // treated as trusted seed
    out.push_back(std::move(ex));
  }
  return out;
}

std::vector<data::LinkingExample> SelfMatchSeeds(const kb::KnowledgeBase& kb,
                                                 const std::string& domain,
                                                 std::size_t max_seeds) {
  text::Tokenizer tokenizer;
  std::vector<data::LinkingExample> out;
  for (kb::EntityId id : kb.EntitiesInDomain(domain)) {
    if (out.size() >= max_seeds) break;
    const kb::Entity& entity = kb.entity(id);
    std::string phrase;
    const std::string base = text::StripDisambiguation(entity.title, &phrase);
    if (phrase.empty()) continue;
    const auto base_tokens = tokenizer.Tokenize(base);
    if (base_tokens.empty()) continue;
    const auto desc_tokens = tokenizer.Tokenize(entity.description);
    // Find the base title as a contiguous token run in the description.
    std::size_t pos = desc_tokens.size();
    for (std::size_t i = 0; i + base_tokens.size() <= desc_tokens.size();
         ++i) {
      bool match = true;
      for (std::size_t k = 0; k < base_tokens.size(); ++k) {
        if (desc_tokens[i + k] != base_tokens[k]) {
          match = false;
          break;
        }
      }
      if (match) {
        pos = i;
        break;
      }
    }
    if (pos == desc_tokens.size()) continue;
    data::LinkingExample ex;
    ex.mention = base;
    ex.left_context = util::Join(
        std::vector<std::string>(desc_tokens.begin(),
                                 desc_tokens.begin() + pos),
        " ");
    ex.right_context = util::Join(
        std::vector<std::string>(
            desc_tokens.begin() + pos + base_tokens.size(),
            desc_tokens.end()),
        " ");
    ex.entity_id = id;
    ex.domain = domain;
    ex.source = data::ExampleSource::kGold;
    out.push_back(std::move(ex));
  }
  return out;
}

std::vector<data::LinkingExample> HeuristicSeeds(
    const kb::KnowledgeBase& kb, const std::string& domain,
    const std::vector<data::LinkingExample>& synthetic,
    std::size_t max_seeds) {
  std::vector<data::LinkingExample> out =
      SelfMatchSeeds(kb, domain, max_seeds / 2);
  const std::size_t remaining = max_seeds - out.size();
  for (auto& ex : FilterSeeds(kb, synthetic, remaining)) {
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace metablink::gen
