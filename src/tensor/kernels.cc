#include "tensor/kernels.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel_trace.h"
#include "util/thread_pool.h"

namespace metablink::tensor {

namespace {

// Panel heights chosen so one panel of a 128-wide float matrix fits in L1
// alongside the output row being accumulated.
constexpr std::size_t kPanelK = 64;  // B rows per panel in GemmRaw.
constexpr std::size_t kPanelM = 64;  // B rows per panel in GemmTransposeBRaw.

bool AllZero(const float* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != 0.0f) return false;
  }
  return true;
}

}  // namespace

void GemmRaw(const float* a, const float* b, float* c, std::size_t n,
             std::size_t k, std::size_t m) {
  // Panel over the reduction dimension so the B panel is reused across all
  // n output rows before it leaves cache. Within a row, p stays ascending
  // (pb blocks ascend, p ascends inside a block), so every output element
  // sees contributions in the same order as the unblocked loop.
  for (std::size_t pb = 0; pb < k; pb += kPanelK) {
    const std::size_t pe = std::min(k, pb + kPanelK);
    for (std::size_t i = 0; i < n; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * m;
      for (std::size_t p = pb; p < pe; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        Axpy(av, b + p * m, crow, m);
      }
    }
  }
}

void GemmTransposeBRaw(const float* a, const float* b, float* c,
                       std::size_t n, std::size_t d, std::size_t m) {
  for (std::size_t jb = 0; jb < m; jb += kPanelM) {
    const std::size_t je = std::min(m, jb + kPanelM);
    for (std::size_t i = 0; i < n; ++i) {
      const float* arow = a + i * d;
      if (AllZero(arow, d)) continue;
      float* crow = c + i * m;
      for (std::size_t j = jb; j < je; ++j) {
        crow[j] += Dot(arow, b + j * d, d);
      }
    }
  }
}

void GemmTransposeARaw(const float* a, const float* b, float* c,
                       std::size_t n, std::size_t k, std::size_t m,
                       std::size_t k_begin, std::size_t k_end) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * m;
    if (AllZero(brow, m)) continue;
    for (std::size_t p = k_begin; p < k_end; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      Axpy(av, brow, c + p * m, m);
    }
  }
}

void Gemm(const Tensor& a, const Tensor& b, Tensor* out,
          util::ThreadPool* pool) {
  METABLINK_CHECK(a.cols() == b.rows()) << "Gemm shape mismatch";
  METABLINK_CHECK(out->rows() == a.rows() && out->cols() == b.cols())
      << "Gemm output shape mismatch";
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  if (pool == nullptr || n < 2) {
    GemmRaw(a.data().data(), b.data().data(), out->data().data(), n, k, m);
    return;
  }
  util::ParallelTraceObserver* trace = util::GetParallelTraceObserver();
  if (trace != nullptr) {
    trace->OnRegionBegin(out->data().data(), n, /*expect_cover=*/true,
                         "Gemm");
  }
  pool->ParallelForChunks(
      n, 0, [&a, &b, out, k, m, trace](std::size_t, std::size_t begin,
                                       std::size_t end) {
        if (trace != nullptr) {
          trace->OnTaskWrite(out->data().data(), begin, end);
        }
        GemmRaw(a.row_data(begin), b.data().data(), out->row_data(begin),
                end - begin, k, m);
      });
  if (trace != nullptr) trace->OnRegionEnd(out->data().data());
}

void GemmTransposeB(const Tensor& a, const Tensor& b, Tensor* out,
                    util::ThreadPool* pool) {
  METABLINK_CHECK(a.cols() == b.cols()) << "GemmTransposeB shape mismatch";
  METABLINK_CHECK(out->rows() == a.rows() && out->cols() == b.rows())
      << "GemmTransposeB output shape mismatch";
  const std::size_t n = a.rows(), d = a.cols(), m = b.rows();
  if (pool == nullptr || n < 2) {
    GemmTransposeBRaw(a.data().data(), b.data().data(), out->data().data(),
                      n, d, m);
    return;
  }
  util::ParallelTraceObserver* trace = util::GetParallelTraceObserver();
  if (trace != nullptr) {
    trace->OnRegionBegin(out->data().data(), n, /*expect_cover=*/true,
                         "GemmTransposeB");
  }
  pool->ParallelForChunks(
      n, 0, [&a, &b, out, d, m, trace](std::size_t, std::size_t begin,
                                       std::size_t end) {
        if (trace != nullptr) {
          trace->OnTaskWrite(out->data().data(), begin, end);
        }
        GemmTransposeBRaw(a.row_data(begin), b.data().data(),
                          out->row_data(begin), end - begin, d, m);
      });
  if (trace != nullptr) trace->OnRegionEnd(out->data().data());
}

void GemmTransposeA(const Tensor& a, const Tensor& b, Tensor* out,
                    util::ThreadPool* pool) {
  METABLINK_CHECK(a.rows() == b.rows()) << "GemmTransposeA shape mismatch";
  METABLINK_CHECK(out->rows() == a.cols() && out->cols() == b.cols())
      << "GemmTransposeA output shape mismatch";
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  if (pool == nullptr || k < 2) {
    GemmTransposeARaw(a.data().data(), b.data().data(), out->data().data(),
                      n, k, m, 0, k);
    return;
  }
  // Workers own disjoint [k_begin, k_end) output-row ranges; each element
  // still accumulates in ascending i order, so this matches serial exactly.
  util::ParallelTraceObserver* trace = util::GetParallelTraceObserver();
  if (trace != nullptr) {
    trace->OnRegionBegin(out->data().data(), k, /*expect_cover=*/true,
                         "GemmTransposeA");
  }
  pool->ParallelForChunks(
      k, 0, [&a, &b, out, n, k, m, trace](std::size_t, std::size_t begin,
                                          std::size_t end) {
        if (trace != nullptr) {
          trace->OnTaskWrite(out->data().data(), begin, end);
        }
        GemmTransposeARaw(a.data().data(), b.data().data(),
                          out->data().data(), n, k, m, begin, end);
      });
  if (trace != nullptr) trace->OnRegionEnd(out->data().data());
}

}  // namespace metablink::tensor
