#include "tensor/optimizer.h"

#include <cmath>

namespace metablink::tensor {

void SgdOptimizer::Step(ParameterStore* store) {
  for (const auto& p : store->parameters()) {
    auto& val = p->value.data();
    const auto& grad = p->grad.data();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[p.get()];
      if (vel.size() != val.size()) vel.assign(val.size(), 0.0f);
      for (std::size_t i = 0; i < val.size(); ++i) {
        vel[i] = momentum_ * vel[i] + grad[i] + weight_decay_ * val[i];
        val[i] -= lr_ * vel[i];
      }
    } else if (p->row_sparse_grad && weight_decay_ == 0.0f) {
      const std::size_t cols = p->grad.cols();
      for (std::uint32_t row : p->touched_rows) {
        const std::size_t base = row * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          val[base + c] -= lr_ * grad[base + c];
        }
      }
    } else {
      for (std::size_t i = 0; i < val.size(); ++i) {
        val[i] -= lr_ * (grad[i] + weight_decay_ * val[i]);
      }
    }
  }
}

void AdamOptimizer::Step(ParameterStore* store) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (const auto& p : store->parameters()) {
    auto& val = p->value.data();
    const auto& grad = p->grad.data();
    auto& mom = moments_[p.get()];
    if (mom.m.size() != val.size()) {
      mom.m.assign(val.size(), 0.0f);
      mom.v.assign(val.size(), 0.0f);
    }
    auto update = [&](std::size_t i) {
      const float g = grad[i] + weight_decay_ * val[i];
      mom.m[i] = beta1_ * mom.m[i] + (1.0f - beta1_) * g;
      mom.v[i] = beta2_ * mom.v[i] + (1.0f - beta2_) * g * g;
      const float mhat = mom.m[i] / bc1;
      const float vhat = mom.v[i] / bc2;
      val[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    };
    if (p->row_sparse_grad) {
      // Lazy Adam: rows with zero gradient keep their moments unchanged
      // (standard sparse-Adam approximation for embedding tables).
      const std::size_t cols = p->grad.cols();
      for (std::uint32_t row : p->touched_rows) {
        const std::size_t base = row * cols;
        for (std::size_t c = 0; c < cols; ++c) update(base + c);
      }
    } else {
      for (std::size_t i = 0; i < val.size(); ++i) update(i);
    }
  }
}

}  // namespace metablink::tensor
