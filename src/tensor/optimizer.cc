#include "tensor/optimizer.h"

#include <cmath>

#include "util/string_util.h"

namespace metablink::tensor {

namespace {

// Optimizer-state stream tags, so loading the wrong optimizer type (or a
// non-optimizer section) fails cleanly instead of garbling moments.
constexpr std::uint32_t kSgdStateTag = 0x4D444753u;   // "SGDM"
constexpr std::uint32_t kAdamStateTag = 0x4D414441u;  // "ADAM"

}  // namespace

void SgdOptimizer::Step(ParameterStore* store) {
  for (const auto& p : store->parameters()) {
    auto& val = p->value.data();
    const auto& grad = p->grad.data();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[p.get()];
      if (vel.size() != val.size()) vel.assign(val.size(), 0.0f);
      for (std::size_t i = 0; i < val.size(); ++i) {
        vel[i] = momentum_ * vel[i] + grad[i] + weight_decay_ * val[i];
        val[i] -= lr_ * vel[i];
      }
    } else if (p->row_sparse_grad && weight_decay_ == 0.0f) {
      const std::size_t cols = p->grad.cols();
      for (std::uint32_t row : p->touched_rows) {
        const std::size_t base = row * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          val[base + c] -= lr_ * grad[base + c];
        }
      }
    } else {
      for (std::size_t i = 0; i < val.size(); ++i) {
        val[i] -= lr_ * (grad[i] + weight_decay_ * val[i]);
      }
    }
  }
}

void AdamOptimizer::Step(ParameterStore* store) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (const auto& p : store->parameters()) {
    auto& val = p->value.data();
    const auto& grad = p->grad.data();
    auto& mom = moments_[p.get()];
    if (mom.m.size() != val.size()) {
      mom.m.assign(val.size(), 0.0f);
      mom.v.assign(val.size(), 0.0f);
    }
    auto update = [&](std::size_t i) {
      const float g = grad[i] + weight_decay_ * val[i];
      mom.m[i] = beta1_ * mom.m[i] + (1.0f - beta1_) * g;
      mom.v[i] = beta2_ * mom.v[i] + (1.0f - beta2_) * g * g;
      const float mhat = mom.m[i] / bc1;
      const float vhat = mom.v[i] / bc2;
      val[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    };
    if (p->row_sparse_grad) {
      // Lazy Adam: rows with zero gradient keep their moments unchanged
      // (standard sparse-Adam approximation for embedding tables).
      const std::size_t cols = p->grad.cols();
      for (std::uint32_t row : p->touched_rows) {
        const std::size_t base = row * cols;
        for (std::size_t c = 0; c < cols; ++c) update(base + c);
      }
    } else {
      for (std::size_t i = 0; i < val.size(); ++i) update(i);
    }
  }
}

void SgdOptimizer::Save(const ParameterStore& store,
                        util::BinaryWriter* writer) const {
  writer->WriteU32(kSgdStateTag);
  writer->WriteF32(lr_);
  writer->WriteU64(store.parameters().size());
  for (const auto& p : store.parameters()) {
    auto it = velocity_.find(p.get());
    const bool live = it != velocity_.end();
    writer->WriteU32(live ? 1u : 0u);
    if (live) writer->WriteFloatVector(it->second);
  }
}

util::Status SgdOptimizer::Load(const ParameterStore& store,
                                util::BinaryReader* reader) {
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&tag));
  if (tag != kSgdStateTag) {
    return util::Status::InvalidArgument("not an SGD optimizer state");
  }
  METABLINK_RETURN_IF_ERROR(reader->ReadF32(&lr_));
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&n));
  if (n != store.parameters().size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "optimizer state has %llu parameters, model has %zu",
        static_cast<unsigned long long>(n), store.parameters().size()));
  }
  velocity_.clear();
  for (const auto& p : store.parameters()) {
    std::uint32_t live = 0;
    METABLINK_RETURN_IF_ERROR(reader->ReadU32(&live));
    if (live == 0) continue;
    std::vector<float> vel;
    METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&vel));
    if (vel.size() != p->value.size()) {
      return util::Status::InvalidArgument(
          "optimizer velocity shape mismatch at parameter " + p->name);
    }
    velocity_[p.get()] = std::move(vel);
  }
  return util::Status::OK();
}

void AdamOptimizer::Save(const ParameterStore& store,
                         util::BinaryWriter* writer) const {
  writer->WriteU32(kAdamStateTag);
  writer->WriteF32(lr_);
  writer->WriteI64(t_);
  writer->WriteU64(store.parameters().size());
  for (const auto& p : store.parameters()) {
    auto it = moments_.find(p.get());
    const bool live = it != moments_.end();
    writer->WriteU32(live ? 1u : 0u);
    if (live) {
      writer->WriteFloatVector(it->second.m);
      writer->WriteFloatVector(it->second.v);
    }
  }
}

util::Status AdamOptimizer::Load(const ParameterStore& store,
                                 util::BinaryReader* reader) {
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&tag));
  if (tag != kAdamStateTag) {
    return util::Status::InvalidArgument("not an Adam optimizer state");
  }
  METABLINK_RETURN_IF_ERROR(reader->ReadF32(&lr_));
  METABLINK_RETURN_IF_ERROR(reader->ReadI64(&t_));
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&n));
  if (n != store.parameters().size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "optimizer state has %llu parameters, model has %zu",
        static_cast<unsigned long long>(n), store.parameters().size()));
  }
  moments_.clear();
  for (const auto& p : store.parameters()) {
    std::uint32_t live = 0;
    METABLINK_RETURN_IF_ERROR(reader->ReadU32(&live));
    if (live == 0) continue;
    Moments mom;
    METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&mom.m));
    METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&mom.v));
    if (mom.m.size() != p->value.size() || mom.v.size() != p->value.size()) {
      return util::Status::InvalidArgument(
          "optimizer moment shape mismatch at parameter " + p->name);
    }
    moments_[p.get()] = std::move(mom);
  }
  return util::Status::OK();
}

}  // namespace metablink::tensor
