#include "tensor/parameter.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace metablink::tensor {

Parameter* ParameterStore::Create(const std::string& name, std::size_t rows,
                                  std::size_t cols) {
  METABLINK_CHECK(Find(name) == nullptr) << "duplicate parameter " << name;
  params_.push_back(std::make_unique<Parameter>(name, rows, cols));
  return params_.back().get();
}

Parameter* ParameterStore::CreateXavier(const std::string& name,
                                        std::size_t rows, std::size_t cols,
                                        util::Rng* rng) {
  Parameter* p = Create(name, rows, cols);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : p->value.data()) v = rng->NextFloat(-bound, bound);
  return p;
}

Parameter* ParameterStore::CreateNormal(const std::string& name,
                                        std::size_t rows, std::size_t cols,
                                        float stddev, util::Rng* rng) {
  Parameter* p = Create(name, rows, cols);
  for (float& v : p->value.data()) {
    v = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return p;
}

Parameter* ParameterStore::CreateEmbedding(const std::string& name,
                                           std::size_t rows, std::size_t cols,
                                           float stddev, util::Rng* rng) {
  Parameter* p = CreateNormal(name, rows, cols, stddev, rng);
  p->row_sparse_grad = true;
  p->touched_mask.assign(rows, 0);
  p->touched_rows.reserve(1024);
  return p;
}

Parameter* ParameterStore::Find(const std::string& name) {
  for (auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

const Parameter* ParameterStore::Find(const std::string& name) const {
  for (const auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

std::size_t ParameterStore::TotalSize() const {
  std::size_t total = 0;
  for (const auto& p : params_) total += p->value.size();
  return total;
}

void ParameterStore::ZeroGrads() {
  for (auto& p : params_) {
    if (p->row_sparse_grad) {
      const std::size_t cols = p->grad.cols();
      for (std::uint32_t row : p->touched_rows) {
        std::fill_n(p->grad.row_data(row), cols, 0.0f);
        p->touched_mask[row] = 0;
      }
      p->touched_rows.clear();
    } else {
      p->grad.SetZero();
    }
  }
}

std::vector<float> ParameterStore::FlattenGrads() const {
  std::vector<float> out;
  out.reserve(TotalSize());
  for (const auto& p : params_) {
    out.insert(out.end(), p->grad.data().begin(), p->grad.data().end());
  }
  return out;
}

double ParameterStore::GradDot(const std::vector<float>& snapshot) const {
  double acc = 0.0;
  std::size_t offset = 0;
  for (const auto& p : params_) {
    const auto& g = p->grad.data();
    if (p->row_sparse_grad) {
      const std::size_t cols = p->grad.cols();
      for (std::uint32_t row : p->touched_rows) {
        const float* gr = p->grad.row_data(row);
        const float* sr = snapshot.data() + offset + row * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          acc += static_cast<double>(gr[c]) * sr[c];
        }
      }
    } else {
      for (std::size_t i = 0; i < g.size(); ++i) {
        acc += static_cast<double>(g[i]) * snapshot[offset + i];
      }
    }
    offset += g.size();
  }
  return acc;
}

std::vector<float> ParameterStore::FlattenValues() const {
  std::vector<float> out;
  out.reserve(TotalSize());
  for (const auto& p : params_) {
    out.insert(out.end(), p->value.data().begin(), p->value.data().end());
  }
  return out;
}

std::uint32_t ParameterStore::ValuesCrc32() const {
  std::uint32_t crc = 0;
  for (const auto& p : params_) {
    crc = util::Crc32(p->value.data().data(),
                      p->value.data().size() * sizeof(float), crc);
  }
  return crc;
}

util::Status ParameterStore::LoadValues(const std::vector<float>& flat) {
  if (flat.size() != TotalSize()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "flat size %zu != total parameter size %zu", flat.size(),
        TotalSize()));
  }
  std::size_t offset = 0;
  for (auto& p : params_) {
    std::copy(flat.begin() + offset, flat.begin() + offset + p->value.size(),
              p->value.data().begin());
    offset += p->value.size();
  }
  return util::Status::OK();
}

void ParameterStore::Save(util::BinaryWriter* writer) const {
  writer->WriteU64(params_.size());
  for (const auto& p : params_) {
    writer->WriteString(p->name);
    writer->WriteU64(p->value.rows());
    writer->WriteU64(p->value.cols());
    writer->WriteFloatVector(p->value.data());
  }
}

util::Status ParameterStore::Load(util::BinaryReader* reader) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&n));
  if (n != params_.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "checkpoint has %llu parameters, model has %zu",
        static_cast<unsigned long long>(n), params_.size()));
  }
  for (auto& p : params_) {
    std::string name;
    std::uint64_t rows = 0, cols = 0;
    METABLINK_RETURN_IF_ERROR(reader->ReadString(&name));
    METABLINK_RETURN_IF_ERROR(reader->ReadU64(&rows));
    METABLINK_RETURN_IF_ERROR(reader->ReadU64(&cols));
    if (name != p->name || rows != p->value.rows() ||
        cols != p->value.cols()) {
      return util::Status::InvalidArgument(
          util::StrFormat("checkpoint mismatch at parameter %s", name.c_str()));
    }
    METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&p->value.data()));
  }
  return util::Status::OK();
}

GradScratch::GradScratch(const ParameterStore* store) {
  entries_.resize(store->parameters().size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].param = store->parameters()[i].get();
  }
}

GradScratch::Entry& GradScratch::EntryFor(const Parameter* p) {
  for (Entry& e : entries_) {
    if (e.param == p) return e;
  }
  METABLINK_CHECK(false) << "parameter " << p->name
                         << " is not in this scratch's store";
  return entries_.front();  // unreachable
}

Tensor& GradScratch::GradFor(const Parameter* p) {
  Entry& e = EntryFor(p);
  if (e.grad.empty()) {
    e.grad = Tensor(p->value.rows(), p->value.cols());
    if (p->row_sparse_grad) {
      e.touched_mask.assign(p->value.rows(), 0);
      e.touched_rows.reserve(256);
    }
  }
  e.active = true;
  return e.grad;
}

void GradScratch::TouchRow(const Parameter* p, std::uint32_t row) {
  if (!p->row_sparse_grad) return;
  Entry& e = EntryFor(p);
  if (e.grad.empty()) GradFor(p);
  if (e.touched_mask[row] == 0) {
    e.touched_mask[row] = 1;
    e.touched_rows.push_back(row);
  }
}

void GradScratch::Reset() {
  for (Entry& e : entries_) {
    if (!e.active) continue;
    if (e.param->row_sparse_grad) {
      const std::size_t cols = e.grad.cols();
      for (std::uint32_t row : e.touched_rows) {
        std::fill_n(e.grad.row_data(row), cols, 0.0f);
        e.touched_mask[row] = 0;
      }
      e.touched_rows.clear();
    } else {
      e.grad.SetZero();
    }
    e.active = false;
  }
}

double GradScratch::Dot(const std::vector<float>& flat) const {
  double acc = 0.0;
  std::size_t offset = 0;
  for (const Entry& e : entries_) {
    const std::size_t size = e.param->value.size();
    if (!e.active) {
      offset += size;
      continue;
    }
    if (e.param->row_sparse_grad) {
      const std::size_t cols = e.grad.cols();
      for (std::uint32_t row : e.touched_rows) {
        const float* gr = e.grad.row_data(row);
        const float* sr = flat.data() + offset + row * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          acc += static_cast<double>(gr[c]) * sr[c];
        }
      }
    } else {
      const auto& g = e.grad.data();
      for (std::size_t i = 0; i < g.size(); ++i) {
        acc += static_cast<double>(g[i]) * flat[offset + i];
      }
    }
    offset += size;
  }
  return acc;
}

}  // namespace metablink::tensor
