#ifndef METABLINK_TENSOR_GRAD_WORKSPACE_H_
#define METABLINK_TENSOR_GRAD_WORKSPACE_H_

#include <cstdint>
#include <vector>

#include "tensor/parameter.h"
#include "tensor/tensor.h"

namespace metablink::tensor {

class Graph;
struct Var;

/// Holds the node gradients for one backward traversal of a Graph.
///
/// Moving gradients out of the tape itself means several backward passes
/// (with different seeds) can run concurrently over one shared, read-only
/// Graph — each pass brings its own workspace. Two modes:
///
///  * Direct mode (default constructor): parameter gradients go to
///    Parameter::grad / Parameter::TouchRow, exactly like the classic
///    single-threaded flow. Every Graph owns one direct-mode workspace
///    backing Graph::Backward / Graph::grad.
///  * Scratch mode (constructed with a GradScratch*): parameter gradients
///    go to the per-thread GradScratch, leaving Parameter::grad untouched.
///    This is what the meta trainer's parallel per-example passes use.
///
/// Node-gradient buffers allocate lazily on first write and are recycled by
/// Reset() (which zeroes only the buffers dirtied since the previous
/// Reset). The dirty flags double as the sparsity filter for
/// Graph::BackwardWithSeed: a node whose gradient was never written has an
/// exactly-zero gradient, so its backward closure can be skipped without
/// changing any result.
class GradWorkspace {
 public:
  /// Direct mode: parameter gradients accumulate into Parameter::grad.
  GradWorkspace() = default;

  /// Scratch mode: parameter gradients accumulate into `scratch`
  /// (not owned; must outlive the workspace).
  explicit GradWorkspace(GradScratch* scratch) : scratch_(scratch) {}

  GradWorkspace(const GradWorkspace&) = delete;
  GradWorkspace& operator=(const GradWorkspace&) = delete;

  /// Read-only gradient of node `v` (zeros if never written).
  const Tensor& grad(const Graph& g, Var v);

  /// Mutable gradient of node `v`; marks it dirty. Closures must only call
  /// this for inputs that actually receive a non-zero contribution, so the
  /// dirty set stays minimal under sparse (one-hot) seeds.
  Tensor& GradForWrite(const Graph& g, Var v);

  /// True when `v`'s gradient has been written since the last Reset.
  bool dirty(Var v) const;

  /// Destination for a parameter gradient (Parameter::grad in direct mode,
  /// the scratch buffer in scratch mode).
  Tensor& ParamGrad(Parameter* p);

  /// Row-sparse bookkeeping for `p` routed per mode. Not thread-safe;
  /// parallel op implementations must touch rows from a single thread.
  void TouchParamRow(Parameter* p, std::uint32_t row);

  /// When true (default), BackwardWithSeed skips closures of nodes whose
  /// gradient was never written. Turning it off forces the classic
  /// visit-every-node traversal (benchmark baseline / debugging).
  void set_sparsity_skip(bool on) { sparsity_skip_ = on; }
  bool sparsity_skip() const { return sparsity_skip_; }

  /// Zeroes every node gradient dirtied since the last Reset and, in
  /// scratch mode, resets the scratch parameter gradients too.
  void Reset();

 private:
  void EnsureSize(std::size_t n);

  GradScratch* scratch_ = nullptr;  // null ⇒ direct mode
  std::vector<Tensor> grads_;       // indexed by node id, lazily shaped
  std::vector<std::uint8_t> dirty_;
  std::vector<std::int32_t> dirty_list_;
  bool sparsity_skip_ = true;
};

/// Tangent buffers for one forward-mode (JVP) sweep over a Graph; see
/// Graph::Jvp. Single-use: construct, sweep, read the root tangent.
class JvpWorkspace {
 public:
  JvpWorkspace() = default;
  JvpWorkspace(const JvpWorkspace&) = delete;
  JvpWorkspace& operator=(const JvpWorkspace&) = delete;

  /// Read-only tangent of node `v` (zeros if never written).
  const Tensor& tangent(const Graph& g, Var v);

  /// Mutable tangent of node `v` (lazily allocated zeros).
  Tensor& TangentForWrite(const Graph& g, Var v);

 private:
  std::vector<Tensor> tangents_;  // indexed by node id
};

}  // namespace metablink::tensor

#endif  // METABLINK_TENSOR_GRAD_WORKSPACE_H_
