#ifndef METABLINK_TENSOR_GRAPH_H_
#define METABLINK_TENSOR_GRAPH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/grad_workspace.h"
#include "tensor/parameter.h"
#include "tensor/tensor.h"

namespace metablink::util {
class ThreadPool;
}  // namespace metablink::util

namespace metablink::tensor {

/// Handle to a node in a Graph.
struct Var {
  std::int32_t id = -1;
  bool valid() const { return id >= 0; }
};

/// Op discriminator recorded on every tape node. The numeric kernels never
/// branch on it; it exists so analysis::GraphLint (via DebugTape) can
/// re-derive and verify the structural invariants of a built tape.
enum class OpKind : std::uint8_t {
  kInput,
  kParam,
  kEmbeddingBagMean,
  kMatMul,
  kMatMulTransposeB,
  kAddBiasRow,
  kAdd,
  kSub,
  kMul,
  kScale,
  kTanh,
  kRelu,
  kSigmoid,
  kRowL2Normalize,
  kConcatCols,
  kConcatRows,
  kBroadcastRow,
  kReshape,
  kRowDot,
  kSoftmaxCrossEntropy,
  kMean,
  kWeightedSum,
  kSum,
};

/// Human-readable op name ("MatMul", "EmbeddingBagMean", ...).
const char* OpKindName(OpKind kind);

/// Structural view of one tape node, exported by Graph::DebugTape for the
/// static analyzers. Tests forge TapeOp vectors directly to seed defects
/// that the op builders themselves refuse to construct.
struct TapeOp {
  OpKind kind = OpKind::kInput;
  std::int32_t id = -1;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int32_t> inputs;
  /// Parameter read by kParam / kEmbeddingBagMean nodes (else nullptr).
  const Parameter* param = nullptr;
  /// Node value; nullptr in hand-forged tapes (disables value scans).
  const Tensor* value = nullptr;
};

/// Reverse-mode autodiff over dense matrices.
///
/// A Graph is a single-use tape: build the forward computation with the op
/// methods, then call Backward() (possibly several times with different
/// seeds, after ResetGrads()). Gradients w.r.t. Parameter leaves accumulate
/// into Parameter::grad, so callers typically do:
///
///   store.ZeroGrads();
///   Graph g;
///   Var loss = ...;           // build forward pass
///   g.Backward(loss);         // fills Parameter::grad
///   optimizer.Step(&store);
///
/// Node gradients live in a GradWorkspace, not on the tape: after the
/// forward pass the tape is read-only, so independent backward passes with
/// different seeds can run concurrently, each with its own workspace (see
/// BackwardWithSeed below). Backward()/grad() use the graph's built-in
/// direct-mode workspace and behave exactly like the classic flow.
///
/// Heavy ops (MatMul, MatMulTransposeB, EmbeddingBagMean, RowL2Normalize)
/// split their work across a util::ThreadPool when one is attached via
/// SetPool. The default (`pool == nullptr`) is fully serial and the
/// parallel paths partition output rows, so both produce identical results.
///
/// The per-example meta-gradient computation (Algorithm 1) re-runs Backward
/// with one-hot row seeds over the same tape, or uses the forward-mode
/// Jvp() fast path; see train::MetaReweightTrainer.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Attaches a thread pool used to parallelize large ops (forward and
  /// backward). Not owned; nullptr (the default) means serial execution.
  void SetPool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* pool() const { return pool_; }

  // ---- Leaves -----------------------------------------------------------

  /// Constant input; receives no parameter gradient.
  Var Input(Tensor value);

  /// Parameter leaf: the whole matrix participates in the computation and
  /// its gradient accumulates into `p->grad` during Backward().
  Var Param(Parameter* p);

  // ---- Ops ---------------------------------------------------------------

  /// Mean-pooled embedding-bag lookup: for each bag b of feature ids,
  /// out[b] = mean_{i in bag} table[i]. Empty bags produce a zero row.
  /// Gradients scatter directly into `table->grad`.
  Var EmbeddingBagMean(Parameter* table,
                       std::vector<std::vector<std::uint32_t>> bags);

  /// Matrix product: [n,k] x [k,m] -> [n,m].
  Var MatMul(Var a, Var b);

  /// a * b^T: [n,d] x [m,d] -> [n,m]. This is the batch score matrix
  /// S(m_i, e_j) of eq. (5) when a/b are mention/entity embeddings.
  Var MatMulTransposeB(Var a, Var b);

  /// Adds a [1,c] bias row to every row of x [n,c].
  Var AddBiasRow(Var x, Var bias);

  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  /// Elementwise (Hadamard) product; shapes must match.
  Var Mul(Var a, Var b);
  Var Scale(Var x, float s);
  Var Tanh(Var x);
  Var Relu(Var x);
  Var Sigmoid(Var x);

  /// Row-wise L2 normalization: out[r] = x[r] / max(||x[r]||, eps).
  Var RowL2Normalize(Var x, float eps = 1e-8f);

  /// Horizontal concatenation [n,c1]+[n,c2] -> [n,c1+c2].
  Var ConcatCols(Var a, Var b);

  /// Vertical concatenation of equal-width vars -> [sum rows, c]. Used to
  /// stack per-example scalar losses into one column.
  Var ConcatRows(const std::vector<Var>& parts);

  /// Repeats a [1,c] row n times -> [n,c]; backward sums row gradients.
  /// Lets the cross-encoder encode the mention once per candidate list.
  Var BroadcastRow(Var row, std::size_t n);

  /// Reinterprets the buffer with a new shape (rows*cols must match).
  Var Reshape(Var x, std::size_t rows, std::size_t cols);

  /// Per-row dot product: [n,d],[n,d] -> [n,1].
  Var RowDot(Var a, Var b);

  /// Per-row softmax cross entropy against integer targets:
  /// out[r,0] = -logits[r,targets[r]] + log sum_c exp(logits[r,c]).
  /// This is exactly the in-batch-negatives loss of eq. (6) when `logits` is
  /// the batch score matrix and targets[r] = r.
  Var SoftmaxCrossEntropy(Var logits, std::vector<std::size_t> targets);

  /// Mean over all elements -> [1,1].
  Var Mean(Var x);

  /// Weighted sum of rows of a [n,1] column: sum_r w[r]*x[r,0] -> [1,1].
  /// This is the weighted loss of eq. (7)/(15).
  Var WeightedSum(Var column, std::vector<float> weights);

  /// Sum of all elements -> [1,1].
  Var Sum(Var x);

  // ---- Execution ---------------------------------------------------------

  const Tensor& value(Var v) const;

  /// Gradient of `v` in the graph's built-in workspace (zeros before any
  /// Backward call).
  const Tensor& grad(Var v) const;

  /// Runs backward from `v`, seeding every element of v's gradient with 1.
  void Backward(Var v);

  /// Runs backward from `v` with an explicit seed (same size as v's value).
  void BackwardWithSeed(Var v, const std::vector<float>& seed);

  /// Backward into a caller-provided workspace. The tape itself is not
  /// mutated, so concurrent calls with DISTINCT workspaces (scratch mode,
  /// so parameter gradients do not collide either) are safe. When
  /// ws->sparsity_skip() is set (the default), nodes whose gradient was
  /// never written are skipped — their closures would only add exact
  /// zeros.
  void BackwardWithSeed(Var v, const std::vector<float>& seed,
                        GradWorkspace* ws) const;

  /// Forward-mode sweep: returns the directional derivative (tangent) of
  /// `v` along the parameter direction currently held in Parameter::grad
  /// (inputs have zero tangent). One sweep costs about one forward pass
  /// and yields d/dε value(v)(φ + ε·dir) for every element of v at once —
  /// this is the meta trainer's fast path for raw[j] = ⟨∇_φ l_j, g_meta⟩,
  /// replacing n one-hot backward passes.
  Tensor Jvp(Var v) const;

  /// Zeroes all node gradients so Backward can run again over the same tape
  /// (Parameter::grad is managed separately via ParameterStore::ZeroGrads).
  void ResetGrads();

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Structural snapshot of the tape (op kinds, shapes, input edges,
  /// parameter bindings) for analysis::GraphLint. O(nodes); values are
  /// referenced, not copied, so the Graph must outlive the snapshot.
  std::vector<TapeOp> DebugTape() const;

 private:
  struct Node {
    Tensor value;
    // Propagates this node's workspace grad to its inputs; empty for
    // leaves. Must not mutate the Graph (tape is shared across passes).
    std::function<void(const Graph*, GradWorkspace*)> backward;
    // Computes this node's tangent from its inputs' tangents; empty for
    // zero-tangent leaves (Input).
    std::function<void(const Graph*, JvpWorkspace*)> jvp;
    // Structural metadata consumed by DebugTape/GraphLint.
    OpKind kind = OpKind::kInput;
    std::vector<std::int32_t> inputs;
    const Parameter* param = nullptr;
  };

  Var AddNode(Tensor value, OpKind kind,
              std::vector<std::int32_t> inputs = {},
              const Parameter* param = nullptr);
  Node& node(Var v) { return nodes_[static_cast<std::size_t>(v.id)]; }
  const Node& node(Var v) const {
    return nodes_[static_cast<std::size_t>(v.id)];
  }

  std::vector<Node> nodes_;
  util::ThreadPool* pool_ = nullptr;
  // Backs the two-argument Backward/BackwardWithSeed and grad(); mutable
  // because reading grad() lazily allocates zero buffers.
  mutable GradWorkspace default_ws_;
};

}  // namespace metablink::tensor

#endif  // METABLINK_TENSOR_GRAPH_H_
