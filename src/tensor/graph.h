#ifndef METABLINK_TENSOR_GRAPH_H_
#define METABLINK_TENSOR_GRAPH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/parameter.h"
#include "tensor/tensor.h"

namespace metablink::tensor {

/// Handle to a node in a Graph.
struct Var {
  std::int32_t id = -1;
  bool valid() const { return id >= 0; }
};

/// Reverse-mode autodiff over dense matrices.
///
/// A Graph is a single-use tape: build the forward computation with the op
/// methods, then call Backward() (possibly several times with different
/// seeds, after ResetGrads()). Gradients w.r.t. Parameter leaves accumulate
/// into Parameter::grad, so callers typically do:
///
///   store.ZeroGrads();
///   Graph g;
///   Var loss = ...;           // build forward pass
///   g.Backward(loss);         // fills Parameter::grad
///   optimizer.Step(&store);
///
/// The per-example meta-gradient computation (Algorithm 1) re-runs Backward
/// with one-hot row seeds over the same tape; see train::MetaReweightTrainer.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // ---- Leaves -----------------------------------------------------------

  /// Constant input; receives no parameter gradient.
  Var Input(Tensor value);

  /// Parameter leaf: the whole matrix participates in the computation and
  /// its gradient accumulates into `p->grad` during Backward().
  Var Param(Parameter* p);

  // ---- Ops ---------------------------------------------------------------

  /// Mean-pooled embedding-bag lookup: for each bag b of feature ids,
  /// out[b] = mean_{i in bag} table[i]. Empty bags produce a zero row.
  /// Gradients scatter directly into `table->grad`.
  Var EmbeddingBagMean(Parameter* table,
                       std::vector<std::vector<std::uint32_t>> bags);

  /// Matrix product: [n,k] x [k,m] -> [n,m].
  Var MatMul(Var a, Var b);

  /// a * b^T: [n,d] x [m,d] -> [n,m]. This is the batch score matrix
  /// S(m_i, e_j) of eq. (5) when a/b are mention/entity embeddings.
  Var MatMulTransposeB(Var a, Var b);

  /// Adds a [1,c] bias row to every row of x [n,c].
  Var AddBiasRow(Var x, Var bias);

  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  /// Elementwise (Hadamard) product; shapes must match.
  Var Mul(Var a, Var b);
  Var Scale(Var x, float s);
  Var Tanh(Var x);
  Var Relu(Var x);
  Var Sigmoid(Var x);

  /// Row-wise L2 normalization: out[r] = x[r] / max(||x[r]||, eps).
  Var RowL2Normalize(Var x, float eps = 1e-8f);

  /// Horizontal concatenation [n,c1]+[n,c2] -> [n,c1+c2].
  Var ConcatCols(Var a, Var b);

  /// Vertical concatenation of equal-width vars -> [sum rows, c]. Used to
  /// stack per-example scalar losses into one column.
  Var ConcatRows(const std::vector<Var>& parts);

  /// Repeats a [1,c] row n times -> [n,c]; backward sums row gradients.
  /// Lets the cross-encoder encode the mention once per candidate list.
  Var BroadcastRow(Var row, std::size_t n);

  /// Reinterprets the buffer with a new shape (rows*cols must match).
  Var Reshape(Var x, std::size_t rows, std::size_t cols);

  /// Per-row dot product: [n,d],[n,d] -> [n,1].
  Var RowDot(Var a, Var b);

  /// Per-row softmax cross entropy against integer targets:
  /// out[r,0] = -logits[r,targets[r]] + log sum_c exp(logits[r,c]).
  /// This is exactly the in-batch-negatives loss of eq. (6) when `logits` is
  /// the batch score matrix and targets[r] = r.
  Var SoftmaxCrossEntropy(Var logits, std::vector<std::size_t> targets);

  /// Mean over all elements -> [1,1].
  Var Mean(Var x);

  /// Weighted sum of rows of a [n,1] column: sum_r w[r]*x[r,0] -> [1,1].
  /// This is the weighted loss of eq. (7)/(15).
  Var WeightedSum(Var column, std::vector<float> weights);

  /// Sum of all elements -> [1,1].
  Var Sum(Var x);

  // ---- Execution ---------------------------------------------------------

  const Tensor& value(Var v) const;
  const Tensor& grad(Var v) const;

  /// Runs backward from `v`, seeding every element of v's gradient with 1.
  void Backward(Var v);

  /// Runs backward from `v` with an explicit seed (same size as v's value).
  void BackwardWithSeed(Var v, const std::vector<float>& seed);

  /// Zeroes all node gradients so Backward can run again over the same tape
  /// (Parameter::grad is managed separately via ParameterStore::ZeroGrads).
  void ResetGrads();

  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    // Propagates this node's grad to its inputs; empty for leaves.
    std::function<void(Graph*)> backward;
  };

  Var AddNode(Tensor value, std::function<void(Graph*)> backward);
  Node& node(Var v) { return nodes_[static_cast<std::size_t>(v.id)]; }
  const Node& node(Var v) const {
    return nodes_[static_cast<std::size_t>(v.id)];
  }

  std::vector<Node> nodes_;
};

}  // namespace metablink::tensor

#endif  // METABLINK_TENSOR_GRAPH_H_
