#ifndef METABLINK_TENSOR_KERNELS_H_
#define METABLINK_TENSOR_KERNELS_H_

#include <cstddef>

#include "tensor/tensor.h"

namespace metablink::util {
class ThreadPool;
}  // namespace metablink::util

namespace metablink::tensor {

/// Cache-blocked matrix kernels shared by the Graph ops, the retrieval
/// index, and the benchmarks. All kernels ACCUMULATE into C (callers that
/// want assignment zero C first), and all preserve the per-element
/// accumulation order of the original scalar loops in graph.cc: for a fixed
/// output element, contributions are added in ascending reduction index.
/// That makes the blocked/parallel versions bit-identical to the seed
/// implementation (parallel splits only distribute disjoint output rows).
///
/// Zero-skip rules: adding `0.0f * x` elementwise is elided. Under IEEE-754
/// this is exact — `y + (+0)` returns y unchanged, and a float accumulator
/// cannot flip sign by skipping an addition of +0.

/// C[n,m] += A[n,k] * B[k,m]. Raw row-major pointers; `a` may be a row
/// slice of a larger matrix as long as its stride is `k`.
/// Skips zero elements of A (sparse one-hot gradients make this common).
void GemmRaw(const float* a, const float* b, float* c, std::size_t n,
             std::size_t k, std::size_t m);

/// C[n,m] += A[n,d] * B[m,d]^T. Each output element is one Dot; B rows are
/// tiled so a panel stays cache-resident across consecutive A rows.
void GemmTransposeBRaw(const float* a, const float* b, float* c,
                       std::size_t n, std::size_t d, std::size_t m);

/// C[k,m] += A[n,k]^T * B[n,m], restricted to output rows
/// [k_begin, k_end). The range split lets callers parallelize over
/// disjoint output rows while every element still accumulates its
/// contributions in ascending i order. Skips zero A elements and all-zero
/// B rows.
void GemmTransposeARaw(const float* a, const float* b, float* c,
                       std::size_t n, std::size_t k, std::size_t m,
                       std::size_t k_begin, std::size_t k_end);

/// out += a * b, splitting output rows across `pool` (nullptr ⇒ serial).
/// Shapes: a [n,k], b [k,m], out [n,m].
void Gemm(const Tensor& a, const Tensor& b, Tensor* out,
          util::ThreadPool* pool);

/// out += a * b^T, splitting output rows across `pool` (nullptr ⇒ serial).
/// Shapes: a [n,d], b [m,d], out [n,m].
void GemmTransposeB(const Tensor& a, const Tensor& b, Tensor* out,
                    util::ThreadPool* pool);

/// out += a^T * b, splitting output rows (columns of a) across `pool`
/// (nullptr ⇒ serial). Shapes: a [n,k], b [n,m], out [k,m].
void GemmTransposeA(const Tensor& a, const Tensor& b, Tensor* out,
                    util::ThreadPool* pool);

}  // namespace metablink::tensor

#endif  // METABLINK_TENSOR_KERNELS_H_
