#include "tensor/tensor.h"

#include <cmath>

#include "util/logging.h"

namespace metablink::tensor {

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  METABLINK_CHECK(data_.size() == rows_ * cols_)
      << "shape (" << rows_ << "," << cols_ << ") vs data size "
      << data_.size();
}

Tensor Tensor::RowVector(std::vector<float> data) {
  std::size_t n = data.size();
  return Tensor(1, n, std::move(data));
}

void Tensor::SetZero() {
  std::fill(data_.begin(), data_.end(), 0.0f);
}

float Tensor::Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::vector<float> Tensor::Row(std::size_t r) const {
  return std::vector<float>(row_data(r), row_data(r) + cols_);
}

float Dot(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

void Axpy(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace metablink::tensor
