#include "tensor/tensor.h"

#include <cmath>

#include "util/logging.h"

namespace metablink::tensor {

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  METABLINK_CHECK(data_.size() == rows_ * cols_)
      << "shape (" << rows_ << "," << cols_ << ") vs data size "
      << data_.size();
}

Tensor Tensor::RowVector(std::vector<float> data) {
  std::size_t n = data.size();
  return Tensor(1, n, std::move(data));
}

void Tensor::SetZero() {
  std::fill(data_.begin(), data_.end(), 0.0f);
}

void Tensor::Resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // assign() reuses the existing heap block when it is large enough.
  data_.assign(rows * cols, 0.0f);
}

float Tensor::Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::vector<float> Tensor::Row(std::size_t r) const {
  return std::vector<float>(row_data(r), row_data(r) + cols_);
}

float Dot(const float* a, const float* b, std::size_t n) {
  // Four independent accumulator chains so the FMAs pipeline instead of
  // serializing on one register; double accumulation keeps the result
  // within one double ulp of the sequential sum, so the rounded float is
  // stable across the unrolled and remainder paths.
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(a[i]) * b[i];
    acc1 += static_cast<double>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<double>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  for (; i < n; ++i) acc0 += static_cast<double>(a[i]) * b[i];
  return static_cast<float>((acc0 + acc1) + (acc2 + acc3));
}

void Axpy(float alpha, const float* x, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
    y[i + 4] += alpha * x[i + 4];
    y[i + 5] += alpha * x[i + 5];
    y[i + 6] += alpha * x[i + 6];
    y[i + 7] += alpha * x[i + 7];
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace metablink::tensor
