#ifndef METABLINK_TENSOR_TENSOR_H_
#define METABLINK_TENSOR_TENSOR_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace metablink::tensor {

/// Dense row-major float matrix (rank 1 or 2). This is deliberately small:
/// the autodiff graph (graph.h) provides all composite operations; Tensor is
/// just storage plus indexing.
class Tensor {
 public:
  Tensor() = default;

  /// Rank-2 tensor of zeros.
  Tensor(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Rank-2 tensor with explicit contents. Pre: data.size() == rows*cols.
  Tensor(std::size_t rows, std::size_t cols, std::vector<float> data);

  static Tensor Zeros(std::size_t rows, std::size_t cols) {
    return Tensor(rows, cols);
  }

  /// Rank-1 vector viewed as a single row.
  static Tensor RowVector(std::vector<float> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row_data(std::size_t r) { return data_.data() + r * cols_; }
  const float* row_data(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  /// Sets every element to zero (keeps the shape).
  void SetZero();

  /// Reshapes to [rows, cols] and zero-fills. Reuses the existing
  /// allocation when capacity suffices, so scratch tensors resized to the
  /// same (or smaller) shape stop allocating after warm-up.
  void Resize(std::size_t rows, std::size_t cols);

  /// Frobenius norm.
  float Norm() const;

  /// Copies row `r` into a new vector.
  std::vector<float> Row(std::size_t r) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Dot product of two equal-length float spans.
float Dot(const float* a, const float* b, std::size_t n);

/// y += alpha * x over n elements.
void Axpy(float alpha, const float* x, float* y, std::size_t n);

}  // namespace metablink::tensor

#endif  // METABLINK_TENSOR_TENSOR_H_
