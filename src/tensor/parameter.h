#ifndef METABLINK_TENSOR_PARAMETER_H_
#define METABLINK_TENSOR_PARAMETER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"

namespace metablink::tensor {

/// A trainable weight matrix with its gradient accumulator. Parameters are
/// owned by a ParameterStore and referenced (never copied) by autodiff
/// graphs and optimizers.
///
/// Large embedding tables opt into row-sparse gradient tracking
/// (`row_sparse_grad`): ops that scatter into the gradient mark the touched
/// rows, and ZeroGrads / GradDot / optimizers then only visit those rows.
/// This is what makes the per-example gradient loop of the meta trainer
/// tractable (each example touches a few hundred of tens of thousands of
/// rows).
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Enables touched-row tracking; set via ParameterStore::CreateEmbedding.
  bool row_sparse_grad = false;
  /// Rows with (potentially) non-zero gradient, deduplicated via the mask.
  std::vector<std::uint32_t> touched_rows;
  std::vector<std::uint8_t> touched_mask;

  Parameter(std::string n, std::size_t rows, std::size_t cols)
      : name(std::move(n)), value(rows, cols), grad(rows, cols) {}

  /// Marks `row` as holding gradient (no-op unless row_sparse_grad).
  void TouchRow(std::uint32_t row) {
    if (!row_sparse_grad) return;
    if (touched_mask[row] == 0) {
      touched_mask[row] = 1;
      touched_rows.push_back(row);
    }
  }
};

/// Owns a model's parameters. Provides the flattened-gradient views used by
/// the meta-learning reweighting step (gradient dot products) and
/// checkpointing.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  /// Creates a zero-initialized parameter. Names must be unique.
  Parameter* Create(const std::string& name, std::size_t rows,
                    std::size_t cols);

  /// Creates a parameter with Xavier/Glorot uniform init:
  /// U(-sqrt(6/(rows+cols)), +sqrt(6/(rows+cols))).
  Parameter* CreateXavier(const std::string& name, std::size_t rows,
                          std::size_t cols, util::Rng* rng);

  /// Creates a parameter with scaled normal init (std = `stddev`).
  Parameter* CreateNormal(const std::string& name, std::size_t rows,
                          std::size_t cols, float stddev, util::Rng* rng);

  /// Creates an embedding table: normal init plus row-sparse gradient
  /// tracking (see Parameter).
  Parameter* CreateEmbedding(const std::string& name, std::size_t rows,
                             std::size_t cols, float stddev, util::Rng* rng);

  /// Looks up a parameter by name (nullptr if absent).
  Parameter* Find(const std::string& name);
  const Parameter* Find(const std::string& name) const;

  const std::vector<std::unique_ptr<Parameter>>& parameters() const {
    return params_;
  }

  /// Total number of scalar weights.
  std::size_t TotalSize() const;

  /// Zeroes every gradient.
  void ZeroGrads();

  /// Copies all gradients into one flat vector (parameter registration
  /// order). Used to hold the meta (seed-batch) gradient.
  std::vector<float> FlattenGrads() const;

  /// Dot product of the current gradients with a previously flattened
  /// gradient vector. Pre: snapshot.size() == TotalSize().
  double GradDot(const std::vector<float>& snapshot) const;

  /// Copies all values into one flat vector / restores them.
  std::vector<float> FlattenValues() const;
  util::Status LoadValues(const std::vector<float>& flat);

  /// CRC-32 over every parameter's raw value bytes in registration order.
  /// Two stores with identical weights have identical checksums, which is
  /// how the resume-parity tests and the checkpoint smoke gate assert
  /// bit-identity without holding both models in memory.
  std::uint32_t ValuesCrc32() const;

  /// Serializes names, shapes and values.
  void Save(util::BinaryWriter* writer) const;

  /// Restores values from `reader`. Parameters must already exist with
  /// matching names and shapes (i.e. build the model first, then Load).
  util::Status Load(util::BinaryReader* reader);

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

/// Per-thread parameter-gradient buffers mirroring a ParameterStore.
///
/// The meta trainer runs many independent backward passes over one tape
/// (one per synthetic example); routing each pass's parameter gradients
/// into its own GradScratch instead of the shared Parameter::grad lets the
/// passes run concurrently. Buffers allocate lazily on first write and are
/// reused across Reset() calls, so the per-example loop is allocation-free
/// after warm-up. Row-sparse parameters get the same touched-row tracking
/// as Parameter itself.
class GradScratch {
 public:
  explicit GradScratch(const ParameterStore* store);
  GradScratch(const GradScratch&) = delete;
  GradScratch& operator=(const GradScratch&) = delete;

  /// The scratch gradient tensor for `p` (lazily allocated to p's shape).
  Tensor& GradFor(const Parameter* p);

  /// Marks `row` of `p`'s scratch gradient as (potentially) non-zero.
  /// No-op unless p->row_sparse_grad.
  void TouchRow(const Parameter* p, std::uint32_t row);

  /// Zeroes every gradient written since the last Reset (touched rows only
  /// for row-sparse parameters). Keeps the buffers for reuse.
  void Reset();

  /// Dot product of the scratch gradients with a flattened gradient vector
  /// in ParameterStore::FlattenGrads layout. Pre: flat.size() ==
  /// store->TotalSize().
  double Dot(const std::vector<float>& flat) const;

 private:
  struct Entry {
    const Parameter* param = nullptr;
    Tensor grad;  // empty until first GradFor/TouchRow
    bool active = false;
    std::vector<std::uint32_t> touched_rows;
    std::vector<std::uint8_t> touched_mask;
  };

  Entry& EntryFor(const Parameter* p);

  std::vector<Entry> entries_;  // aligned with store parameter order
};

}  // namespace metablink::tensor

#endif  // METABLINK_TENSOR_PARAMETER_H_
