#ifndef METABLINK_TENSOR_OPTIMIZER_H_
#define METABLINK_TENSOR_OPTIMIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/parameter.h"

namespace metablink::tensor {

/// Interface for gradient-based parameter updates. Step() consumes the
/// gradients currently accumulated in each Parameter::grad; callers zero
/// gradients themselves (ParameterStore::ZeroGrads) before each step.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update to every parameter in `store`.
  virtual void Step(ParameterStore* store) = 0;

  /// The current learning rate.
  virtual float learning_rate() const = 0;
  virtual void set_learning_rate(float lr) = 0;

  /// Serializes the full update state (step counters, per-parameter moment
  /// buffers) in `store`'s parameter order, so a restored optimizer resumes
  /// bit-identically — Parameter::Save alone drops this state. `store` must
  /// be the same model the optimizer has been stepping.
  virtual void Save(const ParameterStore& store,
                    util::BinaryWriter* writer) const = 0;
  virtual util::Status Load(const ParameterStore& store,
                            util::BinaryReader* reader) = 0;
};

/// Plain SGD with optional momentum and decoupled weight decay.
class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(float lr, float momentum = 0.0f,
                        float weight_decay = 0.0f)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void Step(ParameterStore* store) override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }
  void Save(const ParameterStore& store,
            util::BinaryWriter* writer) const override;
  util::Status Load(const ParameterStore& store,
                    util::BinaryReader* reader) override;

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::unordered_map<const Parameter*, std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba). The paper optimizes both encoders with Adam at
/// lr = 2e-5 for BERT-scale nets; our feature models use a larger default.
class AdamOptimizer : public Optimizer {
 public:
  explicit AdamOptimizer(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                         float eps = 1e-8f, float weight_decay = 0.0f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        weight_decay_(weight_decay) {}

  void Step(ParameterStore* store) override;
  float learning_rate() const override { return lr_; }
  void set_learning_rate(float lr) override { lr_ = lr; }
  void Save(const ParameterStore& store,
            util::BinaryWriter* writer) const override;
  util::Status Load(const ParameterStore& store,
                    util::BinaryReader* reader) override;

  std::int64_t step_count() const { return t_; }

 private:
  struct Moments {
    std::vector<float> m;
    std::vector<float> v;
  };

  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::unordered_map<const Parameter*, Moments> moments_;
};

}  // namespace metablink::tensor

#endif  // METABLINK_TENSOR_OPTIMIZER_H_
