#include "tensor/grad_workspace.h"

#include "tensor/graph.h"

namespace metablink::tensor {

void GradWorkspace::EnsureSize(std::size_t n) {
  if (grads_.size() < n) {
    grads_.resize(n);
    dirty_.resize(n, 0);
  }
}

const Tensor& GradWorkspace::grad(const Graph& g, Var v) {
  EnsureSize(g.num_nodes());
  Tensor& t = grads_[static_cast<std::size_t>(v.id)];
  const Tensor& val = g.value(v);
  if (t.rows() != val.rows() || t.cols() != val.cols()) {
    t = Tensor(val.rows(), val.cols());
  }
  return t;
}

Tensor& GradWorkspace::GradForWrite(const Graph& g, Var v) {
  EnsureSize(g.num_nodes());
  const std::size_t id = static_cast<std::size_t>(v.id);
  Tensor& t = grads_[id];
  const Tensor& val = g.value(v);
  if (t.rows() != val.rows() || t.cols() != val.cols()) {
    t = Tensor(val.rows(), val.cols());
  }
  if (dirty_[id] == 0) {
    dirty_[id] = 1;
    dirty_list_.push_back(v.id);
  }
  return t;
}

bool GradWorkspace::dirty(Var v) const {
  const std::size_t id = static_cast<std::size_t>(v.id);
  return id < dirty_.size() && dirty_[id] != 0;
}

Tensor& GradWorkspace::ParamGrad(Parameter* p) {
  return scratch_ != nullptr ? scratch_->GradFor(p) : p->grad;
}

void GradWorkspace::TouchParamRow(Parameter* p, std::uint32_t row) {
  if (scratch_ != nullptr) {
    scratch_->TouchRow(p, row);
  } else {
    p->TouchRow(row);
  }
}

void GradWorkspace::Reset() {
  for (std::int32_t id : dirty_list_) {
    grads_[static_cast<std::size_t>(id)].SetZero();
    dirty_[static_cast<std::size_t>(id)] = 0;
  }
  dirty_list_.clear();
  if (scratch_ != nullptr) scratch_->Reset();
}

const Tensor& JvpWorkspace::tangent(const Graph& g, Var v) {
  return TangentForWrite(g, v);
}

Tensor& JvpWorkspace::TangentForWrite(const Graph& g, Var v) {
  if (tangents_.size() < g.num_nodes()) tangents_.resize(g.num_nodes());
  Tensor& t = tangents_[static_cast<std::size_t>(v.id)];
  const Tensor& val = g.value(v);
  if (t.rows() != val.rows() || t.cols() != val.cols()) {
    t = Tensor(val.rows(), val.cols());
  }
  return t;
}

}  // namespace metablink::tensor
