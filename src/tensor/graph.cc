#include "tensor/graph.h"

#include <cmath>

#include "util/logging.h"

namespace metablink::tensor {

Var Graph::AddNode(Tensor value, std::function<void(Graph*)> backward) {
  Node n;
  n.value = std::move(value);
  n.grad = Tensor(n.value.rows(), n.value.cols());
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Var{static_cast<std::int32_t>(nodes_.size() - 1)};
}

const Tensor& Graph::value(Var v) const { return node(v).value; }
const Tensor& Graph::grad(Var v) const { return node(v).grad; }

Var Graph::Input(Tensor value) { return AddNode(std::move(value), {}); }

Var Graph::Param(Parameter* p) {
  Var v = AddNode(p->value, {});
  Var self = v;
  node(v).backward = [self, p](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Axpy(1.0f, gr.data().data(), p->grad.data().data(), gr.size());
  };
  return v;
}

Var Graph::EmbeddingBagMean(Parameter* table,
                            std::vector<std::vector<std::uint32_t>> bags) {
  const std::size_t n = bags.size();
  const std::size_t d = table->value.cols();
  Tensor out(n, d);
  for (std::size_t b = 0; b < n; ++b) {
    if (bags[b].empty()) continue;
    const float inv = 1.0f / static_cast<float>(bags[b].size());
    float* dst = out.row_data(b);
    for (std::uint32_t id : bags[b]) {
      METABLINK_CHECK(id < table->value.rows()) << "embedding id out of range";
      Axpy(inv, table->value.row_data(id), dst, d);
    }
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  auto shared_bags =
      std::make_shared<std::vector<std::vector<std::uint32_t>>>(
          std::move(bags));
  node(v).backward = [self, table, shared_bags](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const std::size_t d = table->value.cols();
    for (std::size_t b = 0; b < shared_bags->size(); ++b) {
      const auto& bag = (*shared_bags)[b];
      if (bag.empty()) continue;
      const float* src = gr.row_data(b);
      // Skip rows with no incoming gradient (common during the meta
      // trainer's one-hot per-example backward passes).
      bool any = false;
      for (std::size_t c = 0; c < d; ++c) {
        if (src[c] != 0.0f) {
          any = true;
          break;
        }
      }
      if (!any) continue;
      const float inv = 1.0f / static_cast<float>(bag.size());
      for (std::uint32_t id : bag) {
        table->TouchRow(id);
        Axpy(inv, src, table->grad.row_data(id), d);
      }
    }
  };
  return v;
}

Var Graph::MatMul(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.cols() == tb.rows()) << "MatMul shape mismatch";
  const std::size_t n = ta.rows(), k = ta.cols(), m = tb.cols();
  Tensor out(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const float* arow = ta.row_data(i);
    float* orow = out.row_data(i);
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      Axpy(av, tb.row_data(p), orow, m);
    }
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, a, b](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    Tensor& ga = g->node(a).grad;
    Tensor& gb = g->node(b).grad;
    const std::size_t n = ta.rows(), k = ta.cols(), m = tb.cols();
    // dA = dOut * B^T
    for (std::size_t i = 0; i < n; ++i) {
      const float* grow = gr.row_data(i);
      float* garow = ga.row_data(i);
      for (std::size_t p = 0; p < k; ++p) {
        garow[p] += Dot(grow, tb.row_data(p), m);
      }
    }
    // dB = A^T * dOut
    for (std::size_t i = 0; i < n; ++i) {
      const float* arow = ta.row_data(i);
      const float* grow = gr.row_data(i);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        Axpy(av, grow, gb.row_data(p), m);
      }
    }
  };
  return v;
}

Var Graph::MatMulTransposeB(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.cols() == tb.cols()) << "MatMulTransposeB shape mismatch";
  const std::size_t n = ta.rows(), d = ta.cols(), m = tb.rows();
  Tensor out(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const float* arow = ta.row_data(i);
    float* orow = out.row_data(i);
    for (std::size_t j = 0; j < m; ++j) {
      orow[j] = Dot(arow, tb.row_data(j), d);
    }
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, a, b](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    Tensor& ga = g->node(a).grad;
    Tensor& gb = g->node(b).grad;
    const std::size_t n = ta.rows(), d = ta.cols(), m = tb.rows();
    for (std::size_t i = 0; i < n; ++i) {
      const float* grow = gr.row_data(i);
      float* garow = ga.row_data(i);
      for (std::size_t j = 0; j < m; ++j) {
        const float gv = grow[j];
        if (gv == 0.0f) continue;
        Axpy(gv, tb.row_data(j), garow, d);
        Axpy(gv, ta.row_data(i), gb.row_data(j), d);
      }
    }
  };
  return v;
}

Var Graph::AddBiasRow(Var x, Var bias) {
  const Tensor& tx = node(x).value;
  const Tensor& tbias = node(bias).value;
  METABLINK_CHECK(tbias.rows() == 1 && tbias.cols() == tx.cols())
      << "AddBiasRow shape mismatch";
  Tensor out = tx;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    Axpy(1.0f, tbias.row_data(0), out.row_data(i), out.cols());
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, x, bias](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Tensor& gx = g->node(x).grad;
    Tensor& gbias = g->node(bias).grad;
    Axpy(1.0f, gr.data().data(), gx.data().data(), gr.size());
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      Axpy(1.0f, gr.row_data(i), gbias.row_data(0), gr.cols());
    }
  };
  return v;
}

Var Graph::Add(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows() && ta.cols() == tb.cols())
      << "Add shape mismatch";
  Tensor out = ta;
  Axpy(1.0f, tb.data().data(), out.data().data(), out.size());
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, a, b](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Axpy(1.0f, gr.data().data(), g->node(a).grad.data().data(), gr.size());
    Axpy(1.0f, gr.data().data(), g->node(b).grad.data().data(), gr.size());
  };
  return v;
}

Var Graph::Sub(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows() && ta.cols() == tb.cols())
      << "Sub shape mismatch";
  Tensor out = ta;
  Axpy(-1.0f, tb.data().data(), out.data().data(), out.size());
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, a, b](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Axpy(1.0f, gr.data().data(), g->node(a).grad.data().data(), gr.size());
    Axpy(-1.0f, gr.data().data(), g->node(b).grad.data().data(), gr.size());
  };
  return v;
}

Var Graph::Mul(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows() && ta.cols() == tb.cols())
      << "Mul shape mismatch";
  Tensor out = ta;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] *= tb.data()[i];
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, a, b](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    Tensor& ga = g->node(a).grad;
    Tensor& gb = g->node(b).grad;
    for (std::size_t i = 0; i < gr.size(); ++i) {
      ga.data()[i] += gr.data()[i] * tb.data()[i];
      gb.data()[i] += gr.data()[i] * ta.data()[i];
    }
  };
  return v;
}

Var Graph::Scale(Var x, float s) {
  Tensor out = node(x).value;
  for (float& v : out.data()) v *= s;
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, x, s](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Axpy(s, gr.data().data(), g->node(x).grad.data().data(), gr.size());
  };
  return v;
}

Var Graph::Tanh(Var x) {
  Tensor out = node(x).value;
  for (float& v : out.data()) v = std::tanh(v);
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, x](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const Tensor& val = g->node(self).value;
    Tensor& gx = g->node(x).grad;
    for (std::size_t i = 0; i < gr.size(); ++i) {
      gx.data()[i] += gr.data()[i] * (1.0f - val.data()[i] * val.data()[i]);
    }
  };
  return v;
}

Var Graph::Relu(Var x) {
  Tensor out = node(x).value;
  for (float& v : out.data()) v = v > 0.0f ? v : 0.0f;
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, x](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const Tensor& val = g->node(self).value;
    Tensor& gx = g->node(x).grad;
    for (std::size_t i = 0; i < gr.size(); ++i) {
      if (val.data()[i] > 0.0f) gx.data()[i] += gr.data()[i];
    }
  };
  return v;
}

Var Graph::Sigmoid(Var x) {
  Tensor out = node(x).value;
  for (float& v : out.data()) v = 1.0f / (1.0f + std::exp(-v));
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, x](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const Tensor& val = g->node(self).value;
    Tensor& gx = g->node(x).grad;
    for (std::size_t i = 0; i < gr.size(); ++i) {
      const float s = val.data()[i];
      gx.data()[i] += gr.data()[i] * s * (1.0f - s);
    }
  };
  return v;
}

Var Graph::RowL2Normalize(Var x, float eps) {
  const Tensor& tx = node(x).value;
  Tensor out = tx;
  std::vector<float> norms(tx.rows());
  for (std::size_t i = 0; i < tx.rows(); ++i) {
    float n2 = Dot(tx.row_data(i), tx.row_data(i), tx.cols());
    norms[i] = std::max(std::sqrt(n2), eps);
    const float inv = 1.0f / norms[i];
    for (std::size_t c = 0; c < tx.cols(); ++c) out.row_data(i)[c] *= inv;
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  auto shared_norms = std::make_shared<std::vector<float>>(std::move(norms));
  node(v).backward = [self, x, shared_norms](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const Tensor& y = g->node(self).value;  // normalized rows
    Tensor& gx = g->node(x).grad;
    const std::size_t d = gr.cols();
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      // dx = (dy - y * (y . dy)) / ||x||
      const float* dy = gr.row_data(i);
      const float* yr = y.row_data(i);
      const float ydy = Dot(yr, dy, d);
      const float inv = 1.0f / (*shared_norms)[i];
      float* gxr = gx.row_data(i);
      for (std::size_t c = 0; c < d; ++c) {
        gxr[c] += (dy[c] - yr[c] * ydy) * inv;
      }
    }
  };
  return v;
}

Var Graph::ConcatCols(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows()) << "ConcatCols row mismatch";
  Tensor out(ta.rows(), ta.cols() + tb.cols());
  for (std::size_t i = 0; i < ta.rows(); ++i) {
    float* dst = out.row_data(i);
    std::copy(ta.row_data(i), ta.row_data(i) + ta.cols(), dst);
    std::copy(tb.row_data(i), tb.row_data(i) + tb.cols(), dst + ta.cols());
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, a, b](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Tensor& ga = g->node(a).grad;
    Tensor& gb = g->node(b).grad;
    const std::size_t ca = ga.cols(), cb = gb.cols();
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      Axpy(1.0f, gr.row_data(i), ga.row_data(i), ca);
      Axpy(1.0f, gr.row_data(i) + ca, gb.row_data(i), cb);
    }
  };
  return v;
}

Var Graph::ConcatRows(const std::vector<Var>& parts) {
  METABLINK_CHECK(!parts.empty()) << "ConcatRows of nothing";
  const std::size_t cols = node(parts[0]).value.cols();
  std::size_t rows = 0;
  for (Var p : parts) {
    METABLINK_CHECK(node(p).value.cols() == cols)
        << "ConcatRows width mismatch";
    rows += node(p).value.rows();
  }
  Tensor out(rows, cols);
  std::size_t r = 0;
  for (Var p : parts) {
    const Tensor& t = node(p).value;
    std::copy(t.data().begin(), t.data().end(), out.row_data(r));
    r += t.rows();
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  auto shared_parts = std::make_shared<std::vector<Var>>(parts);
  node(v).backward = [self, shared_parts](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    std::size_t r = 0;
    for (Var p : *shared_parts) {
      Tensor& gp = g->node(p).grad;
      Axpy(1.0f, gr.row_data(r), gp.data().data(), gp.size());
      r += gp.rows();
    }
  };
  return v;
}

Var Graph::BroadcastRow(Var row, std::size_t n) {
  const Tensor& tr = node(row).value;
  METABLINK_CHECK(tr.rows() == 1) << "BroadcastRow expects a [1,c] input";
  const std::size_t c = tr.cols();
  Tensor out(n, c);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(tr.row_data(0), tr.row_data(0) + c, out.row_data(i));
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, row](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Tensor& grow = g->node(row).grad;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      Axpy(1.0f, gr.row_data(i), grow.row_data(0), gr.cols());
    }
  };
  return v;
}

Var Graph::Reshape(Var x, std::size_t rows, std::size_t cols) {
  const Tensor& tx = node(x).value;
  METABLINK_CHECK(rows * cols == tx.size()) << "Reshape size mismatch";
  Tensor out(rows, cols, tx.data());
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, x](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Axpy(1.0f, gr.data().data(), g->node(x).grad.data().data(), gr.size());
  };
  return v;
}

Var Graph::RowDot(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows() && ta.cols() == tb.cols())
      << "RowDot shape mismatch";
  Tensor out(ta.rows(), 1);
  for (std::size_t i = 0; i < ta.rows(); ++i) {
    out.at(i, 0) = Dot(ta.row_data(i), tb.row_data(i), ta.cols());
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, a, b](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    Tensor& ga = g->node(a).grad;
    Tensor& gb = g->node(b).grad;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float gv = gr.at(i, 0);
      Axpy(gv, tb.row_data(i), ga.row_data(i), ta.cols());
      Axpy(gv, ta.row_data(i), gb.row_data(i), ta.cols());
    }
  };
  return v;
}

Var Graph::SoftmaxCrossEntropy(Var logits, std::vector<std::size_t> targets) {
  const Tensor& tl = node(logits).value;
  METABLINK_CHECK(targets.size() == tl.rows())
      << "SoftmaxCrossEntropy target count mismatch";
  const std::size_t n = tl.rows(), m = tl.cols();
  Tensor out(n, 1);
  // Cache the softmax for the backward pass.
  auto probs = std::make_shared<Tensor>(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    METABLINK_CHECK(targets[i] < m) << "target out of range";
    const float* row = tl.row_data(i);
    float mx = row[0];
    for (std::size_t c = 1; c < m; ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < m; ++c) {
      sum += std::exp(static_cast<double>(row[c] - mx));
    }
    const double logsum = std::log(sum) + mx;
    out.at(i, 0) = static_cast<float>(logsum - row[targets[i]]);
    for (std::size_t c = 0; c < m; ++c) {
      probs->at(i, c) =
          static_cast<float>(std::exp(static_cast<double>(row[c]) - logsum));
    }
  }
  Var v = AddNode(std::move(out), {});
  Var self = v;
  auto shared_targets =
      std::make_shared<std::vector<std::size_t>>(std::move(targets));
  node(v).backward = [self, logits, probs, shared_targets](Graph* g) {
    const Tensor& gr = g->node(self).grad;
    Tensor& gl = g->node(logits).grad;
    const std::size_t m = gl.cols();
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float gv = gr.at(i, 0);
      if (gv == 0.0f) continue;
      float* dst = gl.row_data(i);
      const float* p = probs->row_data(i);
      for (std::size_t c = 0; c < m; ++c) dst[c] += gv * p[c];
      dst[(*shared_targets)[i]] -= gv;
    }
  };
  return v;
}

Var Graph::Mean(Var x) {
  const Tensor& tx = node(x).value;
  METABLINK_CHECK(tx.size() > 0) << "Mean of empty tensor";
  double acc = 0.0;
  for (float v : tx.data()) acc += v;
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(acc / static_cast<double>(tx.size()));
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, x](Graph* g) {
    const float gv = g->node(self).grad.at(0, 0);
    Tensor& gx = g->node(x).grad;
    const float inv = gv / static_cast<float>(gx.size());
    for (float& d : gx.data()) d += inv;
  };
  return v;
}

Var Graph::Sum(Var x) {
  const Tensor& tx = node(x).value;
  double acc = 0.0;
  for (float v : tx.data()) acc += v;
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(acc);
  Var v = AddNode(std::move(out), {});
  Var self = v;
  node(v).backward = [self, x](Graph* g) {
    const float gv = g->node(self).grad.at(0, 0);
    Tensor& gx = g->node(x).grad;
    for (float& d : gx.data()) d += gv;
  };
  return v;
}

Var Graph::WeightedSum(Var column, std::vector<float> weights) {
  const Tensor& tc = node(column).value;
  METABLINK_CHECK(tc.cols() == 1 && tc.rows() == weights.size())
      << "WeightedSum shape mismatch";
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += static_cast<double>(weights[i]) * tc.at(i, 0);
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(acc);
  Var v = AddNode(std::move(out), {});
  Var self = v;
  auto shared_w = std::make_shared<std::vector<float>>(std::move(weights));
  node(v).backward = [self, column, shared_w](Graph* g) {
    const float gv = g->node(self).grad.at(0, 0);
    Tensor& gc = g->node(column).grad;
    for (std::size_t i = 0; i < shared_w->size(); ++i) {
      gc.at(i, 0) += gv * (*shared_w)[i];
    }
  };
  return v;
}

void Graph::Backward(Var v) {
  std::vector<float> seed(node(v).value.size(), 1.0f);
  BackwardWithSeed(v, seed);
}

void Graph::BackwardWithSeed(Var v, const std::vector<float>& seed) {
  Node& root = node(v);
  METABLINK_CHECK(seed.size() == root.value.size()) << "seed size mismatch";
  for (std::size_t i = 0; i < seed.size(); ++i) {
    root.grad.data()[i] += seed[i];
  }
  for (std::int32_t id = v.id; id >= 0; --id) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.backward) n.backward(this);
  }
}

void Graph::ResetGrads() {
  for (Node& n : nodes_) n.grad.SetZero();
}

}  // namespace metablink::tensor
