#include "tensor/graph.h"

#include <cmath>
#include <memory>
#include <mutex>

#include "tensor/kernels.h"
#include "util/logging.h"
#include "util/parallel_trace.h"
#include "util/thread_pool.h"

namespace metablink::tensor {

namespace {

bool AllZero(const float* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != 0.0f) return false;
  }
  return true;
}

bool AllZero(const Tensor& t) { return AllZero(t.data().data(), t.size()); }

/// Inverted index over a set of embedding bags: for each distinct table
/// row, the list of (bag, 1/bag_size) contributions, in bag-major order so
/// per-row accumulation matches the classic bag-major scatter bit for bit.
/// Built lazily on the first backward pass (forward-only graphs never pay).
struct BagIndex {
  std::once_flag once;
  std::vector<std::uint32_t> rows;   // distinct rows, first-touch order
  std::vector<std::size_t> offsets;  // CSR offsets into entries
  struct Entry {
    std::uint32_t bag;
    float inv;
  };
  std::vector<Entry> entries;
};

void BuildBagIndex(const std::vector<std::vector<std::uint32_t>>& bags,
                   std::size_t table_rows, BagIndex* index) {
  std::vector<std::int32_t> slot(table_rows, -1);
  std::vector<std::size_t> counts;
  for (const auto& bag : bags) {
    for (std::uint32_t id : bag) {
      if (slot[id] < 0) {
        slot[id] = static_cast<std::int32_t>(index->rows.size());
        index->rows.push_back(id);
        counts.push_back(0);
      }
      ++counts[static_cast<std::size_t>(slot[id])];
    }
  }
  index->offsets.assign(index->rows.size() + 1, 0);
  for (std::size_t r = 0; r < counts.size(); ++r) {
    index->offsets[r + 1] = index->offsets[r] + counts[r];
  }
  index->entries.resize(index->offsets.back());
  std::vector<std::size_t> cursor(index->offsets.begin(),
                                  index->offsets.end() - 1);
  for (std::size_t b = 0; b < bags.size(); ++b) {
    if (bags[b].empty()) continue;
    const float inv = 1.0f / static_cast<float>(bags[b].size());
    for (std::uint32_t id : bags[b]) {
      const std::size_t r = static_cast<std::size_t>(slot[id]);
      index->entries[cursor[r]++] = {static_cast<std::uint32_t>(b), inv};
    }
  }
}

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "Input";
    case OpKind::kParam:
      return "Param";
    case OpKind::kEmbeddingBagMean:
      return "EmbeddingBagMean";
    case OpKind::kMatMul:
      return "MatMul";
    case OpKind::kMatMulTransposeB:
      return "MatMulTransposeB";
    case OpKind::kAddBiasRow:
      return "AddBiasRow";
    case OpKind::kAdd:
      return "Add";
    case OpKind::kSub:
      return "Sub";
    case OpKind::kMul:
      return "Mul";
    case OpKind::kScale:
      return "Scale";
    case OpKind::kTanh:
      return "Tanh";
    case OpKind::kRelu:
      return "Relu";
    case OpKind::kSigmoid:
      return "Sigmoid";
    case OpKind::kRowL2Normalize:
      return "RowL2Normalize";
    case OpKind::kConcatCols:
      return "ConcatCols";
    case OpKind::kConcatRows:
      return "ConcatRows";
    case OpKind::kBroadcastRow:
      return "BroadcastRow";
    case OpKind::kReshape:
      return "Reshape";
    case OpKind::kRowDot:
      return "RowDot";
    case OpKind::kSoftmaxCrossEntropy:
      return "SoftmaxCrossEntropy";
    case OpKind::kMean:
      return "Mean";
    case OpKind::kWeightedSum:
      return "WeightedSum";
    case OpKind::kSum:
      return "Sum";
  }
  return "?";
}

Var Graph::AddNode(Tensor value, OpKind kind,
                   std::vector<std::int32_t> inputs, const Parameter* param) {
  Node n;
  n.value = std::move(value);
  n.kind = kind;
  n.inputs = std::move(inputs);
  n.param = param;
  nodes_.push_back(std::move(n));
  return Var{static_cast<std::int32_t>(nodes_.size() - 1)};
}

std::vector<TapeOp> Graph::DebugTape() const {
  std::vector<TapeOp> tape;
  tape.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    TapeOp op;
    op.kind = n.kind;
    op.id = static_cast<std::int32_t>(i);
    op.rows = n.value.rows();
    op.cols = n.value.cols();
    op.inputs = n.inputs;
    op.param = n.param;
    op.value = &n.value;
    tape.push_back(std::move(op));
  }
  return tape;
}

const Tensor& Graph::value(Var v) const { return node(v).value; }

const Tensor& Graph::grad(Var v) const { return default_ws_.grad(*this, v); }

Var Graph::Input(Tensor value) {
  return AddNode(std::move(value), OpKind::kInput);
}

Var Graph::Param(Parameter* p) {
  Var v = AddNode(p->value, OpKind::kParam, {}, p);
  Var self = v;
  node(v).backward = [self, p](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    Tensor& dst = ws->ParamGrad(p);
    Axpy(1.0f, gr.data().data(), dst.data().data(), gr.size());
  };
  node(v).jvp = [self, p](const Graph* g, JvpWorkspace* ws) {
    Tensor& t = ws->TangentForWrite(*g, self);
    std::copy(p->grad.data().begin(), p->grad.data().end(),
              t.data().begin());
  };
  return v;
}

Var Graph::EmbeddingBagMean(Parameter* table,
                            std::vector<std::vector<std::uint32_t>> bags) {
  const std::size_t n = bags.size();
  const std::size_t d = table->value.cols();
  for (const auto& bag : bags) {
    for (std::uint32_t id : bag) {
      METABLINK_CHECK(id < table->value.rows()) << "embedding id out of range";
    }
  }
  auto shared_bags =
      std::make_shared<std::vector<std::vector<std::uint32_t>>>(
          std::move(bags));
  Tensor out(n, d);
  util::ParallelTraceObserver* trace = util::GetParallelTraceObserver();
  auto gather = [&out, table, &shared_bags, d, trace](std::size_t b) {
    // The task owns row b whether or not the bag is empty.
    if (trace != nullptr) trace->OnTaskWrite(out.data().data(), b, b + 1);
    const auto& bag = (*shared_bags)[b];
    if (bag.empty()) return;
    const float inv = 1.0f / static_cast<float>(bag.size());
    float* dst = out.row_data(b);
    for (std::uint32_t id : bag) {
      Axpy(inv, table->value.row_data(id), dst, d);
    }
  };
  if (trace != nullptr) {
    trace->OnRegionBegin(out.data().data(), n, /*expect_cover=*/true,
                         "EmbeddingBagMean.forward");
  }
  if (pool_ != nullptr && n >= 2) {
    pool_->ParallelFor(n, gather);
  } else {
    for (std::size_t b = 0; b < n; ++b) gather(b);
  }
  if (trace != nullptr) trace->OnRegionEnd(out.data().data());
  Var v = AddNode(std::move(out), OpKind::kEmbeddingBagMean, {}, table);
  Var self = v;
  auto index = std::make_shared<BagIndex>();
  node(v).backward = [self, table, shared_bags, index](const Graph* g,
                                                       GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const std::size_t d = table->value.cols();
    const std::size_t nbags = shared_bags->size();
    // Bags with no incoming gradient contribute nothing (common during the
    // meta trainer's one-hot per-example backward passes).
    std::vector<std::uint8_t> active(nbags, 0);
    bool any = false;
    for (std::size_t b = 0; b < nbags; ++b) {
      if ((*shared_bags)[b].empty()) continue;
      if (AllZero(gr.row_data(b), d)) continue;
      active[b] = 1;
      any = true;
    }
    if (!any) return;
    std::call_once(index->once, [&shared_bags, table, &index] {
      BuildBagIndex(*shared_bags, table->value.rows(), index.get());
    });
    const std::size_t nrows = index->rows.size();
    std::vector<std::uint8_t> live(nrows, 0);
    for (std::size_t r = 0; r < nrows; ++r) {
      for (std::size_t e = index->offsets[r]; e < index->offsets[r + 1];
           ++e) {
        if (active[index->entries[e].bag]) {
          live[r] = 1;
          break;
        }
      }
    }
    // Touch rows and acquire the destination serially (neither is
    // thread-safe); the scatter itself owns one destination row per task.
    Tensor& gt = ws->ParamGrad(table);
    for (std::size_t r = 0; r < nrows; ++r) {
      if (live[r]) ws->TouchParamRow(table, index->rows[r]);
    }
    util::ParallelTraceObserver* trace = util::GetParallelTraceObserver();
    auto scatter = [&](std::size_t r) {
      if (!live[r]) return;
      const std::uint32_t row = index->rows[r];
      if (trace != nullptr) {
        trace->OnTaskWrite(gt.data().data(), row, row + 1);
      }
      float* dst = gt.row_data(row);
      for (std::size_t e = index->offsets[r]; e < index->offsets[r + 1];
           ++e) {
        const BagIndex::Entry& en = index->entries[e];
        if (!active[en.bag]) continue;
        Axpy(en.inv, gr.row_data(en.bag), dst, d);
      }
    };
    if (trace != nullptr) {
      // Scatter: tasks own one distinct table row each, but dead rows are
      // skipped, so only disjointness (not coverage) is expected.
      trace->OnRegionBegin(gt.data().data(), table->value.rows(),
                           /*expect_cover=*/false, "EmbeddingBagMean.scatter");
    }
    util::ThreadPool* pool = g->pool();
    if (pool != nullptr && nrows >= 64) {
      pool->ParallelFor(nrows, scatter);
    } else {
      for (std::size_t r = 0; r < nrows; ++r) scatter(r);
    }
    if (trace != nullptr) trace->OnRegionEnd(gt.data().data());
  };
  node(v).jvp = [self, table, shared_bags](const Graph* g,
                                           JvpWorkspace* ws) {
    // Direction tangent of the table is table->grad; same mean-pool as the
    // forward pass, reading grad rows instead of value rows.
    Tensor& t = ws->TangentForWrite(*g, self);
    const std::size_t d = table->value.cols();
    util::ParallelTraceObserver* trace = util::GetParallelTraceObserver();
    auto gather = [&t, table, &shared_bags, d, trace](std::size_t b) {
      if (trace != nullptr) trace->OnTaskWrite(t.data().data(), b, b + 1);
      const auto& bag = (*shared_bags)[b];
      if (bag.empty()) return;
      const float inv = 1.0f / static_cast<float>(bag.size());
      float* dst = t.row_data(b);
      for (std::uint32_t id : bag) {
        Axpy(inv, table->grad.row_data(id), dst, d);
      }
    };
    if (trace != nullptr) {
      trace->OnRegionBegin(t.data().data(), shared_bags->size(),
                           /*expect_cover=*/true, "EmbeddingBagMean.jvp");
    }
    util::ThreadPool* pool = g->pool();
    if (pool != nullptr && shared_bags->size() >= 2) {
      pool->ParallelFor(shared_bags->size(), gather);
    } else {
      for (std::size_t b = 0; b < shared_bags->size(); ++b) gather(b);
    }
    if (trace != nullptr) trace->OnRegionEnd(t.data().data());
  };
  return v;
}

Var Graph::MatMul(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.cols() == tb.rows()) << "MatMul shape mismatch";
  Tensor out(ta.rows(), tb.cols());
  Gemm(ta, tb, &out, pool_);
  Var v = AddNode(std::move(out), OpKind::kMatMul, {a.id, b.id});
  Var self = v;
  node(v).backward = [self, a, b](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    if (AllZero(gr)) return;
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    // dA = dOut * B^T ; dB = A^T * dOut
    GemmTransposeB(gr, tb, &ws->GradForWrite(*g, a), g->pool());
    GemmTransposeA(ta, gr, &ws->GradForWrite(*g, b), g->pool());
  };
  node(v).jvp = [self, a, b](const Graph* g, JvpWorkspace* ws) {
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    const Tensor& da = ws->tangent(*g, a);
    const Tensor& db = ws->tangent(*g, b);
    Tensor& t = ws->TangentForWrite(*g, self);
    Gemm(da, tb, &t, g->pool());
    Gemm(ta, db, &t, g->pool());
  };
  return v;
}

Var Graph::MatMulTransposeB(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.cols() == tb.cols()) << "MatMulTransposeB shape mismatch";
  Tensor out(ta.rows(), tb.rows());
  GemmTransposeB(ta, tb, &out, pool_);
  Var v = AddNode(std::move(out), OpKind::kMatMulTransposeB, {a.id, b.id});
  Var self = v;
  node(v).backward = [self, a, b](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    if (AllZero(gr)) return;
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    // dA = dOut * B ; dB = dOut^T * A
    Gemm(gr, tb, &ws->GradForWrite(*g, a), g->pool());
    GemmTransposeA(gr, ta, &ws->GradForWrite(*g, b), g->pool());
  };
  node(v).jvp = [self, a, b](const Graph* g, JvpWorkspace* ws) {
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    const Tensor& da = ws->tangent(*g, a);
    const Tensor& db = ws->tangent(*g, b);
    Tensor& t = ws->TangentForWrite(*g, self);
    GemmTransposeB(da, tb, &t, g->pool());
    GemmTransposeB(ta, db, &t, g->pool());
  };
  return v;
}

Var Graph::AddBiasRow(Var x, Var bias) {
  const Tensor& tx = node(x).value;
  const Tensor& tbias = node(bias).value;
  METABLINK_CHECK(tbias.rows() == 1 && tbias.cols() == tx.cols())
      << "AddBiasRow shape mismatch";
  Tensor out = tx;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    Axpy(1.0f, tbias.row_data(0), out.row_data(i), out.cols());
  }
  Var v = AddNode(std::move(out), OpKind::kAddBiasRow, {x.id, bias.id});
  Var self = v;
  node(v).backward = [self, x, bias](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const std::size_t c = gr.cols();
    Tensor* gx = nullptr;
    Tensor* gbias = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float* row = gr.row_data(i);
      if (AllZero(row, c)) continue;
      if (gx == nullptr) {
        gx = &ws->GradForWrite(*g, x);
        gbias = &ws->GradForWrite(*g, bias);
      }
      Axpy(1.0f, row, gx->row_data(i), c);
      Axpy(1.0f, row, gbias->row_data(0), c);
    }
  };
  node(v).jvp = [self, x, bias](const Graph* g, JvpWorkspace* ws) {
    const Tensor& dx = ws->tangent(*g, x);
    const Tensor& dbias = ws->tangent(*g, bias);
    Tensor& t = ws->TangentForWrite(*g, self);
    for (std::size_t i = 0; i < t.rows(); ++i) {
      std::copy(dx.row_data(i), dx.row_data(i) + t.cols(), t.row_data(i));
      Axpy(1.0f, dbias.row_data(0), t.row_data(i), t.cols());
    }
  };
  return v;
}

Var Graph::Add(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows() && ta.cols() == tb.cols())
      << "Add shape mismatch";
  Tensor out = ta;
  Axpy(1.0f, tb.data().data(), out.data().data(), out.size());
  Var v = AddNode(std::move(out), OpKind::kAdd, {a.id, b.id});
  Var self = v;
  node(v).backward = [self, a, b](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    if (AllZero(gr)) return;
    Tensor& ga = ws->GradForWrite(*g, a);
    Tensor& gb = ws->GradForWrite(*g, b);
    Axpy(1.0f, gr.data().data(), ga.data().data(), gr.size());
    Axpy(1.0f, gr.data().data(), gb.data().data(), gr.size());
  };
  node(v).jvp = [self, a, b](const Graph* g, JvpWorkspace* ws) {
    const Tensor& da = ws->tangent(*g, a);
    const Tensor& db = ws->tangent(*g, b);
    Tensor& t = ws->TangentForWrite(*g, self);
    std::copy(da.data().begin(), da.data().end(), t.data().begin());
    Axpy(1.0f, db.data().data(), t.data().data(), t.size());
  };
  return v;
}

Var Graph::Sub(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows() && ta.cols() == tb.cols())
      << "Sub shape mismatch";
  Tensor out = ta;
  Axpy(-1.0f, tb.data().data(), out.data().data(), out.size());
  Var v = AddNode(std::move(out), OpKind::kSub, {a.id, b.id});
  Var self = v;
  node(v).backward = [self, a, b](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    if (AllZero(gr)) return;
    Tensor& ga = ws->GradForWrite(*g, a);
    Tensor& gb = ws->GradForWrite(*g, b);
    Axpy(1.0f, gr.data().data(), ga.data().data(), gr.size());
    Axpy(-1.0f, gr.data().data(), gb.data().data(), gr.size());
  };
  node(v).jvp = [self, a, b](const Graph* g, JvpWorkspace* ws) {
    const Tensor& da = ws->tangent(*g, a);
    const Tensor& db = ws->tangent(*g, b);
    Tensor& t = ws->TangentForWrite(*g, self);
    std::copy(da.data().begin(), da.data().end(), t.data().begin());
    Axpy(-1.0f, db.data().data(), t.data().data(), t.size());
  };
  return v;
}

Var Graph::Mul(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows() && ta.cols() == tb.cols())
      << "Mul shape mismatch";
  Tensor out = ta;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] *= tb.data()[i];
  }
  Var v = AddNode(std::move(out), OpKind::kMul, {a.id, b.id});
  Var self = v;
  node(v).backward = [self, a, b](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    const std::size_t c = gr.cols();
    Tensor* ga = nullptr;
    Tensor* gb = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float* row = gr.row_data(i);
      if (AllZero(row, c)) continue;
      if (ga == nullptr) {
        ga = &ws->GradForWrite(*g, a);
        gb = &ws->GradForWrite(*g, b);
      }
      float* gar = ga->row_data(i);
      float* gbr = gb->row_data(i);
      const float* tar = ta.row_data(i);
      const float* tbr = tb.row_data(i);
      for (std::size_t j = 0; j < c; ++j) {
        gar[j] += row[j] * tbr[j];
        gbr[j] += row[j] * tar[j];
      }
    }
  };
  node(v).jvp = [self, a, b](const Graph* g, JvpWorkspace* ws) {
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    const Tensor& da = ws->tangent(*g, a);
    const Tensor& db = ws->tangent(*g, b);
    Tensor& t = ws->TangentForWrite(*g, self);
    for (std::size_t i = 0; i < t.size(); ++i) {
      t.data()[i] = da.data()[i] * tb.data()[i] + ta.data()[i] * db.data()[i];
    }
  };
  return v;
}

Var Graph::Scale(Var x, float s) {
  Tensor out = node(x).value;
  for (float& v : out.data()) v *= s;
  Var v = AddNode(std::move(out), OpKind::kScale, {x.id});
  Var self = v;
  node(v).backward = [self, x, s](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    if (AllZero(gr)) return;
    Tensor& gx = ws->GradForWrite(*g, x);
    Axpy(s, gr.data().data(), gx.data().data(), gr.size());
  };
  node(v).jvp = [self, x, s](const Graph* g, JvpWorkspace* ws) {
    const Tensor& dx = ws->tangent(*g, x);
    Tensor& t = ws->TangentForWrite(*g, self);
    for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = s * dx.data()[i];
  };
  return v;
}

Var Graph::Tanh(Var x) {
  Tensor out = node(x).value;
  for (float& v : out.data()) v = std::tanh(v);
  Var v = AddNode(std::move(out), OpKind::kTanh, {x.id});
  Var self = v;
  node(v).backward = [self, x](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const Tensor& val = g->node(self).value;
    const std::size_t c = gr.cols();
    Tensor* gx = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float* row = gr.row_data(i);
      if (AllZero(row, c)) continue;
      if (gx == nullptr) gx = &ws->GradForWrite(*g, x);
      float* gxr = gx->row_data(i);
      const float* vr = val.row_data(i);
      for (std::size_t j = 0; j < c; ++j) {
        gxr[j] += row[j] * (1.0f - vr[j] * vr[j]);
      }
    }
  };
  node(v).jvp = [self, x](const Graph* g, JvpWorkspace* ws) {
    const Tensor& val = g->node(self).value;
    const Tensor& dx = ws->tangent(*g, x);
    Tensor& t = ws->TangentForWrite(*g, self);
    for (std::size_t i = 0; i < t.size(); ++i) {
      t.data()[i] = dx.data()[i] * (1.0f - val.data()[i] * val.data()[i]);
    }
  };
  return v;
}

Var Graph::Relu(Var x) {
  Tensor out = node(x).value;
  for (float& v : out.data()) v = v > 0.0f ? v : 0.0f;
  Var v = AddNode(std::move(out), OpKind::kRelu, {x.id});
  Var self = v;
  node(v).backward = [self, x](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const Tensor& val = g->node(self).value;
    const std::size_t c = gr.cols();
    Tensor* gx = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float* row = gr.row_data(i);
      if (AllZero(row, c)) continue;
      if (gx == nullptr) gx = &ws->GradForWrite(*g, x);
      float* gxr = gx->row_data(i);
      const float* vr = val.row_data(i);
      for (std::size_t j = 0; j < c; ++j) {
        if (vr[j] > 0.0f) gxr[j] += row[j];
      }
    }
  };
  node(v).jvp = [self, x](const Graph* g, JvpWorkspace* ws) {
    const Tensor& val = g->node(self).value;
    const Tensor& dx = ws->tangent(*g, x);
    Tensor& t = ws->TangentForWrite(*g, self);
    for (std::size_t i = 0; i < t.size(); ++i) {
      t.data()[i] = val.data()[i] > 0.0f ? dx.data()[i] : 0.0f;
    }
  };
  return v;
}

Var Graph::Sigmoid(Var x) {
  Tensor out = node(x).value;
  for (float& v : out.data()) v = 1.0f / (1.0f + std::exp(-v));
  Var v = AddNode(std::move(out), OpKind::kSigmoid, {x.id});
  Var self = v;
  node(v).backward = [self, x](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const Tensor& val = g->node(self).value;
    const std::size_t c = gr.cols();
    Tensor* gx = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float* row = gr.row_data(i);
      if (AllZero(row, c)) continue;
      if (gx == nullptr) gx = &ws->GradForWrite(*g, x);
      float* gxr = gx->row_data(i);
      const float* vr = val.row_data(i);
      for (std::size_t j = 0; j < c; ++j) {
        gxr[j] += row[j] * vr[j] * (1.0f - vr[j]);
      }
    }
  };
  node(v).jvp = [self, x](const Graph* g, JvpWorkspace* ws) {
    const Tensor& val = g->node(self).value;
    const Tensor& dx = ws->tangent(*g, x);
    Tensor& t = ws->TangentForWrite(*g, self);
    for (std::size_t i = 0; i < t.size(); ++i) {
      const float s = val.data()[i];
      t.data()[i] = dx.data()[i] * s * (1.0f - s);
    }
  };
  return v;
}

Var Graph::RowL2Normalize(Var x, float eps) {
  const Tensor& tx = node(x).value;
  Tensor out = tx;
  auto shared_norms = std::make_shared<std::vector<float>>(tx.rows());
  util::ParallelTraceObserver* trace = util::GetParallelTraceObserver();
  auto normalize = [&out, &tx, &shared_norms, eps, trace](std::size_t i) {
    if (trace != nullptr) trace->OnTaskWrite(out.data().data(), i, i + 1);
    float n2 = Dot(tx.row_data(i), tx.row_data(i), tx.cols());
    (*shared_norms)[i] = std::max(std::sqrt(n2), eps);
    const float inv = 1.0f / (*shared_norms)[i];
    for (std::size_t c = 0; c < tx.cols(); ++c) out.row_data(i)[c] *= inv;
  };
  if (trace != nullptr) {
    trace->OnRegionBegin(out.data().data(), tx.rows(), /*expect_cover=*/true,
                         "RowL2Normalize.forward");
  }
  if (pool_ != nullptr && tx.rows() >= 2) {
    pool_->ParallelFor(tx.rows(), normalize);
  } else {
    for (std::size_t i = 0; i < tx.rows(); ++i) normalize(i);
  }
  if (trace != nullptr) trace->OnRegionEnd(out.data().data());
  Var v = AddNode(std::move(out), OpKind::kRowL2Normalize, {x.id});
  Var self = v;
  node(v).backward = [self, x, shared_norms](const Graph* g,
                                             GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const Tensor& y = g->node(self).value;  // normalized rows
    const std::size_t d = gr.cols();
    Tensor* gx = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      // dx = (dy - y * (y . dy)) / ||x||
      const float* dy = gr.row_data(i);
      if (AllZero(dy, d)) continue;
      if (gx == nullptr) gx = &ws->GradForWrite(*g, x);
      const float* yr = y.row_data(i);
      const float ydy = Dot(yr, dy, d);
      const float inv = 1.0f / (*shared_norms)[i];
      float* gxr = gx->row_data(i);
      for (std::size_t c = 0; c < d; ++c) {
        gxr[c] += (dy[c] - yr[c] * ydy) * inv;
      }
    }
  };
  node(v).jvp = [self, x, shared_norms](const Graph* g, JvpWorkspace* ws) {
    const Tensor& y = g->node(self).value;
    const Tensor& dx = ws->tangent(*g, x);
    Tensor& t = ws->TangentForWrite(*g, self);
    const std::size_t d = t.cols();
    for (std::size_t i = 0; i < t.rows(); ++i) {
      const float* dxr = dx.row_data(i);
      const float* yr = y.row_data(i);
      const float ydx = Dot(yr, dxr, d);
      const float inv = 1.0f / (*shared_norms)[i];
      float* tr = t.row_data(i);
      for (std::size_t c = 0; c < d; ++c) {
        tr[c] = (dxr[c] - yr[c] * ydx) * inv;
      }
    }
  };
  return v;
}

Var Graph::ConcatCols(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows()) << "ConcatCols row mismatch";
  Tensor out(ta.rows(), ta.cols() + tb.cols());
  for (std::size_t i = 0; i < ta.rows(); ++i) {
    float* dst = out.row_data(i);
    std::copy(ta.row_data(i), ta.row_data(i) + ta.cols(), dst);
    std::copy(tb.row_data(i), tb.row_data(i) + tb.cols(), dst + ta.cols());
  }
  Var v = AddNode(std::move(out), OpKind::kConcatCols, {a.id, b.id});
  Var self = v;
  node(v).backward = [self, a, b](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const std::size_t ca = g->node(a).value.cols();
    const std::size_t cb = g->node(b).value.cols();
    Tensor* ga = nullptr;
    Tensor* gb = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float* row = gr.row_data(i);
      if (AllZero(row, ca + cb)) continue;
      if (ga == nullptr) {
        ga = &ws->GradForWrite(*g, a);
        gb = &ws->GradForWrite(*g, b);
      }
      Axpy(1.0f, row, ga->row_data(i), ca);
      Axpy(1.0f, row + ca, gb->row_data(i), cb);
    }
  };
  node(v).jvp = [self, a, b](const Graph* g, JvpWorkspace* ws) {
    const Tensor& da = ws->tangent(*g, a);
    const Tensor& db = ws->tangent(*g, b);
    Tensor& t = ws->TangentForWrite(*g, self);
    const std::size_t ca = da.cols(), cb = db.cols();
    for (std::size_t i = 0; i < t.rows(); ++i) {
      float* dst = t.row_data(i);
      std::copy(da.row_data(i), da.row_data(i) + ca, dst);
      std::copy(db.row_data(i), db.row_data(i) + cb, dst + ca);
    }
  };
  return v;
}

Var Graph::ConcatRows(const std::vector<Var>& parts) {
  METABLINK_CHECK(!parts.empty()) << "ConcatRows of nothing";
  const std::size_t cols = node(parts[0]).value.cols();
  std::size_t rows = 0;
  for (Var p : parts) {
    METABLINK_CHECK(node(p).value.cols() == cols)
        << "ConcatRows width mismatch";
    rows += node(p).value.rows();
  }
  Tensor out(rows, cols);
  std::size_t r = 0;
  for (Var p : parts) {
    const Tensor& t = node(p).value;
    std::copy(t.data().begin(), t.data().end(), out.row_data(r));
    r += t.rows();
  }
  std::vector<std::int32_t> part_ids;
  part_ids.reserve(parts.size());
  for (Var p : parts) part_ids.push_back(p.id);
  Var v = AddNode(std::move(out), OpKind::kConcatRows, std::move(part_ids));
  Var self = v;
  auto shared_parts = std::make_shared<std::vector<Var>>(parts);
  node(v).backward = [self, shared_parts](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    std::size_t r = 0;
    for (Var p : *shared_parts) {
      const Tensor& pv = g->node(p).value;
      // Skipping parts whose gradient slice is all zero keeps the dirty
      // set confined to one example's sub-tape under one-hot seeds.
      if (!AllZero(gr.row_data(r), pv.size())) {
        Tensor& gp = ws->GradForWrite(*g, p);
        Axpy(1.0f, gr.row_data(r), gp.data().data(), gp.size());
      }
      r += pv.rows();
    }
  };
  node(v).jvp = [self, shared_parts](const Graph* g, JvpWorkspace* ws) {
    Tensor& t = ws->TangentForWrite(*g, self);
    std::size_t r = 0;
    for (Var p : *shared_parts) {
      const Tensor& dp = ws->tangent(*g, p);
      std::copy(dp.data().begin(), dp.data().end(), t.row_data(r));
      r += dp.rows();
    }
  };
  return v;
}

Var Graph::BroadcastRow(Var row, std::size_t n) {
  const Tensor& tr = node(row).value;
  METABLINK_CHECK(tr.rows() == 1) << "BroadcastRow expects a [1,c] input";
  const std::size_t c = tr.cols();
  Tensor out(n, c);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(tr.row_data(0), tr.row_data(0) + c, out.row_data(i));
  }
  Var v = AddNode(std::move(out), OpKind::kBroadcastRow, {row.id});
  Var self = v;
  node(v).backward = [self, row](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const std::size_t c = gr.cols();
    Tensor* grow = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float* src = gr.row_data(i);
      if (AllZero(src, c)) continue;
      if (grow == nullptr) grow = &ws->GradForWrite(*g, row);
      Axpy(1.0f, src, grow->row_data(0), c);
    }
  };
  node(v).jvp = [self, row](const Graph* g, JvpWorkspace* ws) {
    const Tensor& dr = ws->tangent(*g, row);
    Tensor& t = ws->TangentForWrite(*g, self);
    for (std::size_t i = 0; i < t.rows(); ++i) {
      std::copy(dr.row_data(0), dr.row_data(0) + t.cols(), t.row_data(i));
    }
  };
  return v;
}

Var Graph::Reshape(Var x, std::size_t rows, std::size_t cols) {
  const Tensor& tx = node(x).value;
  METABLINK_CHECK(rows * cols == tx.size()) << "Reshape size mismatch";
  Tensor out(rows, cols, tx.data());
  Var v = AddNode(std::move(out), OpKind::kReshape, {x.id});
  Var self = v;
  node(v).backward = [self, x](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    if (AllZero(gr)) return;
    Tensor& gx = ws->GradForWrite(*g, x);
    Axpy(1.0f, gr.data().data(), gx.data().data(), gr.size());
  };
  node(v).jvp = [self, x](const Graph* g, JvpWorkspace* ws) {
    const Tensor& dx = ws->tangent(*g, x);
    Tensor& t = ws->TangentForWrite(*g, self);
    std::copy(dx.data().begin(), dx.data().end(), t.data().begin());
  };
  return v;
}

Var Graph::RowDot(Var a, Var b) {
  const Tensor& ta = node(a).value;
  const Tensor& tb = node(b).value;
  METABLINK_CHECK(ta.rows() == tb.rows() && ta.cols() == tb.cols())
      << "RowDot shape mismatch";
  Tensor out(ta.rows(), 1);
  for (std::size_t i = 0; i < ta.rows(); ++i) {
    out.at(i, 0) = Dot(ta.row_data(i), tb.row_data(i), ta.cols());
  }
  Var v = AddNode(std::move(out), OpKind::kRowDot, {a.id, b.id});
  Var self = v;
  node(v).backward = [self, a, b](const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    Tensor* ga = nullptr;
    Tensor* gb = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float gv = gr.at(i, 0);
      if (gv == 0.0f) continue;
      if (ga == nullptr) {
        ga = &ws->GradForWrite(*g, a);
        gb = &ws->GradForWrite(*g, b);
      }
      Axpy(gv, tb.row_data(i), ga->row_data(i), ta.cols());
      Axpy(gv, ta.row_data(i), gb->row_data(i), ta.cols());
    }
  };
  node(v).jvp = [self, a, b](const Graph* g, JvpWorkspace* ws) {
    const Tensor& ta = g->node(a).value;
    const Tensor& tb = g->node(b).value;
    const Tensor& da = ws->tangent(*g, a);
    const Tensor& db = ws->tangent(*g, b);
    Tensor& t = ws->TangentForWrite(*g, self);
    for (std::size_t i = 0; i < t.rows(); ++i) {
      t.at(i, 0) = Dot(da.row_data(i), tb.row_data(i), ta.cols()) +
                   Dot(ta.row_data(i), db.row_data(i), ta.cols());
    }
  };
  return v;
}

Var Graph::SoftmaxCrossEntropy(Var logits, std::vector<std::size_t> targets) {
  const Tensor& tl = node(logits).value;
  METABLINK_CHECK(targets.size() == tl.rows())
      << "SoftmaxCrossEntropy target count mismatch";
  const std::size_t n = tl.rows(), m = tl.cols();
  Tensor out(n, 1);
  // Cache the softmax for the backward pass.
  auto probs = std::make_shared<Tensor>(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    METABLINK_CHECK(targets[i] < m) << "target out of range";
    const float* row = tl.row_data(i);
    float mx = row[0];
    for (std::size_t c = 1; c < m; ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < m; ++c) {
      sum += std::exp(static_cast<double>(row[c] - mx));
    }
    const double logsum = std::log(sum) + mx;
    out.at(i, 0) = static_cast<float>(logsum - row[targets[i]]);
    for (std::size_t c = 0; c < m; ++c) {
      probs->at(i, c) =
          static_cast<float>(std::exp(static_cast<double>(row[c]) - logsum));
    }
  }
  Var v = AddNode(std::move(out), OpKind::kSoftmaxCrossEntropy, {logits.id});
  Var self = v;
  auto shared_targets =
      std::make_shared<std::vector<std::size_t>>(std::move(targets));
  node(v).backward = [self, logits, probs, shared_targets](
                         const Graph* g, GradWorkspace* ws) {
    const Tensor& gr = ws->grad(*g, self);
    const std::size_t m = probs->cols();
    Tensor* gl = nullptr;
    for (std::size_t i = 0; i < gr.rows(); ++i) {
      const float gv = gr.at(i, 0);
      if (gv == 0.0f) continue;
      if (gl == nullptr) gl = &ws->GradForWrite(*g, logits);
      float* dst = gl->row_data(i);
      const float* p = probs->row_data(i);
      for (std::size_t c = 0; c < m; ++c) dst[c] += gv * p[c];
      dst[(*shared_targets)[i]] -= gv;
    }
  };
  node(v).jvp = [self, logits, probs, shared_targets](const Graph* g,
                                                      JvpWorkspace* ws) {
    // d loss_r = sum_c probs[r,c]*dz[r,c] - dz[r,target_r].
    const Tensor& dz = ws->tangent(*g, logits);
    Tensor& t = ws->TangentForWrite(*g, self);
    const std::size_t m = probs->cols();
    for (std::size_t i = 0; i < t.rows(); ++i) {
      const float* p = probs->row_data(i);
      const float* dzr = dz.row_data(i);
      double acc = 0.0;
      for (std::size_t c = 0; c < m; ++c) {
        acc += static_cast<double>(p[c]) * dzr[c];
      }
      t.at(i, 0) = static_cast<float>(acc) - dzr[(*shared_targets)[i]];
    }
  };
  return v;
}

Var Graph::Mean(Var x) {
  const Tensor& tx = node(x).value;
  METABLINK_CHECK(tx.size() > 0) << "Mean of empty tensor";
  double acc = 0.0;
  for (float v : tx.data()) acc += v;
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(acc / static_cast<double>(tx.size()));
  Var v = AddNode(std::move(out), OpKind::kMean, {x.id});
  Var self = v;
  node(v).backward = [self, x](const Graph* g, GradWorkspace* ws) {
    const float gv = ws->grad(*g, self).at(0, 0);
    if (gv == 0.0f) return;
    Tensor& gx = ws->GradForWrite(*g, x);
    const float inv = gv / static_cast<float>(gx.size());
    for (float& d : gx.data()) d += inv;
  };
  node(v).jvp = [self, x](const Graph* g, JvpWorkspace* ws) {
    const Tensor& dx = ws->tangent(*g, x);
    double acc = 0.0;
    for (float d : dx.data()) acc += d;
    ws->TangentForWrite(*g, self).at(0, 0) =
        static_cast<float>(acc / static_cast<double>(dx.size()));
  };
  return v;
}

Var Graph::Sum(Var x) {
  const Tensor& tx = node(x).value;
  double acc = 0.0;
  for (float v : tx.data()) acc += v;
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(acc);
  Var v = AddNode(std::move(out), OpKind::kSum, {x.id});
  Var self = v;
  node(v).backward = [self, x](const Graph* g, GradWorkspace* ws) {
    const float gv = ws->grad(*g, self).at(0, 0);
    if (gv == 0.0f) return;
    Tensor& gx = ws->GradForWrite(*g, x);
    for (float& d : gx.data()) d += gv;
  };
  node(v).jvp = [self, x](const Graph* g, JvpWorkspace* ws) {
    const Tensor& dx = ws->tangent(*g, x);
    double acc = 0.0;
    for (float d : dx.data()) acc += d;
    ws->TangentForWrite(*g, self).at(0, 0) = static_cast<float>(acc);
  };
  return v;
}

Var Graph::WeightedSum(Var column, std::vector<float> weights) {
  const Tensor& tc = node(column).value;
  METABLINK_CHECK(tc.cols() == 1 && tc.rows() == weights.size())
      << "WeightedSum shape mismatch";
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += static_cast<double>(weights[i]) * tc.at(i, 0);
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(acc);
  Var v = AddNode(std::move(out), OpKind::kWeightedSum, {column.id});
  Var self = v;
  auto shared_w = std::make_shared<std::vector<float>>(std::move(weights));
  node(v).backward = [self, column, shared_w](const Graph* g,
                                              GradWorkspace* ws) {
    const float gv = ws->grad(*g, self).at(0, 0);
    if (gv == 0.0f) return;
    Tensor& gc = ws->GradForWrite(*g, column);
    for (std::size_t i = 0; i < shared_w->size(); ++i) {
      gc.at(i, 0) += gv * (*shared_w)[i];
    }
  };
  node(v).jvp = [self, column, shared_w](const Graph* g, JvpWorkspace* ws) {
    const Tensor& dc = ws->tangent(*g, column);
    double acc = 0.0;
    for (std::size_t i = 0; i < shared_w->size(); ++i) {
      acc += static_cast<double>((*shared_w)[i]) * dc.at(i, 0);
    }
    ws->TangentForWrite(*g, self).at(0, 0) = static_cast<float>(acc);
  };
  return v;
}

void Graph::Backward(Var v) {
  std::vector<float> seed(node(v).value.size(), 1.0f);
  BackwardWithSeed(v, seed);
}

void Graph::BackwardWithSeed(Var v, const std::vector<float>& seed) {
  BackwardWithSeed(v, seed, &default_ws_);
}

void Graph::BackwardWithSeed(Var v, const std::vector<float>& seed,
                             GradWorkspace* ws) const {
  METABLINK_CHECK(seed.size() == node(v).value.size()) << "seed size mismatch";
  Tensor& root = ws->GradForWrite(*this, v);
  for (std::size_t i = 0; i < seed.size(); ++i) {
    root.data()[i] += seed[i];
  }
  const bool skip = ws->sparsity_skip();
  for (std::int32_t id = v.id; id >= 0; --id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (!n.backward) continue;
    // A node whose gradient was never written holds exact zeros, so its
    // closure could only add zeros downstream — skip it.
    if (skip && !ws->dirty(Var{id})) continue;
    n.backward(this, ws);
  }
}

Tensor Graph::Jvp(Var v) const {
  JvpWorkspace ws;
  for (std::int32_t id = 0; id <= v.id; ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.jvp) n.jvp(this, &ws);
  }
  return ws.tangent(*this, v);
}

void Graph::ResetGrads() { default_ws_.Reset(); }

}  // namespace metablink::tensor
