#include "data/example.h"

namespace metablink::data {

std::unordered_map<text::OverlapCategory, std::size_t> CategoryHistogram(
    const std::vector<LinkingExample>& examples, const kb::KnowledgeBase& kb) {
  std::unordered_map<text::OverlapCategory, std::size_t> hist;
  for (const auto& ex : examples) {
    if (ex.entity_id >= kb.num_entities()) continue;
    hist[text::ClassifyOverlap(ex.mention, kb.entity(ex.entity_id).title)]++;
  }
  return hist;
}

}  // namespace metablink::data
