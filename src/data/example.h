#ifndef METABLINK_DATA_EXAMPLE_H_
#define METABLINK_DATA_EXAMPLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kb/entity.h"
#include "kb/knowledge_base.h"
#include "text/string_metrics.h"

namespace metablink::data {

/// How a linking example came to exist. Gold examples are drawn from the
/// (synthetic) annotated corpus; the others are produced by the weak
/// supervision pipeline (Sec. IV-A of the paper).
enum class ExampleSource {
  kGold,
  kExactMatch,
  kRewritten,
  kInjectedBad,  // Fig. 4: mention deliberately linked to a random entity.
};

/// One entity-linking example: a mention in context, labeled with its gold
/// entity. This is the unit flowing through every trainer and evaluator.
struct LinkingExample {
  std::string mention;
  std::string left_context;
  std::string right_context;
  kb::EntityId entity_id = kb::kInvalidEntityId;
  std::string domain;
  ExampleSource source = ExampleSource::kGold;

  /// Full surface text with the mention inline.
  std::string FullText() const {
    std::string out = left_context;
    if (!out.empty()) out += ' ';
    out += mention;
    if (!right_context.empty()) {
      out += ' ';
      out += right_context;
    }
    return out;
  }
};

/// Train/dev/test split of one domain's examples (Table IV protocol).
struct DomainSplit {
  std::vector<LinkingExample> train;
  std::vector<LinkingExample> dev;
  std::vector<LinkingExample> test;
};

/// A full generated world: the knowledge base plus per-domain labeled
/// examples and unlabeled documents (raw text used by exact matching and by
/// the syn* domain-adaptation step).
struct Corpus {
  kb::KnowledgeBase kb;
  std::unordered_map<std::string, std::vector<LinkingExample>> examples;
  std::unordered_map<std::string, std::vector<std::string>> documents;

  const std::vector<LinkingExample>& ExamplesIn(
      const std::string& domain) const {
    static const std::vector<LinkingExample> kEmpty;
    auto it = examples.find(domain);
    return it == examples.end() ? kEmpty : it->second;
  }

  const std::vector<std::string>& DocumentsIn(
      const std::string& domain) const {
    static const std::vector<std::string> kEmpty;
    auto it = documents.find(domain);
    return it == documents.end() ? kEmpty : it->second;
  }
};

/// Counts examples per overlap category (diagnostic used in the dataset
/// stats bench and tests).
std::unordered_map<text::OverlapCategory, std::size_t> CategoryHistogram(
    const std::vector<LinkingExample>& examples, const kb::KnowledgeBase& kb);

}  // namespace metablink::data

#endif  // METABLINK_DATA_EXAMPLE_H_
