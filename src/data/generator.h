#ifndef METABLINK_DATA_GENERATOR_H_
#define METABLINK_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/example.h"
#include "util/rng.h"
#include "util/status.h"

namespace metablink::data {

/// Specification of one generated domain (a specialized entity dictionary).
struct DomainSpec {
  std::string name;
  /// Entities in the domain.
  std::size_t num_entities = 500;
  /// Vocabulary gap: the probability that a content word is drawn from the
  /// domain-specific vocabulary instead of the shared (general) vocabulary.
  /// Models the paper's Table VIII "gap between target and general domain".
  double gap = 0.3;
  /// Gold labeled examples to generate.
  std::size_t num_examples = 800;
  /// Unlabeled documents (consumed by exact matching and syn* adaptation).
  std::size_t num_documents = 400;
  /// Mention overlap-category mix; a negative value means "use the
  /// generator-wide default from GeneratorOptions". The remainder after the
  /// three categories is Low Overlap.
  double p_high_overlap = -1.0;
  double p_multiple_categories = -1.0;
  double p_ambiguous_substring = -1.0;
};

/// Generator-wide knobs.
struct GeneratorOptions {
  std::uint64_t seed = 42;
  std::size_t shared_vocab_size = 1500;
  std::size_t domain_vocab_size = 700;
  /// Concept words per entity; these tie mention contexts to entity
  /// descriptions and are the semantic signal every encoder must learn.
  std::size_t signature_size = 6;
  /// Size of the per-domain concept pool signatures are drawn from. Small
  /// pools force entities to share concept words, which is what makes
  /// candidate ranking genuinely ambiguous (as in the real benchmark).
  std::size_t concept_pool_size = 120;
  /// Probability that a context token is a distractor: a concept word from
  /// a *different* random entity of the domain.
  double p_distractor_in_context = 0.12;
  /// Alternative surface forms per entity (Low Overlap mentions use these).
  std::size_t num_aliases = 2;
  /// Probability that an alias is written into the entity's description
  /// ("also known as ..."). Aliases absent from the description make their
  /// mentions linkable only through context-description semantics — the
  /// hard Low Overlap case that dominates the real benchmark.
  double p_alias_in_description = 0.4;
  /// Default overlap-category mix (see the paper Sec. VI-A). The remainder
  /// is Low Overlap, the dominant category in Zeshel.
  double p_high_overlap = 0.15;
  double p_multiple_categories = 0.15;
  double p_ambiguous_substring = 0.10;
  /// Fraction of entities that carry a "(disambiguation)" phrase and share
  /// their base title with siblings.
  double disambiguation_fraction = 0.20;
  /// Siblings sharing one base title.
  std::size_t siblings_per_base = 3;
  /// Context tokens on each side of a mention.
  std::size_t context_len = 16;
  /// Probability that a context token is drawn from the gold entity's
  /// signature (the context-side semantic signal strength).
  double p_signature_in_context = 0.30;
  /// Description length in tokens (title/alias/signature words included).
  std::size_t description_len = 36;
  /// Zipf exponent for entity popularity and word frequencies.
  double zipf_exponent = 1.05;
  /// Entity references embedded per unlabeled document.
  std::size_t refs_per_document = 3;
  /// Relation triples to add per domain (KB structure; exercised by the
  /// custom-domain example app).
  std::size_t triples_per_domain_factor = 1;  // num_entities * factor
};

/// Synthetic stand-in for the Zeshel fandom benchmark (see DESIGN.md §1).
/// Generates a deterministic world from a seed: a shared "general" English
/// proxy vocabulary, per-domain topic vocabularies, entities whose
/// descriptions and mention contexts share per-entity signature words, and
/// labeled examples covering the paper's four overlap categories.
class ZeshelLikeGenerator {
 public:
  explicit ZeshelLikeGenerator(GeneratorOptions options = {});

  /// Generates the world for `specs`. Domain names must be unique.
  util::Result<Corpus> Generate(const std::vector<DomainSpec>& specs);

  /// The paper's 16 domains (Table III) with entity counts scaled by
  /// `scale` (1.0 ≈ paper counts / 30, keeping the relative sizes) and the
  /// gap structure of Table VIII (Lego/YuGiOh far from general domain,
  /// Forgotten Realms/Star Trek close).
  static std::vector<DomainSpec> PaperDomains(double scale = 1.0);

  /// Domain-name groups matching the paper's split.
  static std::vector<std::string> TrainDomainNames();
  static std::vector<std::string> DevDomainNames();
  static std::vector<std::string> TestDomainNames();

 private:
  GeneratorOptions options_;
};

/// Splits a domain's gold examples per the Table IV protocol:
/// `train_size` train, `dev_size` dev, remainder test. Deterministic given
/// `seed` (examples are shuffled first).
DomainSplit MakeFewShotSplit(std::vector<LinkingExample> examples,
                             std::size_t train_size, std::size_t dev_size,
                             std::uint64_t seed);

}  // namespace metablink::data

#endif  // METABLINK_DATA_GENERATOR_H_
