#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace metablink::data {

namespace {

/// Zipf sampler with a precomputed CDF (util::Rng::NextZipf recomputes its
/// table when (n, s) changes; the generator alternates between vocabularies
/// constantly, so it keeps one sampler per vocabulary).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    for (auto& c : cdf_) c /= acc;
  }

  std::size_t Sample(util::Rng* rng) const {
    double u = rng->NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Produces pronounceable pseudo-words, globally unique across the corpus.
class WordFactory {
 public:
  explicit WordFactory(util::Rng rng) : rng_(rng) {
    static const char* kOnsets[] = {"b", "d",  "f",  "g",  "k", "l", "m",
                                    "n", "p",  "r",  "s",  "t", "v", "z",
                                    "th", "dr", "kr", "st", "br", "gl"};
    static const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "or", "en"};
    for (const char* o : kOnsets) {
      for (const char* v : kVowels) {
        syllables_.push_back(std::string(o) + v);
      }
    }
  }

  /// A new unique word of `min_syl`..`max_syl` syllables.
  std::string MakeWord(int min_syl, int max_syl) {
    for (int attempt = 0; attempt < 1000; ++attempt) {
      int n = static_cast<int>(rng_.NextInt(min_syl, max_syl));
      std::string w;
      for (int i = 0; i < n; ++i) {
        w += syllables_[rng_.NextUint64(syllables_.size())];
      }
      if (used_.insert(w).second) return w;
    }
    // Fall back to a numbered suffix to guarantee progress.
    std::string w = util::StrFormat("w%llu",
                                    static_cast<unsigned long long>(counter_++));
    used_.insert(w);
    return w;
  }

  std::vector<std::string> MakeWords(std::size_t n, int min_syl, int max_syl) {
    std::vector<std::string> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(MakeWord(min_syl, max_syl));
    return out;
  }

 private:
  util::Rng rng_;
  std::vector<std::string> syllables_;
  std::unordered_set<std::string> used_;
  std::uint64_t counter_ = 0;
};

/// Generation-time metadata for one entity (not part of the public KB).
struct EntityInfo {
  kb::EntityId id = kb::kInvalidEntityId;
  std::vector<std::string> title_words;  // base title, without the phrase
  std::string phrase;                    // disambiguation phrase or ""
  std::vector<std::string> signature;
  std::vector<std::string> alias_surfaces;  // each alias joined into one string
};

std::string JoinWords(const std::vector<std::string>& words) {
  return util::Join(words, " ");
}

}  // namespace

ZeshelLikeGenerator::ZeshelLikeGenerator(GeneratorOptions options)
    : options_(options) {}

util::Result<Corpus> ZeshelLikeGenerator::Generate(
    const std::vector<DomainSpec>& specs) {
  {
    std::unordered_set<std::string> names;
    for (const auto& s : specs) {
      if (s.name.empty()) {
        return util::Status::InvalidArgument("domain name must be non-empty");
      }
      if (!names.insert(s.name).second) {
        return util::Status::InvalidArgument("duplicate domain: " + s.name);
      }
    }
  }

  util::Rng master(options_.seed);
  WordFactory words(master.Fork());
  Corpus corpus;

  const std::vector<std::string> shared_vocab =
      words.MakeWords(options_.shared_vocab_size, 2, 3);
  ZipfSampler shared_zipf(shared_vocab.size(), options_.zipf_exponent);

  const kb::RelationId rel_related = corpus.kb.AddRelation("related_to");
  const kb::RelationId rel_part = corpus.kb.AddRelation("part_of");

  for (const DomainSpec& spec : specs) {
    util::Rng rng = master.Fork();
    const std::vector<std::string> domain_vocab =
        words.MakeWords(options_.domain_vocab_size, 2, 3);
    ZipfSampler domain_zipf(domain_vocab.size(), options_.zipf_exponent);

    auto filler_word = [&](util::Rng* r) -> const std::string& {
      if (r->NextDouble() < spec.gap) {
        return domain_vocab[domain_zipf.Sample(r)];
      }
      return shared_vocab[shared_zipf.Sample(r)];
    };

    // Per-domain concept pool: the small shared inventory entity signatures
    // are drawn from (entities overlap heavily, making ranking ambiguous).
    std::vector<std::string> concepts;
    concepts.reserve(options_.concept_pool_size);
    for (std::size_t c = 0; c < options_.concept_pool_size; ++c) {
      concepts.push_back(filler_word(&rng));
    }

    // ---- Entities --------------------------------------------------------
    std::vector<EntityInfo> infos;
    infos.reserve(spec.num_entities);
    const std::size_t num_disambig = static_cast<std::size_t>(
        options_.disambiguation_fraction *
        static_cast<double>(spec.num_entities));
    const std::size_t group = std::max<std::size_t>(2, options_.siblings_per_base);
    const std::size_t num_bases = num_disambig / group;

    std::size_t made = 0;
    // Disambiguated sibling groups first: same base title, distinct phrases.
    for (std::size_t b = 0; b < num_bases && made + group <= spec.num_entities;
         ++b) {
      std::vector<std::string> base = {words.MakeWord(2, 3),
                                       words.MakeWord(2, 3)};
      // Distinct phrases within the group, or sibling titles would collide.
      std::unordered_set<std::string> used_phrases;
      for (std::size_t s = 0; s < group; ++s) {
        EntityInfo info;
        info.title_words = base;
        do {
          info.phrase = domain_vocab[rng.NextUint64(domain_vocab.size())];
        } while (!used_phrases.insert(info.phrase).second);
        infos.push_back(std::move(info));
        ++made;
      }
    }
    // Plain entities for the remainder; most titles have two words so that
    // Ambiguous Substring mentions exist.
    while (made < spec.num_entities) {
      EntityInfo info;
      info.title_words.push_back(words.MakeWord(2, 3));
      if (rng.NextDouble() < 0.8) info.title_words.push_back(words.MakeWord(2, 3));
      infos.push_back(std::move(info));
      ++made;
    }
    rng.Shuffle(&infos);

    // Signatures, aliases, descriptions.
    for (EntityInfo& info : infos) {
      for (std::size_t k = 0; k < options_.signature_size; ++k) {
        info.signature.push_back(concepts[rng.NextUint64(concepts.size())]);
      }
      for (std::size_t a = 0; a < options_.num_aliases; ++a) {
        // Aliases mix a fresh name word with one of the entity's signature
        // words, so alias surfaces are tied to the description content.
        std::vector<std::string> alias;
        alias.push_back(words.MakeWord(2, 3));
        if (!info.signature.empty() && rng.NextBool(0.6)) {
          alias.push_back(info.signature[rng.NextUint64(info.signature.size())]);
        }
        info.alias_surfaces.push_back(JoinWords(alias));
      }

      // Description: base title first (required by the self-match seed
      // heuristic), then signature + alias words interleaved with filler.
      std::vector<std::string> desc = info.title_words;
      desc.push_back("is");
      desc.push_back("a");
      std::vector<std::string> content;
      for (const auto& s : info.signature) content.push_back(s);
      for (const auto& a : info.alias_surfaces) {
        if (!rng.NextBool(options_.p_alias_in_description)) continue;
        for (const auto& w : util::SplitWhitespace(a)) content.push_back(w);
      }
      rng.Shuffle(&content);
      std::size_t ci = 0;
      while (desc.size() < options_.description_len) {
        if (ci < content.size() && rng.NextBool(0.5)) {
          desc.push_back(content[ci++]);
        } else {
          desc.push_back(filler_word(&rng));
        }
      }
      // Guarantee all content words made it in.
      while (ci < content.size()) desc.push_back(content[ci++]);

      kb::Entity entity;
      entity.title = JoinWords(info.title_words);
      if (!info.phrase.empty()) entity.title += " (" + info.phrase + ")";
      entity.description = JoinWords(desc);
      entity.domain = spec.name;
      auto id = corpus.kb.AddEntity(std::move(entity));
      if (!id.ok()) return id.status();
      info.id = *id;
    }

    // ---- Triples ---------------------------------------------------------
    const std::size_t num_triples =
        spec.num_entities * options_.triples_per_domain_factor;
    for (std::size_t t = 0; t < num_triples; ++t) {
      const EntityInfo& a = infos[rng.NextUint64(infos.size())];
      const EntityInfo& b = infos[rng.NextUint64(infos.size())];
      if (a.id == b.id) continue;
      METABLINK_RETURN_IF_ERROR(corpus.kb.AddTriple(
          a.id, rng.NextBool() ? rel_related : rel_part, b.id));
    }

    // ---- Category pools --------------------------------------------------
    std::vector<std::size_t> plain_pool, disambig_pool, multiword_pool;
    for (std::size_t i = 0; i < infos.size(); ++i) {
      if (infos[i].phrase.empty()) {
        plain_pool.push_back(i);
      } else {
        disambig_pool.push_back(i);
      }
      if (infos[i].title_words.size() >= 2) multiword_pool.push_back(i);
    }

    const double p_high =
        spec.p_high_overlap >= 0 ? spec.p_high_overlap : options_.p_high_overlap;
    const double p_multi = spec.p_multiple_categories >= 0
                               ? spec.p_multiple_categories
                               : options_.p_multiple_categories;
    const double p_substr = spec.p_ambiguous_substring >= 0
                                ? spec.p_ambiguous_substring
                                : options_.p_ambiguous_substring;

    auto make_context = [&](const EntityInfo& info, util::Rng* r) {
      std::vector<std::string> ctx;
      ctx.reserve(options_.context_len);
      for (std::size_t k = 0; k < options_.context_len; ++k) {
        const double u = r->NextDouble();
        if (!info.signature.empty() &&
            u < options_.p_signature_in_context) {
          ctx.push_back(info.signature[r->NextUint64(info.signature.size())]);
        } else if (u < options_.p_signature_in_context +
                           options_.p_distractor_in_context) {
          // Distractor: a concept word of some other entity.
          const EntityInfo& other = infos[r->NextUint64(infos.size())];
          if (!other.signature.empty()) {
            ctx.push_back(
                other.signature[r->NextUint64(other.signature.size())]);
          } else {
            ctx.push_back(filler_word(r));
          }
        } else {
          ctx.push_back(filler_word(r));
        }
      }
      return JoinWords(ctx);
    };

    // ---- Gold examples ---------------------------------------------------
    ZipfSampler entity_zipf(infos.size(), options_.zipf_exponent);
    std::vector<LinkingExample>& examples = corpus.examples[spec.name];
    examples.reserve(spec.num_examples);
    for (std::size_t i = 0; i < spec.num_examples; ++i) {
      double u = rng.NextDouble();
      const EntityInfo* info = nullptr;
      std::string mention;
      if (u < p_high && !plain_pool.empty()) {
        info = &infos[plain_pool[rng.NextUint64(plain_pool.size())]];
        mention = JoinWords(info->title_words);
      } else if (u < p_high + p_multi && !disambig_pool.empty()) {
        info = &infos[disambig_pool[rng.NextUint64(disambig_pool.size())]];
        mention = JoinWords(info->title_words);  // base title, no phrase
      } else if (u < p_high + p_multi + p_substr && !multiword_pool.empty()) {
        info = &infos[multiword_pool[rng.NextUint64(multiword_pool.size())]];
        mention = info->title_words[rng.NextUint64(info->title_words.size())];
      } else {
        info = &infos[entity_zipf.Sample(&rng)];
        mention =
            info->alias_surfaces[rng.NextUint64(info->alias_surfaces.size())];
      }
      LinkingExample ex;
      ex.mention = std::move(mention);
      ex.left_context = make_context(*info, &rng);
      ex.right_context = make_context(*info, &rng);
      ex.entity_id = info->id;
      ex.domain = spec.name;
      ex.source = ExampleSource::kGold;
      examples.push_back(std::move(ex));
    }

    // ---- Unlabeled documents ----------------------------------------------
    std::vector<std::string>& docs = corpus.documents[spec.name];
    docs.reserve(spec.num_documents);
    for (std::size_t d = 0; d < spec.num_documents; ++d) {
      std::string doc;
      for (std::size_t r = 0; r < options_.refs_per_document; ++r) {
        const EntityInfo& info = infos[entity_zipf.Sample(&rng)];
        double which = rng.NextDouble();
        std::string surface;
        if (which < 0.55) {
          surface = JoinWords(info.title_words);
          if (!info.phrase.empty() && rng.NextBool(0.3)) {
            surface += " (" + info.phrase + ")";
          }
        } else if (which < 0.8) {
          surface =
              info.alias_surfaces[rng.NextUint64(info.alias_surfaces.size())];
        } else {
          surface = JoinWords(info.title_words);
        }
        if (!doc.empty()) doc += ' ';
        doc += make_context(info, &rng);
        doc += ' ';
        doc += surface;
        doc += ' ';
        doc += make_context(info, &rng);
      }
      docs.push_back(std::move(doc));
    }
  }

  return corpus;
}

std::vector<DomainSpec> ZeshelLikeGenerator::PaperDomains(double scale) {
  // Entity counts are the paper's Table III divided by 40; gaps follow the
  // structure measured in Table VIII (Lego/YuGiOh far from the general
  // domain); the test domains' category mixes are tuned so the Name Matching
  // floor lands near the paper's per-domain values.
  struct Row {
    const char* name;
    std::size_t entities;
    double gap;
    std::size_t examples;
    std::size_t documents;
    double p_high, p_multi, p_substr;
  };
  static const Row kRows[] = {
      // 8 training domains.
      {"american_football", 798, 0.35, 500, 150, -1, -1, -1},
      {"doctor_who", 1021, 0.35, 500, 150, -1, -1, -1},
      {"fallout", 425, 0.35, 500, 150, -1, -1, -1},
      {"final_fantasy", 351, 0.35, 500, 150, -1, -1, -1},
      {"military", 1306, 0.35, 500, 150, -1, -1, -1},
      {"pro_wrestling", 253, 0.35, 500, 150, -1, -1, -1},
      {"star_wars", 1088, 0.35, 500, 150, -1, -1, -1},
      {"world_of_warcraft", 692, 0.35, 500, 150, -1, -1, -1},
      // 4 dev domains.
      {"coronation_street", 445, 0.35, 300, 100, -1, -1, -1},
      {"muppets", 534, 0.35, 300, 100, -1, -1, -1},
      {"ice_hockey", 717, 0.35, 300, 100, -1, -1, -1},
      {"elder_scrolls", 543, 0.35, 300, 100, -1, -1, -1},
      // 4 test domains (Table IV sizes, scaled; gap per Table VIII). Test
      // domains keep more entities than the /40 train-domain scaling so the
      // k=64 candidate stage stays selective (chance R@64 < 10% at default
      // bench scale).
      {"forgotten_realms", 1600, 0.22, 650, 500, 0.16, 0.12, 0.10},
      {"lego", 1300, 0.55, 650, 500, 0.09, 0.12, 0.10},
      {"star_trek", 2600, 0.25, 1150, 500, 0.09, 0.10, 0.10},
      {"yugioh", 1300, 0.60, 1050, 500, 0.05, 0.09, 0.10},
  };
  std::vector<DomainSpec> specs;
  for (const Row& r : kRows) {
    DomainSpec s;
    s.name = r.name;
    s.num_entities = std::max<std::size_t>(
        20, static_cast<std::size_t>(static_cast<double>(r.entities) * scale));
    s.gap = r.gap;
    s.num_examples = std::max<std::size_t>(
        20, static_cast<std::size_t>(static_cast<double>(r.examples) * scale));
    s.num_documents = std::max<std::size_t>(
        10, static_cast<std::size_t>(static_cast<double>(r.documents) * scale));
    s.p_high_overlap = r.p_high;
    s.p_multiple_categories = r.p_multi;
    s.p_ambiguous_substring = r.p_substr;
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<std::string> ZeshelLikeGenerator::TrainDomainNames() {
  return {"american_football", "doctor_who",    "fallout",
          "final_fantasy",     "military",      "pro_wrestling",
          "star_wars",         "world_of_warcraft"};
}

std::vector<std::string> ZeshelLikeGenerator::DevDomainNames() {
  return {"coronation_street", "muppets", "ice_hockey", "elder_scrolls"};
}

std::vector<std::string> ZeshelLikeGenerator::TestDomainNames() {
  return {"forgotten_realms", "lego", "star_trek", "yugioh"};
}

DomainSplit MakeFewShotSplit(std::vector<LinkingExample> examples,
                             std::size_t train_size, std::size_t dev_size,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  rng.Shuffle(&examples);
  DomainSplit split;
  for (std::size_t i = 0; i < examples.size(); ++i) {
    if (i < train_size) {
      split.train.push_back(std::move(examples[i]));
    } else if (i < train_size + dev_size) {
      split.dev.push_back(std::move(examples[i]));
    } else {
      split.test.push_back(std::move(examples[i]));
    }
  }
  return split;
}

}  // namespace metablink::data
