#ifndef METABLINK_SERVE_LINKING_SERVER_H_
#define METABLINK_SERVE_LINKING_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/few_shot_linker.h"
#include "kb/knowledge_base.h"
#include "model/bi_encoder.h"
#include "model/cascade.h"
#include "model/cross_encoder.h"
#include "retrieval/clustered_index.h"
#include "retrieval/dense_index.h"
#include "retrieval/sharded_index.h"
#include "store/model_bundle.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::serve {

/// What a full bounded queue sheds (ServerOptions::max_queue).
enum class LoadShedPolicy {
  /// Refuse the arriving request with kUnavailable; queued requests keep
  /// their FIFO positions (oldest-first service, freshest rejected).
  kRejectNew,
  /// Complete the oldest queued request with kUnavailable and admit the
  /// arrival (freshest-first service under overload; the oldest request is
  /// the one whose caller has already waited longest and is most likely to
  /// have timed out upstream).
  kDropOldest,
};

/// Knobs for the micro-batching request scheduler.
struct ServerOptions {
  /// Flush a batch as soon as this many requests are pending.
  std::size_t max_batch = 16;
  /// ... or as soon as the oldest pending request has waited this long.
  std::uint64_t flush_deadline_us = 500;
  /// Stage-1 candidates per request (paper: 64).
  std::size_t retrieve_k = 64;
  /// Serve retrieval from the int8 form of the index.
  bool use_quantized = false;
  /// Candidate-pool width for the int8 scan before exact fp32 re-scoring.
  std::size_t quantized_pool = 4096;
  /// Serve retrieval through the clustered (IVF) form of the index: probe
  /// only the best `nprobe` k-means cells instead of scanning every row.
  /// A bundle that ships a "clustered" artifact is adopted as-is; otherwise
  /// the clustering is trained at epoch build time. Composes with
  /// use_quantized (the per-cell scan then runs on int8 rows).
  bool use_clustered = false;
  /// Cells probed per query when serving clustered; 0 uses the index's
  /// own default (ceil(sqrt(num_clusters))).
  std::size_t nprobe = 0;
  /// Serve the clustered probe from the product-quantized residual form:
  /// per-subspace codebooks trained on (row − centroid) residuals, pq_m
  /// bytes of codes per entity scanned via per-query ADC tables, exact
  /// fp32 re-score of the survivors. Implies the clustered probe path. A
  /// bundle whose clustered artifact ships PQ is adopted as-is; one
  /// without it gets the PQ form trained at epoch build. With use_pq off,
  /// a shipped PQ form is dropped so serving stays byte-identical to a
  /// PQ-free build.
  bool use_pq = false;
  /// PQ subspaces per entity (see ClusteredIndexOptions::pq_m).
  std::size_t pq_m = 8;
  /// Bits per PQ code; only 8 is supported.
  std::size_t pq_nbits = 8;
  /// KB shards behind the probe path: the entity rows split into this many
  /// contiguous slices, probed in parallel per query and merged
  /// bit-identically to the single-index probe. 0 adopts the bundle
  /// manifest's declared count (unsharded for raw components and legacy
  /// bundles); 1 forces the single-index path. Requires the clustered
  /// probe (ignored otherwise).
  std::size_t num_shards = 0;
  /// LRU entries for repeated (mention, context) requests; 0 disables.
  /// Each entry holds the mention embedding and its retrieved top-k (both
  /// pure functions of the request text and the fixed index), so a hit
  /// skips encode + retrieval. Re-ranking always runs. The cache lives
  /// inside the model version it was filled against, so a SwapModel never
  /// serves stale features.
  std::size_t cache_capacity = 1024;
  /// Serve re-ranking through the three-tier adaptive cascade (see
  /// model::CascadeConfig): confident requests exit on the retrieval
  /// margin, middle-confidence requests rescore the ambiguous head with
  /// the distilled scorer, and only the rest cross-encode the head. Off
  /// (the default) serves the exact full-rerank path of previous builds,
  /// byte for byte.
  bool use_cascade = false;
  /// Override of the cascade's ambiguous-head cap; 0 adopts the cascade
  /// model's own calibrated value.
  std::size_t rerank_head_k = 0;
  /// Override of the cascade's early-exit margin threshold; negative
  /// adopts the cascade model's calibrated value.
  float margin_tau = -1.0f;
  /// Admission control: maximum depth of the pending-request queue. 0
  /// keeps the legacy unbounded queue — every Link blocks until served and
  /// responses are byte-identical to pre-admission-control builds. With a
  /// bound, a Link arriving at a full queue is shed per `shed_policy`
  /// instead of queueing, so overload degrades into prompt kUnavailable
  /// errors with bounded latency for the admitted requests rather than
  /// into unbounded queue growth.
  std::size_t max_queue = 0;
  /// Which request a full queue sheds. Only read when max_queue > 0.
  LoadShedPolicy shed_policy = LoadShedPolicy::kRejectNew;
  /// Borrowed calibrated cascade policy (train::CalibrateCascade) for
  /// servers built over raw components or bundles without a "cascade"
  /// artifact; must outlive the server. A bundle's own artifact takes
  /// precedence. Null with use_cascade serves an uncalibrated default
  /// config (never exit, no distilled tier, partial rerank of the top
  /// model::CascadeConfig{}.rerank_head_k).
  const model::CascadeModel* cascade = nullptr;
};

/// Monotonic serving counters, snapshotted by Stats(). Stage times are
/// cumulative wall-clock over all flushed batches.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double encode_ms = 0.0;
  double retrieve_ms = 0.0;
  double rerank_ms = 0.0;
  /// Version of the currently published model (a bundle's model_version;
  /// 0 when serving in-process components).
  std::uint64_t model_version = 0;
  /// Successful SwapModel calls since construction.
  std::uint64_t swaps = 0;
  /// Per-tier rerank outcomes. Every request lands in exactly one tier, so
  /// rerank_exited + rerank_distilled + rerank_full == requests — always.
  /// With the cascade off every request counts as rerank_full; a request
  /// with no retrieved candidates counts as rerank_exited when the cascade
  /// is on (there is nothing to rerank).
  std::uint64_t rerank_exited = 0;
  std::uint64_t rerank_distilled = 0;
  std::uint64_t rerank_full = 0;
  /// Retrieval layout of the currently published epoch: shard count of the
  /// probe path (1 = single index) and whether the clustered scan reads PQ
  /// codes. Sharding and PQ never change responses — these exist so
  /// operators (and tests) can tell which path answered.
  std::uint64_t num_shards = 1;
  bool pq_active = false;
  /// Admission control. Every Link call lands in exactly one of
  /// accepted/rejected, and every accepted request is eventually either
  /// completed by a batch (counted in `requests`) or shed by kDropOldest —
  /// so the books always balance:
  ///   accepted == requests + shed + queue_depth + in_flight
  /// with the last two zero at quiescence. (The counters live on two
  /// mutexes, so a snapshot taken mid-batch can be transiently skewed by
  /// one in-flight batch; once every outstanding Link has returned the
  /// identity above is exact.)
  std::uint64_t accepted = 0;
  /// Refused at admission (kRejectNew with a full queue). Never queued, so
  /// never counted in accepted/requests/shed.
  std::uint64_t rejected = 0;
  /// Admitted, then dropped from the queue by kDropOldest; completed with
  /// kUnavailable, never served by a batch.
  std::uint64_t shed = 0;
  /// Gauges, snapshotted at Stats() time.
  std::size_t queue_depth = 0;
  /// Deepest the queue has ever been (== the bound it would have needed).
  std::size_t queue_depth_high_water = 0;
  /// Requests popped into a batch and not yet completed.
  std::size_t in_flight = 0;
  /// How long the current queue front has been waiting (0 when empty).
  double oldest_wait_us = 0.0;
};

/// Production-style serving front-end for a fitted MetaBLINK system.
///
/// Concurrent callers block in Link() while a single scheduler thread
/// coalesces their requests into bounded-latency micro-batches: a batch is
/// flushed when it reaches `max_batch` requests or when the oldest request
/// has waited `flush_deadline_us`, whichever comes first. Each flush runs
/// the tape-free pipeline — batched mention encode (BiEncoder::
/// EncodeMentionBagsInference) over the cache misses, top-k retrieval
/// against a prebuilt domain index, and cross-encoder re-ranking
/// (CrossEncoder::ScoreCachedInference against a precomputed entity-side
/// cache) — so steady-state serving does no Graph construction, no
/// per-request index rebuild, no per-candidate entity tokenization, and no
/// allocations beyond request bookkeeping.
///
/// Everything a batch touches (encoders, KB, index, rerank cache, feature
/// LRU) lives in one immutable-once-published ModelEpoch behind a
/// shared_ptr. SwapModel() loads a new artifact bundle off the request
/// path and publishes it atomically: in-flight batches finish on the
/// version they started with, later batches see the new one, and the old
/// version is destroyed when its last batch completes. A failed swap
/// (missing or corrupt bundle) returns a Status and leaves the old
/// version serving.
///
/// Scores are identical to MetaBlinkPipeline::Link: the tape-free kernels
/// are bit-compatible with the tape path, and the int8 retrieval option
/// re-scores its candidate pool in fp32.
class LinkingServer {
 public:
  /// Builds a server over raw components. `bi`, `cross`, and `kb` must
  /// outlive the server; `domain` must have entities in `kb`. The domain
  /// index is built (and optionally quantized) here.
  static util::Result<std::unique_ptr<LinkingServer>> Create(
      const model::BiEncoder* bi, const model::CrossEncoder* cross,
      const kb::KnowledgeBase* kb, const std::string& domain,
      ServerOptions options = {});

  /// Convenience: serves a fitted FewShotLinker's target domain. The linker
  /// must outlive the server.
  static util::Result<std::unique_ptr<LinkingServer>> FromLinker(
      const core::FewShotLinker& linker, ServerOptions options = {});

  /// Builds a server over a packaged artifact bundle (store::
  /// LoadModelBundle). The server owns everything it serves; nothing else
  /// needs to outlive it.
  static util::Result<std::unique_ptr<LinkingServer>> FromBundle(
      const std::string& bundle_dir, ServerOptions options = {});

  /// Drains pending requests (they complete normally), then stops the
  /// scheduler thread.
  ~LinkingServer();

  LinkingServer(const LinkingServer&) = delete;
  LinkingServer& operator=(const LinkingServer&) = delete;

  /// Links one mention, blocking until its batch is served. Thread-safe:
  /// any number of threads may call concurrently; concurrency is what
  /// creates batching opportunities. Returns up to `top_k` predictions,
  /// best first. With a bounded queue (ServerOptions::max_queue) an
  /// overloaded server returns kUnavailable instead of blocking — either
  /// immediately (kRejectNew refused this call) or after a wait
  /// (kDropOldest shed this request to admit a newer one).
  util::Result<std::vector<core::LinkPrediction>> Link(
      const std::string& mention, const std::string& left_context,
      const std::string& right_context, std::size_t top_k = 5);

  /// Loads the bundle at `bundle_dir` and atomically publishes it as the
  /// new serving model. Thread-safe and callable while requests are in
  /// flight: every batch is served entirely by one model version, so each
  /// response reflects either the old or the new model, never a mix. On
  /// any failure the current model keeps serving and the error is
  /// returned.
  util::Status SwapModel(const std::string& bundle_dir);

  /// Snapshot of the cumulative serving counters.
  ServerStats Stats() const;

  /// Per-request latencies (enqueue to completion, ms) in completion
  /// order; the caller computes percentiles.
  std::vector<double> LatenciesMs() const;

  const ServerOptions& options() const { return options_; }
  /// Entity count of the currently published model's index.
  std::size_t index_size() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    data::LinkingExample example;
    std::size_t top_k = 0;
    Clock::time_point enqueued;
    std::promise<util::Result<std::vector<core::LinkPrediction>>> promise;
  };

  struct CachedFeature {
    std::vector<float> vec;                      // mention embedding [dim]
    std::vector<retrieval::ScoredEntity> hits;   // its retrieved top-k
  };
  using LruList = std::list<std::pair<std::string, CachedFeature>>;

  /// One published model version: every component a batch touches, owned
  /// (or borrowed, for Create/FromLinker) in one place. The index /
  /// rerank-cache / entity-position members are immutable after
  /// publication; the feature LRU is mutated by the scheduler thread only,
  /// and dies with its epoch — swap invalidation for free.
  struct ModelEpoch {
    std::uint64_t version = 0;
    std::string domain;
    /// Set when the epoch came from a bundle; null when the raw component
    /// pointers borrow caller-owned objects.
    std::unique_ptr<store::ModelBundle> owned;
    const model::BiEncoder* bi = nullptr;
    const model::CrossEncoder* cross = nullptr;
    const kb::KnowledgeBase* kb = nullptr;
    retrieval::DenseIndex index;
    /// Clustered probe structure over `index`; built() only when the epoch
    /// serves with use_clustered/use_pq. Always attached to this epoch's
    /// `index` member (re-attached after any bundle move).
    retrieval::ClusteredIndex clustered;
    /// Sharded view over `clustered`; built() only when the epoch serves
    /// with two or more KB shards. Borrows this epoch's `clustered`
    /// member, whose address is stable once the epoch is constructed.
    retrieval::ShardedIndex sharded;
    model::CrossEntityCache cross_cache;
    /// Resolved cascade policy for this epoch: the bundle's "cascade"
    /// artifact when present, else ServerOptions::cascade, else the
    /// uncalibrated default — with the ServerOptions scalar overrides
    /// applied last. Read only when ServerOptions::use_cascade.
    model::CascadeModel cascade;
    std::unordered_map<kb::EntityId, std::size_t> entity_pos;
    // Feature LRU: key -> list node of (key, feature).
    LruList lru;
    std::unordered_map<std::string, LruList::iterator> lru_map;
  };

  LinkingServer(ServerOptions options, std::shared_ptr<ModelEpoch> epoch);

  /// Encodes the domain's entities, builds (+ optionally quantizes) the
  /// index, and precomputes the cross-encoder entity cache, over borrowed
  /// components.
  static util::Result<std::shared_ptr<ModelEpoch>> BuildEpoch(
      const model::BiEncoder* bi, const model::CrossEncoder* cross,
      const kb::KnowledgeBase* kb, const std::string& domain,
      const ServerOptions& options);

  /// Turns a loaded bundle into a servable epoch: adopts its prebuilt
  /// index (quantizing if the options ask for it and the bundle didn't),
  /// adopts or recomputes the rerank cache, and derives the id -> row map.
  static util::Result<std::shared_ptr<ModelEpoch>> BuildEpochFromBundle(
      store::ModelBundle bundle, const ServerOptions& options);

  /// Installs the epoch's resolved cascade policy: `artifact` (a bundle's
  /// "cascade" section) wins over options.cascade wins over the default
  /// config, then the ServerOptions scalar overrides are applied.
  static util::Status ResolveCascade(const ServerOptions& options,
                             const model::CascadeModel* artifact,
                             ModelEpoch* epoch);

  /// Builds the epoch's sharded view when the effective shard count
  /// (options.num_shards, falling back to the bundle manifest's
  /// `manifest_shards`) is ≥ 2 and the epoch serves the clustered probe.
  static util::Status ResolveSharding(const ServerOptions& options,
                                      std::uint32_t manifest_shards,
                                      ModelEpoch* epoch);

  void SchedulerLoop();
  void ServeBatch(std::vector<Request>* batch);

  /// Current epoch snapshot (the only way batches reach model state).
  std::shared_ptr<ModelEpoch> CurrentEpoch() const;

  /// LRU lookup within `epoch`; on hit copies the cached embedding into
  /// `vec_out` and the cached retrieval into `*hits_out`. Scheduler-thread
  /// only.
  static bool CacheLookup(ModelEpoch* epoch, const std::string& key,
                          float* vec_out,
                          std::vector<retrieval::ScoredEntity>* hits_out);
  void CacheInsert(ModelEpoch* epoch, const std::string& key,
                   const float* vec,
                   const std::vector<retrieval::ScoredEntity>& hits);

  ServerOptions options_;

  // Published model version; guarded by epoch_mu_. Batches snapshot the
  // shared_ptr and run lock-free against the snapshot.
  mutable std::mutex epoch_mu_;
  std::shared_ptr<ModelEpoch> epoch_;
  std::uint64_t swaps_ = 0;

  // Request queue, guarded by mu_ (mutable: Stats() reads the depth and
  // admission counters).
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stop_ = false;
  // Admission bookkeeping, guarded by mu_ (updated on the Link path and at
  // batch pop/completion, which already hold it). in_flight_ is decremented
  // by ServeBatch *before* it fulfills the batch's promises, so a caller
  // that returns from Link and immediately reads Stats never sees its own
  // request still counted as in flight.
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_ = 0;
  std::size_t queue_high_water_ = 0;
  std::size_t in_flight_ = 0;
  std::thread scheduler_;

  // Scheduler-thread-only scratch (never touched by callers; model-version
  // independent). The per-chunk vectors back the pool-parallel
  // retrieve/rerank stages: chunk ids from ParallelForChunks are dense, so
  // chunk i owns element i.
  model::EncodeScratch encode_scratch_;
  tensor::Tensor encoded_;
  tensor::Tensor queries_;
  std::vector<std::vector<retrieval::ScoredEntity>> batch_hits_;
  std::vector<retrieval::TopKScratch> topk_scratch_;
  std::vector<retrieval::ClusteredScratch> clustered_scratch_;
  std::vector<retrieval::ShardedIndexScratch> sharded_scratch_;
  struct RerankScratch {
    model::CrossScoreScratch cross;
    std::vector<float> scores;
    std::vector<std::size_t> rows;
    /// Cascade-only buffers: the retrieval-score strip feeding
    /// CascadeFeaturesInto and one distilled feature row.
    std::vector<float> strip;
    std::vector<float> features;
  };
  std::vector<RerankScratch> rerank_scratch_;
  std::vector<std::size_t> miss_idx_;
  std::vector<std::string> keys_;

  /// Worker pool for the batch-parallel retrieve and rerank stages; only
  /// the scheduler thread dispatches onto it.
  util::ThreadPool pool_;

  // Stats, guarded by stats_mu_ (written by the scheduler, read anywhere).
  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::vector<double> latencies_ms_;
};

}  // namespace metablink::serve

#endif  // METABLINK_SERVE_LINKING_SERVER_H_
