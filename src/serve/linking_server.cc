#include "serve/linking_server.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "util/logging.h"

namespace metablink::serve {

namespace {

/// Cache key for one (mention, context) request. '\x1f' (unit separator)
/// cannot appear in tokenized text, so the key is collision-free.
std::string CacheKey(const data::LinkingExample& ex) {
  std::string key;
  key.reserve(ex.mention.size() + ex.left_context.size() +
              ex.right_context.size() + 2);
  key += ex.mention;
  key += '\x1f';
  key += ex.left_context;
  key += '\x1f';
  key += ex.right_context;
  return key;
}

}  // namespace

util::Result<std::unique_ptr<LinkingServer>> LinkingServer::Create(
    const model::BiEncoder* bi, const model::CrossEncoder* cross,
    const kb::KnowledgeBase* kb, const std::string& domain,
    ServerOptions options) {
  if (bi == nullptr || cross == nullptr || kb == nullptr) {
    return util::Status::InvalidArgument("null component passed to server");
  }
  options.max_batch = std::max<std::size_t>(1, options.max_batch);
  options.retrieve_k = std::max<std::size_t>(1, options.retrieve_k);
  auto epoch = BuildEpoch(bi, cross, kb, domain, options);
  if (!epoch.ok()) return epoch.status();
  std::unique_ptr<LinkingServer> server(
      new LinkingServer(std::move(options), *std::move(epoch)));
  server->scheduler_ = std::thread(&LinkingServer::SchedulerLoop, server.get());
  return server;
}

util::Result<std::unique_ptr<LinkingServer>> LinkingServer::FromLinker(
    const core::FewShotLinker& linker, ServerOptions options) {
  if (!linker.fitted()) {
    return util::Status::FailedPrecondition(
        "call FewShotLinker::Fit before serving it");
  }
  const core::MetaBlinkPipeline* pipeline = linker.pipeline();
  return Create(pipeline->bi_encoder(), pipeline->cross_encoder(),
                &linker.corpus()->kb, linker.target_domain(),
                std::move(options));
}

util::Result<std::unique_ptr<LinkingServer>> LinkingServer::FromBundle(
    const std::string& bundle_dir, ServerOptions options) {
  options.max_batch = std::max<std::size_t>(1, options.max_batch);
  options.retrieve_k = std::max<std::size_t>(1, options.retrieve_k);
  auto bundle = store::LoadModelBundle(bundle_dir);
  if (!bundle.ok()) return bundle.status();
  auto epoch = BuildEpochFromBundle(std::move(*bundle), options);
  if (!epoch.ok()) return epoch.status();
  std::unique_ptr<LinkingServer> server(
      new LinkingServer(std::move(options), *std::move(epoch)));
  server->scheduler_ = std::thread(&LinkingServer::SchedulerLoop, server.get());
  return server;
}

LinkingServer::LinkingServer(ServerOptions options,
                             std::shared_ptr<ModelEpoch> epoch)
    : options_(std::move(options)), epoch_(std::move(epoch)) {}

LinkingServer::~LinkingServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
}

util::Result<std::shared_ptr<LinkingServer::ModelEpoch>>
LinkingServer::BuildEpoch(const model::BiEncoder* bi,
                          const model::CrossEncoder* cross,
                          const kb::KnowledgeBase* kb,
                          const std::string& domain,
                          const ServerOptions& options) {
  const std::vector<kb::EntityId>& ids = kb->EntitiesInDomain(domain);
  if (ids.empty()) {
    return util::Status::NotFound("domain has no entities: " + domain);
  }
  auto epoch = std::make_shared<ModelEpoch>();
  epoch->domain = domain;
  epoch->bi = bi;
  epoch->cross = cross;
  epoch->kb = kb;
  const std::size_t d = bi->dim();
  tensor::Tensor all(ids.size(), d);
  // Chunked so the encode scratch stays small. Cold path: local scratch.
  const std::size_t chunk = 256;
  model::EncodeScratch encode_scratch;
  tensor::Tensor encoded;
  std::vector<kb::Entity> part;
  std::vector<kb::Entity> entities;
  entities.reserve(ids.size());
  for (std::size_t begin = 0; begin < ids.size(); begin += chunk) {
    const std::size_t end = std::min(ids.size(), begin + chunk);
    part.clear();
    part.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      part.push_back(kb->entity(ids[i]));
    }
    bi->EncodeEntitiesInference(part, &encode_scratch, &encoded);
    for (std::size_t r = 0; r < encoded.rows(); ++r) {
      std::copy(encoded.row_data(r), encoded.row_data(r) + d,
                all.row_data(begin + r));
      entities.push_back(part[r]);
    }
  }
  METABLINK_RETURN_IF_ERROR(epoch->index.Build(std::move(all), ids));
  if (options.use_quantized) epoch->index.Quantize();
  if (options.use_clustered || options.use_pq) {
    retrieval::ClusteredIndexOptions copts;
    copts.use_pq = options.use_pq;
    copts.pq_m = options.pq_m;
    copts.pq_nbits = options.pq_nbits;
    METABLINK_RETURN_IF_ERROR(epoch->clustered.Build(epoch->index, copts));
  }
  METABLINK_RETURN_IF_ERROR(ResolveSharding(options, 0, epoch.get()));
  // Entity-side rerank work, hoisted out of the serving loop.
  cross->PrecomputeEntities(entities, &epoch->cross_cache);
  epoch->entity_pos.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) epoch->entity_pos[ids[i]] = i;
  METABLINK_RETURN_IF_ERROR(ResolveCascade(options, nullptr, epoch.get()));
  return epoch;
}

util::Status LinkingServer::ResolveCascade(const ServerOptions& options,
                                           const model::CascadeModel* artifact,
                                           ModelEpoch* epoch) {
  if (artifact != nullptr) {
    epoch->cascade = *artifact;
  } else if (options.cascade != nullptr) {
    epoch->cascade = *options.cascade;
  }
  if (options.rerank_head_k > 0) {
    epoch->cascade.config.rerank_head_k = options.rerank_head_k;
  }
  if (options.margin_tau >= 0.0f) {
    epoch->cascade.config.margin_tau = options.margin_tau;
  }
  epoch->cascade.config.rerank_head_k =
      std::max<std::size_t>(1, epoch->cascade.config.rerank_head_k);
  if (epoch->cascade.has_scorer() &&
      epoch->cascade.weights.size() !=
          model::CascadeFeatureCount(epoch->cross->config().dim)) {
    return util::Status::InvalidArgument(
        "cascade scorer was distilled for a different cross-encoder "
        "dimension");
  }
  return util::Status::OK();
}

util::Status LinkingServer::ResolveSharding(const ServerOptions& options,
                                            std::uint32_t manifest_shards,
                                            ModelEpoch* epoch) {
  if (!epoch->clustered.built()) return util::Status::OK();
  const std::size_t shards =
      options.num_shards != 0 ? options.num_shards : manifest_shards;
  if (shards < 2) return util::Status::OK();
  return epoch->sharded.Build(&epoch->clustered, shards);
}

util::Result<std::shared_ptr<LinkingServer::ModelEpoch>>
LinkingServer::BuildEpochFromBundle(store::ModelBundle bundle,
                                    const ServerOptions& options) {
  auto epoch = std::make_shared<ModelEpoch>();
  epoch->owned = std::make_unique<store::ModelBundle>(std::move(bundle));
  store::ModelBundle& b = *epoch->owned;
  epoch->version = b.model_version;
  epoch->domain = b.domain;
  epoch->bi = b.bi.get();
  epoch->cross = b.cross.get();
  epoch->kb = b.kb.get();
  epoch->index = std::move(b.index);
  if (!epoch->index.built()) {
    return util::Status::InvalidArgument("bundle index has no entities");
  }
  if (options.use_quantized && !epoch->index.quantized()) {
    epoch->index.Quantize();
  }
  if (options.use_clustered || options.use_pq) {
    if (b.has_clustered && (b.clustered.pq_built() || !options.use_pq)) {
      // Adopt the shipped clustering. Moving the bundle into this epoch
      // relocated the index it was attached to, so re-bind it here.
      epoch->clustered = std::move(b.clustered);
      METABLINK_RETURN_IF_ERROR(epoch->clustered.Attach(&epoch->index));
      if (!options.use_pq && epoch->clustered.pq_built()) {
        // PQ-free serving over a PQ-bearing artifact: drop the codes so
        // the probe path is byte-identical to a build that never had them.
        epoch->clustered.DropPq();
      }
    } else {
      // No clustered artifact — or one without the PQ form the options
      // demand — so train it here.
      retrieval::ClusteredIndexOptions copts;
      copts.use_pq = options.use_pq;
      copts.pq_m = options.pq_m;
      copts.pq_nbits = options.pq_nbits;
      METABLINK_RETURN_IF_ERROR(epoch->clustered.Build(epoch->index, copts));
    }
  }
  METABLINK_RETURN_IF_ERROR(
      ResolveSharding(options, b.num_shards, epoch.get()));
  const std::vector<kb::EntityId>& ids = epoch->index.ids();
  if (b.has_rerank_cache) {
    epoch->cross_cache = std::move(b.rerank_cache);
  } else {
    // Bundle shipped without the precomputed rerank artifact: rebuild it
    // from the KB in index-row order.
    std::vector<kb::Entity> entities;
    entities.reserve(ids.size());
    for (kb::EntityId id : ids) entities.push_back(epoch->kb->entity(id));
    epoch->cross->PrecomputeEntities(entities, &epoch->cross_cache);
  }
  epoch->entity_pos.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) epoch->entity_pos[ids[i]] = i;
  METABLINK_RETURN_IF_ERROR(
      ResolveCascade(options, b.has_cascade ? &b.cascade : nullptr,
                     epoch.get()));
  return epoch;
}

util::Status LinkingServer::SwapModel(const std::string& bundle_dir) {
  // All loading and validation happens off the publish lock; a concurrent
  // scheduler keeps serving the current version throughout.
  auto bundle = store::LoadModelBundle(bundle_dir);
  if (!bundle.ok()) return bundle.status();
  auto epoch = BuildEpochFromBundle(std::move(*bundle), options_);
  if (!epoch.ok()) return epoch.status();
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    epoch_ = *std::move(epoch);
    ++swaps_;
  }
  return util::Status::OK();
}

std::shared_ptr<LinkingServer::ModelEpoch> LinkingServer::CurrentEpoch()
    const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

util::Result<std::vector<core::LinkPrediction>> LinkingServer::Link(
    const std::string& mention, const std::string& left_context,
    const std::string& right_context, std::size_t top_k) {
  Request req;
  req.example.mention = mention;
  req.example.left_context = left_context;
  req.example.right_context = right_context;
  // example.domain is stamped by ServeBatch from the version that serves
  // the batch.
  req.top_k = top_k;
  req.enqueued = Clock::now();
  auto future = req.promise.get_future();
  // Holds a drop-oldest victim so its promise is fulfilled off the lock.
  std::optional<Request> shed_victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return util::Status::FailedPrecondition("server is shutting down");
    }
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      if (options_.shed_policy == LoadShedPolicy::kRejectNew) {
        ++rejected_;
        return util::Status::Unavailable(
            "request rejected: queue full (max_queue=" +
            std::to_string(options_.max_queue) + ")");
      }
      shed_victim.emplace(std::move(queue_.front()));
      queue_.pop_front();
      ++shed_;
    }
    queue_.push_back(std::move(req));
    ++accepted_;
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
    // Notify while still holding mu_: the destructor's shutdown drain also
    // takes mu_, so once it fulfills this request's promise no further
    // touch of queue_cv_ from this call is possible — destroying the
    // server with callers still blocked in Link stays well-defined.
    queue_cv_.notify_all();
  }
  if (shed_victim.has_value()) {
    shed_victim->promise.set_value(util::Status::Unavailable(
        "request shed: dropped as oldest in a full queue (max_queue=" +
        std::to_string(options_.max_queue) + ")"));
  }
  return future.get();
}

void LinkingServer::SchedulerLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ with nothing left to drain
    // Let the batch fill until the oldest request's deadline. On stop,
    // flush immediately so pending requests still complete.
    const auto deadline =
        queue_.front().enqueued +
        std::chrono::microseconds(options_.flush_deadline_us);
    while (!stop_ && queue_.size() < options_.max_batch) {
      if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    std::vector<Request> batch;
    const std::size_t n = std::min(queue_.size(), options_.max_batch);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    in_flight_ += n;
    lock.unlock();
    ServeBatch(&batch);
  }
}

void LinkingServer::ServeBatch(std::vector<Request>* batch) {
  // One model version serves the whole batch: every stage below reads
  // through this snapshot, so a concurrent SwapModel can never produce a
  // response that mixes versions. The snapshot also keeps the old version
  // alive until its last in-flight batch completes.
  const std::shared_ptr<ModelEpoch> epoch = CurrentEpoch();
  const std::size_t m = batch->size();
  const std::size_t d = epoch->bi->dim();
  std::size_t hits = 0;
  std::size_t misses = 0;

  // ---- Stage 1: batched mention encode (tape-free), LRU-deduplicated.
  // A cache hit restores both the mention embedding and its retrieved
  // top-k (each a pure function of the request text and the version's
  // index), so hits skip stage 2 entirely.
  const auto t0 = Clock::now();
  queries_.Resize(m, d);
  batch_hits_.resize(m);
  miss_idx_.clear();
  keys_.clear();
  keys_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    (*batch)[i].example.domain = epoch->domain;
    if (options_.cache_capacity > 0) {
      keys_[i] = CacheKey((*batch)[i].example);
      if (CacheLookup(epoch.get(), keys_[i], queries_.row_data(i),
                      &batch_hits_[i])) {
        ++hits;
        continue;
      }
      ++misses;
    }
    miss_idx_.push_back(i);
  }
  if (!miss_idx_.empty()) {
    if (encode_scratch_.bags.size() < miss_idx_.size()) {
      encode_scratch_.bags.resize(miss_idx_.size());
    }
    for (std::size_t j = 0; j < miss_idx_.size(); ++j) {
      epoch->bi->featurizer().MentionBagInto((*batch)[miss_idx_[j]].example,
                                             &encode_scratch_.bags[j]);
    }
    epoch->bi->EncodeMentionBagsInference(miss_idx_.size(), &encode_scratch_,
                                          &encoded_);
    for (std::size_t j = 0; j < miss_idx_.size(); ++j) {
      const std::size_t i = miss_idx_[j];
      std::copy(encoded_.row_data(j), encoded_.row_data(j) + d,
                queries_.row_data(i));
    }
  }

  // ---- Stage 2: top-k retrieval against the version's prebuilt domain
  // index for the cache misses, parallel across queries (each query's
  // top-k is independent, so the parallel results are identical to
  // serial).
  const auto t1 = Clock::now();
  const std::size_t k = options_.retrieve_k;
  if (topk_scratch_.size() < std::max<std::size_t>(1, pool_.num_threads())) {
    topk_scratch_.resize(std::max<std::size_t>(1, pool_.num_threads()));
  }
  if (!miss_idx_.empty()) {
    const bool clustered = (options_.use_clustered || options_.use_pq) &&
                           epoch->clustered.built();
    const bool sharded = clustered && epoch->sharded.built();
    const bool quantized = options_.use_quantized && epoch->index.quantized();
    if (clustered &&
        clustered_scratch_.size() <
            std::max<std::size_t>(1, pool_.num_threads())) {
      clustered_scratch_.resize(std::max<std::size_t>(1, pool_.num_threads()));
    }
    if (sharded &&
        sharded_scratch_.size() < std::max<std::size_t>(1, pool_.num_threads())) {
      sharded_scratch_.resize(std::max<std::size_t>(1, pool_.num_threads()));
    }
    pool_.ParallelForChunks(
        miss_idx_.size(), 0,
        [this, &epoch, k, clustered, sharded, quantized](
            std::size_t chunk, std::size_t begin, std::size_t end) {
          for (std::size_t j = begin; j < end; ++j) {
            const std::size_t i = miss_idx_[j];
            if (sharded) {
              // Sharded probe, bit-identical to the single-index path.
              // TopKParallel's nested ParallelForChunks degrades to a
              // serial shard loop inside this batch-parallel region, so
              // shards run concurrently exactly when the batch doesn't.
              epoch->sharded.TopKParallel(queries_.row_data(i), k,
                                          options_.nprobe, &pool_,
                                          &sharded_scratch_[chunk],
                                          &batch_hits_[i]);
            } else if (clustered) {
              // Probe path: the clustered index internally runs the PQ or
              // int8 scan when those forms exist, so it subsumes the
              // use_quantized branch.
              epoch->clustered.TopKInto(queries_.row_data(i), k,
                                        options_.nprobe,
                                        &clustered_scratch_[chunk],
                                        &batch_hits_[i]);
            } else if (quantized) {
              epoch->index.TopKQuantizedInto(queries_.row_data(i), k,
                                             options_.quantized_pool,
                                             &topk_scratch_[chunk],
                                             &batch_hits_[i]);
            } else {
              epoch->index.TopKInto(queries_.row_data(i), k,
                                    &topk_scratch_[chunk], &batch_hits_[i]);
            }
          }
        });
    if (options_.cache_capacity > 0) {
      for (std::size_t i : miss_idx_) {
        CacheInsert(epoch.get(), keys_[i], queries_.row_data(i),
                    batch_hits_[i]);
      }
    }
  }

  // ---- Stage 3: cross-encoder re-rank, parallel across requests with
  // per-chunk scratch. Outcomes are held back and promises fulfilled only
  // after the stats update below, so a caller that returns from Link()
  // and immediately reads Stats() always sees its own batch counted.
  const auto t2 = Clock::now();
  std::vector<double> batch_latencies(m, 0.0);
  std::vector<util::Result<std::vector<core::LinkPrediction>>> outcomes(
      m, util::Status::NotFound("no candidates retrieved"));
  if (rerank_scratch_.size() < std::max<std::size_t>(1, pool_.num_threads())) {
    rerank_scratch_.resize(std::max<std::size_t>(1, pool_.num_threads()));
  }
  // Tier taken by each request: 0 exited, 1 distilled, 2 full. Tier
  // selection depends only on the request's own retrieval result and the
  // epoch's immutable cascade config, so assignments (and responses) are
  // identical whatever the batch composition or chunking — the counters
  // summed from this vector always total m.
  constexpr std::uint8_t kTierExited = 0;
  constexpr std::uint8_t kTierDistilled = 1;
  constexpr std::uint8_t kTierFull = 2;
  const bool use_cascade = options_.use_cascade;
  std::vector<std::uint8_t> tiers(m, kTierFull);
  pool_.ParallelForChunks(
      m, 0, [this, &epoch, batch, &batch_latencies, &outcomes, &tiers,
             use_cascade](std::size_t chunk, std::size_t begin,
                          std::size_t end) {
        RerankScratch& scratch = rerank_scratch_[chunk];
        const model::CascadeConfig& config = epoch->cascade.config;
        for (std::size_t i = begin; i < end; ++i) {
          Request& req = (*batch)[i];
          std::vector<retrieval::ScoredEntity>& cands = batch_hits_[i];
          if (cands.empty()) {
            // Nothing to rerank: under the cascade this counts as an
            // exit; off-cascade it stays a (vacuous) full rerank.
            if (use_cascade) tiers[i] = kTierExited;
            continue;  // keep the NotFound outcome
          }
          if (!use_cascade) {
            // The pre-cascade serving path, byte for byte: cross-encode
            // and re-sort the entire candidate list.
            scratch.rows.clear();
            scratch.rows.reserve(cands.size());
            for (const auto& c : cands) {
              scratch.rows.push_back(epoch->entity_pos.at(c.id));
            }
            epoch->cross->ScoreCachedInference(
                req.example, scratch.rows, epoch->cross_cache,
                &scratch.cross, &scratch.scores);
            for (std::size_t c = 0; c < cands.size(); ++c) {
              cands[c].score = scratch.scores[c];
            }
            std::sort(cands.begin(), cands.end(),
                      [](const retrieval::ScoredEntity& a,
                         const retrieval::ScoredEntity& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.id < b.id;
                      });
          } else {
            const float margin =
                cands.size() > 1
                    ? cands[0].score - cands[1].score
                    : std::numeric_limits<float>::infinity();
            if (margin >= config.margin_tau) {
              // Tier 1 — early exit: retrieval is confident enough that
              // calibration proved rerank would not change the answer.
              tiers[i] = kTierExited;
            } else {
              // Ambiguous head: candidates within band_epsilon of top1,
              // capped at rerank_head_k, never empty. The tail keeps its
              // retrieval order and scores.
              std::size_t head = 1;
              while (head < cands.size() && head < config.rerank_head_k &&
                     cands[0].score - cands[head].score <=
                         config.band_epsilon) {
                ++head;
              }
              if (margin >= config.distill_tau &&
                  epoch->cascade.has_scorer()) {
                // Tier 2 — distilled scorer over the head.
                tiers[i] = kTierDistilled;
                scratch.strip.resize(cands.size());
                for (std::size_t c = 0; c < cands.size(); ++c) {
                  scratch.strip[c] = cands[c].score;
                }
                epoch->cross->featurizer().PrecomputeMentionTokens(
                    req.example, &scratch.cross.mention_tokens);
                epoch->cross->MentionVecInto(req.example, &scratch.cross);
                const std::size_t cross_d =
                    epoch->cross_cache.entity_vec.cols();
                scratch.features.resize(model::CascadeFeatureCount(cross_d));
                scratch.scores.resize(head);
                for (std::size_t r = 0; r < head; ++r) {
                  const std::size_t pos = epoch->entity_pos.at(cands[r].id);
                  model::CascadeFeaturesInto(
                      scratch.strip.data(), cands.size(), r,
                      scratch.cross.mention_vec.data(),
                      epoch->cross_cache.entity_vec.row_data(pos), cross_d,
                      scratch.cross.mention_tokens,
                      epoch->cross_cache.tokens[pos],
                      epoch->cross->featurizer(), scratch.features.data());
                  scratch.scores[r] =
                      epoch->cascade.ScoreFeatures(scratch.features.data());
                }
              } else {
                // Tier 3 — full cross-encoder, but only over the head.
                tiers[i] = kTierFull;
                scratch.rows.clear();
                scratch.rows.reserve(head);
                for (std::size_t r = 0; r < head; ++r) {
                  scratch.rows.push_back(epoch->entity_pos.at(cands[r].id));
                }
                epoch->cross->ScoreCachedInference(
                    req.example, scratch.rows, epoch->cross_cache,
                    &scratch.cross, &scratch.scores);
              }
              for (std::size_t r = 0; r < head; ++r) {
                cands[r].score = scratch.scores[r];
              }
              std::sort(cands.begin(), cands.begin() + head,
                        [](const retrieval::ScoredEntity& a,
                           const retrieval::ScoredEntity& b) {
                          if (a.score != b.score) return a.score > b.score;
                          return a.id < b.id;
                        });
            }
          }
          if (cands.size() > req.top_k) cands.resize(req.top_k);
          std::vector<core::LinkPrediction> predictions;
          predictions.reserve(cands.size());
          for (const auto& c : cands) {
            core::LinkPrediction p;
            p.entity_id = c.id;
            p.title = epoch->kb->entity(c.id).title;
            p.score = c.score;
            predictions.push_back(std::move(p));
          }
          const auto done = Clock::now();
          batch_latencies[i] =
              std::chrono::duration<double, std::milli>(done - req.enqueued)
                  .count();
          outcomes[i] = std::move(predictions);
        }
      });
  const auto t3 = Clock::now();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.requests += m;
    stats_.batches += 1;
    stats_.cache_hits += hits;
    stats_.cache_misses += misses;
    stats_.encode_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    stats_.retrieve_ms +=
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    stats_.rerank_ms +=
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    for (std::size_t i = 0; i < m; ++i) {
      switch (tiers[i]) {
        case kTierExited: ++stats_.rerank_exited; break;
        case kTierDistilled: ++stats_.rerank_distilled; break;
        default: ++stats_.rerank_full; break;
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (outcomes[i].ok()) latencies_ms_.push_back(batch_latencies[i]);
    }
  }
  {
    // Completed-before-fulfilled: once any promise below is visible to its
    // caller, this batch is already out of the in-flight gauge and counted
    // in stats_.requests.
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_ -= m;
  }
  for (std::size_t i = 0; i < m; ++i) {
    (*batch)[i].promise.set_value(std::move(outcomes[i]));
  }
}

bool LinkingServer::CacheLookup(
    ModelEpoch* epoch, const std::string& key, float* vec_out,
    std::vector<retrieval::ScoredEntity>* hits_out) {
  auto it = epoch->lru_map.find(key);
  if (it == epoch->lru_map.end()) return false;
  // Refresh recency.
  epoch->lru.splice(epoch->lru.begin(), epoch->lru, it->second);
  const CachedFeature& feature = it->second->second;
  std::copy(feature.vec.begin(), feature.vec.end(), vec_out);
  *hits_out = feature.hits;
  return true;
}

void LinkingServer::CacheInsert(
    ModelEpoch* epoch, const std::string& key, const float* vec,
    const std::vector<retrieval::ScoredEntity>& hits) {
  if (options_.cache_capacity == 0) return;
  auto it = epoch->lru_map.find(key);
  if (it != epoch->lru_map.end()) {
    // Duplicate miss within one batch: refresh, keep the existing entry.
    epoch->lru.splice(epoch->lru.begin(), epoch->lru, it->second);
    return;
  }
  CachedFeature feature;
  feature.vec.assign(vec, vec + epoch->bi->dim());
  feature.hits = hits;
  epoch->lru.emplace_front(key, std::move(feature));
  epoch->lru_map[key] = epoch->lru.begin();
  while (epoch->lru.size() > options_.cache_capacity) {
    epoch->lru_map.erase(epoch->lru.back().first);
    epoch->lru.pop_back();
  }
}

ServerStats LinkingServer::Stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.accepted = accepted_;
    out.rejected = rejected_;
    out.shed = shed_;
    out.queue_depth = queue_.size();
    out.queue_depth_high_water = queue_high_water_;
    out.in_flight = in_flight_;
    out.oldest_wait_us =
        queue_.empty()
            ? 0.0
            : std::chrono::duration<double, std::micro>(
                  Clock::now() - queue_.front().enqueued)
                  .count();
  }
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    out.model_version = epoch_->version;
    out.swaps = swaps_;
    out.num_shards =
        epoch_->sharded.built() ? epoch_->sharded.num_shards() : 1;
    out.pq_active = epoch_->clustered.built() && epoch_->clustered.pq_built();
  }
  return out;
}

std::vector<double> LinkingServer::LatenciesMs() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return latencies_ms_;
}

std::size_t LinkingServer::index_size() const {
  return CurrentEpoch()->index.size();
}

}  // namespace metablink::serve
