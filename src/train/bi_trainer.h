#ifndef METABLINK_TRAIN_BI_TRAINER_H_
#define METABLINK_TRAIN_BI_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "model/bi_encoder.h"
#include "tensor/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace metablink::train {

/// Shared trainer knobs.
struct TrainOptions {
  std::size_t batch_size = 32;
  std::size_t epochs = 3;
  float learning_rate = 0.01f;
  std::uint64_t seed = 7;
  /// Optional cap on total optimization steps (0 = no cap).
  std::size_t max_steps = 0;
  /// When non-empty, Train() writes its full state (model parameters,
  /// optimizer moments, Rng stream, loop counters) to this path at every
  /// epoch boundary and auto-resumes from it when the file already exists,
  /// replaying the remaining epochs bit-identically to an uninterrupted
  /// run. A present-but-corrupt file fails the run instead of restarting.
  std::string checkpoint_path{};
};

/// Summary returned by trainers.
struct TrainResult {
  std::size_t steps = 0;
  double final_epoch_loss = 0.0;
  std::vector<double> epoch_losses;
};

/// Standard supervised trainer for the bi-encoder: Adam on the in-batch
/// negatives loss (eq. 6), uniform example weights. This is the "BLINK"
/// configuration of the experiment tables (trained on Seed, Syn, or
/// Syn+Seed depending on the data passed in).
class BiEncoderTrainer {
 public:
  explicit BiEncoderTrainer(TrainOptions options = {});

  /// Trains in place. `weights`, when non-empty, gives a fixed per-example
  /// weight (aligned with `examples`); the per-batch loss is the weighted
  /// mean. Used directly by the DL4EL baseline and ablations.
  util::Result<TrainResult> Train(model::BiEncoder* model,
                                  const kb::KnowledgeBase& kb,
                                  const std::vector<data::LinkingExample>&
                                      examples,
                                  const std::vector<float>& weights = {});

 private:
  TrainOptions options_;
};

}  // namespace metablink::train

#endif  // METABLINK_TRAIN_BI_TRAINER_H_
