#include "train/cross_trainer.h"

#include <algorithm>
#include <numeric>

#include "train/trainer_checkpoint.h"

namespace metablink::train {

namespace {
// Trainer-type tag ("CRTR") namespacing cross-encoder checkpoints.
constexpr std::uint32_t kCrossTrainerTag = 0x52545243u;
}  // namespace

std::vector<CrossInstance> MineCrossTrainingSet(
    const std::vector<data::LinkingExample>& examples,
    const std::vector<std::vector<retrieval::ScoredEntity>>& candidate_lists,
    std::size_t max_candidates) {
  std::vector<CrossInstance> out;
  for (std::size_t i = 0;
       i < examples.size() && i < candidate_lists.size(); ++i) {
    const auto& cands = candidate_lists[i];
    std::size_t gold_pos = cands.size();
    for (std::size_t c = 0; c < cands.size(); ++c) {
      if (cands[c].id == examples[i].entity_id) {
        gold_pos = c;
        break;
      }
    }
    if (gold_pos == cands.size()) continue;  // gold not retrieved: drop
    CrossInstance inst;
    inst.example = examples[i];
    inst.gold_index = static_cast<std::size_t>(-1);  // patched below if truncated
    for (std::size_t c = 0;
         c < cands.size() && inst.candidates.size() < max_candidates; ++c) {
      if (c == gold_pos) inst.gold_index = inst.candidates.size();
      inst.candidates.push_back(cands[c].id);
    }
    // Guarantee the gold survives truncation.
    if (inst.gold_index >= inst.candidates.size()) {
      inst.candidates.back() = examples[i].entity_id;
      inst.gold_index = inst.candidates.size() - 1;
    }
    out.push_back(std::move(inst));
  }
  return out;
}

CrossEncoderTrainer::CrossEncoderTrainer(TrainOptions options)
    : options_(options) {}

util::Result<TrainResult> CrossEncoderTrainer::Train(
    model::CrossEncoder* model, const kb::KnowledgeBase& kb,
    const std::vector<CrossInstance>& instances,
    const std::vector<float>& weights) {
  if (instances.empty()) {
    return util::Status::InvalidArgument("no cross-encoder instances");
  }
  if (!weights.empty() && weights.size() != instances.size()) {
    return util::Status::InvalidArgument("weights must align with instances");
  }
  util::Rng rng(options_.seed ^ 0xC105Eu);
  tensor::AdamOptimizer optimizer(options_.learning_rate);
  TrainResult result;

  std::vector<std::size_t> order(instances.size());
  std::iota(order.begin(), order.end(), 0);

  std::size_t start_epoch = 0;
  if (!options_.checkpoint_path.empty() &&
      CheckpointExists(options_.checkpoint_path)) {
    auto state = LoadEpochCheckpoint(kCrossTrainerTag,
                                     options_.checkpoint_path,
                                     model->params(), &optimizer, &rng);
    if (!state.ok()) return state.status();
    if (state->order.size() != instances.size()) {
      return util::Status::InvalidArgument(
          "checkpoint shuffle order does not match the instance count");
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::size_t>(state->order[i]);
    }
    start_epoch = state->next_epoch;
    result = std::move(state->result);
  }

  for (std::size_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    std::size_t counted = 0;
    for (std::size_t idx : order) {
      const CrossInstance& inst = instances[idx];
      if (inst.candidates.size() < 2) continue;
      const float w = weights.empty() ? 1.0f : weights[idx];
      if (w <= 0.0f) continue;
      std::vector<kb::Entity> entities;
      entities.reserve(inst.candidates.size());
      for (kb::EntityId id : inst.candidates) entities.push_back(kb.entity(id));
      tensor::Graph graph;
      tensor::Var loss =
          model->RankingLoss(&graph, inst.example, entities, inst.gold_index);
      model->params()->ZeroGrads();
      graph.BackwardWithSeed(loss, {w});
      optimizer.Step(model->params());
      epoch_loss += graph.value(loss).at(0, 0) * w;
      ++counted;
      ++result.steps;
      if (options_.max_steps > 0 && result.steps >= options_.max_steps) break;
    }
    if (counted > 0) {
      result.epoch_losses.push_back(epoch_loss / static_cast<double>(counted));
      result.final_epoch_loss = result.epoch_losses.back();
    }
    if (!options_.checkpoint_path.empty()) {
      EpochCheckpointState state;
      state.next_epoch = epoch + 1;
      state.order.assign(order.begin(), order.end());
      state.result = result;
      METABLINK_RETURN_IF_ERROR(
          SaveEpochCheckpoint(kCrossTrainerTag, state, *model->params(),
                              optimizer, rng, options_.checkpoint_path));
    }
    if (options_.max_steps > 0 && result.steps >= options_.max_steps) break;
  }
  return result;
}

}  // namespace metablink::train
