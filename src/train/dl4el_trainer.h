#ifndef METABLINK_TRAIN_DL4EL_TRAINER_H_
#define METABLINK_TRAIN_DL4EL_TRAINER_H_

#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "model/bi_encoder.h"
#include "train/bi_trainer.h"
#include "util/status.h"

namespace metablink::train {

/// Options for the DL4EL baseline (Le & Titov 2019).
struct Dl4elOptions {
  TrainOptions train;
  /// Assumed fraction of noisy training pairs ρ. DL4EL keeps (soft-selects)
  /// the lowest-loss (1-ρ) fraction of each batch.
  double noise_ratio = 0.25;
  /// Temperature of the per-batch soft selection distribution.
  float temperature = 1.0f;
  /// Strength of the KL pull toward the uniform prior (0 = hard top-(1-ρ)
  /// selection, 1 = uniform weights, i.e. plain training).
  float kl_mix = 0.3f;
};

/// The DL4EL denoising baseline: noise-aware training that assumes a fixed
/// noise ratio and, per batch, weights examples by a softmax over negative
/// losses, truncated at the assumed clean fraction and KL-regularized
/// toward the uniform prior. Unlike MetaBLINK it has no access to trusted
/// seed data, so its selection signal is only the model's own loss — the
/// reason it cannot find "bad data without simple data features" (paper
/// observation (3)). Applied to the bi-encoder only, as in the paper.
class Dl4elTrainer {
 public:
  explicit Dl4elTrainer(Dl4elOptions options = {});

  util::Result<TrainResult> Train(
      model::BiEncoder* model, const kb::KnowledgeBase& kb,
      const std::vector<data::LinkingExample>& examples);

  /// The per-batch selection weights for a batch of losses; exposed for
  /// unit tests. Returns normalized weights summing to 1.
  std::vector<float> SelectionWeights(const std::vector<float>& losses) const;

 private:
  Dl4elOptions options_;
};

}  // namespace metablink::train

#endif  // METABLINK_TRAIN_DL4EL_TRAINER_H_
