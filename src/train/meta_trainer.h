#ifndef METABLINK_TRAIN_META_TRAINER_H_
#define METABLINK_TRAIN_META_TRAINER_H_

#include <algorithm>
#include <array>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/graph_lint.h"
#include "data/example.h"
#include "store/checkpoint.h"
#include "tensor/grad_workspace.h"
#include "tensor/graph.h"
#include "tensor/optimizer.h"
#include "tensor/parameter.h"
#include "train/cross_trainer.h"
#include "train/trainer_checkpoint.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::train {

/// How Step computes the per-example alignments raw[j] = ⟨∇_φ l_j, g_meta⟩.
enum class MetaGrad {
  /// One reverse pass per example (one-hot seed over the shared tape).
  /// With a pool attached the passes run concurrently on per-thread
  /// gradient scratch; serial order is the reference implementation.
  kPerExample,
  /// One forward-mode sweep along direction g_meta: the tangent of the
  /// loss column is exactly (raw[0], …, raw[n-1]), so the whole batch
  /// costs about one forward pass instead of n backward passes. Matches
  /// kPerExample up to float rounding.
  kJvp,
};

/// Options for the learning-to-reweight loop (Algorithm 1).
struct MetaTrainOptions {
  /// Synthetic batch size n.
  std::size_t batch_size = 32;
  /// Seed (meta) batch size m.
  std::size_t meta_batch_size = 16;
  /// Total optimization steps T.
  std::size_t steps = 300;
  float learning_rate = 0.01f;
  std::uint64_t seed = 13;
  /// Apply the paper's eq. 13-14 normalization (clip negatives, divide by
  /// the weight sum, with the δ(·) guard when the sum is zero). Turning
  /// this off is an ablation knob.
  bool normalize_weights = true;
  /// Optional pool for graph ops and concurrent per-example passes.
  /// Not owned; nullptr (the default) keeps everything serial.
  util::ThreadPool* pool = nullptr;
  /// Per-example gradient strategy (see MetaGrad).
  MetaGrad meta_grad = MetaGrad::kPerExample;
  /// Skip tape nodes whose gradient is identically zero during the
  /// per-example passes. Exact (skipped closures only add zeros); off is a
  /// benchmark/debugging baseline that visits every node like the
  /// original implementation.
  bool sparse_backward = true;
  /// When non-empty, Train() writes the full trainer state (model
  /// parameters, Adam moments, Rng stream, step counter, selection stats)
  /// to this path every `checkpoint_every` steps and auto-resumes from it
  /// when the file already exists — a killed run continues bit-identically
  /// from the last saved step. A present-but-corrupt file fails the run
  /// instead of silently restarting it.
  std::string checkpoint_path{};
  /// Checkpoint cadence in steps (used only with checkpoint_path).
  std::size_t checkpoint_every = 25;
};

/// Per-source selection statistics: how often examples from a source
/// received a positive meta-weight (the Fig. 4 "selecting ratio").
struct SelectionStats {
  std::size_t seen = 0;
  std::size_t selected = 0;
  double weight_mass = 0.0;

  double SelectedRatio() const {
    return seen == 0
               ? 0.0
               : static_cast<double>(selected) / static_cast<double>(seen);
  }
};

/// Result of a meta-training run.
struct MetaTrainResult {
  std::size_t steps = 0;
  double final_synthetic_loss = 0.0;
  double final_seed_loss = 0.0;
  std::unordered_map<data::ExampleSource, SelectionStats> selection;
};

/// Provenance accessor used for selection bookkeeping; overload for any
/// instance type fed to the meta trainer.
inline data::ExampleSource SourceOf(const data::LinkingExample& ex) {
  return ex.source;
}
inline data::ExampleSource SourceOf(const CrossInstance& inst) {
  return inst.example.source;
}

/// Model-agnostic implementation of the paper's Algorithm 1 ("Learning to
/// Reweight Synthetic data"). A LossFn closes over a concrete model (bi- or
/// cross-encoder) and returns the per-example loss column ([n,1] Var) for a
/// batch of instances; the trainer owns the reweighting logic:
///
///   1. sample a synthetic batch (n) and a seed batch (m);
///   2. compute the meta gradient g_meta = ∇_φ mean-loss(seed batch). The
///      meta-forward/meta-backward pair of eq. 8-12 at w = 0 reduces to
///      w̃_j = max(0, ⟨∇_φ l_j, g_meta⟩) (the Ren et al. dot-product form;
///      DESIGN.md §4), computed with one-hot backward passes over one tape
///      — serially, concurrently on per-thread scratch, or with a single
///      forward-mode sweep, per MetaTrainOptions::meta_grad;
///   3. normalize weights per eq. 13-14;
///   4. take the optimizer step on the weighted synthetic loss (eq. 15).
///
/// InstanceT is data::LinkingExample for the bi-encoder and CrossInstance
/// for the cross-encoder.
template <typename InstanceT>
class MetaReweightTrainerT {
 public:
  using LossFn = std::function<tensor::Var(tensor::Graph*,
                                           const std::vector<InstanceT>&)>;

  /// `params` and `loss_fn` must refer to the same model and outlive the
  /// trainer.
  MetaReweightTrainerT(MetaTrainOptions options,
                       tensor::ParameterStore* params, LossFn loss_fn)
      : options_(options),
        params_(params),
        loss_fn_(std::move(loss_fn)),
        optimizer_(options.learning_rate),
        rng_(options.seed) {}

  /// One reweighted step on explicit batches; exposed for tests and for the
  /// Fig. 4 experiment. Returns the computed normalized weights, aligned
  /// with `synthetic_batch`.
  util::Result<std::vector<float>> Step(
      const std::vector<InstanceT>& synthetic_batch,
      const std::vector<InstanceT>& seed_batch) {
    if (synthetic_batch.size() < 2) {
      return util::Status::InvalidArgument("synthetic batch too small");
    }
    if (seed_batch.empty()) {
      return util::Status::InvalidArgument("seed batch is empty");
    }
    const std::size_t n = synthetic_batch.size();

    // Meta gradient: with w initialized to 0 the meta-forward step leaves
    // φ̂_t = φ_t (Algorithm 1 lines 4-6), so the seed loss and its gradient
    // are evaluated at the current parameters (line 7-8).
    {
      tensor::Graph seed_graph;
      seed_graph.SetPool(options_.pool);
      tensor::Var seed_losses = loss_fn_(&seed_graph, seed_batch);
      params_->ZeroGrads();
      std::vector<float> seed_seed(
          seed_batch.size(), 1.0f / static_cast<float>(seed_batch.size()));
      seed_graph.BackwardWithSeed(seed_losses, seed_seed);
      result_.final_seed_loss = 0.0;
      for (std::size_t i = 0; i < seed_batch.size(); ++i) {
        result_.final_seed_loss += seed_graph.value(seed_losses).at(i, 0);
      }
      result_.final_seed_loss /= static_cast<double>(seed_batch.size());
    }
    // The reverse-mode paths dot per-example gradients against a flattened
    // snapshot of g_meta; the forward-mode path reads the direction
    // straight from Parameter::grad (left in place by the seed backward),
    // so it skips the snapshot copy entirely.
    std::vector<float> g_meta;
    if (options_.meta_grad != MetaGrad::kJvp) {
      g_meta = params_->FlattenGrads();
    }

    // Per-example gradient alignment (line 9) over one forward tape.
    tensor::Graph graph;
    graph.SetPool(options_.pool);
    tensor::Var losses = loss_fn_(&graph, synthetic_batch);
    if (result_.steps == 0) {
      // First-step graph lint: the tape's structure is identical on every
      // step (only the values change), so checking once per trainer proves
      // the whole run's graphs are well-formed at negligible cost.
      const analysis::LintReport lint = analysis::LintGraph(graph, losses);
      METABLINK_CHECK(lint.ok()) << "meta-reweight training graph failed "
                                 << "lint:\n"
                                 << lint.Summary();
    }
    std::vector<float> raw(n, 0.0f);
    if (options_.meta_grad == MetaGrad::kJvp) {
      // raw[j] = ⟨∇_φ l_j, g_meta⟩ is the directional derivative of l_j
      // along g_meta, so one JVP sweep yields the whole batch at once.
      const tensor::Tensor tangent = graph.Jvp(losses);
      for (std::size_t j = 0; j < n; ++j) raw[j] = tangent.at(j, 0);
    } else if (options_.pool != nullptr && n >= 2) {
      // Concurrent one-hot backward passes over the shared (read-only)
      // tape; each chunk routes parameter gradients into its own scratch.
      options_.pool->ParallelForChunks(
          n, options_.pool->num_threads(),
          [&](std::size_t, std::size_t begin, std::size_t end) {
            tensor::GradScratch scratch(params_);
            tensor::GradWorkspace ws(&scratch);
            ws.set_sparsity_skip(options_.sparse_backward);
            std::vector<float> one_hot(n, 0.0f);
            for (std::size_t j = begin; j < end; ++j) {
              ws.Reset();
              one_hot[j] = 1.0f;
              graph.BackwardWithSeed(losses, one_hot, &ws);
              one_hot[j] = 0.0f;
              raw[j] = static_cast<float>(scratch.Dot(g_meta));
            }
          });
    } else {
      // Serial reference path: one-hot backward per example into
      // Parameter::grad, exactly the classic flow.
      tensor::GradWorkspace ws;
      ws.set_sparsity_skip(options_.sparse_backward);
      std::vector<float> one_hot(n, 0.0f);
      for (std::size_t j = 0; j < n; ++j) {
        params_->ZeroGrads();
        ws.Reset();
        one_hot[j] = 1.0f;
        graph.BackwardWithSeed(losses, one_hot, &ws);
        one_hot[j] = 0.0f;
        raw[j] = static_cast<float>(params_->GradDot(g_meta));
      }
    }

    // Eq. 13-14: clip negatives, normalize, δ(·)-guard the all-zero case.
    std::vector<float> weights(n, 0.0f);
    float total = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      weights[j] = std::max(0.0f, raw[j]);
      total += weights[j];
    }
    if (options_.normalize_weights) {
      const float denom = total > 0.0f ? total : 1.0f;
      for (float& w : weights) w /= denom;
    }

    // Selection bookkeeping (Fig. 4).
    for (std::size_t j = 0; j < n; ++j) {
      SelectionStats& s = result_.selection[SourceOf(synthetic_batch[j])];
      ++s.seen;
      if (weights[j] > 0.0f) ++s.selected;
      s.weight_mass += weights[j];
    }

    // Lines 10-12: optimize with the weighted loss.
    params_->ZeroGrads();
    graph.ResetGrads();
    graph.BackwardWithSeed(losses, weights);
    optimizer_.Step(params_);

    result_.final_synthetic_loss = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      result_.final_synthetic_loss +=
          graph.value(losses).at(j, 0) * weights[j];
    }
    ++result_.steps;
    return weights;
  }

  /// Serializes the complete training state — step counter, selection
  /// stats, model parameters, Adam moments, and the Rng stream — so a
  /// reloaded trainer continues bit-identically.
  void SaveCheckpoint(store::CheckpointWriter* ckpt) const {
    util::BinaryWriter* w = ckpt->AddSection("meta_trainer");
    w->WriteU32(kMetaTrainerTag);
    w->WriteU64(result_.steps);
    w->WriteF64(result_.final_synthetic_loss);
    w->WriteF64(result_.final_seed_loss);
    // Selection stats sorted by source id so identical states produce
    // identical bytes regardless of hash-map iteration order.
    std::vector<std::pair<std::uint32_t, SelectionStats>> entries;
    for (const auto& [source, stats] : result_.selection) {
      entries.emplace_back(static_cast<std::uint32_t>(source), stats);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w->WriteU64(entries.size());
    for (const auto& [source, stats] : entries) {
      w->WriteU32(source);
      w->WriteU64(stats.seen);
      w->WriteU64(stats.selected);
      w->WriteF64(stats.weight_mass);
    }
    params_->Save(ckpt->AddSection("model_params"));
    optimizer_.Save(*params_, ckpt->AddSection("optimizer"));
    util::BinaryWriter* rng = ckpt->AddSection("rng");
    for (std::uint64_t word : rng_.state()) rng->WriteU64(word);
  }

  /// Restores what SaveCheckpoint wrote, in place.
  util::Status LoadCheckpoint(const store::CheckpointReader& ckpt) {
    auto trainer = ckpt.Section("meta_trainer");
    if (!trainer.ok()) return trainer.status();
    std::uint32_t tag = 0;
    METABLINK_RETURN_IF_ERROR(trainer->ReadU32(&tag));
    if (tag != kMetaTrainerTag) {
      return util::Status::InvalidArgument(
          "checkpoint was written by a different trainer type");
    }
    MetaTrainResult result;
    std::uint64_t steps = 0;
    METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&steps));
    result.steps = static_cast<std::size_t>(steps);
    METABLINK_RETURN_IF_ERROR(trainer->ReadF64(&result.final_synthetic_loss));
    METABLINK_RETURN_IF_ERROR(trainer->ReadF64(&result.final_seed_loss));
    std::uint64_t num_sources = 0;
    METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&num_sources));
    for (std::uint64_t i = 0; i < num_sources; ++i) {
      std::uint32_t source = 0;
      SelectionStats stats;
      std::uint64_t seen = 0, selected = 0;
      METABLINK_RETURN_IF_ERROR(trainer->ReadU32(&source));
      METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&seen));
      METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&selected));
      METABLINK_RETURN_IF_ERROR(trainer->ReadF64(&stats.weight_mass));
      stats.seen = static_cast<std::size_t>(seen);
      stats.selected = static_cast<std::size_t>(selected);
      result.selection[static_cast<data::ExampleSource>(source)] = stats;
    }

    auto model_params = ckpt.Section("model_params");
    if (!model_params.ok()) return model_params.status();
    METABLINK_RETURN_IF_ERROR(params_->Load(&*model_params));

    auto opt = ckpt.Section("optimizer");
    if (!opt.ok()) return opt.status();
    METABLINK_RETURN_IF_ERROR(optimizer_.Load(*params_, &*opt));

    auto rng = ckpt.Section("rng");
    if (!rng.ok()) return rng.status();
    std::array<std::uint64_t, 4> state{};
    for (std::uint64_t& word : state) {
      METABLINK_RETURN_IF_ERROR(rng->ReadU64(&word));
    }
    rng_.set_state(state);
    result_ = std::move(result);
    return util::Status::OK();
  }

  /// Runs `options.steps` reweighted steps, sampling batches from
  /// `synthetic` (D_f) and `seed_set` (D_g). With checkpoint_path set, a
  /// rerun after a kill resumes from the last saved step instead of
  /// starting over.
  util::Result<MetaTrainResult> Train(
      const std::vector<InstanceT>& synthetic,
      const std::vector<InstanceT>& seed_set) {
    if (synthetic.size() < 2) {
      return util::Status::InvalidArgument(
          "need at least 2 synthetic examples");
    }
    if (seed_set.empty()) {
      return util::Status::InvalidArgument("seed set is empty");
    }
    if (!options_.checkpoint_path.empty() &&
        CheckpointExists(options_.checkpoint_path)) {
      auto ckpt =
          store::CheckpointReader::FromFile(options_.checkpoint_path);
      if (!ckpt.ok()) return ckpt.status();
      METABLINK_RETURN_IF_ERROR(LoadCheckpoint(*ckpt));
    }
    for (std::size_t step = result_.steps; step < options_.steps; ++step) {
      std::vector<InstanceT> synthetic_batch;
      for (std::size_t idx : rng_.SampleIndices(
               synthetic.size(),
               std::min(options_.batch_size, synthetic.size()))) {
        synthetic_batch.push_back(synthetic[idx]);
      }
      std::vector<InstanceT> seed_batch;
      for (std::size_t idx : rng_.SampleIndices(
               seed_set.size(),
               std::min(options_.meta_batch_size, seed_set.size()))) {
        seed_batch.push_back(seed_set[idx]);
      }
      auto weights = Step(synthetic_batch, seed_batch);
      if (!weights.ok()) return weights.status();
      if (!options_.checkpoint_path.empty() &&
          options_.checkpoint_every > 0 &&
          result_.steps % options_.checkpoint_every == 0) {
        store::CheckpointWriter ckpt;
        SaveCheckpoint(&ckpt);
        METABLINK_RETURN_IF_ERROR(
            ckpt.WriteToFile(options_.checkpoint_path));
      }
    }
    return result_;
  }

  const MetaTrainResult& result() const { return result_; }

 private:
  // Trainer-type tag ("METR") namespacing meta-reweight checkpoints.
  static constexpr std::uint32_t kMetaTrainerTag = 0x5254454Du;

  MetaTrainOptions options_;
  tensor::ParameterStore* params_;
  LossFn loss_fn_;
  tensor::AdamOptimizer optimizer_;
  util::Rng rng_;
  MetaTrainResult result_;
};

/// Meta trainer over plain linking examples (bi-encoder).
using MetaReweightTrainer = MetaReweightTrainerT<data::LinkingExample>;

/// Meta trainer over cross-encoder instances.
using CrossMetaTrainer = MetaReweightTrainerT<CrossInstance>;

}  // namespace metablink::train

#endif  // METABLINK_TRAIN_META_TRAINER_H_
