#include "train/trainer_checkpoint.h"

#include <sys/stat.h>

#include <array>

namespace metablink::train {

namespace {

void SaveRngState(const util::Rng& rng, util::BinaryWriter* w) {
  for (std::uint64_t word : rng.state()) w->WriteU64(word);
}

util::Status LoadRngState(util::BinaryReader* r, util::Rng* rng) {
  std::array<std::uint64_t, 4> state{};
  for (std::uint64_t& word : state) {
    METABLINK_RETURN_IF_ERROR(r->ReadU64(&word));
  }
  rng->set_state(state);
  return util::Status::OK();
}

}  // namespace

bool CheckpointExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

util::Status SaveEpochCheckpoint(std::uint32_t tag,
                                 const EpochCheckpointState& state,
                                 const tensor::ParameterStore& params,
                                 const tensor::Optimizer& optimizer,
                                 const util::Rng& rng,
                                 const std::string& path) {
  store::CheckpointWriter ckpt;
  util::BinaryWriter* w = ckpt.AddSection("trainer");
  w->WriteU32(tag);
  w->WriteU64(state.next_epoch);
  w->WriteU64(state.order.size());
  for (std::uint64_t idx : state.order) w->WriteU64(idx);
  w->WriteU64(state.result.steps);
  w->WriteF64(state.result.final_epoch_loss);
  w->WriteU64(state.result.epoch_losses.size());
  for (double loss : state.result.epoch_losses) w->WriteF64(loss);
  params.Save(ckpt.AddSection("model_params"));
  optimizer.Save(params, ckpt.AddSection("optimizer"));
  SaveRngState(rng, ckpt.AddSection("rng"));
  return ckpt.WriteToFile(path);
}

util::Result<EpochCheckpointState> LoadEpochCheckpoint(
    std::uint32_t tag, const std::string& path,
    tensor::ParameterStore* params, tensor::Optimizer* optimizer,
    util::Rng* rng) {
  auto ckpt = store::CheckpointReader::FromFile(path);
  if (!ckpt.ok()) return ckpt.status();

  auto trainer = ckpt->Section("trainer");
  if (!trainer.ok()) return trainer.status();
  std::uint32_t stored_tag = 0;
  METABLINK_RETURN_IF_ERROR(trainer->ReadU32(&stored_tag));
  if (stored_tag != tag) {
    return util::Status::InvalidArgument(
        "checkpoint was written by a different trainer type: " + path);
  }
  EpochCheckpointState state;
  std::uint64_t next_epoch = 0;
  METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&next_epoch));
  state.next_epoch = static_cast<std::size_t>(next_epoch);
  std::uint64_t order_size = 0;
  METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&order_size));
  state.order.resize(static_cast<std::size_t>(order_size));
  for (std::uint64_t& idx : state.order) {
    METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&idx));
  }
  std::uint64_t steps = 0;
  METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&steps));
  state.result.steps = static_cast<std::size_t>(steps);
  METABLINK_RETURN_IF_ERROR(trainer->ReadF64(&state.result.final_epoch_loss));
  std::uint64_t num_losses = 0;
  METABLINK_RETURN_IF_ERROR(trainer->ReadU64(&num_losses));
  state.result.epoch_losses.resize(static_cast<std::size_t>(num_losses));
  for (double& loss : state.result.epoch_losses) {
    METABLINK_RETURN_IF_ERROR(trainer->ReadF64(&loss));
  }

  auto model_params = ckpt->Section("model_params");
  if (!model_params.ok()) return model_params.status();
  METABLINK_RETURN_IF_ERROR(params->Load(&*model_params));

  auto opt = ckpt->Section("optimizer");
  if (!opt.ok()) return opt.status();
  METABLINK_RETURN_IF_ERROR(optimizer->Load(*params, &*opt));

  auto rng_section = ckpt->Section("rng");
  if (!rng_section.ok()) return rng_section.status();
  METABLINK_RETURN_IF_ERROR(LoadRngState(&*rng_section, rng));
  return state;
}

}  // namespace metablink::train
