#ifndef METABLINK_TRAIN_CASCADE_DISTILLER_H_
#define METABLINK_TRAIN_CASCADE_DISTILLER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "model/bi_encoder.h"
#include "model/cascade.h"
#include "model/cross_encoder.h"
#include "util/status.h"

namespace metablink::train {

/// Knobs for CalibrateCascade.
struct CascadeCalibrationOptions {
  /// Candidate-list length; matches ServerOptions::retrieve_k at serving
  /// time so calibration sees the lists the cascade will see.
  std::size_t retrieve_k = 64;
  /// Maximum NET exact-match answers (in example counts, may be
  /// fractional) the calibrated cascade is allowed to lose vs full rerank
  /// on the calibration set. The default 0 means "no net drop": the
  /// simulated cascade's calibration-set accuracy is >= full rerank's.
  double harm_budget = 0.0;
  /// Full-batch Adam steps for the distilled linear scorer.
  std::size_t distill_steps = 400;
  float distill_lr = 0.05f;
};

/// Diagnostics from one calibration run (all measured on the calibration
/// examples themselves).
struct CascadeCalibrationReport {
  std::size_t examples = 0;
  /// Requests whose margin clears margin_tau (would exit).
  std::size_t exit_eligible = 0;
  /// Requests in [distill_tau, margin_tau) (would use the distilled tier).
  std::size_t distill_eligible = 0;
  /// Final ambiguous-head cap after the budgeted shrink.
  std::size_t head_k = 0;
  /// Mean squared error of the distilled scorer vs cross-encoder targets.
  double distill_mse = 0.0;
  /// Exact-match accuracy of full cross-encoder rerank over all retrieve_k.
  double accuracy_full = 0.0;
  /// Exact-match accuracy of the simulated cascade with the calibrated
  /// thresholds. With the default harm_budget of 0 calibration guarantees
  /// accuracy_cascade >= accuracy_full on this set.
  double accuracy_cascade = 0.0;
};

/// Calibrates the three-tier rerank cascade and distills its middle-tier
/// scorer against the frozen bi/cross encoders, offline, on `examples`
/// (a Zeshel-like eval slice of `domain`).
///
/// Procedure (deterministic; no RNG). Every knob is chosen against a
/// shared NET gold-accuracy harm budget (`harm_budget`, default 0): a
/// decision that loses an answer full rerank got right costs 1, one that
/// gains an answer full rerank missed earns 1 back, and no knob may push
/// the running total past the budget.
///   1. Retrieve top-`retrieve_k` per example with an exact fp32 index
///      built exactly like a serving epoch, then full cross-encoder rerank
///      through the same ScoreCachedInference path the server uses.
///   2. margin_tau = the exact margin bounding the largest high-margin
///      prefix whose net harm from exiting (answering with retrieval
///      top1) fits the budget; margin ties exit together or not at all.
///   3. rerank_head_k = the smallest head cap, and band_epsilon = the
///      smallest score band, whose net harm from answering non-exited
///      examples with the cross-argmax over the banded head fits the
///      remaining budget (cap = retrieve_k is always feasible: harm 0).
///   4. The distilled scorer (linear over model::CascadeFeatureCount(d)) is
///      trained full-batch against the cross-encoder's head scores with
///      Adam from the trainer substrate; distill_tau bounds the largest
///      high-margin prefix of non-exited examples whose net harm from
///      swapping the full tier for the distilled ranking fits what is
///      left of the budget.
///
/// With the default budget of 0 the simulated cascade's calibration-set
/// accuracy is never below full rerank's — the accuracy-delta gate in
/// bench_serving measures exactly how this transfers to serving.
util::Result<model::CascadeModel> CalibrateCascade(
    const model::BiEncoder& bi, const model::CrossEncoder& cross,
    const kb::KnowledgeBase& kb, const std::string& domain,
    const std::vector<data::LinkingExample>& examples,
    const CascadeCalibrationOptions& options = {},
    CascadeCalibrationReport* report = nullptr);

}  // namespace metablink::train

#endif  // METABLINK_TRAIN_CASCADE_DISTILLER_H_
