#ifndef METABLINK_TRAIN_TRAINER_CHECKPOINT_H_
#define METABLINK_TRAIN_TRAINER_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/checkpoint.h"
#include "tensor/optimizer.h"
#include "tensor/parameter.h"
#include "train/bi_trainer.h"
#include "util/rng.h"
#include "util/status.h"

namespace metablink::train {

/// True when a checkpoint file exists at `path` — the trainers' "resume or
/// fresh start?" test, separate from load errors (a present-but-corrupt
/// file must fail the run, not silently restart it).
bool CheckpointExists(const std::string& path);

/// Epoch-granular state shared by the supervised bi-/cross-encoder
/// trainers, which checkpoint at epoch boundaries. The Rng stream and the
/// in-flight shuffle order are part of the state: epoch e+1 shuffles the
/// order left by epoch e, so a resumed run replays the remaining epochs
/// bit-identically to an uninterrupted one.
struct EpochCheckpointState {
  std::size_t next_epoch = 0;
  std::vector<std::uint64_t> order;
  TrainResult result;
};

/// Writes the full trainer state (loop counters + model parameters +
/// optimizer moments + Rng stream) as one framed container, crash-safely.
/// `tag` namespaces the trainer type so a bi-encoder run can't resume from
/// a cross-encoder file.
util::Status SaveEpochCheckpoint(std::uint32_t tag,
                                 const EpochCheckpointState& state,
                                 const tensor::ParameterStore& params,
                                 const tensor::Optimizer& optimizer,
                                 const util::Rng& rng,
                                 const std::string& path);

/// Restores what SaveEpochCheckpoint wrote, loading parameters, optimizer
/// moments, and the Rng stream in place. Wrong tag → InvalidArgument;
/// corruption → the container's kOutOfRange / kDataLoss.
util::Result<EpochCheckpointState> LoadEpochCheckpoint(
    std::uint32_t tag, const std::string& path,
    tensor::ParameterStore* params, tensor::Optimizer* optimizer,
    util::Rng* rng);

}  // namespace metablink::train

#endif  // METABLINK_TRAIN_TRAINER_CHECKPOINT_H_
