#include "train/cascade_distiller.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "model/features.h"
#include "retrieval/dense_index.h"
#include "tensor/optimizer.h"
#include "tensor/parameter.h"
#include "tensor/tensor.h"

namespace metablink::train {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Everything calibration needs about one example, computed once.
struct CalibrationRow {
  std::vector<retrieval::ScoredEntity> hits;  // retrieval order (desc)
  std::vector<float> cross_scores;            // aligned with hits
  float margin = kInf;                        // top1 - top2 (inf when k=1)
  std::size_t cross_best_rank = 0;            // retrieval rank of full winner
  kb::EntityId cross_best_id = kb::kInvalidEntityId;
  model::MentionTokens mention_tokens;
  std::vector<float> mention_vec;  // cross-encoder mention tower output
};

/// The serving-time head rule: the prefix of the (desc-sorted) retrieval
/// scores within `band` of top1, capped at `head_k`, never empty. Must stay
/// in lockstep with LinkingServer's copy of this rule.
std::size_t HeadSize(const std::vector<retrieval::ScoredEntity>& hits,
                     float band, std::size_t head_k) {
  std::size_t h = 1;
  while (h < hits.size() && h < head_k &&
         hits[0].score - hits[h].score <= band) {
    ++h;
  }
  return h;
}

/// Index of the best (score desc, id asc) candidate among ranks [0, n).
std::size_t ArgBest(const std::vector<retrieval::ScoredEntity>& hits,
                    const std::vector<float>& scores, std::size_t n) {
  std::size_t best = 0;
  for (std::size_t r = 1; r < n; ++r) {
    if (scores[r] > scores[best] ||
        (scores[r] == scores[best] && hits[r].id < hits[best].id)) {
      best = r;
    }
  }
  return best;
}

}  // namespace

util::Result<model::CascadeModel> CalibrateCascade(
    const model::BiEncoder& bi, const model::CrossEncoder& cross,
    const kb::KnowledgeBase& kb, const std::string& domain,
    const std::vector<data::LinkingExample>& examples,
    const CascadeCalibrationOptions& options,
    CascadeCalibrationReport* report) {
  if (examples.empty()) {
    return util::Status::InvalidArgument(
        "cascade calibration needs at least one example");
  }
  const std::vector<kb::EntityId>& ids = kb.EntitiesInDomain(domain);
  if (ids.empty()) {
    return util::Status::NotFound("domain has no entities: " + domain);
  }

  // ---- Full-rerank pass: the same epoch construction a server performs
  // (chunked entity encode, exact fp32 index, cached cross rerank), so the
  // margins and scores calibrated here are the ones the server will gate on.
  const std::size_t d = bi.dim();
  tensor::Tensor all(ids.size(), d);
  const std::size_t chunk = 256;
  model::EncodeScratch encode_scratch;
  tensor::Tensor encoded;
  std::vector<kb::Entity> part;
  std::vector<kb::Entity> entities;
  entities.reserve(ids.size());
  for (std::size_t begin = 0; begin < ids.size(); begin += chunk) {
    const std::size_t end = std::min(ids.size(), begin + chunk);
    part.clear();
    for (std::size_t i = begin; i < end; ++i) part.push_back(kb.entity(ids[i]));
    bi.EncodeEntitiesInference(part, &encode_scratch, &encoded);
    for (std::size_t r = 0; r < encoded.rows(); ++r) {
      std::copy(encoded.row_data(r), encoded.row_data(r) + d,
                all.row_data(begin + r));
      entities.push_back(part[r]);
    }
  }
  retrieval::DenseIndex index;
  METABLINK_RETURN_IF_ERROR(index.Build(std::move(all), ids));
  model::CrossEntityCache cross_cache;
  cross.PrecomputeEntities(entities, &cross_cache);
  std::unordered_map<kb::EntityId, std::size_t> entity_pos;
  entity_pos.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) entity_pos[ids[i]] = i;

  tensor::Tensor queries;
  bi.EncodeMentionsInference(examples, &encode_scratch, &queries);

  const std::size_t k =
      std::max<std::size_t>(1, std::min(options.retrieve_k, index.size()));
  std::vector<CalibrationRow> rows(examples.size());
  retrieval::TopKScratch topk_scratch;
  model::CrossScoreScratch cross_scratch;
  std::vector<std::size_t> cache_rows;
  for (std::size_t i = 0; i < examples.size(); ++i) {
    CalibrationRow& row = rows[i];
    index.TopKInto(queries.row_data(i), k, &topk_scratch, &row.hits);
    cache_rows.clear();
    for (const auto& h : row.hits) cache_rows.push_back(entity_pos.at(h.id));
    cross.ScoreCachedInference(examples[i], cache_rows, cross_cache,
                               &cross_scratch, &row.cross_scores);
    row.margin = row.hits.size() > 1
                     ? row.hits[0].score - row.hits[1].score
                     : kInf;
    row.cross_best_rank = ArgBest(row.hits, row.cross_scores,
                                  row.hits.size());
    row.cross_best_id = row.hits[row.cross_best_rank].id;
    cross.featurizer().PrecomputeMentionTokens(examples[i],
                                               &row.mention_tokens);
    cross.MentionVecInto(examples[i], &cross_scratch);
    row.mention_vec = cross_scratch.mention_vec;
  }
  const std::size_t cross_d = cross_cache.entity_vec.cols();
  const std::size_t n_features = model::CascadeFeatureCount(cross_d);

  model::CascadeModel cascade;

  // Every knob below is set by NET gold-accuracy harm against a shared
  // budget (default 0: the cascade may not answer worse than full rerank
  // on this set, net). Harm is signed — a high-margin example where
  // retrieval beats the cross-encoder banks credit — which admits far more
  // exits than demanding per-example agreement would, while keeping the
  // aggregate accuracy guarantee exact on the calibration set.
  auto full_correct = [&](std::size_t i) {
    return rows[i].cross_best_id == examples[i].entity_id;
  };
  auto exit_correct = [&](std::size_t i) {
    return rows[i].hits[0].id == examples[i].entity_id;
  };

  // ---- margin_tau / rerank_head_k / band_epsilon: jointly chosen by
  // sweeping every feasible exit cutoff. Rows are grouped by exact margin
  // value so the serving-side `margin >= tau` test selects exactly the
  // chosen prefix (ties exit together or not at all). Exiting MORE is not
  // always cheaper overall: a shorter exit prefix can bank accuracy credit
  // (examples where retrieval beats the cross-encoder) that then buys a
  // much smaller head cap and band for everything else. So for each
  // cutoff whose exit harm fits the budget, the cheapest feasible
  // (head_k, band) pair is derived and the cutoff minimizing total
  // reranked candidates wins.
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows[a].margin != rows[b].margin) {
      return rows[a].margin > rows[b].margin;
    }
    return a < b;
  });
  const double budget = options.harm_budget;

  // Net harm of answering every example of `subset` with the cross-argmax
  // over the banded head instead of over the full candidate list.
  auto head_harm = [&](const std::vector<std::size_t>& subset, std::size_t h,
                       float band) {
    double harm = 0.0;
    for (std::size_t i : subset) {
      const CalibrationRow& row = rows[i];
      const std::size_t head = HeadSize(row.hits, band, h);
      const bool correct =
          row.hits[ArgBest(row.hits, row.cross_scores, head)].id ==
          examples[i].entity_id;
      harm += (full_correct(i) ? 1.0 : 0.0) - (correct ? 1.0 : 0.0);
    }
    return harm;
  };
  // The (head cap, band) pair is picked JOINTLY: shrinking the cap first
  // and the band second (or vice versa) gets stuck in poor corners — a
  // mid-size cap with a tight band often reranks far fewer candidates
  // than the smallest standalone-feasible cap. Band candidates are the
  // observed gap values (where some example's in-band count changes), so
  // the grid covers every distinct serving behaviour; per-row in-band
  // counts and prefix-argmax correctness are precomputed once, making the
  // grid scan O(h * bands * examples).
  std::vector<float> band_cands;
  band_cands.push_back(0.0f);
  for (const CalibrationRow& row : rows) {
    for (std::size_t h = 1; h < row.hits.size(); ++h) {
      band_cands.push_back(row.hits[0].score - row.hits[h].score);
    }
  }
  std::sort(band_cands.begin(), band_cands.end());
  band_cands.erase(std::unique(band_cands.begin(), band_cands.end()),
                   band_cands.end());
  constexpr std::size_t kMaxBandCands = 96;
  if (band_cands.size() > kMaxBandCands) {
    std::vector<float> kept;
    for (std::size_t s = 0; s < kMaxBandCands; ++s) {
      kept.push_back(
          band_cands[s * (band_cands.size() - 1) / (kMaxBandCands - 1)]);
    }
    band_cands = std::move(kept);
  }
  // count_at[i][b]: uncapped in-band head size of row i at band_cands[b].
  // correct_at[i][L]: does the cross-argmax over the first L hits answer
  // row i correctly (L is 1-based).
  std::vector<std::vector<std::uint16_t>> count_at(rows.size());
  std::vector<std::vector<std::uint8_t>> correct_at(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CalibrationRow& row = rows[i];
    count_at[i].resize(band_cands.size());
    for (std::size_t b = 0; b < band_cands.size(); ++b) {
      count_at[i][b] = static_cast<std::uint16_t>(
          HeadSize(row.hits, band_cands[b], k));
    }
    correct_at[i].assign(row.hits.size() + 1, 0);
    std::size_t best = 0;
    for (std::size_t len = 1; len <= row.hits.size(); ++len) {
      const std::size_t r = len - 1;
      if (r > 0 && (row.cross_scores[r] > row.cross_scores[best] ||
                    (row.cross_scores[r] == row.cross_scores[best] &&
                     row.hits[r].id < row.hits[best].id))) {
        best = r;
      }
      correct_at[i][len] = row.hits[best].id == examples[i].entity_id;
    }
  }
  // Minimum-rerank-cost feasible (cap, band) for a subset; cap = k with
  // the widest band reranks every candidate (harm 0), so with a
  // non-negative remaining budget a feasible pair always exists.
  auto shrink_head = [&](const std::vector<std::size_t>& subset,
                         double remaining, std::size_t* h_out,
                         float* band_out, double* cost_out) {
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t h = 1; h <= k; ++h) {
      for (std::size_t b = 0; b < band_cands.size(); ++b) {
        double harm = 0.0;
        double cost = 0.0;
        for (std::size_t i : subset) {
          const std::size_t len =
              std::min<std::size_t>(count_at[i][b], h);
          harm += (full_correct(i) ? 1.0 : 0.0) -
                  (correct_at[i][len] ? 1.0 : 0.0);
          cost += static_cast<double>(len);
        }
        if (harm > remaining) continue;
        // Cost only grows with the band at fixed cap: the first feasible
        // band is the cheapest for this cap.
        if (cost < best_cost) {
          best_cost = cost;
          *h_out = h;
          *band_out = band_cands[b];
        }
        break;
      }
    }
    *cost_out = best_cost;
  };

  double exit_harm = 0.0;
  std::size_t head_k = k;
  {
    // Feasible cutoffs: after each margin group (and before any exit)
    // with cumulative exit harm within budget.
    struct Cutoff {
      std::size_t count = 0;  // exited examples
      float tau = kInf;
      double harm = 0.0;
    };
    std::vector<Cutoff> cutoffs;
    if (budget >= 0.0) cutoffs.push_back(Cutoff{});
    double cum = 0.0;
    std::size_t g = 0;
    while (g < order.size()) {
      const float m = rows[order[g]].margin;
      std::size_t end = g;
      while (end < order.size() && rows[order[end]].margin == m) {
        cum += (full_correct(order[end]) ? 1.0 : 0.0) -
               (exit_correct(order[end]) ? 1.0 : 0.0);
        ++end;
      }
      if (cum <= budget) cutoffs.push_back(Cutoff{end, m, cum});
      g = end;
    }
    // Bound the sweep: always keep the extremes, subsample the middle.
    constexpr std::size_t kMaxSweep = 48;
    std::vector<Cutoff> sweep;
    if (cutoffs.size() <= kMaxSweep) {
      sweep = cutoffs;
    } else {
      for (std::size_t s = 0; s < kMaxSweep; ++s) {
        sweep.push_back(cutoffs[s * (cutoffs.size() - 1) / (kMaxSweep - 1)]);
      }
    }
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t best_count = 0;
    std::vector<std::size_t> subset;
    for (const Cutoff& cut : sweep) {
      subset.assign(order.begin() + cut.count, order.end());
      std::size_t h = k;
      float band = kInf;
      double cost = std::numeric_limits<double>::infinity();
      shrink_head(subset, budget - cut.harm, &h, &band, &cost);
      if (cost < best_cost ||
          (cost == best_cost && cut.count > best_count)) {
        best_cost = cost;
        best_count = cut.count;
        cascade.config.margin_tau = cut.count == 0 ? kInf : cut.tau;
        cascade.config.rerank_head_k = h;
        cascade.config.band_epsilon = band;
        exit_harm = cut.harm;
      }
    }
    head_k = cascade.config.rerank_head_k;
  }
  std::vector<std::size_t> nonexit;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].margin < cascade.config.margin_tau) nonexit.push_back(i);
  }
  const double nonexit_harm =
      head_harm(nonexit, head_k, cascade.config.band_epsilon);

  // ---- Distill the middle-tier scorer: full-batch Adam regression of
  // cross-encoder head scores onto the cheap feature row, over exactly the
  // (example, candidate) pairs the distilled tier could ever see — the
  // final banded heads of the non-exited examples. Deterministic — zero
  // init, fixed example order, no sampling.
  std::vector<float> features;   // [rows x n_features]
  std::vector<float> targets;
  std::vector<float> strip;      // per-example retrieval score strip
  for (std::size_t i : nonexit) {
    const CalibrationRow& row = rows[i];
    const std::size_t head =
        HeadSize(row.hits, cascade.config.band_epsilon, head_k);
    strip.resize(row.hits.size());
    for (std::size_t r = 0; r < row.hits.size(); ++r) {
      strip[r] = row.hits[r].score;
    }
    for (std::size_t r = 0; r < head; ++r) {
      const std::size_t base = features.size();
      features.resize(base + n_features);
      model::CascadeFeaturesInto(
          strip.data(), row.hits.size(), r, row.mention_vec.data(),
          cross_cache.entity_vec.row_data(entity_pos.at(row.hits[r].id)),
          cross_d, row.mention_tokens,
          cross_cache.tokens[entity_pos.at(row.hits[r].id)],
          cross.featurizer(), features.data() + base);
      targets.push_back(row.cross_scores[r]);
    }
  }
  const std::size_t n_rows = targets.size();
  double mse = 0.0;
  if (n_rows > 0) {
    tensor::ParameterStore store;
    tensor::Parameter* w =
        store.Create("cascade_w", n_features, 1);
    tensor::Parameter* b = store.Create("cascade_b", 1, 1);
    tensor::AdamOptimizer adam(options.distill_lr);
    std::vector<double> grad_w(n_features);
    for (std::size_t step = 0; step < options.distill_steps; ++step) {
      std::fill(grad_w.begin(), grad_w.end(), 0.0);
      double grad_b = 0.0;
      mse = 0.0;
      for (std::size_t r = 0; r < n_rows; ++r) {
        const float* x = features.data() + r * n_features;
        double pred = static_cast<double>(b->value.data()[0]);
        for (std::size_t j = 0; j < n_features; ++j) {
          pred += static_cast<double>(w->value.data()[j]) * x[j];
        }
        const double err = pred - targets[r];
        mse += err * err;
        for (std::size_t j = 0; j < n_features; ++j) {
          grad_w[j] += 2.0 * err * x[j];
        }
        grad_b += 2.0 * err;
      }
      const double inv = 1.0 / static_cast<double>(n_rows);
      mse *= inv;
      store.ZeroGrads();
      for (std::size_t j = 0; j < n_features; ++j) {
        w->grad.data()[j] = static_cast<float>(grad_w[j] * inv);
      }
      b->grad.data()[0] = static_cast<float>(grad_b * inv);
      adam.Step(&store);
    }
    cascade.weights = w->value.data();
    cascade.bias = b->value.data()[0];
  }

  // ---- distill_tau: route the largest high-margin prefix of the
  // NON-exited examples to the distilled tier. Moving an example from the
  // full tier to the distilled tier changes its harm by (head answer
  // correct) - (distilled answer correct); the largest prefix whose summed
  // change fits the remaining budget wins, with margin ties again routed
  // together.
  std::vector<std::size_t> distilled_best(rows.size(), 0);
  {
    std::vector<bool> head_correct(rows.size(), false);
    std::vector<bool> distilled_correct(rows.size(), false);
    std::vector<float> distilled;
    std::vector<float> feat_row(n_features);
    for (std::size_t i : nonexit) {
      const CalibrationRow& row = rows[i];
      const std::size_t head =
          HeadSize(row.hits, cascade.config.band_epsilon, head_k);
      head_correct[i] =
          row.hits[ArgBest(row.hits, row.cross_scores, head)].id ==
          examples[i].entity_id;
      if (!cascade.has_scorer()) continue;
      strip.resize(row.hits.size());
      for (std::size_t r = 0; r < row.hits.size(); ++r) {
        strip[r] = row.hits[r].score;
      }
      distilled.resize(head);
      for (std::size_t r = 0; r < head; ++r) {
        model::CascadeFeaturesInto(
            strip.data(), row.hits.size(), r, row.mention_vec.data(),
            cross_cache.entity_vec.row_data(entity_pos.at(row.hits[r].id)),
            cross_d, row.mention_tokens,
            cross_cache.tokens[entity_pos.at(row.hits[r].id)],
            cross.featurizer(), feat_row.data());
        distilled[r] = cascade.ScoreFeatures(feat_row.data());
      }
      distilled_best[i] = ArgBest(row.hits, distilled, head);
      distilled_correct[i] =
          row.hits[distilled_best[i]].id == examples[i].entity_id;
    }
    std::sort(nonexit.begin(), nonexit.end(),
              [&](std::size_t a, std::size_t b) {
                if (rows[a].margin != rows[b].margin) {
                  return rows[a].margin > rows[b].margin;
                }
                return a < b;
              });
    float tau = kInf;
    std::size_t accepted = 0;
    if (cascade.has_scorer()) {
      const double remaining = budget - exit_harm - nonexit_harm;
      double cum = 0.0;
      std::size_t g = 0;
      while (g < nonexit.size()) {
        const float m = rows[nonexit[g]].margin;
        std::size_t end = g;
        while (end < nonexit.size() && rows[nonexit[end]].margin == m) {
          const std::size_t i = nonexit[end];
          cum += (head_correct[i] ? 1.0 : 0.0) -
                 (distilled_correct[i] ? 1.0 : 0.0);
          ++end;
        }
        if (cum <= remaining) {
          tau = m;
          accepted = end;
        }
        g = end;
      }
    }
    cascade.config.distill_tau = accepted == 0 ? kInf : tau;
  }

  // ---- Simulate the calibrated cascade for the report.
  if (report != nullptr) {
    *report = CascadeCalibrationReport{};
    report->examples = rows.size();
    report->head_k = head_k;
    report->distill_mse = mse;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CalibrationRow& row = rows[i];
      kb::EntityId predicted;
      if (row.margin >= cascade.config.margin_tau) {
        ++report->exit_eligible;
        predicted = row.hits[0].id;
      } else if (row.margin >= cascade.config.distill_tau) {
        ++report->distill_eligible;
        predicted = row.hits[distilled_best[i]].id;
      } else {
        const std::size_t head =
            HeadSize(row.hits, cascade.config.band_epsilon, head_k);
        predicted = row.hits[ArgBest(row.hits, row.cross_scores, head)].id;
      }
      if (predicted == examples[i].entity_id) ++report->accuracy_cascade;
      if (row.cross_best_id == examples[i].entity_id) {
        ++report->accuracy_full;
      }
    }
    report->accuracy_full /= static_cast<double>(rows.size());
    report->accuracy_cascade /= static_cast<double>(rows.size());
  }
  return cascade;
}

}  // namespace metablink::train
