#include "train/dl4el_trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace metablink::train {

Dl4elTrainer::Dl4elTrainer(Dl4elOptions options) : options_(options) {}

std::vector<float> Dl4elTrainer::SelectionWeights(
    const std::vector<float>& losses) const {
  const std::size_t n = losses.size();
  std::vector<float> weights(n, 0.0f);
  if (n == 0) return weights;

  // Hard part: keep the lowest-loss (1-ρ) fraction.
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround((1.0 - options_.noise_ratio) *
                          static_cast<double>(n))));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return losses[a] < losses[b];
  });

  // Soft selection over the kept set: softmax(-loss / T).
  float mx = -losses[order[0]];
  std::vector<float> soft(n, 0.0f);
  float soft_total = 0.0f;
  for (std::size_t r = 0; r < keep; ++r) {
    const std::size_t j = order[r];
    soft[j] = std::exp(-losses[j] / options_.temperature - mx);
    soft_total += soft[j];
  }
  // KL regularization toward the uniform prior over the whole batch.
  const float uniform = 1.0f / static_cast<float>(n);
  for (std::size_t j = 0; j < n; ++j) {
    const float sel = soft_total > 0.0f ? soft[j] / soft_total : 0.0f;
    weights[j] = (1.0f - options_.kl_mix) * sel + options_.kl_mix * uniform;
  }
  // Normalize (the mix already sums to ~1; renormalize exactly).
  float total = std::accumulate(weights.begin(), weights.end(), 0.0f);
  if (total > 0.0f) {
    for (float& w : weights) w /= total;
  }
  return weights;
}

util::Result<TrainResult> Dl4elTrainer::Train(
    model::BiEncoder* model, const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& examples) {
  if (examples.empty()) {
    return util::Status::InvalidArgument("no training examples");
  }
  util::Rng rng(options_.train.seed ^ 0xD14ELu);
  tensor::AdamOptimizer optimizer(options_.train.learning_rate);
  TrainResult result;
  std::vector<std::size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < options_.train.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += options_.train.batch_size) {
      const std::size_t end =
          std::min(order.size(), begin + options_.train.batch_size);
      if (end - begin < 2) continue;
      std::vector<data::LinkingExample> batch;
      for (std::size_t i = begin; i < end; ++i) {
        batch.push_back(examples[order[i]]);
      }
      tensor::Graph graph;
      tensor::Var losses = model->InBatchLoss(&graph, batch, kb);
      std::vector<float> loss_values(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        loss_values[i] = graph.value(losses).at(i, 0);
      }
      const std::vector<float> weights = SelectionWeights(loss_values);
      model->params()->ZeroGrads();
      graph.BackwardWithSeed(losses, weights);
      optimizer.Step(model->params());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        epoch_loss += loss_values[i] * weights[i];
      }
      ++batches;
      ++result.steps;
    }
    if (batches > 0) {
      result.epoch_losses.push_back(epoch_loss / static_cast<double>(batches));
      result.final_epoch_loss = result.epoch_losses.back();
    }
  }
  return result;
}

}  // namespace metablink::train
