#include "train/bi_trainer.h"

#include <algorithm>
#include <numeric>

#include "analysis/graph_lint.h"
#include "train/trainer_checkpoint.h"
#include "util/logging.h"

namespace metablink::train {

namespace {
// Trainer-type tag ("BITR") namespacing bi-encoder checkpoints.
constexpr std::uint32_t kBiTrainerTag = 0x52544942u;
}  // namespace

BiEncoderTrainer::BiEncoderTrainer(TrainOptions options)
    : options_(std::move(options)) {}

util::Result<TrainResult> BiEncoderTrainer::Train(
    model::BiEncoder* model, const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& examples,
    const std::vector<float>& weights) {
  if (examples.empty()) {
    return util::Status::InvalidArgument("no training examples");
  }
  if (!weights.empty() && weights.size() != examples.size()) {
    return util::Status::InvalidArgument(
        "weights must align with examples");
  }
  util::Rng rng(options_.seed);
  tensor::AdamOptimizer optimizer(options_.learning_rate);
  TrainResult result;

  std::vector<std::size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);

  std::size_t start_epoch = 0;
  if (!options_.checkpoint_path.empty() &&
      CheckpointExists(options_.checkpoint_path)) {
    auto state = LoadEpochCheckpoint(kBiTrainerTag, options_.checkpoint_path,
                                     model->params(), &optimizer, &rng);
    if (!state.ok()) return state.status();
    if (state->order.size() != examples.size()) {
      return util::Status::InvalidArgument(
          "checkpoint shuffle order does not match the example count");
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::size_t>(state->order[i]);
    }
    start_epoch = state->next_epoch;
    result = std::move(state->result);
  }

  for (std::size_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    std::size_t epoch_batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += options_.batch_size) {
      const std::size_t end =
          std::min(order.size(), begin + options_.batch_size);
      if (end - begin < 2) continue;  // in-batch negatives need >= 2 rows
      std::vector<data::LinkingExample> batch;
      std::vector<float> batch_weights;
      batch.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        batch.push_back(examples[order[i]]);
        if (!weights.empty()) batch_weights.push_back(weights[order[i]]);
      }
      tensor::Graph graph;
      tensor::Var losses = model->InBatchLoss(&graph, batch, kb);
      if (result.steps == 0) {
        // First-step graph lint; see meta_trainer.h for the rationale.
        const analysis::LintReport lint = analysis::LintGraph(graph, losses);
        METABLINK_CHECK(lint.ok())
            << "bi-encoder training graph failed lint:\n" << lint.Summary();
      }
      model->params()->ZeroGrads();
      if (batch_weights.empty()) {
        batch_weights.assign(batch.size(), 1.0f / batch.size());
      } else {
        float total = std::accumulate(batch_weights.begin(),
                                      batch_weights.end(), 0.0f);
        if (total <= 0.0f) continue;  // fully down-weighted batch
        for (float& w : batch_weights) w /= total;
      }
      // Seeding each loss row with its weight backpropagates the weighted
      // mean without extra graph nodes.
      graph.BackwardWithSeed(losses, batch_weights);
      optimizer.Step(model->params());

      double batch_loss = 0.0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch_loss += graph.value(losses).at(i, 0) * batch_weights[i];
      }
      epoch_loss += batch_loss;
      ++epoch_batches;
      ++result.steps;
      if (options_.max_steps > 0 && result.steps >= options_.max_steps) break;
    }
    if (epoch_batches > 0) {
      result.epoch_losses.push_back(epoch_loss /
                                    static_cast<double>(epoch_batches));
      result.final_epoch_loss = result.epoch_losses.back();
    }
    if (!options_.checkpoint_path.empty()) {
      EpochCheckpointState state;
      state.next_epoch = epoch + 1;
      state.order.assign(order.begin(), order.end());
      state.result = result;
      METABLINK_RETURN_IF_ERROR(
          SaveEpochCheckpoint(kBiTrainerTag, state, *model->params(),
                              optimizer, rng, options_.checkpoint_path));
    }
    if (options_.max_steps > 0 && result.steps >= options_.max_steps) break;
  }
  return result;
}

}  // namespace metablink::train
