#ifndef METABLINK_TRAIN_CROSS_TRAINER_H_
#define METABLINK_TRAIN_CROSS_TRAINER_H_

#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "model/cross_encoder.h"
#include "retrieval/dense_index.h"
#include "train/bi_trainer.h"
#include "util/rng.h"
#include "util/status.h"

namespace metablink::train {

/// One cross-encoder training instance: an example plus its mined candidate
/// list with the gold entity's position. Instances are typically produced
/// by MineCrossTrainingSet from stage-1 retrieval output.
struct CrossInstance {
  data::LinkingExample example;
  std::vector<kb::EntityId> candidates;
  std::size_t gold_index = 0;
};

/// Builds cross-encoder training instances: for each example whose gold
/// entity appears in its retrieved candidate list, keep up to
/// `max_candidates` candidates (gold always kept). Examples whose gold was
/// not retrieved are dropped, as in BLINK.
std::vector<CrossInstance> MineCrossTrainingSet(
    const std::vector<data::LinkingExample>& examples,
    const std::vector<std::vector<retrieval::ScoredEntity>>& candidate_lists,
    std::size_t max_candidates);

/// Supervised trainer for the cross-encoder: Adam on the softmax ranking
/// loss over each instance's candidate list. The paper's cross-encoder
/// batch size is 1 (meta-learning doubles memory), which this follows.
class CrossEncoderTrainer {
 public:
  explicit CrossEncoderTrainer(TrainOptions options = {});

  /// Trains in place. Optional fixed per-instance weights (e.g. DL4EL).
  util::Result<TrainResult> Train(model::CrossEncoder* model,
                                  const kb::KnowledgeBase& kb,
                                  const std::vector<CrossInstance>& instances,
                                  const std::vector<float>& weights = {});

 private:
  TrainOptions options_;
};

}  // namespace metablink::train

#endif  // METABLINK_TRAIN_CROSS_TRAINER_H_
