#include "util/thread_pool.h"

#include <algorithm>
#include <memory>

#include "util/parallel_trace.h"

namespace metablink::util {

namespace {
// Set for the lifetime of WorkerLoop; lets ParallelFor detect that it is
// being called from inside one of its own pool's workers.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::OnWorkerThread() const { return t_worker_pool == this; }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  // Fine-grained chunking (4 per worker) evens out ragged per-item costs.
  ParallelForChunks(n, workers_.size() * 4,
                    [&fn](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) fn(i);
                    });
}

std::size_t ThreadPool::ParallelForChunks(
    std::size_t n, std::size_t max_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return 0;
  if (max_chunks == 0) max_chunks = workers_.size();
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, max_chunks));
  ParallelTraceObserver* trace = GetParallelTraceObserver();
  if (chunks <= 1 || OnWorkerThread()) {
    if (trace != nullptr) {
      // Serial degrade still owns the whole index domain; report it so an
      // active WriteSetChecker sees a covering single-chunk partition.
      trace->OnRegionBegin(&fn, n, /*expect_cover=*/true,
                           "ThreadPool.ParallelForChunks.serial");
      trace->OnTaskWrite(&fn, 0, n);
      trace->OnRegionEnd(&fn);
    }
    fn(0, 0, n);
    return 1;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  // Each call waits on its own completion counter rather than the pool-wide
  // in_flight_ count, so unrelated Submit() traffic cannot wake it early or
  // make it wait longer than its own chunks.
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining = 0;
  };
  auto done = std::make_shared<Completion>();
  std::size_t used = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    if (c * chunk_size >= n) break;
    ++used;
  }
  done->remaining = used;
  if (trace != nullptr) {
    // The partition is fully determined before any task runs, so describe
    // it synchronously from the launching thread: the checker proves the
    // chunk arithmetic splits [0, n) into disjoint, covering ranges.
    trace->OnRegionBegin(done.get(), n, /*expect_cover=*/true,
                         "ThreadPool.ParallelForChunks");
    for (std::size_t c = 0; c < used; ++c) {
      trace->OnTaskWrite(done.get(), c * chunk_size,
                         std::min(n, c * chunk_size + chunk_size));
    }
    trace->OnRegionEnd(done.get());
  }
  for (std::size_t c = 0; c < used; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    Submit([c, begin, end, &fn, done] {
      fn(c, begin, end);
      std::unique_lock<std::mutex> lock(done->mu);
      if (--done->remaining == 0) done->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done->mu);
  done->cv.wait(lock, [&done] { return done->remaining == 0; });
  return used;
}

void ThreadPool::WorkerLoop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) break;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
  t_worker_pool = nullptr;
}

}  // namespace metablink::util
