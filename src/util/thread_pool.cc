#include "util/thread_pool.h"

#include <algorithm>

namespace metablink::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace metablink::util
