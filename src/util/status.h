#ifndef METABLINK_UTIL_STATUS_H_
#define METABLINK_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace metablink::util {

/// Error code taxonomy, loosely following absl::Status / arrow::Status.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kInternal = 7,
  kUnimplemented = 8,
  /// Stored data failed an integrity check (checksum mismatch, torn file):
  /// the bytes were readable but cannot be trusted.
  kDataLoss = 9,
  /// The service is temporarily unable to take the request (overload,
  /// admission control); retrying later may succeed.
  kUnavailable = 10,
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object used for error propagation across the public
/// API. The library never throws across API boundaries; fallible operations
/// return `Status` or `Result<T>`.
///
/// Usage:
///   Status s = kb.AddEntity(e);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Value-or-error return type: holds either a `T` or a non-OK `Status`.
///
/// Usage:
///   Result<Entity> r = kb.GetEntity(id);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok(). Accessors for the contained value.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace metablink::util

/// Propagates a non-OK Status from an expression. For use inside functions
/// that themselves return Status.
#define METABLINK_RETURN_IF_ERROR(expr)                   \
  do {                                                    \
    ::metablink::util::Status _status = (expr);           \
    if (!_status.ok()) return _status;                    \
  } while (false)

#endif  // METABLINK_UTIL_STATUS_H_
