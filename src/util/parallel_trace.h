#ifndef METABLINK_UTIL_PARALLEL_TRACE_H_
#define METABLINK_UTIL_PARALLEL_TRACE_H_

#include <cstddef>

namespace metablink::util {

/// Observer interface for the opt-in write-set instrumentation.
///
/// Parallel code paths (ThreadPool::ParallelForChunks and the partitioned
/// tensor ops) describe the row partition they are about to execute: a
/// region is opened for an output buffer, each task reports the half-open
/// row range it owns, and the region is closed once the partition is fully
/// described. An installed observer (analysis::WriteSetChecker) can then
/// prove the partition disjoint and, when expected, covering — a
/// deterministic race check that needs no TSan and no particular thread
/// interleaving to fire.
///
/// OnRegionBegin/OnRegionEnd are called from the thread that launches the
/// parallel region; OnTaskWrite may be called concurrently from worker
/// threads, so implementations must be thread-safe. With no observer
/// installed (the default) every hook site costs one atomic load.
class ParallelTraceObserver {
 public:
  virtual ~ParallelTraceObserver() = default;

  /// A parallel region will write rows of `buffer` (an identity key, never
  /// dereferenced). `rows` is the buffer's total row count. When
  /// `expect_cover` is true the region's tasks must collectively write
  /// every row in [0, rows) exactly once; otherwise disjointness alone is
  /// required (scatter-style partitions that only touch live rows).
  virtual void OnRegionBegin(const void* buffer, std::size_t rows,
                             bool expect_cover, const char* tag) = 0;

  /// One task of an open region owns rows [begin, end) of `buffer`.
  virtual void OnTaskWrite(const void* buffer, std::size_t begin,
                           std::size_t end) = 0;

  /// The region's partition is fully described; verify and retire it.
  virtual void OnRegionEnd(const void* buffer) = 0;
};

/// Installs `observer` as the process-global trace observer and returns the
/// previous one (nullptr clears). Meant for scoped use via
/// analysis::WriteSetScope; swapping while parallel regions are in flight
/// is the caller's race to avoid.
ParallelTraceObserver* SetParallelTraceObserver(
    ParallelTraceObserver* observer);

/// Currently installed observer, or nullptr (the uninstrumented fast path).
ParallelTraceObserver* GetParallelTraceObserver();

}  // namespace metablink::util

#endif  // METABLINK_UTIL_PARALLEL_TRACE_H_
