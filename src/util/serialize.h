#ifndef METABLINK_UTIL_SERIALIZE_H_
#define METABLINK_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace metablink::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `n` bytes. Pass a prior
/// result as `seed` to continue a running checksum over multiple buffers.
/// Used by the checkpoint container format for per-section integrity.
std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Append-only little-endian binary encoder used for model checkpoints and
/// knowledge-base snapshots.
class BinaryWriter {
 public:
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteU32Vector(const std::vector<std::uint32_t>& v);
  /// Length-prefixed raw byte blob (int8 index payloads, packed structs).
  void WriteByteVector(const std::vector<std::int8_t>& v);
  /// Appends `n` bytes verbatim — no length prefix. Used by the checkpoint
  /// container to splice already-encoded section payloads.
  void WriteRaw(const void* data, std::size_t n);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> TakeBuffer() { return std::move(buffer_); }

  /// Writes the accumulated buffer to `path` crash-safely: the bytes go to
  /// `path + ".tmp"`, are flushed and fsync'd, and only then renamed over
  /// `path`. A crash mid-write leaves either the old file or the stray temp
  /// file, never a torn `path`; on any failure the temp file is deleted and
  /// the previous `path` contents are untouched.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked decoder matching BinaryWriter. All reads return Status and
/// fail with kOutOfRange on truncated input instead of crashing.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> data)
      : data_(std::move(data)) {}

  /// Loads the whole file at `path` into a reader.
  static Result<BinaryReader> FromFile(const std::string& path);

  Status ReadU32(std::uint32_t* out);
  Status ReadU64(std::uint64_t* out);
  Status ReadI64(std::int64_t* out);
  Status ReadF32(float* out);
  Status ReadF64(double* out);
  Status ReadString(std::string* out);
  Status ReadFloatVector(std::vector<float>* out);
  Status ReadU32Vector(std::vector<std::uint32_t>* out);
  Status ReadByteVector(std::vector<std::int8_t>* out);
  /// Reads exactly `n` raw bytes (no length prefix) into `*out`.
  Status ReadBytes(std::size_t n, std::vector<std::uint8_t>* out);

  /// True when all bytes have been consumed.
  bool AtEnd() const { return pos_ == data_.size(); }
  /// Bytes not yet consumed.
  std::size_t Remaining() const { return data_.size() - pos_; }

 private:
  Status ReadRaw(void* dst, std::size_t n);

  std::vector<std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace metablink::util

#endif  // METABLINK_UTIL_SERIALIZE_H_
