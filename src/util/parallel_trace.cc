#include "util/parallel_trace.h"

#include <atomic>

namespace metablink::util {

namespace {
std::atomic<ParallelTraceObserver*> g_observer{nullptr};
}  // namespace

ParallelTraceObserver* SetParallelTraceObserver(
    ParallelTraceObserver* observer) {
  return g_observer.exchange(observer, std::memory_order_acq_rel);
}

ParallelTraceObserver* GetParallelTraceObserver() {
  return g_observer.load(std::memory_order_acquire);
}

}  // namespace metablink::util
