#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace metablink::util {

std::vector<std::string> Split(std::string_view text, char delim,
                               bool skip_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) pos = text.size();
    std::string_view piece = text.substr(start, pos - start);
    if (!skip_empty || !piece.empty()) out.emplace_back(piece);
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ReplaceFirst(std::string* text, std::string_view from,
                  std::string_view to) {
  std::size_t pos = text->find(from);
  if (pos == std::string::npos) return false;
  text->replace(pos, from.size(), to);
  return true;
}

}  // namespace metablink::util
