#include "util/rng.h"

#include <cmath>

namespace metablink::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  NextUint64(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::size_t Rng::NextZipf(std::size_t n, double s) {
  if (n == 0) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.assign(n, 0.0);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (auto& c : zipf_cdf_) c /= acc;
  }
  double u = NextDouble();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<std::size_t> Rng::SampleIndices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) {
    Shuffle(&all);
    return all;
  }
  // Partial Fisher-Yates: the first k slots end up as the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + NextUint64(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return NextUint64(weights.size());
  double u = NextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

std::array<std::uint64_t, 4> Rng::state() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
}

}  // namespace metablink::util
