#ifndef METABLINK_UTIL_RNG_H_
#define METABLINK_UTIL_RNG_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace metablink::util {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in the library draws from an
/// explicitly passed `Rng` so that experiments are reproducible bit-for-bit
/// from a single seed.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). Pre: bound > 0.
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Pre: lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p = 0.5);

  /// Zipf-distributed integer in [0, n) with exponent `s` (> 0). Uses the
  /// inverse-CDF over precomputable harmonic weights; O(log n) per draw
  /// against a cached table when called repeatedly with the same (n, s).
  std::size_t NextZipf(std::size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = NextUint64(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k may exceed n, in which case
  /// all n indices are returned). Order is random.
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k);

  /// Samples an index in [0, weights.size()) proportionally to non-negative
  /// `weights`. If all weights are zero, samples uniformly.
  std::size_t NextWeighted(const std::vector<double>& weights);

  /// Derives an independent child generator; use to give each component its
  /// own stream without sequencing coupling.
  Rng Fork();

  /// The full generator state, for checkpointing. Restoring it with
  /// set_state() resumes the stream exactly where state() captured it (the
  /// Zipf table is a pure cache keyed by its inputs and needs no saving).
  std::array<std::uint64_t, 4> state() const;
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t s_[4];
  // Cache for NextZipf.
  std::size_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace metablink::util

#endif  // METABLINK_UTIL_RNG_H_
