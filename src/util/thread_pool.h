#ifndef METABLINK_UTIL_THREAD_POOL_H_
#define METABLINK_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace metablink::util {

/// Fixed-size worker pool. Used by retrieval, batched encoding, and the
/// tensor kernels to parallelize embarrassingly-parallel loops on CPU.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's own workers.
  bool OnWorkerThread() const;

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to limit queue overhead. Calling this from one of the
  /// pool's own workers (nested parallelism) degrades to a plain serial
  /// loop instead of deadlocking: the blocked worker would otherwise occupy
  /// the very slot its subtasks need.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Partitions [0, n) into at most `max_chunks` contiguous ranges
  /// (0 means one per worker) and runs fn(chunk, begin, end) for each
  /// across the pool, waiting for completion. Chunk ids are dense in
  /// [0, chunks), so callers can key per-thread scratch buffers by chunk.
  /// Returns the number of chunks used. Degrades to a single serial chunk
  /// when called from one of the pool's own workers (see ParallelFor).
  std::size_t ParallelForChunks(
      std::size_t n, std::size_t max_chunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace metablink::util

#endif  // METABLINK_UTIL_THREAD_POOL_H_
