#ifndef METABLINK_UTIL_THREAD_POOL_H_
#define METABLINK_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace metablink::util {

/// Fixed-size worker pool. Used by retrieval and batched encoding to
/// parallelize embarrassingly-parallel loops on CPU.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to limit queue overhead.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace metablink::util

#endif  // METABLINK_UTIL_THREAD_POOL_H_
