#ifndef METABLINK_UTIL_LOGGING_H_
#define METABLINK_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace metablink::util {

/// Log severities, in increasing order.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns/sets the process-wide minimum severity that is emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// One log statement; flushes on destruction. kFatal aborts the process.
/// Use via the METABLINK_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace metablink::util

/// Usage: METABLINK_LOG(kInfo) << "trained " << n << " steps";
#define METABLINK_LOG(severity)                                     \
  ::metablink::util::LogMessage(::metablink::util::LogLevel::severity, \
                                __FILE__, __LINE__)                  \
      .stream()

/// Fatal-on-false invariant check (enabled in all build types, including
/// RelWithDebInfo/Release). On failure the message carries the caller's
/// file:line (METABLINK_LOG expands __FILE__/__LINE__ at the use site) and
/// the stringified condition, then any streamed detail:
///
///   [FATAL graph.cc:212] Check failed: ta.cols() == tb.rows() MatMul ...
///
/// The `if/else` spelling (rather than a bare `if (!(cond))`) keeps the
/// macro safe inside unbraced if/else at the call site — a trailing `else`
/// binds to the macro's own `if` instead of silently re-pairing with the
/// caller's — while still allowing `METABLINK_CHECK(x) << "detail"`.
#define METABLINK_CHECK(cond)                                      \
  if (cond) {                                                       \
  } else                                                            \
    METABLINK_LOG(kFatal) << "Check failed: " #cond " "

#endif  // METABLINK_UTIL_LOGGING_H_
