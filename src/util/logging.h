#ifndef METABLINK_UTIL_LOGGING_H_
#define METABLINK_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace metablink::util {

/// Log severities, in increasing order.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns/sets the process-wide minimum severity that is emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// One log statement; flushes on destruction. kFatal aborts the process.
/// Use via the METABLINK_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace metablink::util

/// Usage: METABLINK_LOG(kInfo) << "trained " << n << " steps";
#define METABLINK_LOG(severity)                                     \
  ::metablink::util::LogMessage(::metablink::util::LogLevel::severity, \
                                __FILE__, __LINE__)                  \
      .stream()

/// Fatal-on-false invariant check (enabled in all build types).
#define METABLINK_CHECK(cond)                                      \
  if (!(cond))                                                      \
  METABLINK_LOG(kFatal) << "Check failed: " #cond " "

#endif  // METABLINK_UTIL_LOGGING_H_
