#ifndef METABLINK_UTIL_STRING_UTIL_H_
#define METABLINK_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace metablink::util {

/// Splits `text` on `delim`, optionally dropping empty pieces.
std::vector<std::string> Split(std::string_view text, char delim,
                               bool skip_empty = false);

/// Splits `text` on any ASCII whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `haystack` contains `needle` as a substring.
bool Contains(std::string_view haystack, std::string_view needle);

/// Replaces the first occurrence of `from` in `text` with `to`. Returns true
/// if a replacement happened.
bool ReplaceFirst(std::string* text, std::string_view from,
                  std::string_view to);

}  // namespace metablink::util

#endif  // METABLINK_UTIL_STRING_UTIL_H_
