#include "util/serialize.h"

#include <cstdio>

#include "util/string_util.h"

namespace metablink::util {

namespace {
template <typename T>
void AppendRaw(std::vector<std::uint8_t>* buf, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf->insert(buf->end(), p, p + sizeof(T));
}
}  // namespace

void BinaryWriter::WriteU32(std::uint32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU64(std::uint64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteI64(std::int64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF32(float v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF64(double v) { AppendRaw(&buffer_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), p, p + v.size() * sizeof(float));
}

void BinaryWriter::WriteU32Vector(const std::vector<std::uint32_t>& v) {
  WriteU64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), p, p + v.size() * sizeof(std::uint32_t));
}

void BinaryWriter::WriteByteVector(const std::vector<std::int8_t>& v) {
  WriteU64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), p, p + v.size());
}

Status BinaryWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for writing", path.c_str()));
  }
  std::size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (written != buffer_.size()) {
    return Status::IoError(StrFormat("short write to %s", path.c_str()));
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for reading", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  std::size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) {
    return Status::IoError(StrFormat("short read from %s", path.c_str()));
  }
  return BinaryReader(std::move(data));
}

Status BinaryReader::ReadRaw(void* dst, std::size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("truncated input buffer");
  }
  std::memcpy(dst, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadU32(std::uint32_t* out) {
  return ReadRaw(out, sizeof(*out));
}
Status BinaryReader::ReadU64(std::uint64_t* out) {
  return ReadRaw(out, sizeof(*out));
}
Status BinaryReader::ReadI64(std::int64_t* out) {
  return ReadRaw(out, sizeof(*out));
}
Status BinaryReader::ReadF32(float* out) { return ReadRaw(out, sizeof(*out)); }
Status BinaryReader::ReadF64(double* out) { return ReadRaw(out, sizeof(*out)); }

Status BinaryReader::ReadString(std::string* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("truncated string");
  }
  out->assign(reinterpret_cast<const char*>(data_.data() + pos_),
              static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return Status::OK();
}

Status BinaryReader::ReadFloatVector(std::vector<float>* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n * sizeof(float) > data_.size()) {
    return Status::OutOfRange("truncated float vector");
  }
  out->resize(static_cast<std::size_t>(n));
  return ReadRaw(out->data(), out->size() * sizeof(float));
}

Status BinaryReader::ReadU32Vector(std::vector<std::uint32_t>* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n * sizeof(std::uint32_t) > data_.size()) {
    return Status::OutOfRange("truncated u32 vector");
  }
  out->resize(static_cast<std::size_t>(n));
  return ReadRaw(out->data(), out->size() * sizeof(std::uint32_t));
}

Status BinaryReader::ReadByteVector(std::vector<std::int8_t>* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("truncated byte vector");
  }
  out->resize(static_cast<std::size_t>(n));
  return ReadRaw(out->data(), out->size());
}

}  // namespace metablink::util
