#include "util/serialize.h"

#include <unistd.h>

#include <array>
#include <cstdio>

#include "util/string_util.h"

namespace metablink::util {

namespace {
template <typename T>
void AppendRaw(std::vector<std::uint8_t>* buf, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf->insert(buf->end(), p, p + sizeof(T));
}

std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = MakeCrc32Table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BinaryWriter::WriteU32(std::uint32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU64(std::uint64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteI64(std::int64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF32(float v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteF64(double v) { AppendRaw(&buffer_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), p, p + v.size() * sizeof(float));
}

void BinaryWriter::WriteU32Vector(const std::vector<std::uint32_t>& v) {
  WriteU64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), p, p + v.size() * sizeof(std::uint32_t));
}

void BinaryWriter::WriteByteVector(const std::vector<std::int8_t>& v) {
  WriteU64(v.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  buffer_.insert(buffer_.end(), p, p + v.size());
}

void BinaryWriter::WriteRaw(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
}

Status BinaryWriter::WriteToFile(const std::string& path) const {
  // Temp-file + rename: `path` is only ever replaced by a fully flushed
  // file, so a crash at any point leaves the previous contents readable.
  // The temp lives next to the target (rename must not cross filesystems).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for writing", tmp.c_str()));
  }
  const std::size_t written =
      buffer_.empty() ? 0 : std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  bool ok = written == buffer_.size();
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError(StrFormat("short write to %s", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError(
        StrFormat("cannot rename %s over %s", tmp.c_str(), path.c_str()));
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot open %s for reading", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  std::size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) {
    return Status::IoError(StrFormat("short read from %s", path.c_str()));
  }
  return BinaryReader(std::move(data));
}

Status BinaryReader::ReadRaw(void* dst, std::size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("truncated input buffer");
  }
  std::memcpy(dst, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadU32(std::uint32_t* out) {
  return ReadRaw(out, sizeof(*out));
}
Status BinaryReader::ReadU64(std::uint64_t* out) {
  return ReadRaw(out, sizeof(*out));
}
Status BinaryReader::ReadI64(std::int64_t* out) {
  return ReadRaw(out, sizeof(*out));
}
Status BinaryReader::ReadF32(float* out) { return ReadRaw(out, sizeof(*out)); }
Status BinaryReader::ReadF64(double* out) { return ReadRaw(out, sizeof(*out)); }

Status BinaryReader::ReadString(std::string* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("truncated string");
  }
  out->assign(reinterpret_cast<const char*>(data_.data() + pos_),
              static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return Status::OK();
}

Status BinaryReader::ReadFloatVector(std::vector<float>* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n * sizeof(float) > data_.size()) {
    return Status::OutOfRange("truncated float vector");
  }
  out->resize(static_cast<std::size_t>(n));
  return ReadRaw(out->data(), out->size() * sizeof(float));
}

Status BinaryReader::ReadU32Vector(std::vector<std::uint32_t>* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n * sizeof(std::uint32_t) > data_.size()) {
    return Status::OutOfRange("truncated u32 vector");
  }
  out->resize(static_cast<std::size_t>(n));
  return ReadRaw(out->data(), out->size() * sizeof(std::uint32_t));
}

Status BinaryReader::ReadByteVector(std::vector<std::int8_t>* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(ReadU64(&n));
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("truncated byte vector");
  }
  out->resize(static_cast<std::size_t>(n));
  return ReadRaw(out->data(), out->size());
}

Status BinaryReader::ReadBytes(std::size_t n, std::vector<std::uint8_t>* out) {
  if (n > data_.size() - pos_) {  // overflow-safe bound check
    return Status::OutOfRange("truncated raw bytes");
  }
  out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return Status::OK();
}

}  // namespace metablink::util
