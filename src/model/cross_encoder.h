#ifndef METABLINK_MODEL_CROSS_ENCODER_H_
#define METABLINK_MODEL_CROSS_ENCODER_H_

#include <string>
#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "model/features.h"
#include "store/checkpoint.h"
#include "tensor/graph.h"
#include "tensor/parameter.h"
#include "util/rng.h"
#include "util/status.h"

namespace metablink::model {

/// Cross-encoder hyperparameters.
struct CrossEncoderConfig {
  FeatureConfig features;
  /// Embedding dimension of the joint representation.
  std::size_t dim = 64;
  /// Hidden width of the scoring MLP.
  std::size_t hidden = 64;
};

/// Caller-owned scratch for ScoreInference. Reused across calls, the
/// numeric path is allocation-free after warm-up.
struct CrossScoreScratch {
  std::vector<std::uint32_t> mention_bag;
  std::vector<std::vector<std::uint32_t>> entity_bags;
  std::vector<float> mention_vec;  // [dim] pooled + tanh'd mention tower
  tensor::Tensor entity_vec;       // [c, dim] pooled + tanh'd entities
  tensor::Tensor input;            // [c, 3*dim + kNumOverlapFeatures]
  tensor::Tensor hidden;           // [c, hidden]
  tensor::Tensor score;            // [c, 1]
  MentionTokens mention_tokens;    // used by ScoreCachedInference only
};

/// Everything about a fixed entity set that candidate scoring reuses:
/// the pooled + tanh'd entity-tower rows and the precomputed overlap
/// tokens. Built once per served domain (PrecomputeEntities); row i of
/// `entity_vec` / `tokens` corresponds to entity i of the input list.
struct CrossEntityCache {
  tensor::Tensor entity_vec;  // [n, dim]
  std::vector<CachedEntityTokens> tokens;
};

/// BLINK-style cross-encoder: stage-2 ranker that jointly reads the mention
/// (with context) and a candidate entity (with description) and outputs a
/// relevance score. Where BLINK concatenates the texts into one BERT pass,
/// this model concatenates [mention_vec, entity_vec, mention_vec *
/// entity_vec, dense overlap features] and scores with an MLP — a joint
/// interaction representation the bi-encoder cannot express.
class CrossEncoder {
 public:
  CrossEncoder(CrossEncoderConfig config, util::Rng* rng);

  /// Scores every candidate for one mention; returns a [c, 1] Var.
  tensor::Var ScoreCandidates(tensor::Graph* graph,
                              const data::LinkingExample& example,
                              const std::vector<kb::Entity>& candidates) const;

  /// Softmax cross-entropy ranking loss over the candidate list; returns a
  /// [1,1] Var. Pre: gold_index < candidates.size().
  tensor::Var RankingLoss(tensor::Graph* graph,
                          const data::LinkingExample& example,
                          const std::vector<kb::Entity>& candidates,
                          std::size_t gold_index) const;

  /// Inference scores for the candidates (no gradients kept).
  std::vector<float> Score(const data::LinkingExample& example,
                           const std::vector<kb::Entity>& candidates) const;

  /// Tape-free inference: the identical forward computation as
  /// ScoreCandidates run directly through tensor::kernels — zero Graph
  /// nodes, and allocation-free after warm-up when `scratch` and `*out`
  /// are reused. Appends candidate scores to `*out` after clearing it.
  /// Results are bit-identical to Score().
  void ScoreInference(const data::LinkingExample& example,
                      const std::vector<kb::Entity>& candidates,
                      CrossScoreScratch* scratch,
                      std::vector<float>* out) const;

  /// Builds the reusable entity-side cache for a fixed entity set (a
  /// served domain's KB slice).
  void PrecomputeEntities(const std::vector<kb::Entity>& entities,
                          CrossEntityCache* out) const;

  /// ScoreInference against cache rows instead of raw entities: candidate
  /// i is row `rows[i]` of `cache`. The per-candidate tokenization,
  /// hashing, and embedding-bag gather all disappear; scores are
  /// bit-identical to ScoreInference / Score on the same entities.
  void ScoreCachedInference(const data::LinkingExample& example,
                            const std::vector<std::size_t>& rows,
                            const CrossEntityCache& cache,
                            CrossScoreScratch* scratch,
                            std::vector<float>* out) const;

  /// Runs just the mention tower (bag gather + tanh) into
  /// scratch->mention_vec — the per-request half of ScoreCachedInference,
  /// exposed so the cascade's distilled tier can take the mention/entity
  /// tower dot without paying for the scoring MLP. Bit-identical to the
  /// vector ScoreCachedInference computes internally.
  void MentionVecInto(const data::LinkingExample& example,
                      CrossScoreScratch* scratch) const;

  tensor::ParameterStore* params() { return &params_; }
  const tensor::ParameterStore* params() const { return &params_; }
  const Featurizer& featurizer() const { return featurizer_; }
  const CrossEncoderConfig& config() const { return config_; }

  // ---- Checkpointing -----------------------------------------------------

  /// Adds "cross_config" + "cross_params" sections to `ckpt`.
  void SaveCheckpoint(store::CheckpointWriter* ckpt) const;

  /// Restores weights from a container written by SaveCheckpoint. The
  /// stored config must match this model's (InvalidArgument otherwise).
  util::Status LoadCheckpoint(const store::CheckpointReader& ckpt);

  /// Reads just the stored config, so a caller can construct a matching
  /// model before LoadCheckpoint.
  static util::Result<CrossEncoderConfig> ReadConfig(
      const store::CheckpointReader& ckpt);

  /// Writes a framed checkpoint container (see store::CheckpointWriter).
  util::Status SaveToFile(const std::string& path) const;
  /// Loads either a framed container or the legacy headerless "CR"-tagged
  /// format (files written before the store subsystem existed).
  util::Status LoadFromFile(const std::string& path);

 private:
  CrossEncoderConfig config_;
  Featurizer featurizer_;
  tensor::ParameterStore params_;
  tensor::Parameter* table_;      // shared embedding table for both texts
  tensor::Parameter* w1_;         // [3*dim + kNumOverlapFeatures, hidden]
  tensor::Parameter* b1_;         // [1, hidden]
  tensor::Parameter* w2_;         // [hidden, 1]
  tensor::Parameter* b2_;         // [1, 1]
};

}  // namespace metablink::model

#endif  // METABLINK_MODEL_CROSS_ENCODER_H_
