#ifndef METABLINK_MODEL_FEATURES_H_
#define METABLINK_MODEL_FEATURES_H_

#include <cstdint>
#include <vector>

#include "data/example.h"
#include "kb/entity.h"
#include "text/feature_hashing.h"
#include "text/tokenizer.h"

namespace metablink::model {

/// Field seeds separating the hashed feature spaces of the different text
/// fields (mention surface vs. context vs. title vs. description).
enum FieldSeed : std::uint64_t {
  kFieldMention = 11,
  kFieldContext = 22,
  kFieldTitle = 33,
  kFieldDescription = 44,
};

/// Number of dense overlap features produced by OverlapFeatures().
inline constexpr std::size_t kNumOverlapFeatures = 6;

/// Shared featurization config for both encoders.
struct FeatureConfig {
  text::FeatureHasherOptions hasher;
};

/// Converts examples and entities into hashed feature bags — the input
/// representation of both encoders (the stand-in for BERT's tokenizer +
/// embedding layer; see DESIGN.md §1).
class Featurizer {
 public:
  explicit Featurizer(FeatureConfig config = {});

  /// Mention-side bag: mention tokens (kFieldMention) + left/right context
  /// tokens (kFieldContext). This is ENCODER^m's input (eq. 3).
  std::vector<std::uint32_t> MentionBag(
      const data::LinkingExample& example) const;

  /// Entity-side bag: title tokens (kFieldTitle) + description tokens
  /// (kFieldDescription). This is ENCODER^e's input (eq. 4).
  std::vector<std::uint32_t> EntityBag(const kb::Entity& entity) const;

  /// Dense lexical-interaction features for the cross-encoder:
  /// [mention==title, mention substring-of title, jaccard(mention, title),
  ///  jaccard(context, description), fraction of mention tokens in
  ///  description, fraction of context tokens in description].
  std::vector<float> OverlapFeatures(const data::LinkingExample& example,
                                     const kb::Entity& entity) const;

  std::uint32_t num_buckets() const { return hasher_.num_buckets(); }

 private:
  text::Tokenizer tokenizer_;
  text::FeatureHasher hasher_;
};

}  // namespace metablink::model

#endif  // METABLINK_MODEL_FEATURES_H_
