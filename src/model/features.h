#ifndef METABLINK_MODEL_FEATURES_H_
#define METABLINK_MODEL_FEATURES_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "data/example.h"
#include "kb/entity.h"
#include "text/feature_hashing.h"
#include "text/tokenizer.h"
#include "util/serialize.h"
#include "util/status.h"

namespace metablink::model {

/// Field seeds separating the hashed feature spaces of the different text
/// fields (mention surface vs. context vs. title vs. description).
enum FieldSeed : std::uint64_t {
  kFieldMention = 11,
  kFieldContext = 22,
  kFieldTitle = 33,
  kFieldDescription = 44,
};

/// Number of dense overlap features produced by OverlapFeatures().
inline constexpr std::size_t kNumOverlapFeatures = 6;

/// Shared featurization config for both encoders.
struct FeatureConfig {
  text::FeatureHasherOptions hasher;
};

/// Serializes `config` so a checkpoint records the exact feature space its
/// weights were trained in (bucket count and n-gram settings change the
/// hashed input representation, so loading weights under a different
/// config would be silently wrong).
void SaveFeatureConfig(const FeatureConfig& config, util::BinaryWriter* writer);
util::Status LoadFeatureConfig(util::BinaryReader* reader, FeatureConfig* out);

/// True when the two configs describe the same hashed feature space.
bool FeatureConfigsMatch(const FeatureConfig& a, const FeatureConfig& b);

/// Entity-side text work that does not depend on the mention, precomputed
/// once per entity for the serving path: tokenized + set-ified title and
/// description (for jaccard/coverage features) and the match-normalized
/// title forms (for the overlap category).
struct CachedEntityTokens {
  std::unordered_set<std::string> title_set;
  std::unordered_set<std::string> desc_set;
  std::string norm_title;
  /// Normalized title with its trailing "(...)" phrase stripped; only
  /// meaningful when has_phrase.
  std::string norm_base;
  bool has_phrase = false;
};

/// Mention-side text work shared by every candidate of one request.
struct MentionTokens {
  std::vector<std::string> mention_tokens;
  std::vector<std::string> context_tokens;
  std::unordered_set<std::string> mention_set;
  std::unordered_set<std::string> context_set;
  std::string norm_mention;
};

/// Converts examples and entities into hashed feature bags — the input
/// representation of both encoders (the stand-in for BERT's tokenizer +
/// embedding layer; see DESIGN.md §1).
class Featurizer {
 public:
  explicit Featurizer(FeatureConfig config = {});

  /// Mention-side bag: mention tokens (kFieldMention) + left/right context
  /// tokens (kFieldContext). This is ENCODER^m's input (eq. 3).
  std::vector<std::uint32_t> MentionBag(
      const data::LinkingExample& example) const;

  /// Entity-side bag: title tokens (kFieldTitle) + description tokens
  /// (kFieldDescription). This is ENCODER^e's input (eq. 4).
  std::vector<std::uint32_t> EntityBag(const kb::Entity& entity) const;

  /// Buffer-reusing variants for the tape-free serving path: clear `*out`
  /// and refill it, keeping its capacity across calls.
  void MentionBagInto(const data::LinkingExample& example,
                      std::vector<std::uint32_t>* out) const;
  void EntityBagInto(const kb::Entity& entity,
                     std::vector<std::uint32_t>* out) const;

  /// Writes the kNumOverlapFeatures dense features into `out[0..5]`.
  void OverlapFeaturesInto(const data::LinkingExample& example,
                           const kb::Entity& entity, float* out) const;

  /// Precomputed-overlap serving path. OverlapFeaturesCached produces
  /// exactly the values of OverlapFeatures() with the entity-side
  /// tokenization, normalization, and set construction hoisted out of the
  /// per-(mention, candidate) loop.
  void PrecomputeEntityTokens(const kb::Entity& entity,
                              CachedEntityTokens* out) const;
  void PrecomputeMentionTokens(const data::LinkingExample& example,
                               MentionTokens* out) const;
  void OverlapFeaturesCached(const MentionTokens& mention,
                             const CachedEntityTokens& entity,
                             float* out) const;

  /// Dense lexical-interaction features for the cross-encoder:
  /// [mention==title, mention substring-of title, jaccard(mention, title),
  ///  jaccard(context, description), fraction of mention tokens in
  ///  description, fraction of context tokens in description].
  std::vector<float> OverlapFeatures(const data::LinkingExample& example,
                                     const kb::Entity& entity) const;

  std::uint32_t num_buckets() const { return hasher_.num_buckets(); }

 private:
  text::Tokenizer tokenizer_;
  text::FeatureHasher hasher_;
};

}  // namespace metablink::model

#endif  // METABLINK_MODEL_FEATURES_H_
