#ifndef METABLINK_MODEL_BI_ENCODER_H_
#define METABLINK_MODEL_BI_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/example.h"
#include "kb/knowledge_base.h"
#include "model/features.h"
#include "store/checkpoint.h"
#include "tensor/graph.h"
#include "tensor/parameter.h"
#include "util/rng.h"
#include "util/status.h"

namespace metablink::model {

/// Bi-encoder hyperparameters.
struct BiEncoderConfig {
  FeatureConfig features;
  /// Embedding / representation dimension.
  std::size_t dim = 64;
};

/// Caller-owned scratch for the tape-free encode path. Reusing one scratch
/// across calls makes the numeric path (gather + tanh + GEMM + normalize)
/// allocation-free after warm-up; buffers only ever grow.
struct EncodeScratch {
  std::vector<std::vector<std::uint32_t>> bags;
  tensor::Tensor hidden;  // [n, dim] pooled bag, tanh'd in place
};

/// BLINK-style bi-encoder: two independent towers (ENCODER^m, ENCODER^e of
/// eq. 3-4) embed mentions-with-context and entities-with-description into a
/// shared d-dimensional space; the match score (eq. 5) is the dot product of
/// L2-normalized representations, and training uses the in-batch-negatives
/// loss of eq. 6. Stage-1 candidate generation retrieves the top-64 entities
/// by this score.
///
/// Each tower is EmbeddingBag(hashed features) -> tanh -> Linear -> L2-norm.
class BiEncoder {
 public:
  /// Builds a freshly initialized model.
  BiEncoder(BiEncoderConfig config, util::Rng* rng);

  /// Encodes a batch of mentions; returns a [n, dim] Var of unit rows.
  tensor::Var EncodeMentions(
      tensor::Graph* graph,
      const std::vector<data::LinkingExample>& examples) const;

  /// Encodes a batch of entities; returns a [n, dim] Var of unit rows.
  tensor::Var EncodeEntities(tensor::Graph* graph,
                             const std::vector<kb::Entity>& entities) const;

  /// Per-example in-batch-negatives loss (eq. 6): the batch's entities act
  /// as each other's negatives. Returns a [n,1] Var of losses.
  tensor::Var InBatchLoss(tensor::Graph* graph,
                          const std::vector<data::LinkingExample>& examples,
                          const kb::KnowledgeBase& kb) const;

  /// Inference: embeds all `ids` without building gradient state the caller
  /// cares about. Returns a [ids.size(), dim] tensor.
  tensor::Tensor EmbedEntityIds(const std::vector<kb::EntityId>& ids,
                                const kb::KnowledgeBase& kb) const;

  /// Inference: embeds mentions. Returns [examples.size(), dim].
  tensor::Tensor EmbedMentions(
      const std::vector<data::LinkingExample>& examples) const;

  // ---- Tape-free serving path --------------------------------------------
  //
  // The Encode*Inference methods run the identical forward computation as
  // the Graph path (EmbeddingBag mean gather -> tanh -> projection GEMM ->
  // row L2 normalize) directly through tensor::kernels: zero Graph nodes,
  // no tape metadata, and no allocations after warm-up when `scratch` and
  // `*out` are reused. Results are bit-identical to EmbedMentions /
  // EmbedEntityIds (same kernels, same accumulation order).

  /// Encodes mentions into `*out` ([examples.size(), dim] unit rows).
  void EncodeMentionsInference(
      const std::vector<data::LinkingExample>& examples,
      EncodeScratch* scratch, tensor::Tensor* out) const;

  /// Encodes entities into `*out` ([entities.size(), dim] unit rows).
  void EncodeEntitiesInference(const std::vector<kb::Entity>& entities,
                               EncodeScratch* scratch,
                               tensor::Tensor* out) const;

  /// Encodes pre-featurized bags through the mention tower. `n` rows of
  /// `scratch->bags` are consumed; lets callers (e.g. the feature cache)
  /// featurize separately from encoding.
  void EncodeMentionBagsInference(std::size_t n, EncodeScratch* scratch,
                                  tensor::Tensor* out) const;

  tensor::ParameterStore* params() { return &params_; }
  const tensor::ParameterStore* params() const { return &params_; }
  const Featurizer& featurizer() const { return featurizer_; }
  const BiEncoderConfig& config() const { return config_; }
  std::size_t dim() const { return config_.dim; }

  // ---- Checkpointing -----------------------------------------------------

  /// Adds "bi_config" + "bi_params" sections to `ckpt`.
  void SaveCheckpoint(store::CheckpointWriter* ckpt) const;

  /// Restores weights from a container written by SaveCheckpoint. The
  /// stored config must match this model's (InvalidArgument otherwise).
  util::Status LoadCheckpoint(const store::CheckpointReader& ckpt);

  /// Reads just the stored config, so a caller can construct a matching
  /// model before LoadCheckpoint.
  static util::Result<BiEncoderConfig> ReadConfig(
      const store::CheckpointReader& ckpt);

  /// Writes a framed checkpoint container (see store::CheckpointWriter).
  util::Status SaveToFile(const std::string& path) const;
  /// Loads either a framed container or the legacy headerless "BI"-tagged
  /// format (files written before the store subsystem existed).
  util::Status LoadFromFile(const std::string& path);

 private:
  tensor::Var EncodeBags(tensor::Graph* graph,
                         std::vector<std::vector<std::uint32_t>> bags,
                         tensor::Parameter* table, tensor::Parameter* proj,
                         tensor::Parameter* bias) const;

  /// Tape-free tower forward over the first `n` bags in `scratch->bags`.
  void EncodeBagsInference(std::size_t n, const tensor::Parameter& table,
                           const tensor::Parameter& proj,
                           EncodeScratch* scratch, tensor::Tensor* out) const;

  BiEncoderConfig config_;
  Featurizer featurizer_;
  tensor::ParameterStore params_;
  tensor::Parameter* mention_table_;
  tensor::Parameter* mention_proj_;
  tensor::Parameter* mention_bias_;
  tensor::Parameter* entity_table_;
  tensor::Parameter* entity_proj_;
  tensor::Parameter* entity_bias_;
};

}  // namespace metablink::model

#endif  // METABLINK_MODEL_BI_ENCODER_H_
