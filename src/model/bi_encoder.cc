#include "model/bi_encoder.h"

#include <numeric>

#include "util/serialize.h"

namespace metablink::model {

BiEncoder::BiEncoder(BiEncoderConfig config, util::Rng* rng)
    : config_(config), featurizer_(config.features) {
  const std::size_t buckets = featurizer_.num_buckets();
  const std::size_t d = config_.dim;
  // Small-normal embedding init keeps initial bag norms well-scaled.
  mention_table_ = params_.CreateEmbedding("mention_table", buckets, d, 0.1f, rng);
  mention_proj_ = params_.CreateXavier("mention_proj", d, d, rng);
  mention_bias_ = params_.Create("mention_bias", 1, d);
  entity_table_ = params_.CreateEmbedding("entity_table", buckets, d, 0.1f, rng);
  entity_proj_ = params_.CreateXavier("entity_proj", d, d, rng);
  entity_bias_ = params_.Create("entity_bias", 1, d);
}

tensor::Var BiEncoder::EncodeBags(
    tensor::Graph* graph, std::vector<std::vector<std::uint32_t>> bags,
    tensor::Parameter* table, tensor::Parameter* proj,
    tensor::Parameter* bias) const {
  (void)bias;
  tensor::Var pooled = graph->EmbeddingBagMean(table, std::move(bags));
  tensor::Var hidden = graph->Tanh(pooled);
  // No bias before the L2 normalization: a shared offset direction adds a
  // large example-independent component to every per-example gradient,
  // which drowns the meta reweighting signal (gradient dot products).
  tensor::Var projected = graph->MatMul(hidden, graph->Param(proj));
  return graph->RowL2Normalize(projected);
}

tensor::Var BiEncoder::EncodeMentions(
    tensor::Graph* graph,
    const std::vector<data::LinkingExample>& examples) const {
  std::vector<std::vector<std::uint32_t>> bags;
  bags.reserve(examples.size());
  for (const auto& ex : examples) bags.push_back(featurizer_.MentionBag(ex));
  return EncodeBags(graph, std::move(bags), mention_table_, mention_proj_,
                    mention_bias_);
}

tensor::Var BiEncoder::EncodeEntities(
    tensor::Graph* graph, const std::vector<kb::Entity>& entities) const {
  std::vector<std::vector<std::uint32_t>> bags;
  bags.reserve(entities.size());
  for (const auto& e : entities) bags.push_back(featurizer_.EntityBag(e));
  return EncodeBags(graph, std::move(bags), entity_table_, entity_proj_,
                    entity_bias_);
}

tensor::Var BiEncoder::InBatchLoss(
    tensor::Graph* graph, const std::vector<data::LinkingExample>& examples,
    const kb::KnowledgeBase& kb) const {
  std::vector<kb::Entity> entities;
  entities.reserve(examples.size());
  for (const auto& ex : examples) entities.push_back(kb.entity(ex.entity_id));
  tensor::Var mentions = EncodeMentions(graph, examples);
  tensor::Var ents = EncodeEntities(graph, entities);
  // Scores scaled up so softmax over unit-vector dot products (range
  // [-1, 1]) has usable dynamic range — a fixed inverse temperature.
  tensor::Var scores = graph->Scale(graph->MatMulTransposeB(mentions, ents),
                                    10.0f);
  std::vector<std::size_t> targets(examples.size());
  std::iota(targets.begin(), targets.end(), 0);
  return graph->SoftmaxCrossEntropy(scores, std::move(targets));
}

tensor::Tensor BiEncoder::EmbedEntityIds(const std::vector<kb::EntityId>& ids,
                                         const kb::KnowledgeBase& kb) const {
  std::vector<kb::Entity> entities;
  entities.reserve(ids.size());
  for (kb::EntityId id : ids) entities.push_back(kb.entity(id));
  tensor::Graph graph;
  tensor::Var v = EncodeEntities(&graph, entities);
  return graph.value(v);
}

tensor::Tensor BiEncoder::EmbedMentions(
    const std::vector<data::LinkingExample>& examples) const {
  tensor::Graph graph;
  tensor::Var v = EncodeMentions(&graph, examples);
  return graph.value(v);
}

util::Status BiEncoder::SaveToFile(const std::string& path) const {
  util::BinaryWriter writer;
  writer.WriteU32(0x4249u);  // "BI" tag
  params_.Save(&writer);
  return writer.WriteToFile(path);
}

util::Status BiEncoder::LoadFromFile(const std::string& path) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&tag));
  return params_.Load(&*reader);
}

}  // namespace metablink::model
