#include "model/bi_encoder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/kernels.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace metablink::model {

BiEncoder::BiEncoder(BiEncoderConfig config, util::Rng* rng)
    : config_(config), featurizer_(config.features) {
  const std::size_t buckets = featurizer_.num_buckets();
  const std::size_t d = config_.dim;
  // Small-normal embedding init keeps initial bag norms well-scaled.
  mention_table_ = params_.CreateEmbedding("mention_table", buckets, d, 0.1f, rng);
  mention_proj_ = params_.CreateXavier("mention_proj", d, d, rng);
  mention_bias_ = params_.Create("mention_bias", 1, d);
  entity_table_ = params_.CreateEmbedding("entity_table", buckets, d, 0.1f, rng);
  entity_proj_ = params_.CreateXavier("entity_proj", d, d, rng);
  entity_bias_ = params_.Create("entity_bias", 1, d);
}

tensor::Var BiEncoder::EncodeBags(
    tensor::Graph* graph, std::vector<std::vector<std::uint32_t>> bags,
    tensor::Parameter* table, tensor::Parameter* proj,
    tensor::Parameter* bias) const {
  (void)bias;
  tensor::Var pooled = graph->EmbeddingBagMean(table, std::move(bags));
  tensor::Var hidden = graph->Tanh(pooled);
  // No bias before the L2 normalization: a shared offset direction adds a
  // large example-independent component to every per-example gradient,
  // which drowns the meta reweighting signal (gradient dot products).
  tensor::Var projected = graph->MatMul(hidden, graph->Param(proj));
  return graph->RowL2Normalize(projected);
}

tensor::Var BiEncoder::EncodeMentions(
    tensor::Graph* graph,
    const std::vector<data::LinkingExample>& examples) const {
  std::vector<std::vector<std::uint32_t>> bags;
  bags.reserve(examples.size());
  for (const auto& ex : examples) bags.push_back(featurizer_.MentionBag(ex));
  return EncodeBags(graph, std::move(bags), mention_table_, mention_proj_,
                    mention_bias_);
}

tensor::Var BiEncoder::EncodeEntities(
    tensor::Graph* graph, const std::vector<kb::Entity>& entities) const {
  std::vector<std::vector<std::uint32_t>> bags;
  bags.reserve(entities.size());
  for (const auto& e : entities) bags.push_back(featurizer_.EntityBag(e));
  return EncodeBags(graph, std::move(bags), entity_table_, entity_proj_,
                    entity_bias_);
}

tensor::Var BiEncoder::InBatchLoss(
    tensor::Graph* graph, const std::vector<data::LinkingExample>& examples,
    const kb::KnowledgeBase& kb) const {
  std::vector<kb::Entity> entities;
  entities.reserve(examples.size());
  for (const auto& ex : examples) entities.push_back(kb.entity(ex.entity_id));
  tensor::Var mentions = EncodeMentions(graph, examples);
  tensor::Var ents = EncodeEntities(graph, entities);
  // Scores scaled up so softmax over unit-vector dot products (range
  // [-1, 1]) has usable dynamic range — a fixed inverse temperature.
  tensor::Var scores = graph->Scale(graph->MatMulTransposeB(mentions, ents),
                                    10.0f);
  std::vector<std::size_t> targets(examples.size());
  std::iota(targets.begin(), targets.end(), 0);
  return graph->SoftmaxCrossEntropy(scores, std::move(targets));
}

tensor::Tensor BiEncoder::EmbedEntityIds(const std::vector<kb::EntityId>& ids,
                                         const kb::KnowledgeBase& kb) const {
  std::vector<kb::Entity> entities;
  entities.reserve(ids.size());
  for (kb::EntityId id : ids) entities.push_back(kb.entity(id));
  tensor::Graph graph;
  tensor::Var v = EncodeEntities(&graph, entities);
  return graph.value(v);
}

tensor::Tensor BiEncoder::EmbedMentions(
    const std::vector<data::LinkingExample>& examples) const {
  tensor::Graph graph;
  tensor::Var v = EncodeMentions(&graph, examples);
  return graph.value(v);
}

void BiEncoder::EncodeBagsInference(std::size_t n,
                                    const tensor::Parameter& table,
                                    const tensor::Parameter& proj,
                                    EncodeScratch* scratch,
                                    tensor::Tensor* out) const {
  const std::size_t d = config_.dim;
  METABLINK_CHECK(scratch->bags.size() >= n) << "not enough featurized bags";
  // Mean-pool the embedding bags — the same ascending-id Axpy accumulation
  // as Graph::EmbeddingBagMean's forward gather.
  scratch->hidden.Resize(n, d);
  for (std::size_t b = 0; b < n; ++b) {
    const auto& bag = scratch->bags[b];
    if (bag.empty()) continue;
    const float inv = 1.0f / static_cast<float>(bag.size());
    float* dst = scratch->hidden.row_data(b);
    for (std::uint32_t id : bag) {
      METABLINK_CHECK(id < table.value.rows()) << "embedding id out of range";
      tensor::Axpy(inv, table.value.row_data(id), dst, d);
    }
  }
  for (float& v : scratch->hidden.data()) v = std::tanh(v);
  // Projection through the same serial blocked kernel Graph::MatMul uses.
  out->Resize(n, d);
  tensor::GemmRaw(scratch->hidden.data().data(), proj.value.data().data(),
                  out->data().data(), n, d, d);
  // Row L2 normalization, identical formula to Graph::RowL2Normalize
  // (norm floored at the same epsilon).
  constexpr float kEps = 1e-8f;
  for (std::size_t i = 0; i < n; ++i) {
    float* row = out->row_data(i);
    const float n2 = tensor::Dot(row, row, d);
    const float inv = 1.0f / std::max(std::sqrt(n2), kEps);
    for (std::size_t c = 0; c < d; ++c) row[c] *= inv;
  }
}

void BiEncoder::EncodeMentionsInference(
    const std::vector<data::LinkingExample>& examples, EncodeScratch* scratch,
    tensor::Tensor* out) const {
  const std::size_t n = examples.size();
  if (scratch->bags.size() < n) scratch->bags.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    featurizer_.MentionBagInto(examples[i], &scratch->bags[i]);
  }
  EncodeBagsInference(n, *mention_table_, *mention_proj_, scratch, out);
}

void BiEncoder::EncodeEntitiesInference(
    const std::vector<kb::Entity>& entities, EncodeScratch* scratch,
    tensor::Tensor* out) const {
  const std::size_t n = entities.size();
  if (scratch->bags.size() < n) scratch->bags.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    featurizer_.EntityBagInto(entities[i], &scratch->bags[i]);
  }
  EncodeBagsInference(n, *entity_table_, *entity_proj_, scratch, out);
}

void BiEncoder::EncodeMentionBagsInference(std::size_t n,
                                           EncodeScratch* scratch,
                                           tensor::Tensor* out) const {
  EncodeBagsInference(n, *mention_table_, *mention_proj_, scratch, out);
}

namespace {
// Pre-store-subsystem file tag ("BI"); kept readable forever.
constexpr std::uint32_t kLegacyBiTag = 0x4249u;
}  // namespace

void BiEncoder::SaveCheckpoint(store::CheckpointWriter* ckpt) const {
  util::BinaryWriter* config = ckpt->AddSection("bi_config");
  config->WriteU64(config_.dim);
  SaveFeatureConfig(config_.features, config);
  params_.Save(ckpt->AddSection("bi_params"));
}

util::Result<BiEncoderConfig> BiEncoder::ReadConfig(
    const store::CheckpointReader& ckpt) {
  auto section = ckpt.Section("bi_config");
  if (!section.ok()) return section.status();
  BiEncoderConfig config;
  std::uint64_t dim = 0;
  METABLINK_RETURN_IF_ERROR(section->ReadU64(&dim));
  config.dim = static_cast<std::size_t>(dim);
  METABLINK_RETURN_IF_ERROR(LoadFeatureConfig(&*section, &config.features));
  return config;
}

util::Status BiEncoder::LoadCheckpoint(const store::CheckpointReader& ckpt) {
  auto stored = ReadConfig(ckpt);
  if (!stored.ok()) return stored.status();
  if (stored->dim != config_.dim ||
      !FeatureConfigsMatch(stored->features, config_.features)) {
    return util::Status::InvalidArgument(
        "bi-encoder checkpoint config does not match this model");
  }
  auto section = ckpt.Section("bi_params");
  if (!section.ok()) return section.status();
  return params_.Load(&*section);
}

util::Status BiEncoder::SaveToFile(const std::string& path) const {
  store::CheckpointWriter ckpt;
  SaveCheckpoint(&ckpt);
  return ckpt.WriteToFile(path);
}

util::Status BiEncoder::LoadFromFile(const std::string& path) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::vector<std::uint8_t> bytes;
  METABLINK_RETURN_IF_ERROR(reader->ReadBytes(reader->Remaining(), &bytes));
  if (bytes.size() >= 4) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    if (magic == store::kCheckpointMagic) {
      auto ckpt = store::CheckpointReader::Parse(std::move(bytes));
      if (!ckpt.ok()) return ckpt.status();
      return LoadCheckpoint(*ckpt);
    }
  }
  // Legacy headerless format: a "BI" tag followed by the raw parameter
  // stream.
  util::BinaryReader legacy(std::move(bytes));
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(legacy.ReadU32(&tag));
  if (tag != kLegacyBiTag) {
    return util::Status::InvalidArgument("not a bi-encoder checkpoint: " +
                                         path);
  }
  return params_.Load(&legacy);
}

}  // namespace metablink::model
