#include "model/cascade.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "store/checkpoint.h"
#include "tensor/tensor.h"

namespace metablink::model {

namespace {

// "CSCD" little-endian payload tag.
constexpr std::uint32_t kCascadeTag = 0x44435343u;
constexpr std::uint32_t kCascadeVersion = 1;

// Thresholds may be +inf (tier disabled) but never NaN or negative.
bool ValidThreshold(float v) { return !std::isnan(v) && v >= 0.0f; }

}  // namespace

float CascadeModel::ScoreFeatures(const float* features) const {
  return tensor::Dot(weights.data(), features, weights.size()) + bias;
}

void CascadeModel::Save(util::BinaryWriter* writer) const {
  writer->WriteU32(kCascadeTag);
  writer->WriteU32(kCascadeVersion);
  writer->WriteF32(config.margin_tau);
  writer->WriteF32(config.distill_tau);
  writer->WriteF32(config.band_epsilon);
  writer->WriteU64(config.rerank_head_k);
  writer->WriteF32(bias);
  writer->WriteFloatVector(weights);
}

util::Status CascadeModel::Load(util::BinaryReader* reader) {
  std::uint32_t tag = 0;
  std::uint32_t version = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&tag));
  if (tag != kCascadeTag) {
    return util::Status::InvalidArgument("not a cascade artifact");
  }
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version == 0 || version > kCascadeVersion) {
    return util::Status::InvalidArgument("unsupported cascade version");
  }
  CascadeModel loaded;
  METABLINK_RETURN_IF_ERROR(reader->ReadF32(&loaded.config.margin_tau));
  METABLINK_RETURN_IF_ERROR(reader->ReadF32(&loaded.config.distill_tau));
  METABLINK_RETURN_IF_ERROR(reader->ReadF32(&loaded.config.band_epsilon));
  std::uint64_t head_k = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&head_k));
  loaded.config.rerank_head_k = static_cast<std::size_t>(head_k);
  METABLINK_RETURN_IF_ERROR(reader->ReadF32(&loaded.bias));
  METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&loaded.weights));
  if (!ValidThreshold(loaded.config.margin_tau) ||
      !ValidThreshold(loaded.config.distill_tau) ||
      !ValidThreshold(loaded.config.band_epsilon)) {
    return util::Status::InvalidArgument("cascade threshold is NaN or < 0");
  }
  if (loaded.config.rerank_head_k == 0) {
    return util::Status::InvalidArgument("cascade rerank_head_k must be >= 1");
  }
  if (!loaded.weights.empty()) {
    // Must be CascadeFeatureCount(d) for SOME tower dimension d >= 1; the
    // exact d is checked against the paired cross-encoder at epoch build.
    const std::size_t fixed =
        kNumCascadeBaseFeatures + kNumOverlapFeatures;
    if (loaded.weights.size() < fixed + 2 ||
        (loaded.weights.size() - fixed) % 2 != 0) {
      return util::Status::InvalidArgument(
          "cascade scorer weight count matches no tower dimension");
    }
  }
  if (std::isnan(loaded.bias)) {
    return util::Status::InvalidArgument("cascade scorer bias is NaN");
  }
  for (float w : loaded.weights) {
    if (std::isnan(w)) {
      return util::Status::InvalidArgument("cascade scorer weight is NaN");
    }
  }
  *this = std::move(loaded);
  return util::Status::OK();
}

util::Status CascadeModel::SaveToFile(const std::string& path) const {
  store::CheckpointWriter ckpt;
  Save(ckpt.AddSection("cascade"));
  return ckpt.WriteToFile(path);
}

util::Status CascadeModel::LoadFromFile(const std::string& path) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::vector<std::uint8_t> bytes;
  METABLINK_RETURN_IF_ERROR(reader->ReadBytes(reader->Remaining(), &bytes));
  if (bytes.size() >= 4) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    if (magic == store::kCheckpointMagic) {
      auto ckpt = store::CheckpointReader::Parse(std::move(bytes));
      if (!ckpt.ok()) return ckpt.status();
      auto section = ckpt->Section("cascade");
      if (!section.ok()) return section.status();
      return Load(&*section);
    }
  }
  // Legacy headerless format: the raw "CSCD" payload stream.
  util::BinaryReader legacy(std::move(bytes));
  return Load(&legacy);
}

void CascadeFeaturesInto(const float* scores, std::size_t n, std::size_t rank,
                         const float* mention_vec, const float* entity_vec,
                         std::size_t d, const MentionTokens& mention,
                         const CachedEntityTokens& entity,
                         const Featurizer& featurizer, float* out) {
  const float top1 = scores[0];
  out[0] = scores[rank];
  out[1] = top1 - scores[rank];
  out[2] = static_cast<float>(rank) / static_cast<float>(n);
  out[3] = n > 1 ? top1 - scores[1] : 0.0f;
  float* cursor = out + kNumCascadeBaseFeatures;
  for (std::size_t j = 0; j < d; ++j) {
    cursor[j] = mention_vec[j] * entity_vec[j];
  }
  cursor += d;
  std::copy(entity_vec, entity_vec + d, cursor);
  cursor += d;
  featurizer.OverlapFeaturesCached(mention, entity, cursor);
}

}  // namespace metablink::model
