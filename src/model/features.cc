#include "model/features.h"

#include <algorithm>
#include <unordered_set>

#include "text/string_metrics.h"

namespace metablink::model {

namespace {
std::unordered_set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::unordered_set<std::string>(v.begin(), v.end());
}

float FractionIn(const std::vector<std::string>& tokens,
                 const std::unordered_set<std::string>& set) {
  if (tokens.empty()) return 0.0f;
  std::size_t hits = 0;
  for (const auto& t : tokens) {
    if (set.count(t) > 0) ++hits;
  }
  return static_cast<float>(hits) / static_cast<float>(tokens.size());
}

/// text::TokenJaccard on prebuilt sets: identical intersection/union
/// counts, so identical doubles.
double SetJaccard(const std::unordered_set<std::string>& sa,
                  const std::unordered_set<std::string>& sb) {
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++inter;
  }
  const std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}
}  // namespace

Featurizer::Featurizer(FeatureConfig config) : hasher_(config.hasher) {}

std::vector<std::uint32_t> Featurizer::MentionBag(
    const data::LinkingExample& example) const {
  std::vector<std::uint32_t> bag;
  MentionBagInto(example, &bag);
  return bag;
}

std::vector<std::uint32_t> Featurizer::EntityBag(
    const kb::Entity& entity) const {
  std::vector<std::uint32_t> bag;
  EntityBagInto(entity, &bag);
  return bag;
}

void Featurizer::MentionBagInto(const data::LinkingExample& example,
                                std::vector<std::uint32_t>* out) const {
  out->clear();
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(example.mention),
                             kFieldMention, out);
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(example.left_context),
                             kFieldContext, out);
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(example.right_context),
                             kFieldContext, out);
}

void Featurizer::EntityBagInto(const kb::Entity& entity,
                               std::vector<std::uint32_t>* out) const {
  out->clear();
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(entity.title), kFieldTitle,
                             out);
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(entity.description),
                             kFieldDescription, out);
}

void Featurizer::OverlapFeaturesInto(const data::LinkingExample& example,
                                     const kb::Entity& entity,
                                     float* out) const {
  const std::vector<float> feats = OverlapFeatures(example, entity);
  std::copy(feats.begin(), feats.end(), out);
}

std::vector<float> Featurizer::OverlapFeatures(
    const data::LinkingExample& example, const kb::Entity& entity) const {
  const auto mention_tokens = tokenizer_.Tokenize(example.mention);
  const auto title_tokens = tokenizer_.Tokenize(entity.title);
  const auto desc_tokens = tokenizer_.Tokenize(entity.description);
  auto context_tokens = tokenizer_.Tokenize(example.left_context);
  for (auto& t : tokenizer_.Tokenize(example.right_context)) {
    context_tokens.push_back(std::move(t));
  }
  const auto desc_set = ToSet(desc_tokens);

  const auto category = text::ClassifyOverlap(example.mention, entity.title);
  std::vector<float> feats(kNumOverlapFeatures, 0.0f);
  feats[0] = category == text::OverlapCategory::kHighOverlap ? 1.0f : 0.0f;
  feats[1] = (category == text::OverlapCategory::kAmbiguousSubstring ||
              category == text::OverlapCategory::kMultipleCategories)
                 ? 1.0f
                 : 0.0f;
  feats[2] = static_cast<float>(text::TokenJaccard(mention_tokens,
                                                   title_tokens));
  feats[3] = static_cast<float>(text::TokenJaccard(context_tokens,
                                                   desc_tokens));
  feats[4] = FractionIn(mention_tokens, desc_set);
  feats[5] = FractionIn(context_tokens, desc_set);
  return feats;
}

void Featurizer::PrecomputeEntityTokens(const kb::Entity& entity,
                                        CachedEntityTokens* out) const {
  out->title_set = ToSet(tokenizer_.Tokenize(entity.title));
  out->desc_set = ToSet(tokenizer_.Tokenize(entity.description));
  out->norm_title = text::NormalizeForMatch(entity.title);
  std::string phrase;
  out->norm_base =
      text::NormalizeForMatch(text::StripDisambiguation(entity.title,
                                                        &phrase));
  out->has_phrase = !phrase.empty();
}

void Featurizer::PrecomputeMentionTokens(const data::LinkingExample& example,
                                         MentionTokens* out) const {
  out->mention_tokens = tokenizer_.Tokenize(example.mention);
  out->context_tokens = tokenizer_.Tokenize(example.left_context);
  for (auto& t : tokenizer_.Tokenize(example.right_context)) {
    out->context_tokens.push_back(std::move(t));
  }
  out->mention_set = ToSet(out->mention_tokens);
  out->context_set = ToSet(out->context_tokens);
  out->norm_mention = text::NormalizeForMatch(example.mention);
}

void Featurizer::OverlapFeaturesCached(const MentionTokens& mention,
                                       const CachedEntityTokens& entity,
                                       float* out) const {
  // The category branches mirror text::ClassifyOverlap on the cached
  // normalized forms.
  const std::string& m = mention.norm_mention;
  text::OverlapCategory category = text::OverlapCategory::kLowOverlap;
  if (m == entity.norm_title && !m.empty()) {
    category = text::OverlapCategory::kHighOverlap;
  } else if (entity.has_phrase && m == entity.norm_base && !m.empty()) {
    category = text::OverlapCategory::kMultipleCategories;
  } else if (!m.empty() &&
             entity.norm_title.find(m) != std::string::npos) {
    category = text::OverlapCategory::kAmbiguousSubstring;
  }
  out[0] = category == text::OverlapCategory::kHighOverlap ? 1.0f : 0.0f;
  out[1] = (category == text::OverlapCategory::kAmbiguousSubstring ||
            category == text::OverlapCategory::kMultipleCategories)
               ? 1.0f
               : 0.0f;
  out[2] = static_cast<float>(SetJaccard(mention.mention_set,
                                         entity.title_set));
  out[3] = static_cast<float>(SetJaccard(mention.context_set,
                                         entity.desc_set));
  out[4] = FractionIn(mention.mention_tokens, entity.desc_set);
  out[5] = FractionIn(mention.context_tokens, entity.desc_set);
}

void SaveFeatureConfig(const FeatureConfig& config,
                       util::BinaryWriter* writer) {
  const text::FeatureHasherOptions& h = config.hasher;
  writer->WriteU32(h.num_buckets);
  writer->WriteU32(h.word_unigrams ? 1u : 0u);
  writer->WriteU32(h.word_bigrams ? 1u : 0u);
  writer->WriteU64(h.char_ngram_sizes.size());
  for (int n : h.char_ngram_sizes) {
    writer->WriteI64(static_cast<std::int64_t>(n));
  }
}

util::Status LoadFeatureConfig(util::BinaryReader* reader, FeatureConfig* out) {
  text::FeatureHasherOptions h;
  std::uint32_t unigrams = 0, bigrams = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&h.num_buckets));
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&unigrams));
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&bigrams));
  h.word_unigrams = unigrams != 0;
  h.word_bigrams = bigrams != 0;
  std::uint64_t num_sizes = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&num_sizes));
  h.char_ngram_sizes.clear();
  for (std::uint64_t i = 0; i < num_sizes; ++i) {
    std::int64_t n = 0;
    METABLINK_RETURN_IF_ERROR(reader->ReadI64(&n));
    h.char_ngram_sizes.push_back(static_cast<int>(n));
  }
  out->hasher = std::move(h);
  return util::Status::OK();
}

bool FeatureConfigsMatch(const FeatureConfig& a, const FeatureConfig& b) {
  return a.hasher.num_buckets == b.hasher.num_buckets &&
         a.hasher.word_unigrams == b.hasher.word_unigrams &&
         a.hasher.word_bigrams == b.hasher.word_bigrams &&
         a.hasher.char_ngram_sizes == b.hasher.char_ngram_sizes;
}

}  // namespace metablink::model
