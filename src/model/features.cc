#include "model/features.h"

#include <unordered_set>

#include "text/string_metrics.h"

namespace metablink::model {

namespace {
std::unordered_set<std::string> ToSet(const std::vector<std::string>& v) {
  return std::unordered_set<std::string>(v.begin(), v.end());
}

float FractionIn(const std::vector<std::string>& tokens,
                 const std::unordered_set<std::string>& set) {
  if (tokens.empty()) return 0.0f;
  std::size_t hits = 0;
  for (const auto& t : tokens) {
    if (set.count(t) > 0) ++hits;
  }
  return static_cast<float>(hits) / static_cast<float>(tokens.size());
}
}  // namespace

Featurizer::Featurizer(FeatureConfig config) : hasher_(config.hasher) {}

std::vector<std::uint32_t> Featurizer::MentionBag(
    const data::LinkingExample& example) const {
  std::vector<std::uint32_t> bag;
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(example.mention),
                             kFieldMention, &bag);
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(example.left_context),
                             kFieldContext, &bag);
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(example.right_context),
                             kFieldContext, &bag);
  return bag;
}

std::vector<std::uint32_t> Featurizer::EntityBag(
    const kb::Entity& entity) const {
  std::vector<std::uint32_t> bag;
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(entity.title), kFieldTitle,
                             &bag);
  hasher_.AppendHashedTokens(tokenizer_.Tokenize(entity.description),
                             kFieldDescription, &bag);
  return bag;
}

std::vector<float> Featurizer::OverlapFeatures(
    const data::LinkingExample& example, const kb::Entity& entity) const {
  const auto mention_tokens = tokenizer_.Tokenize(example.mention);
  const auto title_tokens = tokenizer_.Tokenize(entity.title);
  const auto desc_tokens = tokenizer_.Tokenize(entity.description);
  auto context_tokens = tokenizer_.Tokenize(example.left_context);
  for (auto& t : tokenizer_.Tokenize(example.right_context)) {
    context_tokens.push_back(std::move(t));
  }
  const auto desc_set = ToSet(desc_tokens);

  const auto category = text::ClassifyOverlap(example.mention, entity.title);
  std::vector<float> feats(kNumOverlapFeatures, 0.0f);
  feats[0] = category == text::OverlapCategory::kHighOverlap ? 1.0f : 0.0f;
  feats[1] = (category == text::OverlapCategory::kAmbiguousSubstring ||
              category == text::OverlapCategory::kMultipleCategories)
                 ? 1.0f
                 : 0.0f;
  feats[2] = static_cast<float>(text::TokenJaccard(mention_tokens,
                                                   title_tokens));
  feats[3] = static_cast<float>(text::TokenJaccard(context_tokens,
                                                   desc_tokens));
  feats[4] = FractionIn(mention_tokens, desc_set);
  feats[5] = FractionIn(context_tokens, desc_set);
  return feats;
}

}  // namespace metablink::model
