#include "model/cross_encoder.h"

#include "util/logging.h"
#include "util/serialize.h"

namespace metablink::model {

CrossEncoder::CrossEncoder(CrossEncoderConfig config, util::Rng* rng)
    : config_(config), featurizer_(config.features) {
  const std::size_t buckets = featurizer_.num_buckets();
  const std::size_t d = config_.dim;
  const std::size_t in = 3 * d + kNumOverlapFeatures;
  table_ = params_.CreateEmbedding("cross_table", buckets, d, 0.1f, rng);
  w1_ = params_.CreateXavier("cross_w1", in, config_.hidden, rng);
  b1_ = params_.Create("cross_b1", 1, config_.hidden);
  w2_ = params_.CreateXavier("cross_w2", config_.hidden, 1, rng);
  b2_ = params_.Create("cross_b2", 1, 1);
}

tensor::Var CrossEncoder::ScoreCandidates(
    tensor::Graph* graph, const data::LinkingExample& example,
    const std::vector<kb::Entity>& candidates) const {
  METABLINK_CHECK(!candidates.empty()) << "no candidates to score";
  const std::size_t c = candidates.size();
  // The mention is identical for every candidate row: encode it once and
  // broadcast.
  std::vector<std::vector<std::uint32_t>> mention_bag(
      1, featurizer_.MentionBag(example));
  std::vector<std::vector<std::uint32_t>> entity_bags;
  entity_bags.reserve(c);
  tensor::Tensor overlaps(c, kNumOverlapFeatures);
  for (std::size_t i = 0; i < c; ++i) {
    entity_bags.push_back(featurizer_.EntityBag(candidates[i]));
    const auto feats = featurizer_.OverlapFeatures(example, candidates[i]);
    for (std::size_t f = 0; f < kNumOverlapFeatures; ++f) {
      overlaps.at(i, f) = feats[f];
    }
  }
  tensor::Var m = graph->BroadcastRow(
      graph->Tanh(graph->EmbeddingBagMean(table_, std::move(mention_bag))),
      c);
  tensor::Var e =
      graph->Tanh(graph->EmbeddingBagMean(table_, std::move(entity_bags)));
  tensor::Var interaction = graph->Mul(m, e);
  tensor::Var joint = graph->ConcatCols(graph->ConcatCols(m, e), interaction);
  tensor::Var input =
      graph->ConcatCols(joint, graph->Input(std::move(overlaps)));
  tensor::Var hidden = graph->Tanh(graph->AddBiasRow(
      graph->MatMul(input, graph->Param(w1_)), graph->Param(b1_)));
  return graph->AddBiasRow(graph->MatMul(hidden, graph->Param(w2_)),
                           graph->Param(b2_));
}

tensor::Var CrossEncoder::RankingLoss(
    tensor::Graph* graph, const data::LinkingExample& example,
    const std::vector<kb::Entity>& candidates, std::size_t gold_index) const {
  METABLINK_CHECK(gold_index < candidates.size()) << "gold index out of range";
  tensor::Var scores = ScoreCandidates(graph, example, candidates);
  tensor::Var row = graph->Reshape(scores, 1, candidates.size());
  return graph->SoftmaxCrossEntropy(row, {gold_index});
}

std::vector<float> CrossEncoder::Score(
    const data::LinkingExample& example,
    const std::vector<kb::Entity>& candidates) const {
  tensor::Graph graph;
  tensor::Var scores = ScoreCandidates(&graph, example, candidates);
  std::vector<float> out(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out[i] = graph.value(scores).at(i, 0);
  }
  return out;
}

util::Status CrossEncoder::SaveToFile(const std::string& path) const {
  util::BinaryWriter writer;
  writer.WriteU32(0x4352u);  // "CR" tag
  params_.Save(&writer);
  return writer.WriteToFile(path);
}

util::Status CrossEncoder::LoadFromFile(const std::string& path) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&tag));
  return params_.Load(&*reader);
}

}  // namespace metablink::model
