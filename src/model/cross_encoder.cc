#include "model/cross_encoder.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace metablink::model {

CrossEncoder::CrossEncoder(CrossEncoderConfig config, util::Rng* rng)
    : config_(config), featurizer_(config.features) {
  const std::size_t buckets = featurizer_.num_buckets();
  const std::size_t d = config_.dim;
  const std::size_t in = 3 * d + kNumOverlapFeatures;
  table_ = params_.CreateEmbedding("cross_table", buckets, d, 0.1f, rng);
  w1_ = params_.CreateXavier("cross_w1", in, config_.hidden, rng);
  b1_ = params_.Create("cross_b1", 1, config_.hidden);
  w2_ = params_.CreateXavier("cross_w2", config_.hidden, 1, rng);
  b2_ = params_.Create("cross_b2", 1, 1);
}

tensor::Var CrossEncoder::ScoreCandidates(
    tensor::Graph* graph, const data::LinkingExample& example,
    const std::vector<kb::Entity>& candidates) const {
  METABLINK_CHECK(!candidates.empty()) << "no candidates to score";
  const std::size_t c = candidates.size();
  // The mention is identical for every candidate row: encode it once and
  // broadcast.
  std::vector<std::vector<std::uint32_t>> mention_bag(
      1, featurizer_.MentionBag(example));
  std::vector<std::vector<std::uint32_t>> entity_bags;
  entity_bags.reserve(c);
  tensor::Tensor overlaps(c, kNumOverlapFeatures);
  for (std::size_t i = 0; i < c; ++i) {
    entity_bags.push_back(featurizer_.EntityBag(candidates[i]));
    const auto feats = featurizer_.OverlapFeatures(example, candidates[i]);
    for (std::size_t f = 0; f < kNumOverlapFeatures; ++f) {
      overlaps.at(i, f) = feats[f];
    }
  }
  tensor::Var m = graph->BroadcastRow(
      graph->Tanh(graph->EmbeddingBagMean(table_, std::move(mention_bag))),
      c);
  tensor::Var e =
      graph->Tanh(graph->EmbeddingBagMean(table_, std::move(entity_bags)));
  tensor::Var interaction = graph->Mul(m, e);
  tensor::Var joint = graph->ConcatCols(graph->ConcatCols(m, e), interaction);
  tensor::Var input =
      graph->ConcatCols(joint, graph->Input(std::move(overlaps)));
  tensor::Var hidden = graph->Tanh(graph->AddBiasRow(
      graph->MatMul(input, graph->Param(w1_)), graph->Param(b1_)));
  return graph->AddBiasRow(graph->MatMul(hidden, graph->Param(w2_)),
                           graph->Param(b2_));
}

tensor::Var CrossEncoder::RankingLoss(
    tensor::Graph* graph, const data::LinkingExample& example,
    const std::vector<kb::Entity>& candidates, std::size_t gold_index) const {
  METABLINK_CHECK(gold_index < candidates.size()) << "gold index out of range";
  tensor::Var scores = ScoreCandidates(graph, example, candidates);
  tensor::Var row = graph->Reshape(scores, 1, candidates.size());
  return graph->SoftmaxCrossEntropy(row, {gold_index});
}

std::vector<float> CrossEncoder::Score(
    const data::LinkingExample& example,
    const std::vector<kb::Entity>& candidates) const {
  tensor::Graph graph;
  tensor::Var scores = ScoreCandidates(&graph, example, candidates);
  std::vector<float> out(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out[i] = graph.value(scores).at(i, 0);
  }
  return out;
}

void CrossEncoder::ScoreInference(const data::LinkingExample& example,
                                  const std::vector<kb::Entity>& candidates,
                                  CrossScoreScratch* scratch,
                                  std::vector<float>* out) const {
  METABLINK_CHECK(!candidates.empty()) << "no candidates to score";
  const std::size_t c = candidates.size();
  const std::size_t d = config_.dim;
  const std::size_t in = 3 * d + kNumOverlapFeatures;

  // Mention tower: mean-pooled bag + tanh, computed once (the Graph path
  // broadcasts the single encoded row).
  featurizer_.MentionBagInto(example, &scratch->mention_bag);
  scratch->mention_vec.assign(d, 0.0f);
  if (!scratch->mention_bag.empty()) {
    const float inv =
        1.0f / static_cast<float>(scratch->mention_bag.size());
    for (std::uint32_t id : scratch->mention_bag) {
      METABLINK_CHECK(id < table_->value.rows()) << "embedding id out of range";
      tensor::Axpy(inv, table_->value.row_data(id),
                   scratch->mention_vec.data(), d);
    }
  }
  for (float& v : scratch->mention_vec) v = std::tanh(v);

  // Entity tower: same gather + tanh per candidate row.
  if (scratch->entity_bags.size() < c) scratch->entity_bags.resize(c);
  scratch->entity_vec.Resize(c, d);
  for (std::size_t i = 0; i < c; ++i) {
    featurizer_.EntityBagInto(candidates[i], &scratch->entity_bags[i]);
    const auto& bag = scratch->entity_bags[i];
    if (bag.empty()) continue;
    const float inv = 1.0f / static_cast<float>(bag.size());
    float* dst = scratch->entity_vec.row_data(i);
    for (std::uint32_t id : bag) {
      METABLINK_CHECK(id < table_->value.rows()) << "embedding id out of range";
      tensor::Axpy(inv, table_->value.row_data(id), dst, d);
    }
  }
  for (float& v : scratch->entity_vec.data()) v = std::tanh(v);

  // Joint row: [m, e, m*e, overlaps] — the ConcatCols layout of the tape.
  scratch->input.Resize(c, in);
  for (std::size_t i = 0; i < c; ++i) {
    float* row = scratch->input.row_data(i);
    const float* m = scratch->mention_vec.data();
    const float* e = scratch->entity_vec.row_data(i);
    std::copy(m, m + d, row);
    std::copy(e, e + d, row + d);
    for (std::size_t j = 0; j < d; ++j) row[2 * d + j] = m[j] * e[j];
    featurizer_.OverlapFeaturesInto(example, candidates[i], row + 3 * d);
  }

  // Scoring MLP through the same serial blocked GEMM as Graph::MatMul.
  scratch->hidden.Resize(c, config_.hidden);
  tensor::GemmRaw(scratch->input.data().data(), w1_->value.data().data(),
                  scratch->hidden.data().data(), c, in, config_.hidden);
  for (std::size_t i = 0; i < c; ++i) {
    float* row = scratch->hidden.row_data(i);
    for (std::size_t j = 0; j < config_.hidden; ++j) {
      row[j] = std::tanh(row[j] + b1_->value.at(0, j));
    }
  }
  scratch->score.Resize(c, 1);
  tensor::GemmRaw(scratch->hidden.data().data(), w2_->value.data().data(),
                  scratch->score.data().data(), c, config_.hidden, 1);
  out->clear();
  out->reserve(c);
  const float b2 = b2_->value.at(0, 0);
  for (std::size_t i = 0; i < c; ++i) {
    out->push_back(scratch->score.at(i, 0) + b2);
  }
}

void CrossEncoder::PrecomputeEntities(const std::vector<kb::Entity>& entities,
                                      CrossEntityCache* out) const {
  const std::size_t n = entities.size();
  const std::size_t d = config_.dim;
  out->entity_vec.Resize(n, d);
  out->tokens.resize(n);
  std::vector<std::uint32_t> bag;
  for (std::size_t i = 0; i < n; ++i) {
    featurizer_.EntityBagInto(entities[i], &bag);
    if (!bag.empty()) {
      const float inv = 1.0f / static_cast<float>(bag.size());
      float* dst = out->entity_vec.row_data(i);
      for (std::uint32_t id : bag) {
        METABLINK_CHECK(id < table_->value.rows())
            << "embedding id out of range";
        tensor::Axpy(inv, table_->value.row_data(id), dst, d);
      }
    }
    featurizer_.PrecomputeEntityTokens(entities[i], &out->tokens[i]);
  }
  for (float& v : out->entity_vec.data()) v = std::tanh(v);
}

void CrossEncoder::MentionVecInto(const data::LinkingExample& example,
                                  CrossScoreScratch* scratch) const {
  const std::size_t d = config_.dim;
  featurizer_.MentionBagInto(example, &scratch->mention_bag);
  scratch->mention_vec.assign(d, 0.0f);
  if (!scratch->mention_bag.empty()) {
    const float inv =
        1.0f / static_cast<float>(scratch->mention_bag.size());
    for (std::uint32_t id : scratch->mention_bag) {
      METABLINK_CHECK(id < table_->value.rows()) << "embedding id out of range";
      tensor::Axpy(inv, table_->value.row_data(id),
                   scratch->mention_vec.data(), d);
    }
  }
  for (float& v : scratch->mention_vec) v = std::tanh(v);
}

void CrossEncoder::ScoreCachedInference(const data::LinkingExample& example,
                                        const std::vector<std::size_t>& rows,
                                        const CrossEntityCache& cache,
                                        CrossScoreScratch* scratch,
                                        std::vector<float>* out) const {
  METABLINK_CHECK(!rows.empty()) << "no candidates to score";
  const std::size_t c = rows.size();
  const std::size_t d = config_.dim;
  const std::size_t in = 3 * d + kNumOverlapFeatures;

  // Mention tower: identical to ScoreInference.
  MentionVecInto(example, scratch);

  // Mention-side overlap tokens, once per request instead of per pair.
  featurizer_.PrecomputeMentionTokens(example, &scratch->mention_tokens);

  // Joint rows pull the entity tower straight from the cache.
  scratch->input.Resize(c, in);
  for (std::size_t i = 0; i < c; ++i) {
    const std::size_t r = rows[i];
    METABLINK_CHECK(r < cache.entity_vec.rows()) << "cache row out of range";
    float* row = scratch->input.row_data(i);
    const float* m = scratch->mention_vec.data();
    const float* e = cache.entity_vec.row_data(r);
    std::copy(m, m + d, row);
    std::copy(e, e + d, row + d);
    for (std::size_t j = 0; j < d; ++j) row[2 * d + j] = m[j] * e[j];
    featurizer_.OverlapFeaturesCached(scratch->mention_tokens,
                                      cache.tokens[r], row + 3 * d);
  }

  // Same scoring MLP as ScoreInference.
  scratch->hidden.Resize(c, config_.hidden);
  tensor::GemmRaw(scratch->input.data().data(), w1_->value.data().data(),
                  scratch->hidden.data().data(), c, in, config_.hidden);
  for (std::size_t i = 0; i < c; ++i) {
    float* row = scratch->hidden.row_data(i);
    for (std::size_t j = 0; j < config_.hidden; ++j) {
      row[j] = std::tanh(row[j] + b1_->value.at(0, j));
    }
  }
  scratch->score.Resize(c, 1);
  tensor::GemmRaw(scratch->hidden.data().data(), w2_->value.data().data(),
                  scratch->score.data().data(), c, config_.hidden, 1);
  out->clear();
  out->reserve(c);
  const float b2 = b2_->value.at(0, 0);
  for (std::size_t i = 0; i < c; ++i) {
    out->push_back(scratch->score.at(i, 0) + b2);
  }
}

namespace {
// Pre-store-subsystem file tag ("CR"); kept readable forever.
constexpr std::uint32_t kLegacyCrossTag = 0x4352u;
}  // namespace

void CrossEncoder::SaveCheckpoint(store::CheckpointWriter* ckpt) const {
  util::BinaryWriter* config = ckpt->AddSection("cross_config");
  config->WriteU64(config_.dim);
  config->WriteU64(config_.hidden);
  SaveFeatureConfig(config_.features, config);
  params_.Save(ckpt->AddSection("cross_params"));
}

util::Result<CrossEncoderConfig> CrossEncoder::ReadConfig(
    const store::CheckpointReader& ckpt) {
  auto section = ckpt.Section("cross_config");
  if (!section.ok()) return section.status();
  CrossEncoderConfig config;
  std::uint64_t dim = 0, hidden = 0;
  METABLINK_RETURN_IF_ERROR(section->ReadU64(&dim));
  METABLINK_RETURN_IF_ERROR(section->ReadU64(&hidden));
  config.dim = static_cast<std::size_t>(dim);
  config.hidden = static_cast<std::size_t>(hidden);
  METABLINK_RETURN_IF_ERROR(LoadFeatureConfig(&*section, &config.features));
  return config;
}

util::Status CrossEncoder::LoadCheckpoint(const store::CheckpointReader& ckpt) {
  auto stored = ReadConfig(ckpt);
  if (!stored.ok()) return stored.status();
  if (stored->dim != config_.dim || stored->hidden != config_.hidden ||
      !FeatureConfigsMatch(stored->features, config_.features)) {
    return util::Status::InvalidArgument(
        "cross-encoder checkpoint config does not match this model");
  }
  auto section = ckpt.Section("cross_params");
  if (!section.ok()) return section.status();
  return params_.Load(&*section);
}

util::Status CrossEncoder::SaveToFile(const std::string& path) const {
  store::CheckpointWriter ckpt;
  SaveCheckpoint(&ckpt);
  return ckpt.WriteToFile(path);
}

util::Status CrossEncoder::LoadFromFile(const std::string& path) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::vector<std::uint8_t> bytes;
  METABLINK_RETURN_IF_ERROR(reader->ReadBytes(reader->Remaining(), &bytes));
  if (bytes.size() >= 4) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    if (magic == store::kCheckpointMagic) {
      auto ckpt = store::CheckpointReader::Parse(std::move(bytes));
      if (!ckpt.ok()) return ckpt.status();
      return LoadCheckpoint(*ckpt);
    }
  }
  // Legacy headerless format: a "CR" tag followed by the raw parameter
  // stream.
  util::BinaryReader legacy(std::move(bytes));
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(legacy.ReadU32(&tag));
  if (tag != kLegacyCrossTag) {
    return util::Status::InvalidArgument("not a cross-encoder checkpoint: " +
                                         path);
  }
  return params_.Load(&legacy);
}

}  // namespace metablink::model
