#ifndef METABLINK_MODEL_CASCADE_H_
#define METABLINK_MODEL_CASCADE_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "model/features.h"
#include "util/serialize.h"
#include "util/status.h"

namespace metablink::model {

/// Retrieval-context features leading every cascade feature row:
/// [candidate bi-score, gap to top1, normalized retrieval rank,
/// top1-top2 margin].
inline constexpr std::size_t kNumCascadeBaseFeatures = 4;

/// Length of the distilled scorer's feature row for cross-encoder tower
/// dimension `d`: the base features, the elementwise mention*entity tower
/// product (the cross-encoder's own bilinear interaction), the raw entity
/// tower vector (entity prior), and the kNumOverlapFeatures
/// lexical-interaction features the cross-encoder also consumes. A linear
/// model over this row is a first-order approximation of the cross
/// scoring MLP at ~2d multiplies per candidate instead of the MLP's
/// (3d + overlap) * hidden.
inline constexpr std::size_t CascadeFeatureCount(std::size_t d) {
  return kNumCascadeBaseFeatures + 2 * d + kNumOverlapFeatures;
}

/// Calibrated thresholds of the three-tier rerank cascade. Tier selection
/// for one request with fp32 retrieval margin m (top1 - top2 score):
///
///   m >= margin_tau            -> EXIT: skip rerank, answer from retrieval
///   m >= distill_tau           -> DISTILLED: rescore the ambiguous head
///                                 with the cheap linear scorer
///   otherwise                  -> FULL: cross-encode the ambiguous head
///
/// The "ambiguous head" is the prefix of the retrieval list whose scores
/// sit within `band_epsilon` of top1, capped at `rerank_head_k`. The
/// defaults disable every shortcut (never exit, never distill, head covers
/// the whole band cap), so an uncalibrated config degrades to partial
/// rerank of the top `rerank_head_k` candidates.
struct CascadeConfig {
  /// Early-exit margin threshold (inclusive: a margin equal to tau exits).
  /// +inf never exits; 0 always exits.
  float margin_tau = std::numeric_limits<float>::infinity();
  /// Distilled-tier margin threshold (inclusive). +inf never distills.
  float distill_tau = std::numeric_limits<float>::infinity();
  /// Candidates within this score distance of top1 form the ambiguous
  /// head. +inf means the head is limited by rerank_head_k alone.
  float band_epsilon = std::numeric_limits<float>::infinity();
  /// Hard cap on the ambiguous head (the number of candidates the
  /// distilled or full tier rescores). Always >= 1.
  std::size_t rerank_head_k = 16;
};

/// A calibrated cascade policy plus the distilled middle-tier scorer: a
/// linear model over CascadeFeatureCount(d) features trained
/// (train::CalibrateCascade) to mimic cached cross-encoder scores on the
/// ambiguous head. Small enough to copy by value into each serving epoch;
/// persisted as the CRC-framed "cascade" bundle artifact.
struct CascadeModel {
  CascadeConfig config;
  /// Distilled scorer weights ([CascadeFeatureCount(d)] for the paired
  /// cross-encoder's tower dimension d, or empty). Empty disables the
  /// distilled tier regardless of distill_tau; a non-empty size that does
  /// not match the serving cross-encoder is rejected at epoch build.
  std::vector<float> weights;
  float bias = 0.0f;

  bool has_scorer() const { return !weights.empty(); }

  /// Distilled score of one feature row (see CascadeFeaturesInto).
  /// Pre: has_scorer().
  float ScoreFeatures(const float* features) const;

  // ---- Persistence -------------------------------------------------------

  /// Serializes the "CSCD"-tagged payload.
  void Save(util::BinaryWriter* writer) const;
  /// Loads and validates a payload (tag, threshold sanity, weight shape).
  util::Status Load(util::BinaryReader* reader);
  /// Writes a framed checkpoint container with one "cascade" section.
  util::Status SaveToFile(const std::string& path) const;
  /// Loads either a framed container or a raw legacy "CSCD" stream.
  util::Status LoadFromFile(const std::string& path);
};

/// Fills `out[0..CascadeFeatureCount(d))` for candidate `rank` of one
/// retrieval list. `scores` holds the fp32 retrieval scores of all `n`
/// candidates, best first — the same strict (score desc, id asc) order the
/// retrieval stage produces. `mention_vec` and `entity_vec` are the
/// cross-encoder's mention tower output (CrossEncoder::MentionVecInto,
/// once per request) and cached entity tower row, both of length `d`; the
/// overlap block is computed through the same cached-token path the
/// cross-encoder uses, so training-time and serving-time features are
/// bit-identical.
void CascadeFeaturesInto(const float* scores, std::size_t n, std::size_t rank,
                         const float* mention_vec, const float* entity_vec,
                         std::size_t d, const MentionTokens& mention,
                         const CachedEntityTokens& entity,
                         const Featurizer& featurizer, float* out);

}  // namespace metablink::model

#endif  // METABLINK_MODEL_CASCADE_H_
