#ifndef METABLINK_STORE_BUNDLE_H_
#define METABLINK_STORE_BUNDLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "store/checkpoint.h"
#include "util/status.h"

namespace metablink::store {

/// Manifest filename inside every bundle directory.
inline constexpr const char* kManifestFilename = "MANIFEST";

/// One artifact recorded in a bundle manifest. `size` and `crc32` cover
/// the artifact file's entire byte stream, so a swapped, truncated, or
/// bit-rotted file is caught before its container is even parsed.
struct BundleArtifact {
  std::string name;      // logical name ("bi_encoder", "index", ...)
  std::string filename;  // file inside the bundle directory
  std::uint64_t size = 0;
  std::uint32_t crc32 = 0;
};

/// Parsed bundle manifest: the versioned description of a packaged model.
struct BundleManifest {
  std::uint64_t model_version = 0;
  std::string domain;
  std::vector<BundleArtifact> artifacts;
  /// KB shard count the bundle was packaged for (how many contiguous
  /// entity-id slices the serving tier should probe in parallel). 0 on
  /// legacy manifests and unsharded bundles — servers treat 0 as 1 and may
  /// override either way; the value is a packaging declaration, not a
  /// correctness constraint (sharded probes are bit-identical at any N).
  std::uint32_t num_shards = 0;
};

/// Writes a versioned artifact bundle: a directory of checkpoint-container
/// files plus a MANIFEST (itself a container) describing them. Artifacts
/// are written first and the manifest last, each via atomic temp+rename,
/// so a crash mid-packaging never yields a directory that *looks* like a
/// bundle but fails validation only halfway through loading: either the
/// manifest exists and describes fully-written artifacts, or Open fails.
class BundleWriter {
 public:
  explicit BundleWriter(std::string dir) : dir_(std::move(dir)) {}

  /// Writes `ckpt` to `<dir>/<filename>` and records it in the manifest.
  /// Creates the bundle directory on first use.
  util::Status AddArtifact(const std::string& name,
                           const std::string& filename,
                           const CheckpointWriter& ckpt);

  /// Writes the MANIFEST. Call exactly once, after every AddArtifact.
  /// `num_shards` declares the KB shard count the bundle targets (0 →
  /// unsharded); readers of pre-shard manifests see 0.
  util::Status Finalize(std::uint64_t model_version, const std::string& domain,
                        std::uint32_t num_shards = 0);

 private:
  std::string dir_;
  std::vector<BundleArtifact> artifacts_;
};

/// Opens and validates a bundle directory: parses the manifest and checks
/// every listed artifact's size + whole-file CRC. Corruption anywhere is a
/// clean kDataLoss/kOutOfRange/kIoError Status.
class BundleReader {
 public:
  static util::Result<BundleReader> Open(const std::string& dir);

  const BundleManifest& manifest() const { return manifest_; }
  bool Has(const std::string& name) const;

  /// Loads and parses the named artifact's container (the whole-file CRC
  /// was already verified by Open; the container re-verifies per-section).
  util::Result<CheckpointReader> OpenArtifact(const std::string& name) const;

 private:
  std::string dir_;
  BundleManifest manifest_;
};

}  // namespace metablink::store

#endif  // METABLINK_STORE_BUNDLE_H_
