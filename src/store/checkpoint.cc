#include "store/checkpoint.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace metablink::store {

util::BinaryWriter* CheckpointWriter::AddSection(const std::string& name) {
  for (const auto& [existing, writer] : sections_) {
    METABLINK_CHECK(existing != name) << "duplicate section " << name;
  }
  sections_.emplace_back(name, util::BinaryWriter());
  return &sections_.back().second;
}

std::vector<std::uint8_t> CheckpointWriter::Serialize() const {
  util::BinaryWriter out;
  out.WriteU32(kCheckpointMagic);
  out.WriteU32(kCheckpointVersion);
  out.WriteU32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, writer] : sections_) {
    const auto& payload = writer.buffer();
    out.WriteString(name);
    out.WriteU64(payload.size());
    std::uint32_t crc = util::Crc32(name.data(), name.size());
    crc = util::Crc32(payload.data(), payload.size(), crc);
    out.WriteU32(crc);
    out.WriteRaw(payload.data(), payload.size());
  }
  return out.TakeBuffer();
}

util::Status CheckpointWriter::WriteToFile(const std::string& path) const {
  util::BinaryWriter out;
  const std::vector<std::uint8_t> bytes = Serialize();
  out.WriteRaw(bytes.data(), bytes.size());
  return out.WriteToFile(path);
}

util::Result<CheckpointReader> CheckpointReader::FromFile(
    const std::string& path) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::vector<std::uint8_t> bytes;
  const std::size_t n = reader->Remaining();
  METABLINK_RETURN_IF_ERROR(reader->ReadBytes(n, &bytes));
  auto parsed = Parse(std::move(bytes));
  if (!parsed.ok()) {
    return util::Status(parsed.status().code(),
                        parsed.status().message() + " (" + path + ")");
  }
  return parsed;
}

util::Result<CheckpointReader> CheckpointReader::Parse(
    std::vector<std::uint8_t> bytes) {
  util::BinaryReader reader(std::move(bytes));
  std::uint32_t magic = 0;
  METABLINK_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kCheckpointMagic) {
    return util::Status::InvalidArgument("not a checkpoint container");
  }
  CheckpointReader out;
  METABLINK_RETURN_IF_ERROR(reader.ReadU32(&out.version_));
  if (out.version_ == 0 || out.version_ > kCheckpointVersion) {
    return util::Status::InvalidArgument(util::StrFormat(
        "unsupported checkpoint format version %u (this build reads <= %u)",
        out.version_, kCheckpointVersion));
  }
  std::uint32_t count = 0;
  METABLINK_RETURN_IF_ERROR(reader.ReadU32(&count));
  out.sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    METABLINK_RETURN_IF_ERROR(reader.ReadString(&name));
    std::uint64_t size = 0;
    METABLINK_RETURN_IF_ERROR(reader.ReadU64(&size));
    std::uint32_t want_crc = 0;
    METABLINK_RETURN_IF_ERROR(reader.ReadU32(&want_crc));
    if (size > reader.Remaining()) {
      return util::Status::OutOfRange(
          "truncated checkpoint section '" + name + "'");
    }
    std::vector<std::uint8_t> payload;
    METABLINK_RETURN_IF_ERROR(
        reader.ReadBytes(static_cast<std::size_t>(size), &payload));
    std::uint32_t got_crc = util::Crc32(name.data(), name.size());
    got_crc = util::Crc32(payload.data(), payload.size(), got_crc);
    if (got_crc != want_crc) {
      return util::Status::DataLoss(util::StrFormat(
          "checkpoint section '%s' failed its CRC check "
          "(stored %08x, computed %08x)",
          name.c_str(), want_crc, got_crc));
    }
    for (const auto& [existing, bytes_unused] : out.sections_) {
      if (existing == name) {
        return util::Status::DataLoss("duplicate checkpoint section '" +
                                      name + "'");
      }
    }
    out.sections_.emplace_back(std::move(name), std::move(payload));
  }
  if (!reader.AtEnd()) {
    return util::Status::DataLoss(util::StrFormat(
        "%zu trailing bytes after the last checkpoint section",
        reader.Remaining()));
  }
  return out;
}

bool CheckpointReader::Has(const std::string& name) const {
  for (const auto& [existing, payload] : sections_) {
    if (existing == name) return true;
  }
  return false;
}

std::vector<std::string> CheckpointReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, payload] : sections_) names.push_back(name);
  return names;
}

util::Result<util::BinaryReader> CheckpointReader::Section(
    const std::string& name) const {
  for (const auto& [existing, payload] : sections_) {
    if (existing == name) return util::BinaryReader(payload);
  }
  return util::Status::NotFound("checkpoint has no section '" + name + "'");
}

}  // namespace metablink::store
