#ifndef METABLINK_STORE_CHECKPOINT_H_
#define METABLINK_STORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace metablink::store {

/// Container magic ("MBCK" little-endian) — the first four bytes of every
/// framed checkpoint file. Loaders sniff it to tell framed files from the
/// legacy headerless formats.
inline constexpr std::uint32_t kCheckpointMagic = 0x4B43424Du;

/// Current container format version. Readers accept any version up to this
/// one; files written by a newer build are rejected with InvalidArgument
/// rather than misparsed.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Framed checkpoint container: every persistent artifact in the system —
/// trainer checkpoints, model weights, the dense index, KB snapshots,
/// bundle manifests — is one of these on disk.
///
/// Layout (all little-endian):
///
///   u32 magic "MBCK"
///   u32 format version
///   u32 section count
///   per section:
///     string name         (u64 length + bytes)
///     u64    payload size
///     u32    crc32 over name bytes + payload bytes
///     payload bytes
///
/// The per-section CRC covers the section name so a flipped byte anywhere
/// in a section (including its label) surfaces as kDataLoss; truncation
/// anywhere surfaces as kOutOfRange; trailing garbage after the last
/// section is kDataLoss. Corruption is always a clean Status, never a
/// crash or a silently wrong model.
class CheckpointWriter {
 public:
  /// Starts a named section and returns the writer that encodes its
  /// payload. The pointer stays valid until the next AddSection /
  /// Serialize call. Names must be unique within one container.
  util::BinaryWriter* AddSection(const std::string& name);

  /// Frames every section into one container byte stream.
  std::vector<std::uint8_t> Serialize() const;

  /// Serializes and writes crash-safely (temp file + fsync + rename; see
  /// BinaryWriter::WriteToFile).
  util::Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, util::BinaryWriter>> sections_;
};

/// Parses and integrity-checks a checkpoint container. All validation
/// (magic, version, bounds, CRCs, full consumption) happens in Parse /
/// FromFile, so a constructed reader is known-good.
class CheckpointReader {
 public:
  static util::Result<CheckpointReader> FromFile(const std::string& path);
  static util::Result<CheckpointReader> Parse(std::vector<std::uint8_t> bytes);

  std::uint32_t version() const { return version_; }
  bool Has(const std::string& name) const;
  std::vector<std::string> SectionNames() const;

  /// A decoder positioned at the start of the named section's payload.
  /// NotFound when the section is absent.
  util::Result<util::BinaryReader> Section(const std::string& name) const;

 private:
  CheckpointReader() = default;

  std::uint32_t version_ = 0;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

}  // namespace metablink::store

#endif  // METABLINK_STORE_CHECKPOINT_H_
