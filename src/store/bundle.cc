#include "store/bundle.h"

#include <sys/stat.h>
#include <sys/types.h>

#include "util/string_util.h"

namespace metablink::store {

namespace {

// Manifest container section name and its stream tag.
constexpr const char* kManifestSection = "manifest";
constexpr std::uint32_t kManifestTag = 0x464E414Du;  // "MANF"

util::Status EnsureDirectory(const std::string& dir) {
  struct stat st {};
  if (::stat(dir.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return util::Status::OK();
    return util::Status::IoError(dir + " exists and is not a directory");
  }
  if (::mkdir(dir.c_str(), 0755) != 0) {
    return util::Status::IoError("cannot create bundle directory " + dir);
  }
  return util::Status::OK();
}

util::Status ValidFilename(const std::string& filename) {
  if (filename.empty() || filename == kManifestFilename ||
      filename.find('/') != std::string::npos) {
    return util::Status::InvalidArgument("invalid artifact filename '" +
                                         filename + "'");
  }
  return util::Status::OK();
}

}  // namespace

util::Status BundleWriter::AddArtifact(const std::string& name,
                                       const std::string& filename,
                                       const CheckpointWriter& ckpt) {
  METABLINK_RETURN_IF_ERROR(ValidFilename(filename));
  for (const BundleArtifact& a : artifacts_) {
    if (a.name == name) {
      return util::Status::AlreadyExists("duplicate artifact '" + name + "'");
    }
    if (a.filename == filename) {
      return util::Status::AlreadyExists("duplicate artifact file '" +
                                         filename + "'");
    }
  }
  METABLINK_RETURN_IF_ERROR(EnsureDirectory(dir_));
  const std::vector<std::uint8_t> bytes = ckpt.Serialize();
  util::BinaryWriter file;
  file.WriteRaw(bytes.data(), bytes.size());
  METABLINK_RETURN_IF_ERROR(file.WriteToFile(dir_ + "/" + filename));
  BundleArtifact artifact;
  artifact.name = name;
  artifact.filename = filename;
  artifact.size = bytes.size();
  artifact.crc32 = util::Crc32(bytes.data(), bytes.size());
  artifacts_.push_back(std::move(artifact));
  return util::Status::OK();
}

util::Status BundleWriter::Finalize(std::uint64_t model_version,
                                    const std::string& domain,
                                    std::uint32_t num_shards) {
  METABLINK_RETURN_IF_ERROR(EnsureDirectory(dir_));
  CheckpointWriter manifest;
  util::BinaryWriter* w = manifest.AddSection(kManifestSection);
  w->WriteU32(kManifestTag);
  w->WriteU64(model_version);
  w->WriteString(domain);
  w->WriteU64(artifacts_.size());
  for (const BundleArtifact& a : artifacts_) {
    w->WriteString(a.name);
    w->WriteString(a.filename);
    w->WriteU64(a.size);
    w->WriteU32(a.crc32);
  }
  // Trailing optional field: pre-shard readers stop at the artifact table,
  // and Open tolerates its absence. Unsharded bundles skip it entirely so
  // their manifests stay byte-identical to pre-shard packaging.
  if (num_shards != 0) w->WriteU32(num_shards);
  return manifest.WriteToFile(dir_ + "/" + kManifestFilename);
}

util::Result<BundleReader> BundleReader::Open(const std::string& dir) {
  auto manifest_ckpt = CheckpointReader::FromFile(dir + "/" +
                                                  kManifestFilename);
  if (!manifest_ckpt.ok()) return manifest_ckpt.status();
  auto section = manifest_ckpt->Section(kManifestSection);
  if (!section.ok()) return section.status();

  BundleReader out;
  out.dir_ = dir;
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(section->ReadU32(&tag));
  if (tag != kManifestTag) {
    return util::Status::InvalidArgument("not a bundle manifest: " + dir);
  }
  METABLINK_RETURN_IF_ERROR(section->ReadU64(&out.manifest_.model_version));
  METABLINK_RETURN_IF_ERROR(section->ReadString(&out.manifest_.domain));
  std::uint64_t count = 0;
  METABLINK_RETURN_IF_ERROR(section->ReadU64(&count));
  for (std::uint64_t i = 0; i < count; ++i) {
    BundleArtifact a;
    METABLINK_RETURN_IF_ERROR(section->ReadString(&a.name));
    METABLINK_RETURN_IF_ERROR(section->ReadString(&a.filename));
    METABLINK_RETURN_IF_ERROR(section->ReadU64(&a.size));
    METABLINK_RETURN_IF_ERROR(section->ReadU32(&a.crc32));
    METABLINK_RETURN_IF_ERROR(ValidFilename(a.filename));
    out.manifest_.artifacts.push_back(std::move(a));
  }
  // Optional trailing shard count (absent in pre-shard manifests → 0).
  if (section->Remaining() >= 4) {
    METABLINK_RETURN_IF_ERROR(section->ReadU32(&out.manifest_.num_shards));
  }

  // Verify every artifact file against the manifest before anything else
  // reads it: a bundle is valid as a whole or not at all.
  for (const BundleArtifact& a : out.manifest_.artifacts) {
    auto reader = util::BinaryReader::FromFile(out.dir_ + "/" + a.filename);
    if (!reader.ok()) return reader.status();
    std::vector<std::uint8_t> bytes;
    METABLINK_RETURN_IF_ERROR(reader->ReadBytes(reader->Remaining(), &bytes));
    if (bytes.size() != a.size) {
      return util::Status::DataLoss(util::StrFormat(
          "artifact '%s' is %zu bytes, manifest says %llu", a.name.c_str(),
          bytes.size(), static_cast<unsigned long long>(a.size)));
    }
    if (util::Crc32(bytes.data(), bytes.size()) != a.crc32) {
      return util::Status::DataLoss("artifact '" + a.name +
                                    "' failed its whole-file CRC check");
    }
  }
  return out;
}

bool BundleReader::Has(const std::string& name) const {
  for (const BundleArtifact& a : manifest_.artifacts) {
    if (a.name == name) return true;
  }
  return false;
}

util::Result<CheckpointReader> BundleReader::OpenArtifact(
    const std::string& name) const {
  for (const BundleArtifact& a : manifest_.artifacts) {
    if (a.name == name) {
      return CheckpointReader::FromFile(dir_ + "/" + a.filename);
    }
  }
  return util::Status::NotFound("bundle has no artifact '" + name + "'");
}

}  // namespace metablink::store
