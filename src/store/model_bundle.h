#ifndef METABLINK_STORE_MODEL_BUNDLE_H_
#define METABLINK_STORE_MODEL_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "kb/knowledge_base.h"
#include "model/bi_encoder.h"
#include "model/cascade.h"
#include "model/cross_encoder.h"
#include "retrieval/clustered_index.h"
#include "retrieval/dense_index.h"
#include "store/bundle.h"
#include "util/status.h"

namespace metablink::store {

/// Borrowed views of everything that goes into a packaged serving model.
/// `rerank_cache` is optional (nullptr skips the artifact; the loader
/// recomputes it instead).
struct ModelBundleParts {
  std::uint64_t model_version = 0;
  std::string domain;
  const model::BiEncoder* bi = nullptr;
  const model::CrossEncoder* cross = nullptr;
  const kb::KnowledgeBase* kb = nullptr;
  const retrieval::DenseIndex* index = nullptr;
  const model::CrossEntityCache* rerank_cache = nullptr;
  /// Optional clustered (IVF) form of `index`; nullptr skips the artifact
  /// and a clustered-serving loader rebuilds it instead.
  const retrieval::ClusteredIndex* clustered = nullptr;
  /// Optional calibrated rerank-cascade policy (train::CalibrateCascade);
  /// nullptr skips the artifact and a cascade-serving loader falls back to
  /// ServerOptions::cascade or the uncalibrated default.
  const model::CascadeModel* cascade = nullptr;
  /// KB shard count declared in the manifest (0 → unsharded). Purely a
  /// serving hint: loaders may probe with any count bit-identically.
  std::uint32_t num_shards = 0;
};

/// A fully loaded serving model: everything LinkingServer needs to answer
/// queries for one domain, owned in one place so a server can swap whole
/// model versions atomically.
struct ModelBundle {
  std::uint64_t model_version = 0;
  std::string domain;
  std::unique_ptr<model::BiEncoder> bi;
  std::unique_ptr<model::CrossEncoder> cross;
  std::unique_ptr<kb::KnowledgeBase> kb;
  retrieval::DenseIndex index;
  bool has_rerank_cache = false;
  model::CrossEntityCache rerank_cache;
  /// Clustered form of `index`, present when the bundle shipped one. NOTE:
  /// the loader attaches it to `index` for validation, but moving the
  /// ModelBundle relocates `index` — re-call clustered.Attach(&index) on
  /// the bundle's final resting place before querying through it.
  bool has_clustered = false;
  retrieval::ClusteredIndex clustered;
  /// Calibrated cascade policy, present when the bundle shipped one.
  bool has_cascade = false;
  model::CascadeModel cascade;
  /// Manifest-declared KB shard count (0 → unsharded / legacy bundle).
  std::uint32_t num_shards = 0;
};

/// Packages `parts` into the bundle directory `dir`: one checkpoint
/// container per component ("bi_encoder", "cross_encoder", "kb", "index",
/// optionally "rerank_cache") plus the MANIFEST, all written atomically.
/// Pre: bi, cross, kb, and index are non-null.
util::Status SaveModelBundle(const ModelBundleParts& parts,
                             const std::string& dir);

/// Opens, validates, and loads every artifact of a bundle. Corruption
/// anywhere (manifest, artifact CRC, section CRC, shape mismatch) is a
/// clean non-OK Status; on success the returned bundle is self-contained
/// and ready to serve.
util::Result<ModelBundle> LoadModelBundle(const std::string& dir);

}  // namespace metablink::store

#endif  // METABLINK_STORE_MODEL_BUNDLE_H_
