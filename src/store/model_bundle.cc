#include "store/model_bundle.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace metablink::store {

namespace {

constexpr std::uint32_t kRerankTag = 0x4B4E5252u;  // "RRNK"

// Sets are serialized sorted so identical caches produce identical bytes
// (and therefore identical CRCs) regardless of hash-table iteration order.
void SaveStringSet(const std::unordered_set<std::string>& set,
                   util::BinaryWriter* w) {
  std::vector<std::string> sorted(set.begin(), set.end());
  std::sort(sorted.begin(), sorted.end());
  w->WriteU64(sorted.size());
  for (const std::string& s : sorted) w->WriteString(s);
}

util::Status LoadStringSet(util::BinaryReader* r,
                           std::unordered_set<std::string>* out) {
  std::uint64_t n = 0;
  METABLINK_RETURN_IF_ERROR(r->ReadU64(&n));
  out->clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string s;
    METABLINK_RETURN_IF_ERROR(r->ReadString(&s));
    out->insert(std::move(s));
  }
  return util::Status::OK();
}

void SaveRerankCache(const model::CrossEntityCache& cache,
                     CheckpointWriter* ckpt) {
  util::BinaryWriter* w = ckpt->AddSection("rerank");
  w->WriteU32(kRerankTag);
  w->WriteU64(cache.entity_vec.rows());
  w->WriteU64(cache.entity_vec.cols());
  w->WriteFloatVector(cache.entity_vec.data());
  w->WriteU64(cache.tokens.size());
  for (const model::CachedEntityTokens& t : cache.tokens) {
    SaveStringSet(t.title_set, w);
    SaveStringSet(t.desc_set, w);
    w->WriteString(t.norm_title);
    w->WriteString(t.norm_base);
    w->WriteU32(t.has_phrase ? 1u : 0u);
  }
}

util::Status LoadRerankCache(const CheckpointReader& ckpt,
                             model::CrossEntityCache* out) {
  auto section = ckpt.Section("rerank");
  if (!section.ok()) return section.status();
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(section->ReadU32(&tag));
  if (tag != kRerankTag) {
    return util::Status::InvalidArgument("not a rerank-cache artifact");
  }
  std::uint64_t rows = 0, cols = 0;
  METABLINK_RETURN_IF_ERROR(section->ReadU64(&rows));
  METABLINK_RETURN_IF_ERROR(section->ReadU64(&cols));
  std::vector<float> flat;
  METABLINK_RETURN_IF_ERROR(section->ReadFloatVector(&flat));
  if (flat.size() != rows * cols) {
    return util::Status::InvalidArgument("corrupt rerank-cache shape");
  }
  std::uint64_t num_tokens = 0;
  METABLINK_RETURN_IF_ERROR(section->ReadU64(&num_tokens));
  if (num_tokens != rows) {
    return util::Status::InvalidArgument(util::StrFormat(
        "rerank cache has %llu token rows for %llu vector rows",
        static_cast<unsigned long long>(num_tokens),
        static_cast<unsigned long long>(rows)));
  }
  std::vector<model::CachedEntityTokens> tokens(num_tokens);
  for (model::CachedEntityTokens& t : tokens) {
    METABLINK_RETURN_IF_ERROR(LoadStringSet(&*section, &t.title_set));
    METABLINK_RETURN_IF_ERROR(LoadStringSet(&*section, &t.desc_set));
    METABLINK_RETURN_IF_ERROR(section->ReadString(&t.norm_title));
    METABLINK_RETURN_IF_ERROR(section->ReadString(&t.norm_base));
    std::uint32_t has_phrase = 0;
    METABLINK_RETURN_IF_ERROR(section->ReadU32(&has_phrase));
    t.has_phrase = has_phrase != 0;
  }
  out->entity_vec = tensor::Tensor(static_cast<std::size_t>(rows),
                                   static_cast<std::size_t>(cols),
                                   std::move(flat));
  out->tokens = std::move(tokens);
  return util::Status::OK();
}

}  // namespace

util::Status SaveModelBundle(const ModelBundleParts& parts,
                             const std::string& dir) {
  if (parts.bi == nullptr || parts.cross == nullptr || parts.kb == nullptr ||
      parts.index == nullptr) {
    return util::Status::InvalidArgument(
        "a model bundle needs bi, cross, kb, and index");
  }
  BundleWriter bundle(dir);
  {
    CheckpointWriter ckpt;
    parts.bi->SaveCheckpoint(&ckpt);
    METABLINK_RETURN_IF_ERROR(bundle.AddArtifact("bi_encoder", "bi.ckpt",
                                                 ckpt));
  }
  {
    CheckpointWriter ckpt;
    parts.cross->SaveCheckpoint(&ckpt);
    METABLINK_RETURN_IF_ERROR(bundle.AddArtifact("cross_encoder", "cross.ckpt",
                                                 ckpt));
  }
  {
    CheckpointWriter ckpt;
    parts.kb->Save(ckpt.AddSection("kb"));
    METABLINK_RETURN_IF_ERROR(bundle.AddArtifact("kb", "kb.ckpt", ckpt));
  }
  {
    CheckpointWriter ckpt;
    parts.index->Save(ckpt.AddSection("index"));
    METABLINK_RETURN_IF_ERROR(bundle.AddArtifact("index", "index.ckpt", ckpt));
  }
  if (parts.rerank_cache != nullptr) {
    CheckpointWriter ckpt;
    SaveRerankCache(*parts.rerank_cache, &ckpt);
    METABLINK_RETURN_IF_ERROR(bundle.AddArtifact("rerank_cache", "rerank.ckpt",
                                                 ckpt));
  }
  if (parts.clustered != nullptr) {
    if (!parts.clustered->built()) {
      return util::Status::InvalidArgument(
          "bundle clustered index was never built");
    }
    if (parts.clustered->size() != parts.index->size() ||
        parts.clustered->dim() != parts.index->dim()) {
      return util::Status::InvalidArgument(
          "bundle clustered index does not match the dense index shape");
    }
    CheckpointWriter ckpt;
    parts.clustered->Save(ckpt.AddSection("clustered"));
    METABLINK_RETURN_IF_ERROR(bundle.AddArtifact("clustered",
                                                 "clustered.ckpt", ckpt));
  }
  if (parts.cascade != nullptr) {
    if (parts.cascade->config.rerank_head_k == 0) {
      return util::Status::InvalidArgument(
          "bundle cascade rerank_head_k must be >= 1");
    }
    CheckpointWriter ckpt;
    parts.cascade->Save(ckpt.AddSection("cascade"));
    METABLINK_RETURN_IF_ERROR(bundle.AddArtifact("cascade", "cascade.ckpt",
                                                 ckpt));
  }
  return bundle.Finalize(parts.model_version, parts.domain,
                         parts.num_shards);
}

util::Result<ModelBundle> LoadModelBundle(const std::string& dir) {
  auto bundle = BundleReader::Open(dir);
  if (!bundle.ok()) return bundle.status();

  ModelBundle out;
  out.model_version = bundle->manifest().model_version;
  out.domain = bundle->manifest().domain;
  out.num_shards = bundle->manifest().num_shards;

  // The loader Rng only seeds throwaway initial weights; LoadCheckpoint
  // overwrites every value.
  util::Rng rng(0);

  auto bi_ckpt = bundle->OpenArtifact("bi_encoder");
  if (!bi_ckpt.ok()) return bi_ckpt.status();
  auto bi_config = model::BiEncoder::ReadConfig(*bi_ckpt);
  if (!bi_config.ok()) return bi_config.status();
  out.bi = std::make_unique<model::BiEncoder>(*bi_config, &rng);
  METABLINK_RETURN_IF_ERROR(out.bi->LoadCheckpoint(*bi_ckpt));

  auto cross_ckpt = bundle->OpenArtifact("cross_encoder");
  if (!cross_ckpt.ok()) return cross_ckpt.status();
  auto cross_config = model::CrossEncoder::ReadConfig(*cross_ckpt);
  if (!cross_config.ok()) return cross_config.status();
  out.cross = std::make_unique<model::CrossEncoder>(*cross_config, &rng);
  METABLINK_RETURN_IF_ERROR(out.cross->LoadCheckpoint(*cross_ckpt));

  auto kb_ckpt = bundle->OpenArtifact("kb");
  if (!kb_ckpt.ok()) return kb_ckpt.status();
  auto kb_section = kb_ckpt->Section("kb");
  if (!kb_section.ok()) return kb_section.status();
  auto kb = kb::KnowledgeBase::Load(&*kb_section);
  if (!kb.ok()) return kb.status();
  out.kb = std::make_unique<kb::KnowledgeBase>(std::move(*kb));

  auto index_ckpt = bundle->OpenArtifact("index");
  if (!index_ckpt.ok()) return index_ckpt.status();
  auto index_section = index_ckpt->Section("index");
  if (!index_section.ok()) return index_section.status();
  METABLINK_RETURN_IF_ERROR(out.index.Load(&*index_section));

  // Cross-artifact consistency: each artifact passed its own CRC, but a
  // bundle assembled from mismatched pieces must still be rejected.
  if (out.kb->EntitiesInDomain(out.domain).empty()) {
    return util::Status::InvalidArgument(
        "bundle KB has no entities in served domain '" + out.domain + "'");
  }
  for (kb::EntityId id : out.index.ids()) {
    if (id >= out.kb->num_entities()) {
      return util::Status::InvalidArgument(
          "bundle index references entity ids outside its KB");
    }
  }

  if (bundle->Has("rerank_cache")) {
    auto rerank_ckpt = bundle->OpenArtifact("rerank_cache");
    if (!rerank_ckpt.ok()) return rerank_ckpt.status();
    METABLINK_RETURN_IF_ERROR(LoadRerankCache(*rerank_ckpt,
                                              &out.rerank_cache));
    if (out.rerank_cache.tokens.size() != out.index.size()) {
      return util::Status::InvalidArgument(
          "bundle rerank cache does not cover the indexed entity set");
    }
    out.has_rerank_cache = true;
  }

  if (bundle->Has("clustered")) {
    auto clustered_ckpt = bundle->OpenArtifact("clustered");
    if (!clustered_ckpt.ok()) return clustered_ckpt.status();
    auto clustered_section = clustered_ckpt->Section("clustered");
    if (!clustered_section.ok()) return clustered_section.status();
    METABLINK_RETURN_IF_ERROR(out.clustered.Load(&*clustered_section));
    // Attach validates the clustering against this bundle's own index (row
    // count and dimension), rejecting bundles assembled from mismatched
    // artifacts even though each passed its CRC.
    METABLINK_RETURN_IF_ERROR(out.clustered.Attach(&out.index));
    out.has_clustered = true;
  }

  if (bundle->Has("cascade")) {
    auto cascade_ckpt = bundle->OpenArtifact("cascade");
    if (!cascade_ckpt.ok()) return cascade_ckpt.status();
    auto cascade_section = cascade_ckpt->Section("cascade");
    if (!cascade_section.ok()) return cascade_section.status();
    METABLINK_RETURN_IF_ERROR(out.cascade.Load(&*cascade_section));
    out.has_cascade = true;
  }
  return out;
}

}  // namespace metablink::store
