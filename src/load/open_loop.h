#ifndef METABLINK_LOAD_OPEN_LOOP_H_
#define METABLINK_LOAD_OPEN_LOOP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "load/histogram.h"

namespace metablink::load {

/// What one scheduled request came back as. kShed maps to a load-shed
/// (kUnavailable) response — expected under deliberate overload and
/// counted separately from real failures.
enum class IssueOutcome { kOk, kShed, kError };

struct OpenLoopOptions {
  /// Target arrival rate. Arrivals are scheduled on the driver's own
  /// clock, independent of completions — the defining property of an
  /// open-loop load test (a closed loop self-throttles under overload and
  /// hides queueing collapse).
  double target_qps = 1000.0;
  std::size_t total_requests = 1000;
  /// Poisson arrivals (exponential inter-arrival gaps) when true, a fixed
  /// 1/target_qps interval when false. Both are deterministic per seed.
  bool poisson = true;
  /// Client threads available to issue scheduled requests. If all are
  /// blocked in slow requests, later arrivals are issued late — the lag is
  /// part of the measured latency (see below), never silently dropped.
  std::size_t max_clients = 64;
  std::uint64_t seed = 1;
};

struct OpenLoopResult {
  std::size_t issued = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double wall_ms = 0.0;
  /// Completed-OK requests per second of wall time.
  double achieved_qps = 0.0;
  /// Worst (actual issue time - scheduled arrival) over the run: how far
  /// the driver fell behind its own schedule.
  double max_start_lag_ms = 0.0;
  /// Scheduled-arrival -> completion, nanoseconds, successful requests
  /// only. Measuring from the *scheduled* arrival (not the possibly-late
  /// issue) charges queueing delay to the server, avoiding coordinated
  /// omission: a stalled server cannot make its own latency numbers look
  /// good by slowing the generator down.
  LatencyHistogram latency_ns;
};

class OpenLoopDriver {
 public:
  /// Arrival offsets (ns from stream start), deterministic per options:
  /// i/target_qps for fixed-interval, a seeded exponential-gap cumsum for
  /// Poisson. Exposed so tests can pin determinism and spacing.
  static std::vector<std::uint64_t> ArrivalOffsetsNs(
      const OpenLoopOptions& options);

  /// Runs the configured arrival process against `issue`, which performs
  /// request i (blocking) and reports its outcome. `issue` is called
  /// concurrently from up to max_clients threads.
  static OpenLoopResult Run(
      const OpenLoopOptions& options,
      const std::function<IssueOutcome(std::size_t)>& issue);
};

}  // namespace metablink::load

#endif  // METABLINK_LOAD_OPEN_LOOP_H_
