#include "load/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace metablink::load {

LatencyHistogram::LatencyHistogram() : counts_(kNumBuckets, 0) {}

std::size_t LatencyHistogram::BucketIndex(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // exp >= 1: shift until the value fits in kSubBucketBits bits; the
  // surviving sub-bucket is in [kSubBuckets/2, kSubBuckets).
  const int exp = std::bit_width(value) - kSubBucketBits;
  const std::uint64_t sub = value >> exp;
  return kSubBuckets + static_cast<std::size_t>(exp - 1) * (kSubBuckets / 2) +
         static_cast<std::size_t>(sub - kSubBuckets / 2);
}

std::uint64_t LatencyHistogram::BucketUpperBound(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t i = index - kSubBuckets;
  const int exp = static_cast<int>(i / (kSubBuckets / 2)) + 1;
  const std::uint64_t sub = i % (kSubBuckets / 2) + kSubBuckets / 2;
  return ((sub + 1) << exp) - 1;
}

void LatencyHistogram::Record(std::uint64_t value) {
  ++counts_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
}

std::uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

}  // namespace metablink::load
