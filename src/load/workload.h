#ifndef METABLINK_LOAD_WORKLOAD_H_
#define METABLINK_LOAD_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace metablink::load {

/// YCSB-style Zipfian rank generator: draws ranks in [0, items) where rank
/// 0 is the most popular and P(rank) ∝ 1/(rank+1)^theta. The zeta sums the
/// rejection-free inverse transform needs are computed once at
/// construction, so the per-draw cost is constant — no O(n) work or table
/// lookup inside the serving loop, which is what lets an open-loop driver
/// generate arrivals at six-figure QPS without perturbing its own clock.
///
/// The draw itself is Gray/Jim's approximation as used by YCSB: the top two
/// ranks get their exact probabilities and the tail is mapped through
/// items * (eta*u - eta + 1)^alpha. Stateless apart from the precomputed
/// constants; the caller supplies the Rng so one seed drives one stream.
class ZipfianGenerator {
 public:
  /// YCSB's canonical skew: rank 0 takes ~20% of a 64-item pool's draws.
  static constexpr double kDefaultTheta = 0.99;

  /// Pre: items >= 1 and 0 < theta < 1 (the closed form diverges at 1;
  /// RequestStream::Make validates before constructing).
  explicit ZipfianGenerator(std::size_t items, double theta = kDefaultTheta);

  /// Next rank in [0, items), most popular first.
  std::size_t Next(util::Rng* rng) const;

  std::size_t items() const { return items_; }
  double theta() const { return theta_; }

  /// zeta(n, theta) = sum_{i=1..n} 1/i^theta — the normalizer. Exposed so
  /// tests can check the constants and callers can estimate head mass.
  static double Zeta(std::size_t n, double theta);

 private:
  std::size_t items_;
  double theta_;
  double zetan_;           // zeta(items, theta), computed once
  double alpha_;           // 1 / (1 - theta)
  double eta_;             // YCSB tail-mapping constant
  double half_pow_theta_;  // 0.5^theta: rank-1 acceptance threshold
};

/// FNV-1 64-bit hash of `v`'s eight bytes; the scrambler behind
/// MixKind::kScrambledZipfian (popularity ranks stop being contiguous
/// indices, so "hot" items scatter across the pool like real entities).
std::uint64_t Fnv64(std::uint64_t v);

/// How a RequestStream maps draws onto pool indices.
enum class MixKind {
  /// i % pool_size — the legacy closed-loop bench replay, bit-compatible
  /// with the pre-load-subsystem request streams.
  kRoundRobin,
  /// Uniform over the pool.
  kUniform,
  /// Zipfian popularity: index 0 hottest.
  kZipfian,
  /// Zipfian popularity scattered over the pool by Fnv64, so hot items are
  /// not clustered at the low indices.
  kScrambledZipfian,
  /// YCSB read-latest: popularity is Zipfian over recency. A virtual
  /// "newest item" head advances every `advance_every` draws and draws
  /// concentrate just behind it.
  kReadLatest,
  /// Zipfian whose hot range rotates: every `shift_every` draws the whole
  /// popularity ranking shifts by `shift_step` positions (mod pool), the
  /// churn pattern that evicts an LRU's working set.
  kHotShift,
};

const char* MixKindName(MixKind kind);

/// Deterministic, seeded description of one synthetic request stream.
struct WorkloadConfig {
  MixKind kind = MixKind::kRoundRobin;
  /// Distinct requests the stream indexes into. Required (>= 1).
  std::size_t pool_size = 0;
  /// Zipf exponent for the zipfian-family kinds; must be in (0, 1).
  double theta = ZipfianGenerator::kDefaultTheta;
  std::uint64_t seed = 1;
  /// kHotShift: draws between rotations (0 disables shifting).
  std::size_t shift_every = 0;
  /// kHotShift: positions the ranking rotates per shift; 0 defaults to
  /// pool_size / 8 (min 1).
  std::size_t shift_step = 0;
  /// kReadLatest: draws between head advances (>= 1; 0 defaults to 1).
  std::size_t advance_every = 1;
};

/// One deterministic stream of pool indices: the same config (seed
/// included) always yields the same sequence, which is what makes
/// byte-identity gates over served traffic possible.
class RequestStream {
 public:
  static util::Result<RequestStream> Make(const WorkloadConfig& config);

  /// Next pool index in [0, pool_size).
  std::size_t Next();

  /// Appends `n` draws to `*out`.
  void Fill(std::size_t n, std::vector<std::size_t>* out);

  const WorkloadConfig& config() const { return config_; }

 private:
  explicit RequestStream(const WorkloadConfig& config);

  WorkloadConfig config_;
  util::Rng rng_;
  ZipfianGenerator zipf_;
  std::size_t counter_ = 0;  // draws so far (round-robin position)
  std::size_t offset_ = 0;   // kHotShift rotation
  std::size_t head_ = 0;     // kReadLatest newest item
};

}  // namespace metablink::load

#endif  // METABLINK_LOAD_WORKLOAD_H_
