#include "load/open_loop.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>

#include "util/rng.h"

namespace metablink::load {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

std::vector<std::uint64_t> OpenLoopDriver::ArrivalOffsetsNs(
    const OpenLoopOptions& options) {
  std::vector<std::uint64_t> offsets;
  offsets.reserve(options.total_requests);
  const double qps = std::max(options.target_qps, 1e-9);
  if (!options.poisson) {
    const double gap_ns = 1e9 / qps;
    for (std::size_t i = 0; i < options.total_requests; ++i) {
      offsets.push_back(
          static_cast<std::uint64_t>(gap_ns * static_cast<double>(i)));
    }
    return offsets;
  }
  util::Rng rng(options.seed);
  double t_ns = 0.0;
  for (std::size_t i = 0; i < options.total_requests; ++i) {
    offsets.push_back(static_cast<std::uint64_t>(t_ns));
    // Exponential inter-arrival gap; 1 - u avoids log(0).
    t_ns += -std::log(1.0 - rng.NextDouble()) * 1e9 / qps;
  }
  return offsets;
}

OpenLoopResult OpenLoopDriver::Run(
    const OpenLoopOptions& options,
    const std::function<IssueOutcome(std::size_t)>& issue) {
  const std::vector<std::uint64_t> offsets = ArrivalOffsetsNs(options);
  OpenLoopResult result;
  if (offsets.empty()) return result;
  const std::size_t threads =
      std::max<std::size_t>(1, std::min(options.max_clients, offsets.size()));
  std::atomic<std::size_t> next{0};
  std::mutex merge_mu;
  // Small fixed start offset so no thread finds its first arrival already
  // in the past while the workers are still being spawned.
  const Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(2);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      LatencyHistogram local_hist;
      std::size_t local_ok = 0, local_shed = 0, local_errors = 0;
      double local_lag_ms = 0.0;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= offsets.size()) break;
        const Clock::time_point arrival =
            t0 + std::chrono::nanoseconds(offsets[i]);
        std::this_thread::sleep_until(arrival);
        const Clock::time_point issued_at = Clock::now();
        local_lag_ms = std::max(
            local_lag_ms,
            std::chrono::duration<double, std::milli>(issued_at - arrival)
                .count());
        const IssueOutcome outcome = issue(i);
        const Clock::time_point done = Clock::now();
        switch (outcome) {
          case IssueOutcome::kOk: {
            ++local_ok;
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(done -
                                                                     arrival)
                    .count();
            local_hist.Record(
                static_cast<std::uint64_t>(std::max<std::int64_t>(0, ns)));
            break;
          }
          case IssueOutcome::kShed:
            ++local_shed;
            break;
          case IssueOutcome::kError:
            ++local_errors;
            break;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      result.latency_ns.Merge(local_hist);
      result.ok += local_ok;
      result.shed += local_shed;
      result.errors += local_errors;
      result.max_start_lag_ms =
          std::max(result.max_start_lag_ms, local_lag_ms);
    });
  }
  for (auto& w : workers) w.join();
  result.issued = result.ok + result.shed + result.errors;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  result.achieved_qps = result.wall_ms > 0.0
                            ? 1000.0 * static_cast<double>(result.ok) /
                                  result.wall_ms
                            : 0.0;
  return result;
}

}  // namespace metablink::load
