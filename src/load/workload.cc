#include "load/workload.h"

#include <algorithm>
#include <cmath>

namespace metablink::load {

double ZipfianGenerator::Zeta(std::size_t n, double theta) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(std::size_t items, double theta)
    : items_(std::max<std::size_t>(1, items)), theta_(theta) {
  zetan_ = Zeta(items_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = std::pow(0.5, theta_);
}

std::size_t ZipfianGenerator::Next(util::Rng* rng) const {
  if (items_ == 1) return 0;
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_theta_) return 1;
  const auto rank = static_cast<std::size_t>(
      static_cast<double>(items_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, items_ - 1);
}

std::uint64_t Fnv64(std::uint64_t v) {
  constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash = kOffsetBasis;
  for (int i = 0; i < 8; ++i) {
    hash ^= v & 0xFFULL;
    hash *= kPrime;
    v >>= 8;
  }
  return hash;
}

const char* MixKindName(MixKind kind) {
  switch (kind) {
    case MixKind::kRoundRobin: return "round_robin";
    case MixKind::kUniform: return "uniform";
    case MixKind::kZipfian: return "zipfian";
    case MixKind::kScrambledZipfian: return "scrambled_zipfian";
    case MixKind::kReadLatest: return "read_latest";
    case MixKind::kHotShift: return "hot_shift";
  }
  return "unknown";
}

util::Result<RequestStream> RequestStream::Make(const WorkloadConfig& config) {
  if (config.pool_size == 0) {
    return util::Status::InvalidArgument("workload pool_size must be >= 1");
  }
  const bool zipf_family = config.kind == MixKind::kZipfian ||
                           config.kind == MixKind::kScrambledZipfian ||
                           config.kind == MixKind::kReadLatest ||
                           config.kind == MixKind::kHotShift;
  if (zipf_family && (config.theta <= 0.0 || config.theta >= 1.0)) {
    return util::Status::InvalidArgument(
        "zipf theta must be in (0, 1); the YCSB closed form diverges at 1");
  }
  return RequestStream(config);
}

RequestStream::RequestStream(const WorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.pool_size, config.theta) {
  if (config_.shift_step == 0) {
    config_.shift_step = std::max<std::size_t>(1, config_.pool_size / 8);
  }
  if (config_.advance_every == 0) config_.advance_every = 1;
}

std::size_t RequestStream::Next() {
  const std::size_t pool = config_.pool_size;
  switch (config_.kind) {
    case MixKind::kRoundRobin:
      return counter_++ % pool;
    case MixKind::kUniform:
      return static_cast<std::size_t>(rng_.NextUint64(pool));
    case MixKind::kZipfian:
      return zipf_.Next(&rng_);
    case MixKind::kScrambledZipfian:
      return static_cast<std::size_t>(Fnv64(zipf_.Next(&rng_)) % pool);
    case MixKind::kReadLatest: {
      // Popularity is Zipfian over distance behind the moving head: rank 0
      // is the "newest" item, rank r the item inserted r steps earlier.
      ++counter_;
      if (counter_ % config_.advance_every == 0) head_ = (head_ + 1) % pool;
      const std::size_t rank = zipf_.Next(&rng_);
      return (head_ + pool - rank % pool) % pool;
    }
    case MixKind::kHotShift: {
      const std::size_t raw = zipf_.Next(&rng_);
      const std::size_t idx = (raw + offset_) % pool;
      ++counter_;
      if (config_.shift_every != 0 && counter_ % config_.shift_every == 0) {
        offset_ = (offset_ + config_.shift_step) % pool;
      }
      return idx;
    }
  }
  return 0;
}

void RequestStream::Fill(std::size_t n, std::vector<std::size_t>* out) {
  out->reserve(out->size() + n);
  for (std::size_t i = 0; i < n; ++i) out->push_back(Next());
}

}  // namespace metablink::load
