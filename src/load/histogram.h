#ifndef METABLINK_LOAD_HISTOGRAM_H_
#define METABLINK_LOAD_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace metablink::load {

/// HDR-style log-bucketed histogram for latency recording on the hot path.
///
/// The value space is split into octaves; each octave above the first gets
/// 2^(kSubBucketBits-1) linear sub-buckets, so every recorded value lands
/// in a bucket whose width is at most 2^-(kSubBucketBits-1) of its
/// magnitude — a <= 1.6% relative error at the default 7 sub-bucket bits,
/// over the full 64-bit range, in ~30 KB of fixed storage. Values below
/// 2^kSubBucketBits are exact. Record() is branch-light constant time (a
/// bit_width and two shifts), so an open-loop driver can record per-request
/// latencies without perturbing its own arrival clock; percentile queries
/// walk the bucket array and return the bucket's upper bound (clamped to
/// the exact observed max), matching HDR's highest-equivalent-value
/// convention.
///
/// Values are unit-agnostic integers; the load subsystem records
/// nanoseconds. Not thread-safe: record into per-thread histograms and
/// Merge().
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 7;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  static constexpr std::size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * (kSubBuckets / 2);

  LatencyHistogram();

  void Record(std::uint64_t value);
  void Merge(const LatencyHistogram& other);
  void Reset();

  /// Value at quantile `q` in [0, 1]: the smallest bucket upper bound
  /// covering ceil(q * count) recorded values (clamped to the observed
  /// min/max). 0 when empty.
  std::uint64_t ValueAtQuantile(double q) const;

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  /// Bucket mapping, exposed for tests: index for a value and the largest
  /// value mapping to that index.
  static std::size_t BucketIndex(std::uint64_t value);
  static std::uint64_t BucketUpperBound(std::size_t index);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace metablink::load

#endif  // METABLINK_LOAD_HISTOGRAM_H_
