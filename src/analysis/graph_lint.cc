#include "analysis/graph_lint.h"

#include <cmath>
#include <cstddef>

#include "util/string_util.h"

namespace metablink::analysis {

namespace {

using tensor::OpKind;
using tensor::OpKindName;
using tensor::TapeOp;

void Add(LintReport* report, Severity severity, LintClass lint_class,
         std::int32_t node, const char* op, std::string message) {
  LintFinding f;
  f.severity = severity;
  f.lint_class = lint_class;
  f.node = node;
  f.op = op != nullptr ? op : "";
  f.message = std::move(message);
  switch (severity) {
    case Severity::kInfo:
      ++report->infos;
      break;
    case Severity::kWarning:
      ++report->warnings;
      break;
    case Severity::kError:
      ++report->errors;
      break;
  }
  report->findings.push_back(std::move(f));
}

std::string ShapeStr(const TapeOp& op) {
  return util::StrFormat("[%zu,%zu]", op.rows, op.cols);
}

/// Expected input arity per op; -1 means "one or more" (ConcatRows).
int ExpectedArity(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
    case OpKind::kParam:
    case OpKind::kEmbeddingBagMean:
      return 0;
    case OpKind::kScale:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kSigmoid:
    case OpKind::kRowL2Normalize:
    case OpKind::kBroadcastRow:
    case OpKind::kReshape:
    case OpKind::kSoftmaxCrossEntropy:
    case OpKind::kMean:
    case OpKind::kWeightedSum:
    case OpKind::kSum:
      return 1;
    case OpKind::kMatMul:
    case OpKind::kMatMulTransposeB:
    case OpKind::kAddBiasRow:
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
    case OpKind::kConcatCols:
    case OpKind::kRowDot:
      return 2;
    case OpKind::kConcatRows:
      return -1;
  }
  return -1;
}

/// Validates input edges (range, ordering, arity). Returns false when the
/// edges are too broken for shape rules to be meaningful.
bool CheckStructure(const std::vector<TapeOp>& tape, const TapeOp& op,
                    LintReport* report) {
  const char* name = OpKindName(op.kind);
  bool usable = true;
  const int arity = ExpectedArity(op.kind);
  if (arity >= 0 && op.inputs.size() != static_cast<std::size_t>(arity)) {
    Add(report, Severity::kError, LintClass::kTapeStructure, op.id, name,
        util::StrFormat("expects %d input(s), has %zu", arity,
                        op.inputs.size()));
    usable = false;
  }
  if (arity < 0 && op.inputs.empty()) {
    Add(report, Severity::kError, LintClass::kTapeStructure, op.id, name,
        "expects at least one input, has none");
    usable = false;
  }
  for (std::int32_t in : op.inputs) {
    if (in < 0 || static_cast<std::size_t>(in) >= tape.size()) {
      Add(report, Severity::kError, LintClass::kTapeStructure, op.id, name,
          util::StrFormat("input id %d outside tape [0,%zu)", in,
                          tape.size()));
      usable = false;
    } else if (in >= op.id) {
      Add(report, Severity::kError, LintClass::kTapeStructure, op.id, name,
          util::StrFormat("input id %d is not before the node (%s reference "
                          "breaks tape order)",
                          in, in == op.id ? "self" : "forward"));
      usable = false;
    }
  }
  return usable;
}

/// Re-derives each op's shape contract from its input shapes and compares
/// against the recorded output shape.
void CheckShapes(const std::vector<TapeOp>& tape, const TapeOp& op,
                 LintReport* report) {
  const char* name = OpKindName(op.kind);
  auto in = [&tape, &op](std::size_t i) -> const TapeOp& {
    return tape[static_cast<std::size_t>(op.inputs[i])];
  };
  auto bad = [&](std::string message) {
    Add(report, Severity::kError, LintClass::kShapeMismatch, op.id, name,
        std::move(message));
  };
  auto expect_out = [&](std::size_t rows, std::size_t cols) {
    if (op.rows != rows || op.cols != cols) {
      bad(util::StrFormat("output is %s, expected [%zu,%zu]",
                          ShapeStr(op).c_str(), rows, cols));
    }
  };
  switch (op.kind) {
    case OpKind::kInput:
    case OpKind::kParam:
      break;
    case OpKind::kEmbeddingBagMean:
      if (op.param != nullptr && op.cols != op.param->value.cols()) {
        bad(util::StrFormat("output width %zu != embedding dim %zu", op.cols,
                            op.param->value.cols()));
      }
      break;
    case OpKind::kMatMul:
      if (in(0).cols != in(1).rows) {
        bad(util::StrFormat("inner dims differ: %s x %s",
                            ShapeStr(in(0)).c_str(),
                            ShapeStr(in(1)).c_str()));
      } else {
        expect_out(in(0).rows, in(1).cols);
      }
      break;
    case OpKind::kMatMulTransposeB:
      if (in(0).cols != in(1).cols) {
        bad(util::StrFormat("widths differ: %s x %s^T",
                            ShapeStr(in(0)).c_str(),
                            ShapeStr(in(1)).c_str()));
      } else {
        expect_out(in(0).rows, in(1).rows);
      }
      break;
    case OpKind::kAddBiasRow:
      if (in(1).rows != 1 || in(1).cols != in(0).cols) {
        bad(util::StrFormat("bias %s does not broadcast over %s",
                            ShapeStr(in(1)).c_str(),
                            ShapeStr(in(0)).c_str()));
      } else {
        expect_out(in(0).rows, in(0).cols);
      }
      break;
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
      if (in(0).rows != in(1).rows || in(0).cols != in(1).cols) {
        bad(util::StrFormat("operand shapes differ: %s vs %s",
                            ShapeStr(in(0)).c_str(),
                            ShapeStr(in(1)).c_str()));
      } else {
        expect_out(in(0).rows, in(0).cols);
      }
      break;
    case OpKind::kScale:
    case OpKind::kTanh:
    case OpKind::kRelu:
    case OpKind::kSigmoid:
    case OpKind::kRowL2Normalize:
      expect_out(in(0).rows, in(0).cols);
      break;
    case OpKind::kConcatCols:
      if (in(0).rows != in(1).rows) {
        bad(util::StrFormat("row counts differ: %s vs %s",
                            ShapeStr(in(0)).c_str(),
                            ShapeStr(in(1)).c_str()));
      } else {
        expect_out(in(0).rows, in(0).cols + in(1).cols);
      }
      break;
    case OpKind::kConcatRows: {
      const std::size_t cols = in(0).cols;
      std::size_t rows = 0;
      bool widths_ok = true;
      for (std::size_t i = 0; i < op.inputs.size(); ++i) {
        if (in(i).cols != cols) {
          bad(util::StrFormat("part %zu is %s, expected width %zu", i,
                              ShapeStr(in(i)).c_str(), cols));
          widths_ok = false;
        }
        rows += in(i).rows;
      }
      if (widths_ok) expect_out(rows, cols);
      break;
    }
    case OpKind::kBroadcastRow:
      if (in(0).rows != 1) {
        bad(util::StrFormat("input %s is not a [1,c] row",
                            ShapeStr(in(0)).c_str()));
      } else if (op.cols != in(0).cols) {
        bad(util::StrFormat("output %s changes width from %s",
                            ShapeStr(op).c_str(), ShapeStr(in(0)).c_str()));
      }
      break;
    case OpKind::kReshape:
      if (op.rows * op.cols != in(0).rows * in(0).cols) {
        bad(util::StrFormat("output %s does not preserve %s's element count",
                            ShapeStr(op).c_str(), ShapeStr(in(0)).c_str()));
      }
      break;
    case OpKind::kRowDot:
      if (in(0).rows != in(1).rows || in(0).cols != in(1).cols) {
        bad(util::StrFormat("operand shapes differ: %s vs %s",
                            ShapeStr(in(0)).c_str(),
                            ShapeStr(in(1)).c_str()));
      } else {
        expect_out(in(0).rows, 1);
      }
      break;
    case OpKind::kSoftmaxCrossEntropy:
      expect_out(in(0).rows, 1);
      break;
    case OpKind::kWeightedSum:
      if (in(0).cols != 1) {
        bad(util::StrFormat("input %s is not a column",
                            ShapeStr(in(0)).c_str()));
      } else {
        expect_out(1, 1);
      }
      break;
    case OpKind::kMean:
    case OpKind::kSum:
      expect_out(1, 1);
      break;
  }
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const char* LintClassName(LintClass lint_class) {
  switch (lint_class) {
    case LintClass::kTapeStructure:
      return "tape-structure";
    case LintClass::kShapeMismatch:
      return "shape-mismatch";
    case LintClass::kDeadNode:
      return "dead-node";
    case LintClass::kFrozenParameter:
      return "frozen-parameter";
    case LintClass::kMemoryBudget:
      return "memory-budget";
    case LintClass::kNonFinite:
      return "non-finite";
  }
  return "?";
}

std::string LintFinding::ToString() const {
  std::string where =
      node >= 0 ? util::StrFormat("node %d (%s)", node, op.c_str()) : "tape";
  return util::StrFormat("[%s] %s: %s: %s", SeverityName(severity),
                         LintClassName(lint_class), where.c_str(),
                         message.c_str());
}

bool LintReport::Has(LintClass lint_class) const {
  for (const LintFinding& f : findings) {
    if (f.lint_class == lint_class) return true;
  }
  return false;
}

std::string LintReport::Summary() const {
  std::string out = util::StrFormat(
      "GraphLint: %zu nodes, %zu bytes, %zu error(s), %zu warning(s)",
      num_nodes, tape_bytes, errors, warnings);
  for (const LintFinding& f : findings) {
    if (f.severity == Severity::kInfo) continue;
    out += "\n  ";
    out += f.ToString();
  }
  return out;
}

LintReport LintTape(const std::vector<TapeOp>& tape, std::int32_t root,
                    const GraphLintOptions& options) {
  LintReport report;
  report.num_nodes = tape.size();

  // Pass 0: tape-order ids and memory accounting.
  for (std::size_t i = 0; i < tape.size(); ++i) {
    if (tape[i].id != static_cast<std::int32_t>(i)) {
      Add(&report, Severity::kError, LintClass::kTapeStructure, tape[i].id,
          OpKindName(tape[i].kind),
          util::StrFormat("id %d at tape position %zu", tape[i].id, i));
    }
    report.tape_bytes += tape[i].rows * tape[i].cols * sizeof(float);
  }
  Add(&report, Severity::kInfo, LintClass::kMemoryBudget, -1, nullptr,
      util::StrFormat("tape holds %zu nodes / %zu activation bytes (a "
                      "dense backward workspace mirrors up to %zu more)",
                      tape.size(), report.tape_bytes, report.tape_bytes));
  if (options.memory_budget_bytes > 0 &&
      report.tape_bytes > options.memory_budget_bytes) {
    Add(&report, Severity::kWarning, LintClass::kMemoryBudget, -1, nullptr,
        util::StrFormat("activation bytes %zu exceed budget %zu",
                        report.tape_bytes, options.memory_budget_bytes));
  }

  // Pass 1: per-op structure, then shape contracts on usable edges.
  for (const TapeOp& op : tape) {
    if (op.id < 0 || static_cast<std::size_t>(op.id) >= tape.size()) continue;
    if (CheckStructure(tape, op, &report)) CheckShapes(tape, op, &report);
  }

  // Pass 2: reachability from the loss root. Every edge on this tape
  // propagates gradient, so "reachable from root" and "receives gradient"
  // coincide.
  if (root < 0 || static_cast<std::size_t>(root) >= tape.size()) {
    Add(&report, Severity::kError, LintClass::kTapeStructure, root, nullptr,
        util::StrFormat("root id %d outside tape [0,%zu)", root,
                        tape.size()));
    return report;
  }
  std::vector<std::uint8_t> reached(tape.size(), 0);
  std::vector<std::int32_t> stack = {root};
  reached[static_cast<std::size_t>(root)] = 1;
  while (!stack.empty()) {
    const std::size_t id = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    for (std::int32_t in : tape[id].inputs) {
      if (in < 0 || static_cast<std::size_t>(in) >= tape.size()) continue;
      if (reached[static_cast<std::size_t>(in)] != 0) continue;
      reached[static_cast<std::size_t>(in)] = 1;
      stack.push_back(in);
    }
  }
  for (std::size_t i = 0; i < tape.size(); ++i) {
    if (reached[i] != 0) continue;
    const TapeOp& op = tape[i];
    if (op.param != nullptr) {
      const std::string pname =
          op.param->name.empty() ? "<unnamed>" : op.param->name;
      Add(&report, Severity::kWarning, LintClass::kFrozenParameter,
          static_cast<std::int32_t>(i), OpKindName(op.kind),
          util::StrFormat("parameter '%s' has no gradient path from the "
                          "root; it will not train",
                          pname.c_str()));
    } else {
      Add(&report, Severity::kWarning, LintClass::kDeadNode,
          static_cast<std::int32_t>(i), OpKindName(op.kind),
          "unreachable from the root (dead code or detached subgraph)");
    }
  }

  // Pass 3 (opt-in): value scan for NaN/Inf.
  if (options.scan_non_finite) {
    for (const TapeOp& op : tape) {
      if (op.value == nullptr) continue;
      const std::vector<float>& data = op.value->data();
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (!std::isfinite(data[i])) {
          Add(&report, Severity::kError, LintClass::kNonFinite, op.id,
              OpKindName(op.kind),
              util::StrFormat("value[%zu,%zu] is %s", i / op.value->cols(),
                              i % op.value->cols(),
                              std::isnan(data[i]) ? "NaN" : "Inf"));
          break;  // one finding per node is enough
        }
      }
    }
  }
  return report;
}

LintReport LintGraph(const tensor::Graph& g, tensor::Var root,
                     const GraphLintOptions& options) {
  return LintTape(g.DebugTape(), root.id, options);
}

}  // namespace metablink::analysis
