#include "analysis/write_set.h"

#include <algorithm>

#include "util/string_util.h"

namespace metablink::analysis {

void WriteSetChecker::OnRegionBegin(const void* buffer, std::size_t rows,
                                    bool expect_cover, const char* tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = active_.try_emplace(buffer);
  if (!inserted) {
    AddFinding(it->second.tag,
               util::StrFormat("region re-opened by '%s' before it ended "
                               "(nested regions on one buffer)",
                               tag != nullptr ? tag : "?"));
    // Reset and validate the fresh region; the old one is lost.
    it->second.writes.clear();
  }
  it->second.tag = tag != nullptr ? tag : "?";
  it->second.rows = rows;
  it->second.expect_cover = expect_cover;
}

void WriteSetChecker::OnTaskWrite(const void* buffer, std::size_t begin,
                                  std::size_t end) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(buffer);
  if (it == active_.end()) {
    AddFinding("<no-region>",
               util::StrFormat("task write [%zu,%zu) on a buffer with no "
                               "open region",
                               begin, end));
    return;
  }
  it->second.writes.emplace_back(begin, end);
}

void WriteSetChecker::OnRegionEnd(const void* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(buffer);
  if (it == active_.end()) {
    AddFinding("<no-region>", "region ended on a buffer with no open region");
    return;
  }
  Validate(it->second);
  active_.erase(it);
  ++regions_checked_;
}

void WriteSetChecker::Validate(const Region& region) {
  // Sort by begin row; ties (identical ranges) still collide below.
  std::vector<std::pair<std::size_t, std::size_t>> writes = region.writes;
  std::sort(writes.begin(), writes.end());

  for (const auto& [begin, end] : writes) {
    if (end < begin || end > region.rows) {
      AddFinding(region.tag,
                 util::StrFormat("task range [%zu,%zu) escapes the %zu-row "
                                 "buffer",
                                 begin, end, region.rows));
    }
  }

  std::size_t covered_end = 0;  // exclusive end of the prefix seen so far
  bool gap = false;
  for (const auto& [begin, end] : writes) {
    if (begin >= end) continue;  // empty ranges neither cover nor collide
    if (begin < covered_end) {
      AddFinding(region.tag,
                 util::StrFormat("tasks overlap on rows [%zu,%zu) — "
                                 "write-write race",
                                 begin, std::min(end, covered_end)));
    } else if (begin > covered_end) {
      gap = true;
    }
    covered_end = std::max(covered_end, end);
  }
  if (region.expect_cover && (gap || covered_end < region.rows)) {
    AddFinding(region.tag,
               util::StrFormat("partition does not cover all %zu rows "
                               "(stale rows would survive)",
                               region.rows));
  }
}

void WriteSetChecker::AddFinding(const std::string& tag,
                                 std::string message) {
  findings_.push_back(Finding{tag, std::move(message)});
}

bool WriteSetChecker::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_.empty();
}

std::vector<WriteSetChecker::Finding> WriteSetChecker::findings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_;
}

std::size_t WriteSetChecker::regions_checked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_checked_;
}

std::string WriteSetChecker::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = util::StrFormat(
      "WriteSetChecker: %zu region(s) checked, %zu finding(s)",
      regions_checked_, findings_.size());
  for (const Finding& f : findings_) {
    out += "\n  ";
    out += f.ToString();
  }
  return out;
}

}  // namespace metablink::analysis
