#ifndef METABLINK_ANALYSIS_WRITE_SET_H_
#define METABLINK_ANALYSIS_WRITE_SET_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/parallel_trace.h"

namespace metablink::analysis {

/// Deterministic race detector for the row-partitioned parallel kernels.
///
/// The instrumented kernels (Gemm/GemmTransposeB row blocks, the
/// EmbeddingBag gather/scatter, RowL2Normalize, ThreadPool.ParallelForChunks
/// itself) report, per parallel region, which row range of which output
/// buffer each task writes. This checker proves the partition is
///
///   * in-bounds  — every range lies inside [0, rows),
///   * disjoint   — no two tasks write the same row (a write-write race),
///   * covering   — when the kernel claims full coverage, every row is
///                  written exactly once (a "silently stale output" bug).
///
/// Unlike TSan this does not need the race to actually happen on a given
/// run: it checks the declared partition, so an overlapping split is caught
/// every time, even on a single-core machine.
///
/// Install with WriteSetScope (RAII) around the code under test, then
/// inspect ok()/findings().
class WriteSetChecker : public util::ParallelTraceObserver {
 public:
  struct Finding {
    std::string tag;      ///< Region tag ("Gemm", "EmbeddingBagMean.scatter").
    std::string message;  ///< What went wrong.
    std::string ToString() const { return tag + ": " + message; }
  };

  WriteSetChecker() = default;

  // util::ParallelTraceObserver:
  void OnRegionBegin(const void* buffer, std::size_t rows, bool expect_cover,
                     const char* tag) override;
  void OnTaskWrite(const void* buffer, std::size_t begin,
                   std::size_t end) override;
  void OnRegionEnd(const void* buffer) override;

  /// True when every closed region so far was in-bounds, disjoint and
  /// (where claimed) covering, and the begin/write/end protocol was obeyed.
  bool ok() const;
  std::vector<Finding> findings() const;
  /// Number of regions that have completed begin→end validation.
  std::size_t regions_checked() const;

  std::string Summary() const;

 private:
  struct Region {
    std::string tag;
    std::size_t rows = 0;
    bool expect_cover = false;
    /// [begin,end) row ranges, in arrival order (tasks may be concurrent).
    std::vector<std::pair<std::size_t, std::size_t>> writes;
  };

  void AddFinding(const std::string& tag, std::string message);
  void Validate(const Region& region);

  mutable std::mutex mu_;
  std::map<const void*, Region> active_;
  std::vector<Finding> findings_;
  std::size_t regions_checked_ = 0;
};

/// Installs `checker` as the process-global parallel-trace observer for the
/// current scope and restores the previous observer on destruction.
class WriteSetScope {
 public:
  explicit WriteSetScope(WriteSetChecker* checker)
      : previous_(util::SetParallelTraceObserver(checker)) {}
  ~WriteSetScope() { util::SetParallelTraceObserver(previous_); }

  WriteSetScope(const WriteSetScope&) = delete;
  WriteSetScope& operator=(const WriteSetScope&) = delete;

 private:
  util::ParallelTraceObserver* previous_;
};

}  // namespace metablink::analysis

#endif  // METABLINK_ANALYSIS_WRITE_SET_H_
