#ifndef METABLINK_ANALYSIS_GRAPH_LINT_H_
#define METABLINK_ANALYSIS_GRAPH_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/graph.h"

namespace metablink::analysis {

/// Finding severities, in increasing order. A report with no kError
/// findings is "clean"; trainers assert that on their first step.
enum class Severity : std::uint8_t {
  kInfo,
  kWarning,
  kError,
};

/// The defect classes GraphLint detects. Each class has a seeded-defect
/// fixture in tests/analysis_test.cc proving it fires.
enum class LintClass : std::uint8_t {
  /// Malformed tape: bad root, out-of-range / forward / self input edges,
  /// ids that disagree with tape order, wrong input arity for the op.
  kTapeStructure,
  /// An op's recorded output shape (or an input constraint) contradicts
  /// the shapes of its inputs — e.g. MatMul inner dimensions differ.
  kShapeMismatch,
  /// A non-parameter node unreachable from the loss root: dead code or a
  /// detached subgraph whose values are computed but never used.
  kDeadNode,
  /// A Parameter-reading node (Param / EmbeddingBagMean) with no gradient
  /// path from the loss root — the classic "frozen by accident" bug.
  kFrozenParameter,
  /// Tape / backward-workspace memory accounting; becomes a warning when
  /// GraphLintOptions::memory_budget_bytes is set and exceeded.
  kMemoryBudget,
  /// A node value containing NaN or Inf (opt-in scan).
  kNonFinite,
};

const char* SeverityName(Severity severity);
const char* LintClassName(LintClass lint_class);

/// One structured finding; tests pin exact (class, severity, node) triples.
struct LintFinding {
  Severity severity = Severity::kInfo;
  LintClass lint_class = LintClass::kTapeStructure;
  /// Offending node id, or -1 for tape-wide findings.
  std::int32_t node = -1;
  /// Op name of the offending node ("MatMul", ...), empty for tape-wide.
  std::string op;
  std::string message;

  std::string ToString() const;
};

struct GraphLintOptions {
  /// Scan node values for NaN/Inf (kNonFinite errors). Off by default:
  /// it touches every activation, the only lint pass that is O(elements)
  /// rather than O(nodes).
  bool scan_non_finite = false;
  /// When non-zero, exceeding this many bytes of tape activations raises a
  /// kMemoryBudget warning (a kInfo accounting finding is always emitted).
  std::size_t memory_budget_bytes = 0;
};

/// Aggregated lint result.
struct LintReport {
  std::vector<LintFinding> findings;
  std::size_t num_nodes = 0;
  /// Bytes held by tape activations. A full (non-sparse) backward
  /// workspace mirrors every node gradient, so it can add up to this much
  /// again.
  std::size_t tape_bytes = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;

  /// True when no error-severity finding was raised.
  bool ok() const { return errors == 0; }
  /// True when some finding of `lint_class` was raised.
  bool Has(LintClass lint_class) const;
  /// One-line digest plus every non-info finding, newline-separated.
  std::string Summary() const;
};

/// Lints a structural tape view (see tensor::Graph::DebugTape). `root` is
/// the loss node Backward() will be seeded from; reachability is computed
/// against it. Tests forge TapeOp vectors to seed defects the Graph op
/// builders would refuse to construct.
LintReport LintTape(const std::vector<tensor::TapeOp>& tape,
                    std::int32_t root, const GraphLintOptions& options = {});

/// Convenience wrapper: snapshots `g` and lints it with `root` as the loss.
LintReport LintGraph(const tensor::Graph& g, tensor::Var root,
                     const GraphLintOptions& options = {});

}  // namespace metablink::analysis

#endif  // METABLINK_ANALYSIS_GRAPH_LINT_H_
