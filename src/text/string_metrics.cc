#include "text/string_metrics.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"

namespace metablink::text {

std::size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row DP; a is the shorter string.
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t cur = row[i];
      std::size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev_diag + cost});
      prev_diag = cur;
    }
  }
  return row[a.size()];
}

double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  std::size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++inter;
  }
  std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::size_t LcsLength(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<std::size_t> prev(b.size() + 1, 0);
  std::vector<std::size_t> cur(b.size() + 1, 0);
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

const char* OverlapCategoryName(OverlapCategory c) {
  switch (c) {
    case OverlapCategory::kHighOverlap:
      return "High Overlap";
    case OverlapCategory::kMultipleCategories:
      return "Multiple Categories";
    case OverlapCategory::kAmbiguousSubstring:
      return "Ambiguous Substring";
    case OverlapCategory::kLowOverlap:
      return "Low Overlap";
  }
  return "?";
}

OverlapCategory ClassifyOverlap(std::string_view mention,
                                std::string_view title) {
  const std::string m = NormalizeForMatch(mention);
  const std::string t = NormalizeForMatch(title);
  if (m == t && !m.empty()) return OverlapCategory::kHighOverlap;
  std::string phrase;
  const std::string base =
      NormalizeForMatch(StripDisambiguation(title, &phrase));
  if (!phrase.empty() && m == base && !m.empty()) {
    return OverlapCategory::kMultipleCategories;
  }
  if (!m.empty() && t.find(m) != std::string::npos) {
    return OverlapCategory::kAmbiguousSubstring;
  }
  return OverlapCategory::kLowOverlap;
}

}  // namespace metablink::text
