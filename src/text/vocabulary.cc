#include "text/vocabulary.h"

#include <algorithm>

namespace metablink::text {

Vocabulary::Vocabulary() { id_to_token_.push_back(kUnkToken); }

void Vocabulary::Count(std::string_view token) {
  if (frozen_) return;
  ++counts_[std::string(token)];
}

void Vocabulary::CountAll(const std::vector<std::string>& tokens) {
  for (const auto& t : tokens) Count(t);
}

util::Status Vocabulary::Freeze(std::uint32_t min_freq) {
  if (frozen_) {
    return util::Status::FailedPrecondition("vocabulary already frozen");
  }
  std::vector<std::pair<std::string, std::uint64_t>> items;
  items.reserve(counts_.size());
  for (const auto& [tok, freq] : counts_) {
    if (freq >= min_freq) items.emplace_back(tok, freq);
  }
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  token_to_id_.reserve(items.size());
  id_to_token_.reserve(items.size() + 1);
  for (const auto& [tok, freq] : items) {
    (void)freq;
    TokenId id = static_cast<TokenId>(id_to_token_.size());
    token_to_id_.emplace(tok, id);
    id_to_token_.push_back(tok);
  }
  frozen_ = true;
  return util::Status::OK();
}

TokenId Vocabulary::Lookup(std::string_view token) const {
  auto it = token_to_id_.find(std::string(token));
  return it == token_to_id_.end() ? kUnkId : it->second;
}

std::vector<TokenId> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(Lookup(t));
  return ids;
}

const std::string& Vocabulary::TokenOf(TokenId id) const {
  if (id >= id_to_token_.size()) return id_to_token_[kUnkId];
  return id_to_token_[id];
}

std::uint64_t Vocabulary::Frequency(std::string_view token) const {
  auto it = counts_.find(std::string(token));
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace metablink::text
