#ifndef METABLINK_TEXT_TFIDF_H_
#define METABLINK_TEXT_TFIDF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace metablink::text {

/// Corpus-level term statistics: document frequency and unigram counts.
/// Backs TF-IDF salience scoring in the mention rewriter and the
/// target-domain language-model adaptation (`syn*`).
class TfIdfStats {
 public:
  /// Adds one document (a token sequence) to the statistics.
  void AddDocument(const std::vector<std::string>& tokens);

  /// Number of documents added.
  std::uint64_t num_documents() const { return num_documents_; }

  /// Document frequency of `token`.
  std::uint64_t DocumentFrequency(const std::string& token) const;

  /// Total corpus occurrences of `token`.
  std::uint64_t TermCount(const std::string& token) const;

  /// Total token occurrences across all documents.
  std::uint64_t total_terms() const { return total_terms_; }

  /// Smoothed inverse document frequency:
  /// log((1 + N) / (1 + df)) + 1.
  double Idf(const std::string& token) const;

  /// Add-one-smoothed unigram probability of `token` under this corpus.
  double UnigramProb(const std::string& token) const;

  /// Per-token TF-IDF weights within `doc` (term frequency normalized by doc
  /// length). Output is aligned with `doc`.
  std::vector<double> TfIdf(const std::vector<std::string>& doc) const;

  /// Mean negative log unigram probability of `tokens` under this corpus —
  /// a simple fluency / domain-fit proxy (lower = more in-domain).
  double PerplexityProxy(const std::vector<std::string>& tokens) const;

 private:
  std::uint64_t num_documents_ = 0;
  std::uint64_t total_terms_ = 0;
  std::unordered_map<std::string, std::uint64_t> doc_freq_;
  std::unordered_map<std::string, std::uint64_t> term_count_;
};

}  // namespace metablink::text

#endif  // METABLINK_TEXT_TFIDF_H_
