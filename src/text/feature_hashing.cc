#include "text/feature_hashing.h"

namespace metablink::text {

std::uint64_t HashBytes(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = 0xCBF29CE484222325ULL ^ (seed * 0x100000001B3ULL + seed);
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  // Final avalanche (from SplitMix64) to decorrelate low bits.
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

FeatureHasher::FeatureHasher(FeatureHasherOptions options)
    : options_(std::move(options)) {
  if (options_.num_buckets == 0) options_.num_buckets = 1;
}

std::vector<std::uint32_t> FeatureHasher::HashTokens(
    const std::vector<std::string>& tokens, std::uint64_t field_seed) const {
  std::vector<std::uint32_t> out;
  AppendHashedTokens(tokens, field_seed, &out);
  return out;
}

void FeatureHasher::AppendHashedTokens(const std::vector<std::string>& tokens,
                                       std::uint64_t field_seed,
                                       std::vector<std::uint32_t>* out) const {
  const std::uint32_t buckets = options_.num_buckets;
  auto emit = [&](std::string_view data, std::uint64_t sub_seed) {
    out->push_back(static_cast<std::uint32_t>(
        HashBytes(data, field_seed * 1315423911ULL + sub_seed) % buckets));
  };
  if (options_.word_unigrams) {
    for (const auto& t : tokens) emit(t, 1);
  }
  if (options_.word_bigrams && tokens.size() >= 2) {
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      std::string bigram = tokens[i];
      bigram += '\x1f';
      bigram += tokens[i + 1];
      emit(bigram, 2);
    }
  }
  if (!options_.char_ngram_sizes.empty()) {
    for (const auto& t : tokens) {
      std::string padded;
      padded.reserve(t.size() + 2);
      padded += '#';
      padded += t;
      padded += '#';
      for (int n : options_.char_ngram_sizes) {
        if (n <= 0) continue;
        const std::size_t len = static_cast<std::size_t>(n);
        if (padded.size() < len) continue;
        for (std::size_t i = 0; i + len <= padded.size(); ++i) {
          emit(std::string_view(padded).substr(i, len),
               100 + static_cast<std::uint64_t>(n));
        }
      }
    }
  }
}

}  // namespace metablink::text
