#include "text/rouge.h"

#include <algorithm>
#include <unordered_map>

#include "text/string_metrics.h"

namespace metablink::text {

namespace {

std::unordered_map<std::string, int> NgramCounts(
    const std::vector<std::string>& tokens, int n) {
  std::unordered_map<std::string, int> counts;
  if (n <= 0 || tokens.size() < static_cast<std::size_t>(n)) return counts;
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string key;
    for (int k = 0; k < n; ++k) {
      if (k > 0) key += '\x1f';
      key += tokens[i + k];
    }
    ++counts[key];
  }
  return counts;
}

RougeScore FromCounts(double overlap, double cand_total, double ref_total) {
  RougeScore s;
  s.precision = cand_total > 0 ? overlap / cand_total : 0.0;
  s.recall = ref_total > 0 ? overlap / ref_total : 0.0;
  s.f1 = (s.precision + s.recall) > 0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

}  // namespace

RougeScore RougeN(const std::vector<std::string>& candidate,
                  const std::vector<std::string>& reference, int n) {
  auto cand = NgramCounts(candidate, n);
  auto ref = NgramCounts(reference, n);
  double overlap = 0.0, cand_total = 0.0, ref_total = 0.0;
  for (const auto& [k, c] : cand) cand_total += c;
  for (const auto& [k, c] : ref) ref_total += c;
  for (const auto& [k, c] : cand) {
    auto it = ref.find(k);
    if (it != ref.end()) overlap += std::min(c, it->second);
  }
  return FromCounts(overlap, cand_total, ref_total);
}

RougeScore RougeL(const std::vector<std::string>& candidate,
                  const std::vector<std::string>& reference) {
  double lcs = static_cast<double>(LcsLength(candidate, reference));
  return FromCounts(lcs, static_cast<double>(candidate.size()),
                    static_cast<double>(reference.size()));
}

double CorpusRougeNF1(const std::vector<std::vector<std::string>>& candidates,
                      const std::vector<std::vector<std::string>>& references,
                      int n) {
  if (candidates.empty() || candidates.size() != references.size()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    sum += RougeN(candidates[i], references[i], n).f1;
  }
  return sum / static_cast<double>(candidates.size());
}

}  // namespace metablink::text
