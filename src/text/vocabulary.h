#ifndef METABLINK_TEXT_VOCABULARY_H_
#define METABLINK_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace metablink::text {

/// Token id type. Id 0 is reserved for the unknown token.
using TokenId = std::uint32_t;

/// Bidirectional token <-> id map with frequency counts. Built by counting a
/// corpus and then freezing; lookups on a frozen vocabulary are const and
/// thread-safe.
class Vocabulary {
 public:
  static constexpr TokenId kUnkId = 0;
  static constexpr const char* kUnkToken = "<unk>";

  Vocabulary();

  /// Counts one occurrence of `token` (pre-freeze only).
  void Count(std::string_view token);

  /// Counts every token in `tokens`.
  void CountAll(const std::vector<std::string>& tokens);

  /// Assigns ids to all tokens with frequency >= `min_freq`, ordered by
  /// descending frequency (ties broken lexicographically for determinism).
  /// After freezing, Count() is an error.
  util::Status Freeze(std::uint32_t min_freq = 1);

  bool frozen() const { return frozen_; }

  /// Returns the id of `token`, or kUnkId if absent/unfrozen.
  TokenId Lookup(std::string_view token) const;

  /// Converts a token sequence to ids (unknowns map to kUnkId).
  std::vector<TokenId> Encode(const std::vector<std::string>& tokens) const;

  /// Returns the token string for `id` ("<unk>" for kUnkId or out of range).
  const std::string& TokenOf(TokenId id) const;

  /// Corpus frequency of `token` observed during counting (0 if unseen).
  std::uint64_t Frequency(std::string_view token) const;

  /// Number of ids, including the reserved <unk>.
  std::size_t size() const { return id_to_token_.size(); }

 private:
  bool frozen_ = false;
  std::unordered_map<std::string, std::uint64_t> counts_;
  std::unordered_map<std::string, TokenId> token_to_id_;
  std::vector<std::string> id_to_token_;
};

}  // namespace metablink::text

#endif  // METABLINK_TEXT_VOCABULARY_H_
