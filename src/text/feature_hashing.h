#ifndef METABLINK_TEXT_FEATURE_HASHING_H_
#define METABLINK_TEXT_FEATURE_HASHING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace metablink::text {

/// FNV-1a 64-bit hash of `data`, mixed with `seed`. Stable across runs and
/// platforms; used for all feature hashing in the library.
std::uint64_t HashBytes(std::string_view data, std::uint64_t seed = 0);

/// Options for the hashed sparse featurizer.
struct FeatureHasherOptions {
  /// Number of hash buckets (embedding rows downstream).
  std::uint32_t num_buckets = 1u << 14;
  /// Emit word unigram features.
  bool word_unigrams = true;
  /// Emit word bigram features.
  bool word_bigrams = true;
  /// Character n-gram sizes to emit per token ("#tok#" padded). Empty
  /// disables char features.
  std::vector<int> char_ngram_sizes = {3, 4};
};

/// Maps token sequences into hashed feature-id bags. The downstream encoders
/// consume these bags through an EmbeddingBag layer, so this class defines
/// the model's entire input representation (the stand-in for BERT's
/// wordpiece embedding layer).
class FeatureHasher {
 public:
  explicit FeatureHasher(FeatureHasherOptions options = {});

  /// Hashes `tokens` into a bag of feature ids in [0, num_buckets).
  /// `field_seed` separates feature spaces (e.g. mention vs. context vs.
  /// title vs. description) so identical tokens in different fields hash to
  /// different buckets.
  std::vector<std::uint32_t> HashTokens(const std::vector<std::string>& tokens,
                                        std::uint64_t field_seed = 0) const;

  /// Appends hashed ids for `tokens` to `*out` instead of allocating.
  void AppendHashedTokens(const std::vector<std::string>& tokens,
                          std::uint64_t field_seed,
                          std::vector<std::uint32_t>* out) const;

  std::uint32_t num_buckets() const { return options_.num_buckets; }
  const FeatureHasherOptions& options() const { return options_; }

 private:
  FeatureHasherOptions options_;
};

}  // namespace metablink::text

#endif  // METABLINK_TEXT_FEATURE_HASHING_H_
