#ifndef METABLINK_TEXT_ROUGE_H_
#define METABLINK_TEXT_ROUGE_H_

#include <string>
#include <vector>

namespace metablink::text {

/// Precision / recall / F1 triple for a single ROUGE comparison.
struct RougeScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// ROUGE-N overlap between a candidate and a reference token sequence
/// (clipped n-gram counts, as in the standard metric). Used by the Table XI
/// experiment to compare generated mentions against golden mentions.
RougeScore RougeN(const std::vector<std::string>& candidate,
                  const std::vector<std::string>& reference, int n);

/// ROUGE-L (longest common subsequence based).
RougeScore RougeL(const std::vector<std::string>& candidate,
                  const std::vector<std::string>& reference);

/// Corpus-level ROUGE-N F1: averages per-pair F1 over aligned
/// candidate/reference lists. Pre: candidates.size() == references.size().
double CorpusRougeNF1(const std::vector<std::vector<std::string>>& candidates,
                      const std::vector<std::vector<std::string>>& references,
                      int n);

}  // namespace metablink::text

#endif  // METABLINK_TEXT_ROUGE_H_
