#include "text/tfidf.h"

#include <cmath>
#include <unordered_set>

namespace metablink::text {

void TfIdfStats::AddDocument(const std::vector<std::string>& tokens) {
  ++num_documents_;
  total_terms_ += tokens.size();
  std::unordered_set<std::string> seen;
  for (const auto& t : tokens) {
    ++term_count_[t];
    if (seen.insert(t).second) ++doc_freq_[t];
  }
}

std::uint64_t TfIdfStats::DocumentFrequency(const std::string& token) const {
  auto it = doc_freq_.find(token);
  return it == doc_freq_.end() ? 0 : it->second;
}

std::uint64_t TfIdfStats::TermCount(const std::string& token) const {
  auto it = term_count_.find(token);
  return it == term_count_.end() ? 0 : it->second;
}

double TfIdfStats::Idf(const std::string& token) const {
  double n = static_cast<double>(num_documents_);
  double df = static_cast<double>(DocumentFrequency(token));
  return std::log((1.0 + n) / (1.0 + df)) + 1.0;
}

double TfIdfStats::UnigramProb(const std::string& token) const {
  double v = static_cast<double>(term_count_.size()) + 1.0;
  return (static_cast<double>(TermCount(token)) + 1.0) /
         (static_cast<double>(total_terms_) + v);
}

std::vector<double> TfIdfStats::TfIdf(
    const std::vector<std::string>& doc) const {
  std::vector<double> out(doc.size(), 0.0);
  if (doc.empty()) return out;
  std::unordered_map<std::string, std::uint64_t> tf;
  for (const auto& t : doc) ++tf[t];
  const double len = static_cast<double>(doc.size());
  for (std::size_t i = 0; i < doc.size(); ++i) {
    out[i] = (static_cast<double>(tf[doc[i]]) / len) * Idf(doc[i]);
  }
  return out;
}

double TfIdfStats::PerplexityProxy(
    const std::vector<std::string>& tokens) const {
  if (tokens.empty()) return 0.0;
  double nll = 0.0;
  for (const auto& t : tokens) nll += -std::log(UnigramProb(t));
  return nll / static_cast<double>(tokens.size());
}

}  // namespace metablink::text
