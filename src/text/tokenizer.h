#ifndef METABLINK_TEXT_TOKENIZER_H_
#define METABLINK_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace metablink::text {

/// Options controlling tokenization.
struct TokenizerOptions {
  /// Lowercase all tokens (the paper's encoders are uncased).
  bool lowercase = true;
  /// Keep single punctuation marks as their own tokens (e.g. "(" for
  /// disambiguation phrases). When false punctuation is dropped.
  bool keep_punctuation = false;
};

/// Deterministic rule-based word tokenizer: splits on whitespace and
/// punctuation boundaries; alphanumeric runs form tokens.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `text` into word tokens.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

/// Normalizes text for exact-title matching: lowercases, collapses
/// whitespace, and drops punctuation. "The  Curse," -> "the curse".
std::string NormalizeForMatch(std::string_view text);

/// Strips a trailing parenthesised disambiguation phrase:
/// "Jack (Star Trek)" -> "Jack". Returns the input unchanged if there is no
/// such phrase. The stripped phrase (without parens) is stored in `*phrase`
/// when non-null.
std::string StripDisambiguation(std::string_view title,
                                std::string* phrase = nullptr);

}  // namespace metablink::text

#endif  // METABLINK_TEXT_TOKENIZER_H_
