#include "text/tokenizer.h"

#include <cctype>

namespace metablink::text {

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '\'' ||
         c == '_';
}
}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (IsWordChar(c)) {
      std::size_t start = i;
      while (i < text.size() && IsWordChar(text[i])) ++i;
      std::string tok(text.substr(start, i - start));
      if (options_.lowercase) {
        for (char& t : tok) {
          t = static_cast<char>(std::tolower(static_cast<unsigned char>(t)));
        }
      }
      tokens.push_back(std::move(tok));
    } else {
      if (options_.keep_punctuation &&
          std::ispunct(static_cast<unsigned char>(c))) {
        tokens.emplace_back(1, c);
      }
      ++i;
    }
  }
  return tokens;
}

std::string NormalizeForMatch(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool last_space = true;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      last_space = false;
    } else if (!last_space) {
      out += ' ';
      last_space = true;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string StripDisambiguation(std::string_view title, std::string* phrase) {
  if (phrase != nullptr) phrase->clear();
  if (title.empty() || title.back() != ')') return std::string(title);
  std::size_t open = title.rfind('(');
  if (open == std::string_view::npos || open == 0) return std::string(title);
  // Require a space before '(' so "F(x)" style titles are untouched.
  if (title[open - 1] != ' ') return std::string(title);
  if (phrase != nullptr) {
    *phrase = std::string(title.substr(open + 1, title.size() - open - 2));
  }
  std::size_t end = open - 1;
  while (end > 0 && title[end - 1] == ' ') --end;
  return std::string(title.substr(0, end));
}

}  // namespace metablink::text
