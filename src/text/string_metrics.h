#ifndef METABLINK_TEXT_STRING_METRICS_H_
#define METABLINK_TEXT_STRING_METRICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace metablink::text {

/// Levenshtein edit distance between `a` and `b` (unit costs).
std::size_t EditDistance(std::string_view a, std::string_view b);

/// Jaccard similarity of the token *sets* of `a` and `b` in [0, 1].
double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

/// Length of the longest common subsequence of token sequences.
std::size_t LcsLength(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// The paper's four mention/title string-overlap categories (Sec. VI-A),
/// determined by the relationship between the mention text and the entity
/// title text.
enum class OverlapCategory {
  /// Mention text equals the title text.
  kHighOverlap,
  /// Title is the mention followed by a "(disambiguation)" phrase.
  kMultipleCategories,
  /// Mention is a proper substring of the title (not the above).
  kAmbiguousSubstring,
  /// None of the above.
  kLowOverlap,
};

/// Printable name, matching the paper's terminology.
const char* OverlapCategoryName(OverlapCategory c);

/// Classifies a (mention, title) pair into its overlap category. Comparison
/// is done on match-normalized text (case/punctuation-insensitive).
OverlapCategory ClassifyOverlap(std::string_view mention,
                                std::string_view title);

}  // namespace metablink::text

#endif  // METABLINK_TEXT_STRING_METRICS_H_
