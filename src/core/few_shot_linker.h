#ifndef METABLINK_CORE_FEW_SHOT_LINKER_H_
#define METABLINK_CORE_FEW_SHOT_LINKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/example.h"
#include "gen/seed_selector.h"
#include "util/status.h"

namespace metablink::core {

/// One ranked linking answer.
struct LinkPrediction {
  kb::EntityId entity_id = kb::kInvalidEntityId;
  std::string title;
  float score = 0.0f;
};

/// High-level façade over MetaBlinkPipeline — the five-line API a
/// downstream user adopts:
///
///   FewShotLinker linker;
///   linker.Fit(corpus, source_domains, "lego", seed_examples);
///   auto pred = linker.Link("minifigure", "the ... set contains a", "...");
///
/// Fit runs Algorithm 2 end-to-end: trains the rewriter on the source
/// domains, builds domain-adapted synthetic data for the target domain, and
/// meta-trains both encoders with the provided seed examples. When
/// `seed_examples` is empty, the zero-shot heuristics (filtered synthetic +
/// self-match, Sec. VI-C) construct the seed set instead.
class FewShotLinker {
 public:
  explicit FewShotLinker(PipelineConfig config = {});

  /// Trains the full system for `target_domain`. `corpus` must contain the
  /// target domain's entities and unlabeled documents, and labeled examples
  /// for every domain in `source_domains`.
  util::Status Fit(const data::Corpus& corpus,
                   const std::vector<std::string>& source_domains,
                   const std::string& target_domain,
                   const std::vector<data::LinkingExample>& seed_examples,
                   std::size_t max_heuristic_seeds = 50);

  bool fitted() const { return fitted_; }
  const std::string& target_domain() const { return target_domain_; }

  /// Links a mention given its surface form and context. Returns up to
  /// `top_k` predictions, best first.
  util::Result<std::vector<LinkPrediction>> Link(
      const std::string& mention, const std::string& left_context,
      const std::string& right_context, std::size_t top_k = 5) const;

  /// Evaluates on held-out examples of the target domain.
  util::Result<eval::EvalResult> Evaluate(
      const std::vector<data::LinkingExample>& examples) const;

  /// Number of synthetic pairs generated during Fit.
  std::size_t num_synthetic() const { return num_synthetic_; }
  /// Size of the seed set actually used (provided or heuristic).
  std::size_t num_seeds() const { return num_seeds_; }

  MetaBlinkPipeline* pipeline() { return &pipeline_; }
  const MetaBlinkPipeline* pipeline() const { return &pipeline_; }
  /// The corpus Fit was called with (null before Fit).
  const data::Corpus* corpus() const { return corpus_; }

 private:
  MetaBlinkPipeline pipeline_;
  const data::Corpus* corpus_ = nullptr;
  std::string target_domain_;
  bool fitted_ = false;
  std::size_t num_synthetic_ = 0;
  std::size_t num_seeds_ = 0;
};

}  // namespace metablink::core

#endif  // METABLINK_CORE_FEW_SHOT_LINKER_H_
