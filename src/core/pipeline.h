#ifndef METABLINK_CORE_PIPELINE_H_
#define METABLINK_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/example.h"
#include "eval/evaluator.h"
#include "gen/exact_matcher.h"
#include "gen/rewriter.h"
#include "kb/knowledge_base.h"
#include "model/bi_encoder.h"
#include "model/cross_encoder.h"
#include "train/bi_trainer.h"
#include "train/cross_trainer.h"
#include "train/dl4el_trainer.h"
#include "train/meta_trainer.h"
#include "util/rng.h"
#include "util/status.h"

namespace metablink::core {

/// Everything configurable about a MetaBLINK run. Defaults are tuned for
/// the scaled-down synthetic benchmark (see DESIGN.md) and run on a laptop
/// CPU in seconds per domain.
struct PipelineConfig {
  model::BiEncoderConfig bi;
  model::CrossEncoderConfig cross;
  /// Supervised (BLINK) training.
  train::TrainOptions bi_train{.batch_size = 32, .epochs = 3,
                               .learning_rate = 0.01f, .seed = 7};
  train::TrainOptions cross_train{.batch_size = 1, .epochs = 2,
                                  .learning_rate = 0.005f, .seed = 7};
  /// Meta (Algorithm 1) training.
  /// Note the per-step cost of Algorithm 1 is quadratic in the synthetic
  /// batch size (each per-example gradient couples to the whole batch
  /// through the in-batch negatives), but retrieval quality needs the
  /// negatives: batch 32 with ~350 steps is the measured sweet spot.
  train::MetaTrainOptions meta_bi{.batch_size = 32, .meta_batch_size = 16,
                                  .steps = 350, .learning_rate = 0.01f};
  train::MetaTrainOptions meta_cross{.batch_size = 8, .meta_batch_size = 8,
                                     .steps = 150, .learning_rate = 0.005f};
  /// Supervised warm-up epochs on the trusted seed set before the meta loop
  /// (seeds the model with trusted structure so per-example gradient
  /// alignment is informative; 0 disables).
  std::size_t meta_warmup_epochs = 2;
  /// Weak supervision.
  gen::RewriterOptions rewriter;
  gen::ExactMatcherOptions exact;
  /// Candidates per cross-encoder training instance.
  std::size_t cross_train_candidates = 16;
  /// Two-stage evaluation (k = 64 as in the paper).
  eval::EvaluatorOptions eval;
  std::uint64_t seed = 1234;
};

/// End-to-end MetaBLINK system (Algorithm 2). Owns the two encoders and the
/// mention rewriter; the weak-supervision, training, and evaluation steps
/// are exposed separately so the experiment benches can compose regimes
/// (Seed / Syn / Syn+Seed / General+... / DL4EL / meta vs. plain).
///
/// Typical few-shot use (what FewShotLinker wraps):
///   MetaBlinkPipeline p(config);
///   p.TrainRewriter(corpus, source_domains);
///   auto syn = p.BuildSyntheticData(corpus, target, /*adapt=*/true);
///   p.TrainMeta(corpus.kb, *syn, seed_examples);
///   auto result = p.Evaluate(corpus.kb, target, test_examples);
class MetaBlinkPipeline {
 public:
  explicit MetaBlinkPipeline(PipelineConfig config = {});

  // ---- Weak supervision (Algorithm 2 steps 1-2) ---------------------------

  /// Fits the mention rewriter on labeled source-domain data (eq. 1).
  util::Status TrainRewriter(const data::Corpus& corpus,
                             const std::vector<std::string>& source_domains);

  /// Exact-match pairs from `domain`'s unlabeled documents.
  std::vector<data::LinkingExample> BuildExactMatchData(
      const data::Corpus& corpus, const std::string& domain) const;

  /// Full synthetic data: exact matching then mention rewriting (eq. 2).
  /// With `adapt_to_domain` the rewriter first runs the unsupervised
  /// domain-adaptation step (the syn* data of the paper).
  util::Result<std::vector<data::LinkingExample>> BuildSyntheticData(
      const data::Corpus& corpus, const std::string& domain,
      bool adapt_to_domain);

  // ---- Model training ------------------------------------------------------

  /// Plain BLINK: supervised bi-encoder then cross-encoder on `examples`
  /// (candidates for the cross stage are mined with the trained bi-encoder).
  util::Status TrainSupervised(const kb::KnowledgeBase& kb,
                               const std::vector<data::LinkingExample>&
                                   examples);

  /// DL4EL baseline: noise-aware bi-encoder (Le & Titov), supervised
  /// cross-encoder (the paper applies DL4EL to the bi-encoder only).
  util::Status TrainDl4el(const kb::KnowledgeBase& kb,
                          const std::vector<data::LinkingExample>& examples,
                          const train::Dl4elOptions& dl4el_options);

  /// MetaBLINK: Algorithm 1 on the bi-encoder, then on the cross-encoder,
  /// reweighting `synthetic` under the supervision of `seed_set`.
  util::Status TrainMeta(const kb::KnowledgeBase& kb,
                         const std::vector<data::LinkingExample>& synthetic,
                         const std::vector<data::LinkingExample>& seed_set);

  // ---- Inference / evaluation ----------------------------------------------

  /// Two-stage evaluation on one domain's examples. Const and safe to call
  /// from many threads at once: neither the encoders nor any shared
  /// scratch is mutated.
  util::Result<eval::EvalResult> Evaluate(
      const kb::KnowledgeBase& kb, const std::string& domain,
      const std::vector<data::LinkingExample>& examples) const;

  /// Links one mention end-to-end: stage-1 retrieval over the domain, then
  /// cross-encoder reranking. Returns candidates best-first. Const and
  /// thread-safe (see Evaluate). Note this rebuilds the domain index per
  /// call; serve::LinkingServer amortizes that for repeated queries.
  util::Result<std::vector<retrieval::ScoredEntity>> Link(
      const kb::KnowledgeBase& kb, const std::string& domain,
      const data::LinkingExample& mention, std::size_t top_k) const;

  // ---- Accessors -----------------------------------------------------------

  model::BiEncoder* bi_encoder() { return bi_.get(); }
  const model::BiEncoder* bi_encoder() const { return bi_.get(); }
  model::CrossEncoder* cross_encoder() { return cross_.get(); }
  const model::CrossEncoder* cross_encoder() const { return cross_.get(); }
  gen::MentionRewriter* rewriter() { return &rewriter_; }
  const train::MetaTrainResult& last_meta_bi_result() const {
    return last_meta_bi_;
  }
  const train::MetaTrainResult& last_meta_cross_result() const {
    return last_meta_cross_;
  }
  const PipelineConfig& config() const { return config_; }

  /// Resets both encoders to fresh random initializations (new seed stream
  /// each call), so one pipeline can train several regimes in sequence.
  void ResetModels();

  /// Checkpointing: writes `<prefix>.bi` and `<prefix>.cross`.
  util::Status Save(const std::string& prefix) const;
  util::Status Load(const std::string& prefix);

 private:
  /// Builds cross-encoder instances by mining candidates with the current
  /// bi-encoder, grouped per domain.
  util::Result<std::vector<train::CrossInstance>> MineInstances(
      const kb::KnowledgeBase& kb,
      const std::vector<data::LinkingExample>& examples);

  PipelineConfig config_;
  util::Rng rng_;
  gen::MentionRewriter rewriter_;
  std::unique_ptr<model::BiEncoder> bi_;
  std::unique_ptr<model::CrossEncoder> cross_;
  eval::TwoStageEvaluator evaluator_;
  train::MetaTrainResult last_meta_bi_;
  train::MetaTrainResult last_meta_cross_;
};

}  // namespace metablink::core

#endif  // METABLINK_CORE_PIPELINE_H_
