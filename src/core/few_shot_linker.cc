#include "core/few_shot_linker.h"

namespace metablink::core {

FewShotLinker::FewShotLinker(PipelineConfig config)
    : pipeline_(std::move(config)) {}

util::Status FewShotLinker::Fit(
    const data::Corpus& corpus,
    const std::vector<std::string>& source_domains,
    const std::string& target_domain,
    const std::vector<data::LinkingExample>& seed_examples,
    std::size_t max_heuristic_seeds) {
  if (corpus.kb.EntitiesInDomain(target_domain).empty()) {
    return util::Status::NotFound("target domain has no entities: " +
                                  target_domain);
  }
  METABLINK_RETURN_IF_ERROR(pipeline_.TrainRewriter(corpus, source_domains));
  auto synthetic = pipeline_.BuildSyntheticData(corpus, target_domain,
                                                /*adapt_to_domain=*/true);
  if (!synthetic.ok()) return synthetic.status();
  num_synthetic_ = synthetic->size();

  std::vector<data::LinkingExample> seeds = seed_examples;
  if (seeds.empty()) {
    // Zero-shot: build the seed set with the paper's heuristics.
    seeds = gen::HeuristicSeeds(corpus.kb, target_domain, *synthetic,
                                max_heuristic_seeds);
    if (seeds.empty()) {
      return util::Status::FailedPrecondition(
          "no seed examples given and heuristics produced none");
    }
  }
  num_seeds_ = seeds.size();

  METABLINK_RETURN_IF_ERROR(
      pipeline_.TrainMeta(corpus.kb, *synthetic, seeds));
  corpus_ = &corpus;
  target_domain_ = target_domain;
  fitted_ = true;
  return util::Status::OK();
}

util::Result<std::vector<LinkPrediction>> FewShotLinker::Link(
    const std::string& mention, const std::string& left_context,
    const std::string& right_context, std::size_t top_k) const {
  if (!fitted_) {
    return util::Status::FailedPrecondition("call Fit before Link");
  }
  data::LinkingExample ex;
  ex.mention = mention;
  ex.left_context = left_context;
  ex.right_context = right_context;
  ex.domain = target_domain_;
  auto ranked =
      pipeline_.Link(corpus_->kb, target_domain_, ex, top_k);
  if (!ranked.ok()) return ranked.status();
  std::vector<LinkPrediction> out;
  out.reserve(ranked->size());
  for (const auto& c : *ranked) {
    LinkPrediction p;
    p.entity_id = c.id;
    p.title = corpus_->kb.entity(c.id).title;
    p.score = c.score;
    out.push_back(std::move(p));
  }
  return out;
}

util::Result<eval::EvalResult> FewShotLinker::Evaluate(
    const std::vector<data::LinkingExample>& examples) const {
  if (!fitted_) {
    return util::Status::FailedPrecondition("call Fit before Evaluate");
  }
  return pipeline_.Evaluate(corpus_->kb, target_domain_, examples);
}

}  // namespace metablink::core
