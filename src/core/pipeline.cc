#include "core/pipeline.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace metablink::core {

MetaBlinkPipeline::MetaBlinkPipeline(PipelineConfig config)
    : config_(config),
      rng_(config.seed),
      rewriter_(config.rewriter),
      evaluator_(config.eval) {
  ResetModels();
}

void MetaBlinkPipeline::ResetModels() {
  util::Rng bi_rng = rng_.Fork();
  util::Rng cross_rng = rng_.Fork();
  bi_ = std::make_unique<model::BiEncoder>(config_.bi, &bi_rng);
  cross_ = std::make_unique<model::CrossEncoder>(config_.cross, &cross_rng);
}

util::Status MetaBlinkPipeline::TrainRewriter(
    const data::Corpus& corpus,
    const std::vector<std::string>& source_domains) {
  std::vector<data::LinkingExample> source;
  for (const auto& domain : source_domains) {
    const auto& examples = corpus.ExamplesIn(domain);
    source.insert(source.end(), examples.begin(), examples.end());
  }
  util::Rng rng = rng_.Fork();
  return rewriter_.Train(corpus.kb, source, &rng);
}

std::vector<data::LinkingExample> MetaBlinkPipeline::BuildExactMatchData(
    const data::Corpus& corpus, const std::string& domain) const {
  gen::ExactMatcher matcher(corpus.kb, domain, config_.exact);
  return matcher.MatchAll(corpus.DocumentsIn(domain));
}

util::Result<std::vector<data::LinkingExample>>
MetaBlinkPipeline::BuildSyntheticData(const data::Corpus& corpus,
                                      const std::string& domain,
                                      bool adapt_to_domain) {
  if (!rewriter_.trained()) {
    return util::Status::FailedPrecondition(
        "call TrainRewriter before BuildSyntheticData");
  }
  if (adapt_to_domain) {
    rewriter_.AdaptToDomain(corpus.DocumentsIn(domain));
  }
  const std::vector<data::LinkingExample> exact =
      BuildExactMatchData(corpus, domain);
  if (exact.empty()) {
    return util::Status::NotFound("exact matching produced no pairs for " +
                                  domain);
  }
  util::Rng rng = rng_.Fork();
  return rewriter_.GenerateSyntheticData(
      corpus.kb, exact, corpus.kb.EntitiesInDomain(domain), &rng);
}

util::Result<std::vector<train::CrossInstance>>
MetaBlinkPipeline::MineInstances(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& examples) {
  // Candidates come from the example's own domain.
  std::unordered_map<std::string, std::vector<data::LinkingExample>>
      by_domain;
  for (const auto& ex : examples) by_domain[ex.domain].push_back(ex);
  std::vector<train::CrossInstance> instances;
  for (auto& [domain, group] : by_domain) {
    auto candidates =
        evaluator_.RetrieveCandidates(*bi_, kb, domain, group);
    if (!candidates.ok()) return candidates.status();
    auto mined = train::MineCrossTrainingSet(group, *candidates,
                                             config_.cross_train_candidates);
    for (auto& inst : mined) instances.push_back(std::move(inst));
  }
  return instances;
}

util::Status MetaBlinkPipeline::TrainSupervised(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& examples) {
  train::BiEncoderTrainer bi_trainer(config_.bi_train);
  auto bi_result = bi_trainer.Train(bi_.get(), kb, examples);
  if (!bi_result.ok()) return bi_result.status();

  auto instances = MineInstances(kb, examples);
  if (!instances.ok()) return instances.status();
  if (instances->empty()) {
    METABLINK_LOG(kWarning)
        << "no cross-encoder instances mined; stage 2 left untrained";
    return util::Status::OK();
  }
  train::CrossEncoderTrainer cross_trainer(config_.cross_train);
  auto cross_result = cross_trainer.Train(cross_.get(), kb, *instances);
  return cross_result.ok() ? util::Status::OK() : cross_result.status();
}

util::Status MetaBlinkPipeline::TrainDl4el(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& examples,
    const train::Dl4elOptions& dl4el_options) {
  train::Dl4elTrainer dl4el(dl4el_options);
  auto bi_result = dl4el.Train(bi_.get(), kb, examples);
  if (!bi_result.ok()) return bi_result.status();

  auto instances = MineInstances(kb, examples);
  if (!instances.ok()) return instances.status();
  if (instances->empty()) return util::Status::OK();
  train::CrossEncoderTrainer cross_trainer(config_.cross_train);
  auto cross_result = cross_trainer.Train(cross_.get(), kb, *instances);
  return cross_result.ok() ? util::Status::OK() : cross_result.status();
}

util::Status MetaBlinkPipeline::TrainMeta(
    const kb::KnowledgeBase& kb,
    const std::vector<data::LinkingExample>& synthetic,
    const std::vector<data::LinkingExample>& seed_set) {
  if (synthetic.size() < 2) {
    return util::Status::InvalidArgument("need at least 2 synthetic examples");
  }
  if (seed_set.empty()) {
    return util::Status::InvalidArgument("seed set is empty");
  }

  // Warm-up: a short supervised pass over the *trusted seed set only*.
  // Seeding the model with trusted structure is what makes the per-example
  // gradient alignment informative; warming up on the (noisy) synthetic
  // data instead lets the model memorize the noise first, after which bad
  // examples no longer conflict with the seed gradient (ablated in
  // bench_ablation_meta).
  if (config_.meta_warmup_epochs > 0) {
    train::TrainOptions warm = config_.bi_train;
    warm.epochs = config_.meta_warmup_epochs;
    train::BiEncoderTrainer warm_trainer(warm);
    auto warm_result = warm_trainer.Train(bi_.get(), kb, seed_set);
    if (!warm_result.ok()) return warm_result.status();
  }

  // Stage 1: Algorithm 1 on the bi-encoder.
  {
    model::BiEncoder* bi = bi_.get();
    const kb::KnowledgeBase* kb_ptr = &kb;
    train::MetaReweightTrainer meta(
        config_.meta_bi, bi->params(),
        [bi, kb_ptr](tensor::Graph* graph,
                     const std::vector<data::LinkingExample>& batch) {
          return bi->InBatchLoss(graph, batch, *kb_ptr);
        });
    auto result = meta.Train(synthetic, seed_set);
    if (!result.ok()) return result.status();
    last_meta_bi_ = *result;
  }

  // Stage 2: Algorithm 1 on the cross-encoder, over candidates mined with
  // the meta-trained bi-encoder.
  auto syn_instances = MineInstances(kb, synthetic);
  if (!syn_instances.ok()) return syn_instances.status();
  auto seed_instances = MineInstances(kb, seed_set);
  if (!seed_instances.ok()) return seed_instances.status();
  if (syn_instances->size() < 2 || seed_instances->empty()) {
    METABLINK_LOG(kWarning)
        << "insufficient mined instances for cross-encoder meta training "
        << "(syn=" << syn_instances->size()
        << ", seed=" << seed_instances->size() << "); stage 2 untrained";
    return util::Status::OK();
  }
  {
    model::CrossEncoder* cross = cross_.get();
    const kb::KnowledgeBase* kb_ptr = &kb;
    train::CrossMetaTrainer meta(
        config_.meta_cross, cross->params(),
        [cross, kb_ptr](tensor::Graph* graph,
                        const std::vector<train::CrossInstance>& batch) {
          std::vector<tensor::Var> losses;
          losses.reserve(batch.size());
          for (const auto& inst : batch) {
            std::vector<kb::Entity> entities;
            entities.reserve(inst.candidates.size());
            for (kb::EntityId id : inst.candidates) {
              entities.push_back(kb_ptr->entity(id));
            }
            losses.push_back(cross->RankingLoss(graph, inst.example, entities,
                                                inst.gold_index));
          }
          return graph->ConcatRows(losses);
        });
    auto result = meta.Train(*syn_instances, *seed_instances);
    if (!result.ok()) return result.status();
    last_meta_cross_ = *result;
  }
  return util::Status::OK();
}

util::Result<eval::EvalResult> MetaBlinkPipeline::Evaluate(
    const kb::KnowledgeBase& kb, const std::string& domain,
    const std::vector<data::LinkingExample>& examples) const {
  return evaluator_.Evaluate(*bi_, cross_.get(), kb, domain, examples);
}

util::Result<std::vector<retrieval::ScoredEntity>> MetaBlinkPipeline::Link(
    const kb::KnowledgeBase& kb, const std::string& domain,
    const data::LinkingExample& mention, std::size_t top_k) const {
  std::vector<data::LinkingExample> one{mention};
  auto candidates = evaluator_.RetrieveCandidates(*bi_, kb, domain, one);
  if (!candidates.ok()) return candidates.status();
  std::vector<retrieval::ScoredEntity> cands = (*candidates)[0];
  if (cands.empty()) {
    return util::Status::NotFound("no candidates retrieved");
  }
  std::vector<kb::Entity> entities;
  entities.reserve(cands.size());
  for (const auto& c : cands) entities.push_back(kb.entity(c.id));
  const std::vector<float> scores = cross_->Score(mention, entities);
  for (std::size_t i = 0; i < cands.size(); ++i) cands[i].score = scores[i];
  std::sort(cands.begin(), cands.end(),
            [](const retrieval::ScoredEntity& a,
               const retrieval::ScoredEntity& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (cands.size() > top_k) cands.resize(top_k);
  return cands;
}

util::Status MetaBlinkPipeline::Save(const std::string& prefix) const {
  METABLINK_RETURN_IF_ERROR(bi_->SaveToFile(prefix + ".bi"));
  return cross_->SaveToFile(prefix + ".cross");
}

util::Status MetaBlinkPipeline::Load(const std::string& prefix) {
  METABLINK_RETURN_IF_ERROR(bi_->LoadFromFile(prefix + ".bi"));
  return cross_->LoadFromFile(prefix + ".cross");
}

}  // namespace metablink::core
