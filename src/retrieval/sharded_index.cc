#include "retrieval/sharded_index.h"

#include <algorithm>

#include "util/logging.h"

namespace metablink::retrieval {

util::Status ShardedIndex::Build(const ClusteredIndex* full,
                                 std::size_t num_shards) {
  if (full == nullptr || !full->built()) {
    return util::Status::InvalidArgument(
        "ShardedIndex requires a built ClusteredIndex");
  }
  const std::size_t n = full->size();
  const std::size_t kc = full->num_clusters();
  num_shards = std::clamp<std::size_t>(num_shards, 1, n);

  row_bounds_.resize(num_shards + 1);
  for (std::size_t s = 0; s <= num_shards; ++s) {
    row_bounds_[s] = static_cast<std::uint32_t>(s * n / num_shards);
  }

  const std::size_t pq_m = full->pq_m();
  const std::vector<std::uint32_t>& offsets = full->list_offsets();
  const std::vector<std::uint32_t>& entries = full->list_entries();
  const std::vector<std::int8_t>& codes = full->pq_codes();

  // Restrict every inverted list to each shard's row-position slice. The
  // pass is a stable filter, so entries keep the full index's ascending-
  // position order within each restricted list, and codes travel with
  // their entries.
  shards_.assign(num_shards, Shard{});
  for (std::size_t s = 0; s < num_shards; ++s) {
    Shard& shard = shards_[s];
    const std::uint32_t lo_row = row_bounds_[s];
    const std::uint32_t hi_row = row_bounds_[s + 1];
    shard.offsets.resize(kc + 1);
    shard.offsets[0] = 0;
    for (std::size_t c = 0; c < kc; ++c) {
      for (std::uint32_t idx = offsets[c]; idx < offsets[c + 1]; ++idx) {
        const std::uint32_t pos = entries[idx];
        if (pos < lo_row || pos >= hi_row) continue;
        shard.entries.push_back(pos);
        if (pq_m != 0) {
          const std::int8_t* code = codes.data() + std::size_t{idx} * pq_m;
          shard.codes.insert(shard.codes.end(), code, code + pq_m);
        }
      }
      shard.offsets[c + 1] = static_cast<std::uint32_t>(shard.entries.size());
    }
  }
  full_ = full;
  return util::Status::OK();
}

void ShardedIndex::TopKImpl(const float* query, std::size_t k,
                            std::size_t nprobe, util::ThreadPool* pool,
                            ShardedIndexScratch* scratch,
                            std::vector<ScoredEntity>* out) const {
  METABLINK_CHECK(built() && full_->base() != nullptr)
      << "ShardedIndex must be built over an attached ClusteredIndex";
  out->clear();
  k = std::min(k, full_->size());
  if (k == 0) return;
  nprobe = full_->ResolveNprobe(nprobe);

  ClusteredScratch& main = scratch->main;
  full_->ScoreClusters(query, &main.cluster_scores);
  full_->SelectProbe(main.cluster_scores, nprobe, &main.probe);
  ClusteredIndex::ScanContext ctx;
  full_->PrepareScan(query, k, &main, &ctx);

  const std::size_t ns = shards_.size();
  if (scratch->shards.size() < ns) scratch->shards.resize(ns);
  auto scan_shard = [&](std::size_t s) {
    TopKScratch& sc = scratch->shards[s];
    sc.heap.clear();
    sc.pool.clear();
    const Shard& shard = shards_[s];
    const ClusteredIndex::ListView view{
        shard.offsets.data(), shard.entries.data(),
        shard.codes.empty() ? nullptr : shard.codes.data()};
    full_->ScanLists(ctx, main.probe, 0, main.probe.size(), view, &sc);
  };
  if (pool != nullptr && pool->num_threads() >= 2 && ns >= 2) {
    pool->ParallelForChunks(ns, ns,
                            [&](std::size_t s, std::size_t, std::size_t) {
                              scan_shard(s);
                            });
  } else {
    for (std::size_t s = 0; s < ns; ++s) scan_shard(s);
  }

  // Re-offer merge under the same strict total order: every full-list
  // entry was offered by exactly one shard with the same score the serial
  // scan would compute, and bounded selection is offer-order independent,
  // so the merged heap/pool equal the single-index probe's bit for bit.
  main.topk.heap.clear();
  main.topk.pool.clear();
  for (std::size_t s = 0; s < ns; ++s) {
    TopKScratch& sc = scratch->shards[s];
    for (const ScoredEntity& cand : sc.heap) {
      ClusteredIndex::Offer(cand, k, &main.topk.heap);
    }
    for (const ScoredEntity& cand : sc.pool) {
      ClusteredIndex::Offer(cand, ctx.pool_cap, &main.topk.pool);
    }
    sc.heap.clear();
    sc.pool.clear();
  }
  full_->RescoreAndSelect(query, k, &main.topk, out);
}

void ShardedIndex::TopKInto(const float* query, std::size_t k,
                            std::size_t nprobe, ShardedIndexScratch* scratch,
                            std::vector<ScoredEntity>* out) const {
  TopKImpl(query, k, nprobe, nullptr, scratch, out);
}

void ShardedIndex::TopKParallel(const float* query, std::size_t k,
                                std::size_t nprobe, util::ThreadPool* pool,
                                ShardedIndexScratch* scratch,
                                std::vector<ScoredEntity>* out) const {
  TopKImpl(query, k, nprobe, pool, scratch, out);
}

}  // namespace metablink::retrieval
