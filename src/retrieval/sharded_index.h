#ifndef METABLINK_RETRIEVAL_SHARDED_INDEX_H_
#define METABLINK_RETRIEVAL_SHARDED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "retrieval/clustered_index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::retrieval {

/// Reusable buffers for ShardedIndex probes: one merge/selection scratch
/// plus one per-shard selection scratch.
struct ShardedIndexScratch {
  ClusteredScratch main;
  std::vector<TopKScratch> shards;
};

/// A sharded view over one ClusteredIndex: the entity rows are split into
/// `num_shards` contiguous row-position slices, and each shard owns the
/// restriction of every inverted list to its slice (global row positions,
/// plus the matching PQ code slices when the index carries a PQ form). A
/// probe scans each shard's restricted lists with its own selection
/// scratch — pool-parallel across shards or serially — and re-offers the
/// per-shard survivors under the index's strict (score desc, id asc) total
/// order.
///
/// Bit-identity invariant: each full-list entry appears in exactly one
/// shard, every entry's score depends only on (entry, query context) —
/// never on which shard presented it — and the bounded selection retains
/// the top-`cap` candidates regardless of offer order. Any global top-cap
/// candidate therefore survives its own shard's top-cap, so the re-offer
/// merge reconstructs exactly the serial single-index pool and the final
/// exact re-score returns bit-identical hits to ClusteredIndex::TopKInto
/// at equal nprobe. This is what lets LinkingServer shard a KB for
/// multi-socket scans without perturbing a single response byte.
///
/// The view borrows its ClusteredIndex, which must outlive it, stay
/// attached to its base, and not be rebuilt. Probe methods are const and
/// share no mutable state; concurrent queries need caller-owned scratch.
class ShardedIndex {
 public:
  ShardedIndex() = default;

  /// Builds the per-shard list restrictions. `num_shards` is clamped to
  /// [1, full->size()]; shard s owns row positions
  /// [s·N/num_shards, (s+1)·N/num_shards). Pre: full->built().
  util::Status Build(const ClusteredIndex* full, std::size_t num_shards);

  bool built() const { return !shards_.empty(); }
  std::size_t num_shards() const { return shards_.size(); }
  const ClusteredIndex* full() const { return full_; }
  /// Row-position slice bounds, [num_shards + 1] ascending.
  const std::vector<std::uint32_t>& row_bounds() const { return row_bounds_; }

  /// Serial sharded probe: scans every shard on the calling thread, then
  /// merges. Bit-identical to TopKParallel and to the underlying index's
  /// TopKInto. Appends to `*out` after clearing it.
  void TopKInto(const float* query, std::size_t k, std::size_t nprobe,
                ShardedIndexScratch* scratch,
                std::vector<ScoredEntity>* out) const;

  /// Sharded probe with one pool task per shard (falls back to the serial
  /// scan when `pool` is null or single-threaded). Same output, bit for
  /// bit.
  void TopKParallel(const float* query, std::size_t k, std::size_t nprobe,
                    util::ThreadPool* pool, ShardedIndexScratch* scratch,
                    std::vector<ScoredEntity>* out) const;

 private:
  /// One shard's restriction of the full inverted lists: CSR offsets over
  /// the same clusters, entries holding global row positions, and the
  /// entries' PQ codes (empty when the index has no PQ form).
  struct Shard {
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> entries;
    std::vector<std::int8_t> codes;
  };

  /// Shared prologue + merge around the per-shard scans.
  void TopKImpl(const float* query, std::size_t k, std::size_t nprobe,
                util::ThreadPool* pool, ShardedIndexScratch* scratch,
                std::vector<ScoredEntity>* out) const;

  const ClusteredIndex* full_ = nullptr;
  std::vector<std::uint32_t> row_bounds_;  // [num_shards + 1]
  std::vector<Shard> shards_;
};

}  // namespace metablink::retrieval

#endif  // METABLINK_RETRIEVAL_SHARDED_INDEX_H_
