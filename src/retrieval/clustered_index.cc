#include "retrieval/clustered_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "retrieval/score_kernel.h"
#include "store/checkpoint.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace metablink::retrieval {

namespace {

constexpr std::uint32_t kClusteredTag = 0x46564943u;  // "CIVF"
// Version 1: coarse clustering only. Version 2 appends the "PQIV" product-
// quantization block; Save emits version 1 when no PQ form is present so
// PQ-free artifacts stay byte-identical to pre-PQ builds.
constexpr std::uint32_t kClusteredVersion = 2;
constexpr std::uint32_t kPqTag = 0x56495150u;  // "PQIV"
// PQ subspace tables always span 256 slots (8-bit codes); a smaller
// trained pq_kc just leaves the tail slots zero and unreferenced.
constexpr std::size_t kPqSlots = 256;

// Points scored per assignment tile. 32 rows of d=128 floats (16 KiB) stay
// cache-resident while the centroid panel (up to ~sqrt(1M) rows) streams.
constexpr std::size_t kAssignBlock = 32;

// Strict total order on hits: higher score first, ascending id on ties.
// Shared by every selection in this file so the probe-all result is
// identical to DenseIndex's exhaustive scan and sharded merges are
// insertion-order independent.
bool Better(const ScoredEntity& a, const ScoredEntity& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

// Bounded selection: keeps the `cap` Better-most candidates ever offered,
// regardless of offer order (the root is the worst retained entry).
void OfferCandidate(const ScoredEntity& cand, std::size_t cap,
                    std::vector<ScoredEntity>* heap) {
  if (heap->size() < cap) {
    heap->push_back(cand);
    std::push_heap(heap->begin(), heap->end(), Better);
  } else if (Better(cand, heap->front())) {
    std::pop_heap(heap->begin(), heap->end(), Better);
    heap->back() = cand;
    std::push_heap(heap->begin(), heap->end(), Better);
  }
}

// Sorts heap contents best-first into `*out` and clears the heap.
void DrainHeap(std::vector<ScoredEntity>* heap,
               std::vector<ScoredEntity>* out) {
  std::sort_heap(heap->begin(), heap->end(), Better);
  out->assign(heap->begin(), heap->end());
  heap->clear();
}

// Nearest-centroid assignment for `count` contiguous points: each point p
// gets argmax_c (p·c − ½‖c‖²), ties to the lowest cluster id — the inner-
// product form of Euclidean argmin, so Lloyd still converges. Per-point
// results are independent, so any chunking over `pool` produces the same
// assignment as the serial loop.
void AssignPoints(const float* points, std::size_t count,
                  const tensor::Tensor& centroids,
                  const std::vector<float>& half_cnorm,
                  util::ThreadPool* pool, std::vector<std::uint32_t>* assign,
                  std::vector<float>* best_score) {
  const std::size_t d = centroids.cols();
  const std::size_t kc = centroids.rows();
  assign->resize(count);
  best_score->resize(count);
  const std::size_t nblocks = (count + kAssignBlock - 1) / kAssignBlock;
  auto run_block = [&](std::size_t b, std::vector<float>* tile) {
    const std::size_t p0 = b * kAssignBlock;
    const std::size_t pn = std::min(kAssignBlock, count - p0);
    internal::ScoreTileF32(points + p0 * d, centroids.row_data(0),
                           tile->data(), pn, d, kc);
    for (std::size_t i = 0; i < pn; ++i) {
      const float* trow = tile->data() + i * kc;
      std::uint32_t best_c = 0;
      float best_s = trow[0] - half_cnorm[0];
      for (std::size_t c = 1; c < kc; ++c) {
        const float s = trow[c] - half_cnorm[c];
        if (s > best_s) {  // strict: ties keep the lowest cluster id
          best_s = s;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      (*assign)[p0 + i] = best_c;
      (*best_score)[p0 + i] = best_s;
    }
  };
  if (pool != nullptr && nblocks > 1) {
    pool->ParallelForChunks(
        nblocks, 0, [&](std::size_t, std::size_t b0, std::size_t b1) {
          std::vector<float> tile(kAssignBlock * kc);
          for (std::size_t b = b0; b < b1; ++b) run_block(b, &tile);
        });
  } else {
    std::vector<float> tile(kAssignBlock * kc);
    for (std::size_t b = 0; b < nblocks; ++b) run_block(b, &tile);
  }
}

void RecomputeHalfNorms(const tensor::Tensor& centroids,
                        std::vector<float>* half_cnorm) {
  const std::size_t kc = centroids.rows();
  const std::size_t d = centroids.cols();
  half_cnorm->resize(kc);
  for (std::size_t c = 0; c < kc; ++c) {
    const float* row = centroids.row_data(c);
    (*half_cnorm)[c] = 0.5f * tensor::Dot(row, row, d);
  }
}

// Deterministic seeded Lloyd's k-means over a dense [n, d] panel: centroids
// seeded from kc distinct sample rows (sorted so the layout depends only on
// which rows were drawn), then `iters` rounds of parallel deterministic
// assignment + serial point-order double accumulation + worst-fit empty-
// cluster repair. Byte-identical with or without a pool. Shared by the
// coarse clustering and the per-subspace PQ residual codebooks; `rng`
// advances by exactly one SampleIndices draw.
void TrainKmeans(const float* data, std::size_t n, std::size_t d,
                 std::size_t kc, std::size_t iters, util::Rng* rng,
                 util::ThreadPool* pool, tensor::Tensor* centroids,
                 std::vector<float>* half_norms) {
  *centroids = tensor::Tensor(kc, d);
  {
    std::vector<std::size_t> seeds = rng->SampleIndices(n, kc);
    std::sort(seeds.begin(), seeds.end());
    for (std::size_t c = 0; c < kc; ++c) {
      std::memcpy(centroids->row_data(c), data + seeds[c] * d,
                  d * sizeof(float));
    }
  }
  RecomputeHalfNorms(*centroids, half_norms);

  std::vector<std::uint32_t> assign;
  std::vector<float> best_score;
  std::vector<std::size_t> counts(kc, 0);
  std::vector<double> sums(kc * d, 0.0);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    AssignPoints(data, n, *centroids, *half_norms, pool, &assign, &best_score);
    std::fill(counts.begin(), counts.end(), 0);
    std::fill(sums.begin(), sums.end(), 0.0);
    for (std::size_t p = 0; p < n; ++p) {
      const std::uint32_t c = assign[p];
      ++counts[c];
      const float* row = data + p * d;
      double* acc = sums.data() + c * d;
      for (std::size_t j = 0; j < d; ++j) acc[j] += row[j];
    }
    for (std::size_t c = 0; c < kc; ++c) {
      if (counts[c] == 0) continue;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      float* row = centroids->row_data(c);
      const double* acc = sums.data() + c * d;
      for (std::size_t j = 0; j < d; ++j) {
        row[j] = static_cast<float>(acc[j] * inv);
      }
    }
    // Empty-cluster repair: each empty centroid (ascending id) is re-seeded
    // from the worst-fit point (lowest assigned score, ties to the lowest
    // index) still living in a cluster with more than one member. Fully
    // deterministic, and every cluster ends non-empty while the data has at
    // least kc distinct rows.
    for (std::size_t c = 0; c < kc; ++c) {
      if (counts[c] != 0) continue;
      std::size_t worst = n;
      for (std::size_t p = 0; p < n; ++p) {
        if (counts[assign[p]] < 2) continue;
        if (worst == n || best_score[p] < best_score[worst]) worst = p;
      }
      if (worst == n) break;  // nothing left to donate
      --counts[assign[worst]];
      assign[worst] = static_cast<std::uint32_t>(c);
      counts[c] = 1;
      std::memcpy(centroids->row_data(c), data + worst * d,
                  d * sizeof(float));
      best_score[worst] = std::numeric_limits<float>::max();  // donated
    }
    RecomputeHalfNorms(*centroids, half_norms);
  }
}

}  // namespace

util::Status ClusteredIndex::Build(const DenseIndex& base,
                                   const ClusteredIndexOptions& options,
                                   util::ThreadPool* pool) {
  if (!base.built()) {
    return util::Status::InvalidArgument(
        "cannot cluster an unbuilt DenseIndex");
  }
  if (options.use_pq) {
    if (options.pq_nbits != 8) {
      return util::Status::InvalidArgument(util::StrFormat(
          "only 8-bit PQ codes are supported, got pq_nbits=%zu",
          options.pq_nbits));
    }
    if (options.pq_m == 0) {
      return util::Status::InvalidArgument("pq_m must be at least 1");
    }
  }
  const std::size_t n = base.size();
  const std::size_t d = base.dim();
  std::size_t kc = options.num_clusters;
  if (kc == 0) {
    kc = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(n))));
  }
  kc = std::clamp<std::size_t>(kc, 1, n);

  // Deterministic training sample: at most max_train_points rows (never
  // fewer than kc so init can pick distinct seeds), gathered contiguously
  // in ascending row order so tile scoring sees one dense matrix.
  util::Rng rng(options.seed);
  const std::size_t limit =
      std::min(n, std::max(options.max_train_points, kc));
  const float* train_data = base.EmbeddingAt(0);
  std::size_t train_n = n;
  tensor::Tensor gathered;
  if (limit < n) {
    std::vector<std::size_t> sample = rng.SampleIndices(n, limit);
    std::sort(sample.begin(), sample.end());
    gathered = tensor::Tensor(sample.size(), d);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      std::memcpy(gathered.row_data(i), base.EmbeddingAt(sample[i]),
                  d * sizeof(float));
    }
    train_data = gathered.row_data(0);
    train_n = sample.size();
  }

  TrainKmeans(train_data, train_n, d, kc, options.train_iterations, &rng,
              pool, &centroids_, &half_cnorm_);

  // Final assignment over every row, then CSR inverted lists with each
  // list's entries in ascending row position — the canonical layout the
  // determinism test hashes.
  std::vector<std::uint32_t> assign;
  std::vector<float> best_score;
  AssignPoints(base.EmbeddingAt(0), n, centroids_, half_cnorm_, pool, &assign,
               &best_score);
  list_offsets_.assign(kc + 1, 0);
  for (std::size_t p = 0; p < n; ++p) ++list_offsets_[assign[p] + 1];
  for (std::size_t c = 0; c < kc; ++c) {
    list_offsets_[c + 1] += list_offsets_[c];
  }
  list_entries_.resize(n);
  std::vector<std::uint32_t> cursor(list_offsets_.begin(),
                                    list_offsets_.end() - 1);
  for (std::size_t p = 0; p < n; ++p) {
    list_entries_[cursor[assign[p]]++] = static_cast<std::uint32_t>(p);
  }

  options_ = options;
  default_nprobe_ = options.default_nprobe;
  if (default_nprobe_ == 0) {
    default_nprobe_ = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(kc))));
  }
  default_nprobe_ = std::clamp<std::size_t>(default_nprobe_, 1, kc);
  base_ = &base;

  // Any previous PQ form belongs to the old clustering; drop it before
  // (optionally) training a fresh one against the new residuals.
  pq_m_ = 0;
  pq_kc_ = 0;
  pq_sub_offsets_.clear();
  pq_codebooks_.clear();
  pq_codes_.clear();
  if (options.use_pq) {
    METABLINK_RETURN_IF_ERROR(BuildPq(base, options, pool, assign));
  }
  return util::Status::OK();
}

util::Status ClusteredIndex::BuildPq(const DenseIndex& base,
                                     const ClusteredIndexOptions& options,
                                     util::ThreadPool* pool,
                                     const std::vector<std::uint32_t>& assign) {
  const std::size_t n = base.size();
  const std::size_t d = base.dim();
  const std::size_t m_sub = std::min(options.pq_m, d);

  std::vector<std::uint32_t> sub_offsets(m_sub + 1);
  for (std::size_t m = 0; m <= m_sub; ++m) {
    sub_offsets[m] = static_cast<std::uint32_t>(m * d / m_sub);
  }

  // Residual training sample: seeded like the coarse subsample but from an
  // independent stream (seed XOR), so adding PQ never perturbs the coarse
  // clustering's draws and a PQ rebuild reproduces the same lists.
  util::Rng rng(options.seed ^ 0x5149505155ULL);
  const std::size_t limit =
      std::min(n, std::max<std::size_t>(options.max_train_points, kPqSlots));
  std::vector<std::size_t> sample;
  if (limit < n) {
    sample = rng.SampleIndices(n, limit);
    std::sort(sample.begin(), sample.end());
  } else {
    sample.resize(n);
    std::iota(sample.begin(), sample.end(), std::size_t{0});
  }
  const std::size_t train_n = sample.size();
  tensor::Tensor residuals(train_n, d);
  for (std::size_t i = 0; i < train_n; ++i) {
    const float* x = base.EmbeddingAt(sample[i]);
    const float* c = centroids_.row_data(assign[sample[i]]);
    float* r = residuals.row_data(i);
    for (std::size_t j = 0; j < d; ++j) r[j] = x[j] - c[j];
  }

  const std::size_t kpq = std::min<std::size_t>(kPqSlots, train_n);
  std::vector<float> codebooks(kPqSlots * d, 0.0f);
  std::vector<std::int8_t> codes(n * m_sub, 0);

  // Entry → cluster map so the encoder can reconstruct each inverted-list
  // entry's residual without re-running assignment.
  std::vector<std::uint32_t> entry_cluster(n);
  for (std::size_t c = 0; c + 1 < list_offsets_.size(); ++c) {
    for (std::uint32_t idx = list_offsets_[c]; idx < list_offsets_[c + 1];
         ++idx) {
      entry_cluster[idx] = static_cast<std::uint32_t>(c);
    }
  }

  std::vector<float> sub_half_norms;
  for (std::size_t m = 0; m < m_sub; ++m) {
    const std::size_t lo = sub_offsets[m];
    const std::size_t dsub = sub_offsets[m + 1] - lo;
    tensor::Tensor sub_train(train_n, dsub);
    for (std::size_t i = 0; i < train_n; ++i) {
      std::memcpy(sub_train.row_data(i), residuals.row_data(i) + lo,
                  dsub * sizeof(float));
    }
    tensor::Tensor cb;
    TrainKmeans(sub_train.row_data(0), train_n, dsub, kpq,
                options.train_iterations, &rng, pool, &cb, &sub_half_norms);
    std::memcpy(codebooks.data() + kPqSlots * lo, cb.row_data(0),
                kpq * dsub * sizeof(float));

    // Encode every entry's subspace residual: nearest codeword under the
    // same adjusted-inner-product argmax as AssignPoints (ties to the
    // lowest code). Per-entry results are independent, so pool chunking
    // over entry blocks is deterministic.
    const std::size_t nblocks = (n + kAssignBlock - 1) / kAssignBlock;
    auto run_block = [&](std::size_t b, std::vector<float>* sub,
                         std::vector<float>* tile) {
      const std::size_t i0 = b * kAssignBlock;
      const std::size_t bn = std::min(kAssignBlock, n - i0);
      for (std::size_t i = 0; i < bn; ++i) {
        const float* x = base.EmbeddingAt(list_entries_[i0 + i]) + lo;
        const float* c = centroids_.row_data(entry_cluster[i0 + i]) + lo;
        float* r = sub->data() + i * dsub;
        for (std::size_t j = 0; j < dsub; ++j) r[j] = x[j] - c[j];
      }
      internal::ScoreTileF32(sub->data(), cb.row_data(0), tile->data(), bn,
                             dsub, kpq);
      for (std::size_t i = 0; i < bn; ++i) {
        const float* trow = tile->data() + i * kpq;
        std::size_t best_j = 0;
        float best_s = trow[0] - sub_half_norms[0];
        for (std::size_t j = 1; j < kpq; ++j) {
          const float s = trow[j] - sub_half_norms[j];
          if (s > best_s) {  // strict: ties keep the lowest code
            best_s = s;
            best_j = j;
          }
        }
        codes[(i0 + i) * m_sub + m] = static_cast<std::int8_t>(best_j);
      }
    };
    if (pool != nullptr && nblocks > 1) {
      pool->ParallelForChunks(
          nblocks, 0, [&](std::size_t, std::size_t b0, std::size_t b1) {
            std::vector<float> sub(kAssignBlock * dsub);
            std::vector<float> tile(kAssignBlock * kpq);
            for (std::size_t b = b0; b < b1; ++b) run_block(b, &sub, &tile);
          });
    } else {
      std::vector<float> sub(kAssignBlock * dsub);
      std::vector<float> tile(kAssignBlock * kpq);
      for (std::size_t b = 0; b < nblocks; ++b) run_block(b, &sub, &tile);
    }
  }

  pq_m_ = m_sub;
  pq_kc_ = kpq;
  pq_sub_offsets_ = std::move(sub_offsets);
  pq_codebooks_ = std::move(codebooks);
  pq_codes_ = std::move(codes);
  return util::Status::OK();
}

std::size_t ClusteredIndex::PqMemoryBytes() const {
  return pq_codes_.size() * sizeof(std::int8_t) +
         pq_codebooks_.size() * sizeof(float) +
         pq_sub_offsets_.size() * sizeof(std::uint32_t);
}

void ClusteredIndex::DropPq() {
  pq_m_ = 0;
  pq_kc_ = 0;
  pq_sub_offsets_.clear();
  pq_codebooks_.clear();
  pq_codes_.clear();
  options_.use_pq = false;
}

std::size_t ClusteredIndex::ResolveNprobe(std::size_t nprobe) const {
  if (nprobe == 0) nprobe = default_nprobe_;
  return std::clamp<std::size_t>(nprobe, 1, num_clusters());
}

std::size_t ClusteredIndex::ResolvePoolCap(std::size_t k) const {
  std::size_t cap = options_.rescore_pool;
  if (cap == 0) {
    // PQ distortion is coarser than int8's, so its default pool carries a
    // wider safety margin before the exact re-score.
    cap = pq_built() ? std::max(4 * k, k + 192) : std::max(2 * k, k + 64);
  }
  return std::clamp(cap, k, size());
}

void ClusteredIndex::ScoreClusters(const float* query,
                                   std::vector<float>* scores) const {
  const std::size_t kc = num_clusters();
  scores->resize(kc);
  internal::ScoreTileF32(query, centroids_.row_data(0), scores->data(), 1,
                         centroids_.cols(), kc);
  for (std::size_t c = 0; c < kc; ++c) (*scores)[c] -= half_cnorm_[c];
}

void ClusteredIndex::SelectProbe(const std::vector<float>& scores,
                                 std::size_t nprobe,
                                 std::vector<std::uint32_t>* probe) const {
  probe->resize(scores.size());
  std::iota(probe->begin(), probe->end(), 0u);
  const auto cmp = [&scores](std::uint32_t a, std::uint32_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  std::partial_sort(probe->begin(), probe->begin() + nprobe, probe->end(),
                    cmp);
  probe->resize(nprobe);
}

void ClusteredIndex::Offer(const ScoredEntity& cand, std::size_t cap,
                           std::vector<ScoredEntity>* heap) {
  OfferCandidate(cand, cap, heap);
}

void ClusteredIndex::PreparePqLut(const float* query,
                                  std::vector<float>* lut) const {
  lut->resize(pq_m_ * kPqSlots);
  for (std::size_t m = 0; m < pq_m_; ++m) {
    const std::size_t lo = pq_sub_offsets_[m];
    const std::size_t dsub = pq_sub_offsets_[m + 1] - lo;
    // One 1×256 tile per subspace: lut[m][j] = q_sub(m)·codebook[m][j].
    // Untrained tail slots (j >= pq_kc_) are zero rows, so their table
    // entries are 0 and no stored code ever references them.
    internal::ScoreTileF32(query + lo, pq_codebooks_.data() + kPqSlots * lo,
                           lut->data() + m * kPqSlots, 1, dsub, kPqSlots);
  }
}

void ClusteredIndex::PrepareScan(const float* query, std::size_t k,
                                 ClusteredScratch* scratch,
                                 ScanContext* ctx) const {
  ctx->query = query;
  ctx->k = k;
  ctx->pool_cap = ResolvePoolCap(k);
  if (pq_built()) {
    PreparePqLut(query, &scratch->lut);
    ctx->lut = scratch->lut.data();
    ctx->cluster_scores = &scratch->cluster_scores;
  } else if (base_->quantized()) {
    ctx->qscale = base_->QuantizeQueryInto(query, &scratch->topk.qquery);
    ctx->qquery = scratch->topk.qquery.data();
  }
}

ClusteredIndex::ListView ClusteredIndex::OwnView() const {
  return ListView{list_offsets_.data(), list_entries_.data(),
                  pq_codes_.empty() ? nullptr : pq_codes_.data()};
}

void ClusteredIndex::ScanLists(const ScanContext& ctx,
                               const std::vector<std::uint32_t>& probe,
                               std::size_t p_begin, std::size_t p_end,
                               const ListView& view,
                               TopKScratch* scratch) const {
  const std::size_t d = base_->dim();
  if (ctx.lut != nullptr) {
    // PQ ADC scan keyed by row POSITION: per-list base term q·c (recovered
    // from the adjusted centroid score) plus pq_m table lookups per entry,
    // strip-scored by the dispatched kernel and offered to the bounded
    // pool, which RescoreAndSelect re-scores in fp32. One kernel per
    // process, so serial, pooled, and sharded scans build identical pools.
    for (std::size_t p = p_begin; p < p_end; ++p) {
      const std::uint32_t c = probe[p];
      const std::uint32_t lo = view.offsets[c];
      const std::uint32_t hi = view.offsets[c + 1];
      if (lo == hi) continue;
      const float base_term = (*ctx.cluster_scores)[c] + half_cnorm_[c];
      const std::size_t count = hi - lo;
      if (scratch->scores.size() < count) scratch->scores.resize(count);
      internal::PqAdcScores(
          ctx.lut,
          reinterpret_cast<const std::uint8_t*>(view.codes) +
              std::size_t{lo} * pq_m_,
          count, pq_m_, base_term, scratch->scores.data());
      for (std::size_t i = 0; i < count; ++i) {
        OfferCandidate({view.entries[lo + i], scratch->scores[i]},
                       ctx.pool_cap, &scratch->pool);
      }
    }
    return;
  }
  for (std::size_t p = p_begin; p < p_end; ++p) {
    const std::uint32_t c = probe[p];
    const std::uint32_t lo = view.offsets[c];
    const std::uint32_t hi = view.offsets[c + 1];
    for (std::uint32_t idx = lo; idx < hi; ++idx) {
      const std::uint32_t pos = view.entries[idx];
      if (ctx.qquery != nullptr) {
        // Integer scan keyed by row POSITION: approximate scores feed the
        // bounded candidate pool, which RescoreAndSelect re-scores in fp32.
        // DotInt8 dispatches to AVX2 when available and is exact either
        // way, so the pool is bit-identical to the scalar scan.
        const std::int8_t* row = base_->QuantizedRowAt(pos);
        const std::int32_t acc = internal::DotInt8(ctx.qquery, row, d);
        const float score = static_cast<float>(acc) * ctx.qscale *
                            base_->QuantizedScaleAt(pos);
        OfferCandidate({pos, score}, ctx.pool_cap, &scratch->pool);
      } else {
        // fp32 scan keyed by entity ID with exact Dot scores: selection is
        // final here, which is what makes probe-all identical to the base
        // index's exhaustive TopKInto.
        const float score =
            tensor::Dot(ctx.query, base_->EmbeddingAt(pos), d);
        OfferCandidate({base_->ids()[pos], score}, ctx.k, &scratch->heap);
      }
    }
  }
}

void ClusteredIndex::RescoreAndSelect(const float* query, std::size_t k,
                                      TopKScratch* scratch,
                                      std::vector<ScoredEntity>* out) const {
  if (pq_built() || base_->quantized()) {
    const std::size_t d = base_->dim();
    scratch->heap.clear();
    for (const ScoredEntity& cand : scratch->pool) {
      const std::size_t pos = cand.id;
      const float score = tensor::Dot(query, base_->EmbeddingAt(pos), d);
      OfferCandidate({base_->ids()[pos], score}, k, &scratch->heap);
    }
    scratch->pool.clear();
  }
  DrainHeap(&scratch->heap, out);
}

void ClusteredIndex::TopKInto(const float* query, std::size_t k,
                              std::size_t nprobe, ClusteredScratch* scratch,
                              std::vector<ScoredEntity>* out) const {
  METABLINK_CHECK(built() && base_ != nullptr)
      << "ClusteredIndex must be built/attached before querying";
  out->clear();
  k = std::min(k, size());
  if (k == 0) return;
  nprobe = ResolveNprobe(nprobe);
  ScoreClusters(query, &scratch->cluster_scores);
  SelectProbe(scratch->cluster_scores, nprobe, &scratch->probe);
  ScanContext ctx;
  PrepareScan(query, k, scratch, &ctx);
  scratch->topk.heap.clear();
  scratch->topk.pool.clear();
  ScanLists(ctx, scratch->probe, 0, scratch->probe.size(), OwnView(),
            &scratch->topk);
  RescoreAndSelect(query, k, &scratch->topk, out);
}

std::vector<ScoredEntity> ClusteredIndex::TopK(const float* query,
                                               std::size_t k,
                                               std::size_t nprobe) const {
  ClusteredScratch scratch;
  std::vector<ScoredEntity> out;
  TopKInto(query, k, nprobe, &scratch, &out);
  return out;
}

void ClusteredIndex::TopKSharded(const float* query, std::size_t k,
                                 std::size_t nprobe, util::ThreadPool* pool,
                                 ShardedScratch* scratch,
                                 std::vector<ScoredEntity>* out) const {
  METABLINK_CHECK(built() && base_ != nullptr)
      << "ClusteredIndex must be built/attached before querying";
  out->clear();
  k = std::min(k, size());
  if (k == 0) return;
  nprobe = ResolveNprobe(nprobe);
  if (pool == nullptr || pool->num_threads() < 2 || nprobe < 2) {
    TopKInto(query, k, nprobe, &scratch->main, out);
    return;
  }
  ClusteredScratch& main = scratch->main;
  ScoreClusters(query, &main.cluster_scores);
  SelectProbe(main.cluster_scores, nprobe, &main.probe);
  ScanContext ctx;
  PrepareScan(query, k, &main, &ctx);
  const std::size_t pool_cap = ctx.pool_cap;
  const ListView view = OwnView();

  // Entry-balanced contiguous shards over the probe list: walk the probed
  // lists accumulating entry counts and cut at each target boundary, so a
  // few oversized cells don't serialize the scan behind one shard.
  std::size_t total_entries = 0;
  for (const std::uint32_t c : main.probe) {
    total_entries += list_offsets_[c + 1] - list_offsets_[c];
  }
  const std::size_t want = std::min(pool->num_threads(), nprobe);
  std::vector<std::uint32_t>& bounds = scratch->shard_bounds;
  bounds.clear();
  bounds.push_back(0);
  std::size_t acc = 0;
  for (std::size_t p = 0; p < nprobe && bounds.size() < want; ++p) {
    acc += list_offsets_[main.probe[p] + 1] - list_offsets_[main.probe[p]];
    if (acc * want >= bounds.size() * std::max<std::size_t>(total_entries, 1)) {
      bounds.push_back(static_cast<std::uint32_t>(p + 1));
    }
  }
  if (bounds.back() != nprobe) {
    bounds.push_back(static_cast<std::uint32_t>(nprobe));
  }
  const std::size_t num_shards = bounds.size() - 1;
  if (num_shards < 2) {
    main.topk.heap.clear();
    main.topk.pool.clear();
    ScanLists(ctx, main.probe, 0, nprobe, view, &main.topk);
    RescoreAndSelect(query, k, &main.topk, out);
    return;
  }

  if (scratch->shards.size() < num_shards) scratch->shards.resize(num_shards);
  pool->ParallelForChunks(
      num_shards, num_shards,
      [&](std::size_t shard, std::size_t, std::size_t) {
        TopKScratch& s = scratch->shards[shard];
        s.heap.clear();
        s.pool.clear();
        ScanLists(ctx, main.probe, bounds[shard], bounds[shard + 1], view, &s);
      });

  // K-way merge by re-offering each shard's survivors under the same total
  // order: any global top-`cap` candidate is in its own shard's top-`cap`,
  // so the merged selection equals the serial scan's bit for bit.
  main.topk.heap.clear();
  main.topk.pool.clear();
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    TopKScratch& s = scratch->shards[shard];
    for (const ScoredEntity& cand : s.heap) {
      OfferCandidate(cand, k, &main.topk.heap);
    }
    for (const ScoredEntity& cand : s.pool) {
      OfferCandidate(cand, pool_cap, &main.topk.pool);
    }
    s.heap.clear();
    s.pool.clear();
  }
  RescoreAndSelect(query, k, &main.topk, out);
}

void ClusteredIndex::Save(util::BinaryWriter* writer) const {
  writer->WriteU32(kClusteredTag);
  // PQ-free payloads keep writing version 1 so their bytes stay identical
  // to pre-PQ artifacts (and legible to pre-PQ readers).
  writer->WriteU32(pq_built() ? kClusteredVersion : 1u);
  writer->WriteU64(size());
  writer->WriteU64(dim());
  writer->WriteU64(num_clusters());
  writer->WriteU64(default_nprobe_);
  writer->WriteU64(options_.rescore_pool);
  writer->WriteU64(options_.seed);
  writer->WriteFloatVector(centroids_.data());
  writer->WriteFloatVector(half_cnorm_);
  writer->WriteU32Vector(list_offsets_);
  writer->WriteU32Vector(list_entries_);
  if (pq_built()) {
    writer->WriteU32(kPqTag);
    writer->WriteU64(pq_m_);
    writer->WriteU64(8);  // pq_nbits
    writer->WriteU64(pq_kc_);
    writer->WriteU32Vector(pq_sub_offsets_);
    writer->WriteFloatVector(pq_codebooks_);
    writer->WriteByteVector(pq_codes_);
  }
}

util::Status ClusteredIndex::Load(util::BinaryReader* reader) {
  std::uint32_t tag = 0, version = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&tag));
  if (tag != kClusteredTag) {
    return util::Status::InvalidArgument("not a ClusteredIndex snapshot");
  }
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version == 0 || version > kClusteredVersion) {
    return util::Status::InvalidArgument(util::StrFormat(
        "unsupported ClusteredIndex version %u", version));
  }
  std::uint64_t n = 0, d = 0, kc = 0, nprobe = 0, rescore = 0, seed = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&n));
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&d));
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&kc));
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&nprobe));
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&rescore));
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&seed));
  std::vector<float> centroids, half_cnorm;
  std::vector<std::uint32_t> offsets, entries;
  METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&centroids));
  METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&half_cnorm));
  METABLINK_RETURN_IF_ERROR(reader->ReadU32Vector(&offsets));
  METABLINK_RETURN_IF_ERROR(reader->ReadU32Vector(&entries));
  if (n == 0 || kc == 0 || kc > n || nprobe == 0 || nprobe > kc ||
      centroids.size() != kc * d || half_cnorm.size() != kc ||
      offsets.size() != kc + 1 || entries.size() != n) {
    return util::Status::InvalidArgument(
        "corrupt ClusteredIndex snapshot: inconsistent shapes");
  }
  if (offsets.front() != 0 || offsets.back() != n) {
    return util::Status::InvalidArgument(
        "corrupt ClusteredIndex snapshot: bad list bounds");
  }
  for (std::size_t c = 0; c < kc; ++c) {
    if (offsets[c] > offsets[c + 1]) {
      return util::Status::InvalidArgument(
          "corrupt ClusteredIndex snapshot: non-monotonic list offsets");
    }
  }
  std::vector<bool> seen(n, false);
  for (const std::uint32_t pos : entries) {
    if (pos >= n || seen[pos]) {
      return util::Status::InvalidArgument(
          "corrupt ClusteredIndex snapshot: entries are not a permutation");
    }
    seen[pos] = true;
  }

  // Version 2 carries a mandatory PQ block; validate it fully before
  // committing any state so a corrupt payload leaves the index untouched.
  std::uint64_t pq_m = 0, pq_kc = 0;
  std::vector<std::uint32_t> pq_sub_offsets;
  std::vector<float> pq_codebooks;
  std::vector<std::int8_t> pq_codes;
  if (version >= 2) {
    std::uint32_t pq_tag = 0;
    std::uint64_t pq_nbits = 0;
    METABLINK_RETURN_IF_ERROR(reader->ReadU32(&pq_tag));
    if (pq_tag != kPqTag) {
      return util::Status::InvalidArgument(
          "corrupt ClusteredIndex snapshot: missing PQIV block");
    }
    METABLINK_RETURN_IF_ERROR(reader->ReadU64(&pq_m));
    METABLINK_RETURN_IF_ERROR(reader->ReadU64(&pq_nbits));
    METABLINK_RETURN_IF_ERROR(reader->ReadU64(&pq_kc));
    METABLINK_RETURN_IF_ERROR(reader->ReadU32Vector(&pq_sub_offsets));
    METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&pq_codebooks));
    METABLINK_RETURN_IF_ERROR(reader->ReadByteVector(&pq_codes));
    if (pq_nbits != 8) {
      return util::Status::InvalidArgument(util::StrFormat(
          "unsupported PQ code width: %llu bits",
          static_cast<unsigned long long>(pq_nbits)));
    }
    if (pq_m == 0 || pq_m > d || pq_kc == 0 || pq_kc > kPqSlots ||
        pq_sub_offsets.size() != pq_m + 1 ||
        pq_codebooks.size() != kPqSlots * d || pq_codes.size() != n * pq_m) {
      return util::Status::InvalidArgument(
          "corrupt ClusteredIndex snapshot: inconsistent PQ shapes");
    }
    if (pq_sub_offsets.front() != 0 || pq_sub_offsets.back() != d) {
      return util::Status::InvalidArgument(
          "corrupt ClusteredIndex snapshot: bad PQ subspace bounds");
    }
    for (std::size_t m = 0; m < pq_m; ++m) {
      if (pq_sub_offsets[m] >= pq_sub_offsets[m + 1]) {
        return util::Status::InvalidArgument(
            "corrupt ClusteredIndex snapshot: non-increasing PQ subspaces");
      }
    }
    for (const float v : pq_codebooks) {
      if (!std::isfinite(v)) {
        return util::Status::InvalidArgument(
            "corrupt ClusteredIndex snapshot: non-finite PQ codebook");
      }
    }
    for (const std::int8_t code : pq_codes) {
      if (static_cast<std::uint8_t>(code) >= pq_kc) {
        return util::Status::InvalidArgument(
            "corrupt ClusteredIndex snapshot: PQ code out of range");
      }
    }
  }

  centroids_ = tensor::Tensor(static_cast<std::size_t>(kc),
                              static_cast<std::size_t>(d),
                              std::move(centroids));
  half_cnorm_ = std::move(half_cnorm);
  list_offsets_ = std::move(offsets);
  list_entries_ = std::move(entries);
  default_nprobe_ = static_cast<std::size_t>(nprobe);
  options_ = ClusteredIndexOptions{};
  options_.num_clusters = static_cast<std::size_t>(kc);
  options_.default_nprobe = static_cast<std::size_t>(nprobe);
  options_.rescore_pool = static_cast<std::size_t>(rescore);
  options_.seed = seed;
  pq_m_ = static_cast<std::size_t>(pq_m);
  pq_kc_ = static_cast<std::size_t>(pq_kc);
  pq_sub_offsets_ = std::move(pq_sub_offsets);
  pq_codebooks_ = std::move(pq_codebooks);
  pq_codes_ = std::move(pq_codes);
  options_.use_pq = pq_built();
  if (pq_built()) options_.pq_m = pq_m_;
  base_ = nullptr;  // detached until Attach()
  return util::Status::OK();
}

util::Status ClusteredIndex::Attach(const DenseIndex* base) {
  if (base == nullptr || !base->built()) {
    return util::Status::InvalidArgument(
        "ClusteredIndex::Attach requires a built base index");
  }
  if (!built()) {
    return util::Status::InvalidArgument(
        "ClusteredIndex::Attach before Build/Load");
  }
  if (base->size() != size() || base->dim() != dim()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "clustering shape [%zu x %zu] does not match base index [%zu x %zu]",
        size(), dim(), base->size(), base->dim()));
  }
  base_ = base;
  return util::Status::OK();
}

util::Status ClusteredIndex::SaveToFile(const std::string& path) const {
  store::CheckpointWriter ckpt;
  Save(ckpt.AddSection("clustered"));
  return ckpt.WriteToFile(path);
}

util::Status ClusteredIndex::LoadFromFile(const std::string& path,
                                          const DenseIndex* base) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::vector<std::uint8_t> bytes;
  METABLINK_RETURN_IF_ERROR(reader->ReadBytes(reader->Remaining(), &bytes));
  if (bytes.size() >= 4) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    if (magic == store::kCheckpointMagic) {
      auto ckpt = store::CheckpointReader::Parse(std::move(bytes));
      if (!ckpt.ok()) return ckpt.status();
      auto section = ckpt->Section("clustered");
      if (!section.ok()) return section.status();
      METABLINK_RETURN_IF_ERROR(Load(&*section));
      return Attach(base);
    }
  }
  // Raw headerless "CIVF" stream (no container framing).
  util::BinaryReader legacy(std::move(bytes));
  METABLINK_RETURN_IF_ERROR(Load(&legacy));
  return Attach(base);
}

}  // namespace metablink::retrieval
