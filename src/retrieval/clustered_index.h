#ifndef METABLINK_RETRIEVAL_CLUSTERED_INDEX_H_
#define METABLINK_RETRIEVAL_CLUSTERED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "retrieval/dense_index.h"
#include "tensor/tensor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::util {
class BinaryWriter;
class BinaryReader;
}  // namespace metablink::util

namespace metablink::retrieval {

/// Build- and probe-time knobs for ClusteredIndex.
struct ClusteredIndexOptions {
  /// Coarse centroids. 0 → round(sqrt(N)) clamped to [1, N] — the classic
  /// IVF balance point where centroid scoring and list scanning cost the
  /// same per query.
  std::size_t num_clusters = 0;
  /// Lloyd iterations over the training sample.
  std::size_t train_iterations = 8;
  /// K-means trains on at most this many rows (seeded, deterministic
  /// subsample); the final assignment pass always covers every row.
  std::size_t max_train_points = 65536;
  /// Seed for subsampling and centroid init. Same seed + same rows →
  /// byte-identical centroids and inverted lists.
  std::uint64_t seed = 0x1337u;
  /// Clusters probed per query when the caller passes nprobe == 0.
  /// 0 → ceil(sqrt(num_clusters)).
  std::size_t default_nprobe = 0;
  /// Candidate-pool width for the int8 list scan before exact fp32
  /// re-scoring (only used when the base index is quantized).
  /// 0 → max(2k, k + 64) at query time.
  std::size_t rescore_pool = 0;
};

/// Reusable per-caller buffers for ClusteredIndex::TopKInto.
struct ClusteredScratch {
  /// Adjusted query·centroid scores, one per centroid.
  std::vector<float> cluster_scores;
  /// Probed cluster ids, best centroid first.
  std::vector<std::uint32_t> probe;
  /// Heap / pool / quantized-query buffers for the list scans.
  TopKScratch topk;
};

/// Reusable buffers for the sharded probe path.
struct ShardedScratch {
  ClusteredScratch main;
  /// Per-shard selection state; chunk i of the parallel scan owns entry i.
  std::vector<TopKScratch> shards;
  /// Probe-list position where each shard's cluster range begins
  /// ([num_shards + 1] boundaries).
  std::vector<std::uint32_t> shard_bounds;
};

/// Clustered (IVF-style) approximate index layered over a DenseIndex: a
/// seeded k-means partitions the entity rows into ~sqrt(N) cells, an
/// inverted list maps each cell to its row positions, and a query probes
/// only the `nprobe` cells whose centroids score highest instead of
/// scanning every row — the BLINK-style coarse-probe → exact-re-score
/// recipe that keeps million-entity retrieval off the exhaustive path.
///
/// Probe protocol: score the query against every centroid (adjusted inner
/// product, x·c − ½‖c‖², equivalent to nearest-centroid in Euclidean
/// distance), visit the top-`nprobe` inverted lists, scan their rows — an
/// integer int8 scan when the base index is quantized, fp32 otherwise —
/// and exactly re-score the bounded candidate pool with tensor::Dot so the
/// returned scores are true fp32 regardless of scan precision.
///
/// Exactness invariant: with nprobe == num_clusters() every row is visited
/// and the result is identical (ids, scores, tie order) to the base
/// index's exhaustive TopKInto, because both select under the same strict
/// total order (score desc, id asc). Smaller nprobe trades recall for
/// latency; the R@64 overlap gate lives in bench_retrieval.
///
/// The index borrows its base: Build/Load/Attach bind it to a DenseIndex
/// that must stay alive and unmodified (Build()/Quantize() on the base
/// invalidate the attachment). Serialization stores only the clustering
/// (centroids + lists), never the rows — reload the base first, then
/// Attach.
///
/// Thread safety: all probe methods are const and share no mutable state;
/// any number of threads may query concurrently with caller-owned scratch.
class ClusteredIndex {
 public:
  ClusteredIndex() = default;

  /// Trains k-means over `base`'s rows (deterministic given options.seed)
  /// and builds the inverted lists. Lloyd assignment parallelizes over
  /// `pool` when provided; the result is identical serial or pooled.
  /// Pre: base.built(). Keeps a pointer to `base`.
  util::Status Build(const DenseIndex& base,
                     const ClusteredIndexOptions& options,
                     util::ThreadPool* pool = nullptr);

  bool built() const { return !list_offsets_.empty(); }
  std::size_t size() const { return list_entries_.size(); }
  std::size_t dim() const { return centroids_.cols(); }
  std::size_t num_clusters() const { return centroids_.rows(); }
  std::size_t default_nprobe() const { return default_nprobe_; }
  const DenseIndex* base() const { return base_; }
  const ClusteredIndexOptions& options() const { return options_; }

  /// Top-k by true fp32 inner product among the rows of the top-`nprobe`
  /// probed cells (nprobe == 0 → default_nprobe()), best first, ties by
  /// ascending id. Appends to `*out` after clearing it; allocation-free
  /// when `scratch` and `out` are reused.
  void TopKInto(const float* query, std::size_t k, std::size_t nprobe,
                ClusteredScratch* scratch,
                std::vector<ScoredEntity>* out) const;

  /// Convenience wrapper around TopKInto with one-shot buffers.
  std::vector<ScoredEntity> TopK(const float* query, std::size_t k,
                                 std::size_t nprobe = 0) const;

  /// TopKInto with the probed lists sharded across `pool`: each shard
  /// scans a contiguous, entry-balanced slice of the probe list into its
  /// own TopKScratch, and the per-shard survivors are k-way merged under
  /// the same total order — bit-identical output to the serial probe.
  void TopKSharded(const float* query, std::size_t k, std::size_t nprobe,
                   util::ThreadPool* pool, ShardedScratch* scratch,
                   std::vector<ScoredEntity>* out) const;

  // ---- Persistence --------------------------------------------------------

  /// Serializes the clustering (centroids, norms, inverted lists, resolved
  /// probe defaults). The base rows are NOT written; pair the payload with
  /// the base index artifact.
  void Save(util::BinaryWriter* writer) const;

  /// Loads and integrity-checks a clustering payload (shape consistency,
  /// monotonic offsets, entries form a permutation of [0, N)). The index
  /// is detached afterwards; call Attach before querying.
  util::Status Load(util::BinaryReader* reader);

  /// Binds (or re-binds, e.g. after the base was moved) the clustering to
  /// its base index, validating row count and dimension.
  util::Status Attach(const DenseIndex* base);

  /// Writes a framed checkpoint container with one "clustered" section.
  util::Status SaveToFile(const std::string& path) const;
  /// Loads either a framed container or a raw legacy "CIVF" stream, then
  /// attaches to `base`.
  util::Status LoadFromFile(const std::string& path, const DenseIndex* base);

  // ---- Introspection (tests, benches) ------------------------------------

  const tensor::Tensor& centroids() const { return centroids_; }
  /// CSR offsets into list_entries(), one per cluster plus a final bound.
  const std::vector<std::uint32_t>& list_offsets() const {
    return list_offsets_;
  }
  /// Row positions grouped by cluster, ascending within each list.
  const std::vector<std::uint32_t>& list_entries() const {
    return list_entries_;
  }

 private:
  /// Adjusted centroid scores (x·c − ½‖c‖²) for one query.
  void ScoreClusters(const float* query, std::vector<float>* scores) const;
  /// Top-`nprobe` cluster ids by adjusted score (desc, ties by id asc).
  void SelectProbe(const std::vector<float>& scores, std::size_t nprobe,
                   std::vector<std::uint32_t>* probe) const;
  /// Scans the probe-list slice [p_begin, p_end) into `scratch`: int8
  /// candidates keyed by position when quantized (bounded by `pool_cap`),
  /// exact fp32 hits keyed by id otherwise (bounded by `k`).
  void ScanProbeSlice(const float* query, const std::vector<std::uint32_t>&
                      probe, std::size_t p_begin, std::size_t p_end,
                      std::size_t k, std::size_t pool_cap, float qscale,
                      const std::vector<std::int8_t>& qquery,
                      TopKScratch* scratch) const;
  /// Exact fp32 re-score of pooled positions + final top-k selection.
  void RescoreAndSelect(const float* query, std::size_t k,
                        TopKScratch* scratch,
                        std::vector<ScoredEntity>* out) const;
  std::size_t ResolveNprobe(std::size_t nprobe) const;
  std::size_t ResolvePoolCap(std::size_t k) const;

  const DenseIndex* base_ = nullptr;
  ClusteredIndexOptions options_;
  tensor::Tensor centroids_;             // [num_clusters, dim]
  std::vector<float> half_cnorm_;        // ½‖c‖² per centroid
  std::vector<std::uint32_t> list_offsets_;  // [num_clusters + 1]
  std::vector<std::uint32_t> list_entries_;  // [N] row positions
  std::size_t default_nprobe_ = 1;
};

}  // namespace metablink::retrieval

#endif  // METABLINK_RETRIEVAL_CLUSTERED_INDEX_H_
