#ifndef METABLINK_RETRIEVAL_CLUSTERED_INDEX_H_
#define METABLINK_RETRIEVAL_CLUSTERED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "retrieval/dense_index.h"
#include "tensor/tensor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::util {
class BinaryWriter;
class BinaryReader;
}  // namespace metablink::util

namespace metablink::retrieval {

/// Build- and probe-time knobs for ClusteredIndex.
struct ClusteredIndexOptions {
  /// Coarse centroids. 0 → round(sqrt(N)) clamped to [1, N] — the classic
  /// IVF balance point where centroid scoring and list scanning cost the
  /// same per query.
  std::size_t num_clusters = 0;
  /// Lloyd iterations over the training sample.
  std::size_t train_iterations = 8;
  /// K-means trains on at most this many rows (seeded, deterministic
  /// subsample); the final assignment pass always covers every row.
  std::size_t max_train_points = 65536;
  /// Seed for subsampling and centroid init. Same seed + same rows →
  /// byte-identical centroids and inverted lists.
  std::uint64_t seed = 0x1337u;
  /// Clusters probed per query when the caller passes nprobe == 0.
  /// 0 → ceil(sqrt(num_clusters)).
  std::size_t default_nprobe = 0;
  /// Candidate-pool width for the approximate list scan (int8 or PQ)
  /// before exact fp32 re-scoring. 0 → max(2k, k + 64) at query time for
  /// the int8 scan, max(4k, k + 192) for the PQ scan (PQ distortion is
  /// coarser than int8's, so the pool carries a wider safety margin).
  std::size_t rescore_pool = 0;
  /// Train a product-quantized residual form during Build: per-subspace
  /// codebooks over (row − assigned centroid), one 8-bit code per subspace
  /// per entry. Probes then scan M-byte codes via per-query ADC tables
  /// instead of d-byte int8 rows — the FAISS-style IVF-PQ memory layout.
  bool use_pq = false;
  /// PQ subspaces (codes per entry). Clamped to [1, dim] at Build; dim need
  /// not divide evenly (subspace m covers columns [m*d/M, (m+1)*d/M)).
  std::size_t pq_m = 8;
  /// Bits per PQ code. Only 8 (256 centroids per subspace) is supported;
  /// any other value fails Build.
  std::size_t pq_nbits = 8;
};

/// Reusable per-caller buffers for ClusteredIndex::TopKInto.
struct ClusteredScratch {
  /// Adjusted query·centroid scores, one per centroid.
  std::vector<float> cluster_scores;
  /// Probed cluster ids, best centroid first.
  std::vector<std::uint32_t> probe;
  /// Heap / pool / quantized-query buffers for the list scans.
  TopKScratch topk;
  /// Per-query ADC lookup tables ([pq_m × 256] partial inner products),
  /// filled once per query when the index carries a PQ form.
  std::vector<float> lut;
};

/// Reusable buffers for the sharded probe path.
struct ShardedScratch {
  ClusteredScratch main;
  /// Per-shard selection state; chunk i of the parallel scan owns entry i.
  std::vector<TopKScratch> shards;
  /// Probe-list position where each shard's cluster range begins
  /// ([num_shards + 1] boundaries).
  std::vector<std::uint32_t> shard_bounds;
};

/// Clustered (IVF-style) approximate index layered over a DenseIndex: a
/// seeded k-means partitions the entity rows into ~sqrt(N) cells, an
/// inverted list maps each cell to its row positions, and a query probes
/// only the `nprobe` cells whose centroids score highest instead of
/// scanning every row — the BLINK-style coarse-probe → exact-re-score
/// recipe that keeps million-entity retrieval off the exhaustive path.
///
/// Probe protocol: score the query against every centroid (adjusted inner
/// product, x·c − ½‖c‖², equivalent to nearest-centroid in Euclidean
/// distance), visit the top-`nprobe` inverted lists, scan their rows — an
/// ADC table scan over M-byte PQ codes when the index carries a PQ form,
/// an integer int8 scan when the base index is quantized, fp32 otherwise —
/// and exactly re-score the bounded candidate pool with tensor::Dot so the
/// returned scores are true fp32 regardless of scan precision.
///
/// PQ form (options.use_pq): Build additionally trains per-subspace
/// codebooks on the row residuals (row − assigned centroid) and stores one
/// 8-bit code per subspace per inverted-list entry. A query then estimates
/// q·row ≈ q·c + Σ_m lut[m][code_m] with lut[m][j] = q_sub(m)·codebook[m][j]
/// — M table lookups per entry instead of a d-wide dot — and the exact
/// re-score of the pool removes the quantization error from everything it
/// returns. The codes replace the int8 rows in the scan's working set:
/// M + 4 bytes of scan payload per entry instead of d + 4.
///
/// Exactness invariant: with nprobe == num_clusters() every row is visited
/// and the result is identical (ids, scores, tie order) to the base
/// index's exhaustive TopKInto, because both select under the same strict
/// total order (score desc, id asc). Smaller nprobe trades recall for
/// latency; the R@64 overlap gate lives in bench_retrieval.
///
/// The index borrows its base: Build/Load/Attach bind it to a DenseIndex
/// that must stay alive and unmodified (Build()/Quantize() on the base
/// invalidate the attachment). Serialization stores only the clustering
/// (centroids + lists), never the rows — reload the base first, then
/// Attach.
///
/// Thread safety: all probe methods are const and share no mutable state;
/// any number of threads may query concurrently with caller-owned scratch.
class ClusteredIndex {
 public:
  ClusteredIndex() = default;

  /// Trains k-means over `base`'s rows (deterministic given options.seed)
  /// and builds the inverted lists. Lloyd assignment parallelizes over
  /// `pool` when provided; the result is identical serial or pooled.
  /// Pre: base.built(). Keeps a pointer to `base`.
  util::Status Build(const DenseIndex& base,
                     const ClusteredIndexOptions& options,
                     util::ThreadPool* pool = nullptr);

  bool built() const { return !list_offsets_.empty(); }
  std::size_t size() const { return list_entries_.size(); }
  std::size_t dim() const { return centroids_.cols(); }
  std::size_t num_clusters() const { return centroids_.rows(); }
  std::size_t default_nprobe() const { return default_nprobe_; }
  const DenseIndex* base() const { return base_; }
  const ClusteredIndexOptions& options() const { return options_; }

  /// Top-k by true fp32 inner product among the rows of the top-`nprobe`
  /// probed cells (nprobe == 0 → default_nprobe()), best first, ties by
  /// ascending id. Appends to `*out` after clearing it; allocation-free
  /// when `scratch` and `out` are reused.
  void TopKInto(const float* query, std::size_t k, std::size_t nprobe,
                ClusteredScratch* scratch,
                std::vector<ScoredEntity>* out) const;

  /// Convenience wrapper around TopKInto with one-shot buffers.
  std::vector<ScoredEntity> TopK(const float* query, std::size_t k,
                                 std::size_t nprobe = 0) const;

  /// TopKInto with the probed lists sharded across `pool`: each shard
  /// scans a contiguous, entry-balanced slice of the probe list into its
  /// own TopKScratch, and the per-shard survivors are k-way merged under
  /// the same total order — bit-identical output to the serial probe.
  void TopKSharded(const float* query, std::size_t k, std::size_t nprobe,
                   util::ThreadPool* pool, ShardedScratch* scratch,
                   std::vector<ScoredEntity>* out) const;

  // ---- Persistence --------------------------------------------------------

  /// Serializes the clustering (centroids, norms, inverted lists, resolved
  /// probe defaults). The base rows are NOT written; pair the payload with
  /// the base index artifact. A PQ form appends a version-2 "PQIV" block
  /// (codebooks + codes); without one, the bytes are identical to the
  /// version-1 format, so PQ-free artifacts round-trip with older readers.
  void Save(util::BinaryWriter* writer) const;

  /// Loads and integrity-checks a clustering payload (shape consistency,
  /// monotonic offsets, entries form a permutation of [0, N); for version-2
  /// payloads also PQ tag/shape/finiteness/code-range checks). The index
  /// is detached afterwards; call Attach before querying.
  util::Status Load(util::BinaryReader* reader);

  /// Binds (or re-binds, e.g. after the base was moved) the clustering to
  /// its base index, validating row count and dimension.
  util::Status Attach(const DenseIndex* base);

  /// Writes a framed checkpoint container with one "clustered" section.
  util::Status SaveToFile(const std::string& path) const;
  /// Loads either a framed container or a raw legacy "CIVF" stream, then
  /// attaches to `base`.
  util::Status LoadFromFile(const std::string& path, const DenseIndex* base);

  // ---- Product-quantized residual form ------------------------------------

  /// True when the index carries trained PQ codebooks + codes (probes then
  /// use the ADC scan regardless of base quantization).
  bool pq_built() const { return !pq_codebooks_.empty(); }
  /// Subspaces per entry (codes per row). 0 when !pq_built().
  std::size_t pq_m() const { return pq_m_; }
  /// Trained centroids per subspace (≤ 256; smaller only when the training
  /// sample had fewer rows).
  std::size_t pq_kc() const { return pq_kc_; }
  /// Heap bytes of the PQ structures: codes + codebooks + subspace bounds.
  /// The scan-resident marginal cost per entry is pq_m() bytes; the
  /// codebooks are an O(256·d) constant amortized over the whole KB.
  std::size_t PqMemoryBytes() const;
  /// Discards the PQ form (codes + codebooks), reverting probes to the
  /// int8/fp32 list scan. The coarse clustering is untouched. Used by
  /// servers configured with use_pq=false that adopt a bundle whose
  /// clustered artifact ships PQ, so their serving path stays byte-
  /// identical to a PQ-free build.
  void DropPq();

  // ---- Introspection (tests, benches) ------------------------------------

  const tensor::Tensor& centroids() const { return centroids_; }
  /// CSR offsets into list_entries(), one per cluster plus a final bound.
  const std::vector<std::uint32_t>& list_offsets() const {
    return list_offsets_;
  }
  /// Row positions grouped by cluster, ascending within each list.
  const std::vector<std::uint32_t>& list_entries() const {
    return list_entries_;
  }
  /// PQ codes in list-entry order ([size × pq_m], entry i of list_entries()
  /// owns bytes [i*pq_m, (i+1)*pq_m)). Empty when !pq_built().
  const std::vector<std::int8_t>& pq_codes() const { return pq_codes_; }
  /// Flat subspace codebooks: entry (m, j) starts at
  /// 256 * pq_sub_offsets()[m] + j * dsub_m, dsub_m columns.
  const std::vector<float>& pq_codebooks() const { return pq_codebooks_; }
  /// Column bounds of each subspace ([pq_m + 1], 0 … dim).
  const std::vector<std::uint32_t>& pq_sub_offsets() const {
    return pq_sub_offsets_;
  }

 private:
  friend class ShardedIndex;

  /// A CSR view of inverted lists to scan: ShardedIndex substitutes its
  /// per-shard row-range restrictions for the index's own full lists.
  /// `codes` is null when the view carries no PQ form.
  struct ListView {
    const std::uint32_t* offsets = nullptr;  // [num_clusters + 1]
    const std::uint32_t* entries = nullptr;  // global row positions
    const std::int8_t* codes = nullptr;      // pq_m bytes per entry
  };

  /// Read-only per-query state shared by every list scan of one probe.
  struct ScanContext {
    const float* query = nullptr;
    std::size_t k = 0;
    std::size_t pool_cap = 0;
    // int8 path:
    float qscale = 0.0f;
    const std::int8_t* qquery = nullptr;
    // PQ path:
    const float* lut = nullptr;  // [pq_m × 256] ADC tables
    /// Adjusted centroid scores (ScoreClusters output); the PQ scan
    /// recovers the raw q·c base term as scores[c] + ½‖c‖².
    const std::vector<float>* cluster_scores = nullptr;
  };
  /// Adjusted centroid scores (x·c − ½‖c‖²) for one query.
  void ScoreClusters(const float* query, std::vector<float>* scores) const;
  /// Top-`nprobe` cluster ids by adjusted score (desc, ties by id asc).
  void SelectProbe(const std::vector<float>& scores, std::size_t nprobe,
                   std::vector<std::uint32_t>* probe) const;
  /// Fills the per-query ADC tables: lut[m * 256 + j] = q_sub(m)·cb[m][j].
  /// Pre: pq_built().
  void PreparePqLut(const float* query, std::vector<float>* lut) const;
  /// Scans the probe-list slice [p_begin, p_end) of `view` into `scratch`:
  /// PQ ADC candidates keyed by position when the context carries a lut,
  /// int8 candidates keyed by position when it carries a quantized query
  /// (both bounded by pool_cap), exact fp32 hits keyed by id otherwise
  /// (bounded by k). The per-entry scores depend only on (entry, context),
  /// never on which view or slice presented the entry — the property that
  /// makes sharded scans mergeable bit-identically.
  void ScanLists(const ScanContext& ctx,
                 const std::vector<std::uint32_t>& probe, std::size_t p_begin,
                 std::size_t p_end, const ListView& view,
                 TopKScratch* scratch) const;
  /// Fills `ctx` for one query: pool cap, ADC tables or quantized query.
  void PrepareScan(const float* query, std::size_t k,
                   ClusteredScratch* scratch, ScanContext* ctx) const;
  /// The index's own full inverted lists as a scan view.
  ListView OwnView() const;
  /// Bounded offer under the strict (score desc, id asc) total order — the
  /// same selection primitive every scan in the .cc uses; exposed to the
  /// friend so sharded merges re-offer under the identical order.
  static void Offer(const ScoredEntity& cand, std::size_t cap,
                    std::vector<ScoredEntity>* heap);
  /// Exact fp32 re-score of pooled positions + final top-k selection.
  void RescoreAndSelect(const float* query, std::size_t k,
                        TopKScratch* scratch,
                        std::vector<ScoredEntity>* out) const;
  std::size_t ResolveNprobe(std::size_t nprobe) const;
  std::size_t ResolvePoolCap(std::size_t k) const;
  /// Trains the residual codebooks and encodes every inverted-list entry.
  /// `assign` is the final per-row cluster assignment from Build.
  util::Status BuildPq(const DenseIndex& base,
                       const ClusteredIndexOptions& options,
                       util::ThreadPool* pool,
                       const std::vector<std::uint32_t>& assign);

  const DenseIndex* base_ = nullptr;
  ClusteredIndexOptions options_;
  tensor::Tensor centroids_;             // [num_clusters, dim]
  std::vector<float> half_cnorm_;        // ½‖c‖² per centroid
  std::vector<std::uint32_t> list_offsets_;  // [num_clusters + 1]
  std::vector<std::uint32_t> list_entries_;  // [N] row positions
  std::size_t default_nprobe_ = 1;
  // PQ form (empty/zero when not built): see the accessor docs for layout.
  std::size_t pq_m_ = 0;
  std::size_t pq_kc_ = 0;
  std::vector<std::uint32_t> pq_sub_offsets_;  // [pq_m + 1]
  std::vector<float> pq_codebooks_;            // [256 × dim], subspace-major
  std::vector<std::int8_t> pq_codes_;          // [N × pq_m], list order
};

}  // namespace metablink::retrieval

#endif  // METABLINK_RETRIEVAL_CLUSTERED_INDEX_H_
