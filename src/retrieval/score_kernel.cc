#include "retrieval/score_kernel.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define METABLINK_SCORE_KERNEL_X86 1
#endif

namespace metablink::retrieval::internal {

namespace {

// Portable fallback: four independent fp32 accumulator chains per dot so
// the adds pipeline instead of serializing on one register. Matches the
// SIMD path's "selection-grade fp32" contract, not its exact rounding.
void ScoreTileScalar(const float* queries, const float* entities, float* tile,
                     std::size_t qn, std::size_t d, std::size_t en) {
  for (std::size_t i = 0; i < qn; ++i) {
    const float* q = queries + i * d;
    float* trow = tile + i * en;
    for (std::size_t j = 0; j < en; ++j) {
      const float* e = entities + j * d;
      float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
      std::size_t p = 0;
      for (; p + 4 <= d; p += 4) {
        a0 += q[p] * e[p];
        a1 += q[p + 1] * e[p + 1];
        a2 += q[p + 2] * e[p + 2];
        a3 += q[p + 3] * e[p + 3];
      }
      float s = (a0 + a1) + (a2 + a3);
      for (; p < d; ++p) s += q[p] * e[p];
      trow[j] = s;
    }
  }
}

#ifdef METABLINK_SCORE_KERNEL_X86

__attribute__((target("avx2,fma"))) inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// Register-blocked 4-query × 2-entity micro-kernel: each entity row load is
// reused by four queries and each query row load by two entities, so the
// inner loop runs eight independent FMA chains (enough to hide FMA latency)
// while staying load-bound-free. Remainders fall back to narrower shapes.
__attribute__((target("avx2,fma"))) void ScoreTileAvx2(
    const float* queries, const float* entities, float* tile, std::size_t qn,
    std::size_t d, std::size_t en) {
  const std::size_t d8 = d & ~std::size_t{7};
  std::size_t i = 0;
  for (; i + 4 <= qn; i += 4) {
    const float* q0 = queries + i * d;
    const float* q1 = q0 + d;
    const float* q2 = q1 + d;
    const float* q3 = q2 + d;
    float* t0 = tile + i * en;
    float* t1 = t0 + en;
    float* t2 = t1 + en;
    float* t3 = t2 + en;
    std::size_t j = 0;
    for (; j + 2 <= en; j += 2) {
      const float* ea = entities + j * d;
      const float* eb = ea + d;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < d8; p += 8) {
        const __m256 ev_a = _mm256_loadu_ps(ea + p);
        const __m256 ev_b = _mm256_loadu_ps(eb + p);
        const __m256 qv0 = _mm256_loadu_ps(q0 + p);
        const __m256 qv1 = _mm256_loadu_ps(q1 + p);
        const __m256 qv2 = _mm256_loadu_ps(q2 + p);
        const __m256 qv3 = _mm256_loadu_ps(q3 + p);
        a0 = _mm256_fmadd_ps(qv0, ev_a, a0);
        a1 = _mm256_fmadd_ps(qv1, ev_a, a1);
        a2 = _mm256_fmadd_ps(qv2, ev_a, a2);
        a3 = _mm256_fmadd_ps(qv3, ev_a, a3);
        b0 = _mm256_fmadd_ps(qv0, ev_b, b0);
        b1 = _mm256_fmadd_ps(qv1, ev_b, b1);
        b2 = _mm256_fmadd_ps(qv2, ev_b, b2);
        b3 = _mm256_fmadd_ps(qv3, ev_b, b3);
      }
      float sa0 = HorizontalSum(a0), sa1 = HorizontalSum(a1);
      float sa2 = HorizontalSum(a2), sa3 = HorizontalSum(a3);
      float sb0 = HorizontalSum(b0), sb1 = HorizontalSum(b1);
      float sb2 = HorizontalSum(b2), sb3 = HorizontalSum(b3);
      for (std::size_t p = d8; p < d; ++p) {
        const float va = ea[p], vb = eb[p];
        sa0 += q0[p] * va;
        sa1 += q1[p] * va;
        sa2 += q2[p] * va;
        sa3 += q3[p] * va;
        sb0 += q0[p] * vb;
        sb1 += q1[p] * vb;
        sb2 += q2[p] * vb;
        sb3 += q3[p] * vb;
      }
      t0[j] = sa0;
      t1[j] = sa1;
      t2[j] = sa2;
      t3[j] = sa3;
      t0[j + 1] = sb0;
      t1[j + 1] = sb1;
      t2[j + 1] = sb2;
      t3[j + 1] = sb3;
    }
    for (; j < en; ++j) {
      const float* e = entities + j * d;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < d8; p += 8) {
        const __m256 ev = _mm256_loadu_ps(e + p);
        a0 = _mm256_fmadd_ps(_mm256_loadu_ps(q0 + p), ev, a0);
        a1 = _mm256_fmadd_ps(_mm256_loadu_ps(q1 + p), ev, a1);
        a2 = _mm256_fmadd_ps(_mm256_loadu_ps(q2 + p), ev, a2);
        a3 = _mm256_fmadd_ps(_mm256_loadu_ps(q3 + p), ev, a3);
      }
      float s0 = HorizontalSum(a0), s1 = HorizontalSum(a1);
      float s2 = HorizontalSum(a2), s3 = HorizontalSum(a3);
      for (std::size_t p = d8; p < d; ++p) {
        const float v = e[p];
        s0 += q0[p] * v;
        s1 += q1[p] * v;
        s2 += q2[p] * v;
        s3 += q3[p] * v;
      }
      t0[j] = s0;
      t1[j] = s1;
      t2[j] = s2;
      t3[j] = s3;
    }
  }
  for (; i < qn; ++i) {
    const float* q = queries + i * d;
    float* trow = tile + i * en;
    for (std::size_t j = 0; j < en; ++j) {
      const float* e = entities + j * d;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      std::size_t p = 0;
      for (; p + 16 <= d; p += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + p),
                               _mm256_loadu_ps(e + p), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(q + p + 8),
                               _mm256_loadu_ps(e + p + 8), acc1);
      }
      for (; p + 8 <= d; p += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(q + p),
                               _mm256_loadu_ps(e + p), acc0);
      }
      float s = HorizontalSum(_mm256_add_ps(acc0, acc1));
      for (; p < d; ++p) s += q[p] * e[p];
      trow[j] = s;
    }
  }
}

#endif  // METABLINK_SCORE_KERNEL_X86

// Portable int8 dot: plain int32 accumulation — integer arithmetic is
// associative, so any re-ordering (including the SIMD path's) yields the
// same value exactly.
std::int32_t DotInt8Scalar(const std::int8_t* a, const std::int8_t* b,
                           std::size_t d) {
  std::int32_t acc = 0;
  for (std::size_t p = 0; p < d; ++p) {
    acc += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
  }
  return acc;
}

#ifdef METABLINK_SCORE_KERNEL_X86

// 16 int8 lanes per step: sign-extend both operands to int16, multiply and
// pairwise-add into int32 with vpmaddwd. Each madd lane holds the exact sum
// of two int16 products (max magnitude 2 * 127 * 127, far inside int16-pair
// -> int32 range), and the int32 accumulator is exact for any realistic d,
// so the result is bit-identical to DotInt8Scalar.
__attribute__((target("avx2"))) std::int32_t DotInt8Avx2(
    const std::int8_t* a, const std::int8_t* b, std::size_t d) {
  const std::size_t d16 = d & ~std::size_t{15};
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t p = 0; p < d16; p += 16) {
    const __m256i av = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i bv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  std::int32_t sum = _mm_cvtsi128_si32(s);
  for (std::size_t p = d16; p < d; ++p) {
    sum += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
  }
  return sum;
}

#endif  // METABLINK_SCORE_KERNEL_X86

// Portable ADC fallback: one table lookup per (entry, subspace). The adds
// run left-to-right over subspaces — a fixed order, so repeated scans of
// the same codes are bit-identical.
void PqAdcScoresScalar(const float* lut, const std::uint8_t* codes,
                       std::size_t count, std::size_t m_sub, float base,
                       float* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t* c = codes + i * m_sub;
    float s = base;
    for (std::size_t m = 0; m < m_sub; ++m) {
      s += lut[m * 256 + c[m]];
    }
    out[i] = s;
  }
}

#ifdef METABLINK_SCORE_KERNEL_X86

// Eight subspaces per step: load 8 code bytes, widen to int32 lanes, offset
// each lane into its own 256-entry table, and gather the 8 partial scores
// in one vpgatherdps. The vector accumulator folds with HorizontalSum, so
// the summation order differs from the scalar loop (selection-grade, per
// the header contract) but is fixed for the process.
__attribute__((target("avx2,fma"))) void PqAdcScoresAvx2(
    const float* lut, const std::uint8_t* codes, std::size_t count,
    std::size_t m_sub, float base, float* out) {
  const std::size_t m8 = m_sub & ~std::size_t{7};
  const __m256i lane_off =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t* c = codes + i * m_sub;
    __m256 acc = _mm256_setzero_ps();
    std::size_t m = 0;
    for (; m < m8; m += 8) {
      const __m128i c8 = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(c + m));
      const __m256i idx = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_cvtepu8_epi32(c8), lane_off),
          _mm256_set1_epi32(static_cast<int>(m * 256)));
      acc = _mm256_add_ps(acc, _mm256_i32gather_ps(lut, idx, 4));
    }
    float s = base + HorizontalSum(acc);
    for (; m < m_sub; ++m) s += lut[m * 256 + c[m]];
    out[i] = s;
  }
}

#endif  // METABLINK_SCORE_KERNEL_X86

using TileFn = void (*)(const float*, const float*, float*, std::size_t,
                        std::size_t, std::size_t);
using DotInt8Fn = std::int32_t (*)(const std::int8_t*, const std::int8_t*,
                                   std::size_t);

// One-time dispatch: the CPU's capabilities cannot change mid-process, so
// every call (from any thread) sees the same implementation.
TileFn ResolveTileFn() {
#ifdef METABLINK_SCORE_KERNEL_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &ScoreTileAvx2;
  }
#endif
  return &ScoreTileScalar;
}

const TileFn g_tile_fn = ResolveTileFn();

DotInt8Fn ResolveDotInt8Fn() {
#ifdef METABLINK_SCORE_KERNEL_X86
  if (__builtin_cpu_supports("avx2")) {
    return &DotInt8Avx2;
  }
#endif
  return &DotInt8Scalar;
}

const DotInt8Fn g_dot_int8_fn = ResolveDotInt8Fn();

using PqAdcFn = void (*)(const float*, const std::uint8_t*, std::size_t,
                         std::size_t, float, float*);

PqAdcFn ResolvePqAdcFn() {
#ifdef METABLINK_SCORE_KERNEL_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return &PqAdcScoresAvx2;
  }
#endif
  return &PqAdcScoresScalar;
}

const PqAdcFn g_pq_adc_fn = ResolvePqAdcFn();

}  // namespace

void ScoreTileF32(const float* queries, const float* entities, float* tile,
                  std::size_t qn, std::size_t d, std::size_t en) {
  if (qn == 0 || en == 0) return;
  g_tile_fn(queries, entities, tile, qn, d, en);
}

bool ScoreTileUsesSimd() { return g_tile_fn != &ScoreTileScalar; }

std::int32_t DotInt8(const std::int8_t* a, const std::int8_t* b,
                     std::size_t d) {
  return g_dot_int8_fn(a, b, d);
}

bool DotInt8UsesSimd() { return g_dot_int8_fn != &DotInt8Scalar; }

void PqAdcScores(const float* lut, const std::uint8_t* codes,
                 std::size_t count, std::size_t m_sub, float base,
                 float* out) {
  if (count == 0) return;
  g_pq_adc_fn(lut, codes, count, m_sub, base, out);
}

bool PqAdcUsesSimd() { return g_pq_adc_fn != &PqAdcScoresScalar; }

}  // namespace metablink::retrieval::internal
