#ifndef METABLINK_RETRIEVAL_DENSE_INDEX_H_
#define METABLINK_RETRIEVAL_DENSE_INDEX_H_

#include <cstddef>
#include <vector>

#include "kb/entity.h"
#include "tensor/tensor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::retrieval {

/// One retrieval hit.
struct ScoredEntity {
  kb::EntityId id = kb::kInvalidEntityId;
  float score = 0.0f;
};

/// Exact top-k dense retrieval over an entity embedding matrix (stage 1 of
/// the two-stage protocol). Inner-product scores; embeddings are typically
/// L2-normalized so this is cosine ranking. Brute force with optional
/// multi-threaded query batching — exact by construction, which keeps R@64
/// measurements free of ANN artifacts.
class DenseIndex {
 public:
  DenseIndex() = default;

  /// Builds the index. `embeddings` row i is the vector of `ids[i]`.
  /// Pre: embeddings.rows() == ids.size().
  util::Status Build(tensor::Tensor embeddings, std::vector<kb::EntityId> ids);

  std::size_t size() const { return ids_.size(); }
  std::size_t dim() const { return embeddings_.cols(); }
  bool built() const { return !ids_.empty(); }

  /// Top-k by inner product for one query of length dim().
  std::vector<ScoredEntity> TopK(const float* query, std::size_t k) const;

  /// Top-k for every row of `queries` ([n, dim]); parallelized over `pool`
  /// when provided.
  std::vector<std::vector<ScoredEntity>> BatchTopK(
      const tensor::Tensor& queries, std::size_t k,
      util::ThreadPool* pool = nullptr) const;

  /// The raw stored embedding row for position `i` (test/diagnostic use).
  const float* EmbeddingAt(std::size_t i) const {
    return embeddings_.row_data(i);
  }

 private:
  tensor::Tensor embeddings_;
  std::vector<kb::EntityId> ids_;
};

}  // namespace metablink::retrieval

#endif  // METABLINK_RETRIEVAL_DENSE_INDEX_H_
