#ifndef METABLINK_RETRIEVAL_DENSE_INDEX_H_
#define METABLINK_RETRIEVAL_DENSE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kb/entity.h"
#include "tensor/tensor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::util {
class BinaryWriter;
class BinaryReader;
}  // namespace metablink::util

namespace metablink::retrieval {

/// One retrieval hit.
struct ScoredEntity {
  kb::EntityId id = kb::kInvalidEntityId;
  float score = 0.0f;
};

/// Caller-reusable buffers for TopKInto. Reusing one scratch across calls
/// makes the hot selection path allocation-free after the first query.
struct TopKScratch {
  /// Bounded selection heap (at most k+1 live entries).
  std::vector<ScoredEntity> heap;
  /// Per-block score strip used by the single-query scans.
  std::vector<float> scores;
  /// Symmetric-quantized query (int8 path).
  std::vector<std::int8_t> qquery;
  /// Candidate pool surviving the approximate scan, before exact re-scoring.
  std::vector<ScoredEntity> pool;
};

/// Caller-reusable buffers for BatchTopKInto. Each chunk owns one score
/// tile and one selection scratch per query slot; both are sized once for
/// the (query block, entity block) tile shape and then reused for every
/// block of every call, so the hot loop never reallocates.
struct BatchTopKScratch {
  struct Chunk {
    std::vector<TopKScratch> per_query;
    std::vector<float> tile;
  };
  std::vector<Chunk> chunks;
};

/// Exact top-k dense retrieval over an entity embedding matrix (stage 1 of
/// the two-stage protocol). Inner-product scores; embeddings are typically
/// L2-normalized so this is cosine ranking. Brute force — exact by
/// construction, which keeps R@64 measurements free of ANN artifacts — but
/// engineered for throughput: selection uses a bounded heap (no O(N)
/// score materialization or partial_sort), batch scoring is blocked
/// query×entity GEMM tiles for cache locality, and queries parallelize
/// over an optional thread pool.
///
/// An optional int8 symmetric-quantized form (Quantize) serves the same
/// queries at 4× memory bandwidth savings: the full scan runs on integer
/// dot products, then a bounded candidate pool is exactly re-scored in
/// fp32, so the final top-k comes from true fp32 scores.
class DenseIndex {
 public:
  DenseIndex() = default;

  /// Builds the index. `embeddings` row i is the vector of `ids[i]`.
  /// Pre: embeddings.rows() == ids.size(). Drops any previous int8 form.
  util::Status Build(tensor::Tensor embeddings, std::vector<kb::EntityId> ids);

  std::size_t size() const { return ids_.size(); }
  std::size_t dim() const { return embeddings_.cols(); }
  bool built() const { return !ids_.empty(); }
  /// Entity id of each stored row, in row order.
  const std::vector<kb::EntityId>& ids() const { return ids_; }

  /// Top-k by inner product for one query of length dim(), appending the
  /// hits (best first; ties broken by ascending id) to `*out` after
  /// clearing it. Allocation-free when `scratch` and `out` are reused.
  void TopKInto(const float* query, std::size_t k, TopKScratch* scratch,
                std::vector<ScoredEntity>* out) const;

  /// Convenience wrapper around TopKInto with one-shot buffers.
  std::vector<ScoredEntity> TopK(const float* query, std::size_t k) const;

  /// Top-k for every row of `queries` ([n, dim]); parallelized over `pool`
  /// when provided. Scores are computed in blocked query×entity tiles by a
  /// SIMD fp32 kernel; the best (k + margin) candidates per query are then
  /// exactly re-scored with tensor::Dot, so the returned scores are
  /// identical to TopKInto's. Query blocks are distributed to workers via
  /// an atomic work-stealing cursor, and per-worker tiles/heaps come from
  /// `scratch` (sized once per tile shape, reused across calls).
  /// k == 0 returns n empty hit lists without scanning.
  void BatchTopKInto(const tensor::Tensor& queries, std::size_t k,
                     util::ThreadPool* pool, BatchTopKScratch* scratch,
                     std::vector<std::vector<ScoredEntity>>* out) const;

  /// Convenience wrapper around BatchTopKInto with one-shot scratch.
  std::vector<std::vector<ScoredEntity>> BatchTopK(
      const tensor::Tensor& queries, std::size_t k,
      util::ThreadPool* pool = nullptr) const;

  // ---- Int8 symmetric quantization ---------------------------------------

  /// Builds the per-row symmetric int8 form: q[r][j] = round(x[r][j] / s_r)
  /// with s_r = max_j |x[r][j]| / 127. Idempotent; rebuilt by Build.
  void Quantize();
  bool quantized() const { return !q_rows_.empty(); }

  /// Below this row count TopKQuantizedInto dispatches to the exact fp32
  /// scan: small KBs fit in cache, so the int8 path's quantize + pool +
  /// re-score overhead loses to the straight scan (the 4k-entity operating
  /// point regressed ~1.5× before this gate; bench_retrieval pins it).
  static constexpr std::size_t kQuantizedDispatchMinRows = 65536;

  /// Heap bytes of the int8 form (rows + per-row scales); 0 until
  /// Quantize(). The bench's bytes/entity column divides this by size().
  std::size_t QuantizedMemoryBytes() const {
    return q_rows_.size() * sizeof(std::int8_t) +
           q_scales_.size() * sizeof(float);
  }

  /// Top-k via the int8 scan: every entity is scored with an integer dot
  /// product, the best `pool_size` survivors (clamped to [k, size()]) are
  /// exactly re-scored in fp32, and the final top-k is selected from those
  /// fp32 scores — identical output to TopKInto whenever the true top-k
  /// survives the quantized scan (guaranteed when pool_size == size()).
  /// Pre: Quantize() was called.
  void TopKQuantizedInto(const float* query, std::size_t k,
                         std::size_t pool_size, TopKScratch* scratch,
                         std::vector<ScoredEntity>* out) const;

  // ---- Persistence --------------------------------------------------------

  /// Serializes the index (fp32 rows, ids, and the int8 form if built), so
  /// a served KB reloads without re-encoding entities.
  void Save(util::BinaryWriter* writer) const;
  util::Status Load(util::BinaryReader* reader);
  /// Writes a framed checkpoint container with one "index" section.
  util::Status SaveToFile(const std::string& path) const;
  /// Loads either a framed container or the legacy headerless "INXD"
  /// stream (files written before the store subsystem existed).
  util::Status LoadFromFile(const std::string& path);

  /// The raw stored embedding row for position `i` (test/diagnostic use).
  const float* EmbeddingAt(std::size_t i) const {
    return embeddings_.row_data(i);
  }

  // ---- Row access for layered indexes (ClusteredIndex) -------------------

  /// Int8 row at position `i`. Pre: quantized().
  const std::int8_t* QuantizedRowAt(std::size_t i) const {
    return q_rows_.data() + i * embeddings_.cols();
  }
  /// Dequantization scale of row `i`. Pre: quantized().
  float QuantizedScaleAt(std::size_t i) const { return q_scales_[i]; }

  /// Symmetric int8 quantization of one query (the same scheme as the
  /// stored rows), written into `*out` (resized to dim()). Returns the
  /// query's dequantization scale (0 for an all-zero query).
  float QuantizeQueryInto(const float* query,
                          std::vector<std::int8_t>* out) const;

 private:
  /// Offers entities [e_begin, e_begin + count) with the given scores to
  /// the bounded selection heap in `scratch`.
  void OfferBlock(const float* scores, std::size_t e_begin,
                  std::size_t count, std::size_t k,
                  TopKScratch* scratch) const;

  /// Scores queries [q0, q0 + block) against every entity and selects each
  /// query's exact top-k into `out` (approximate fp32 tile scan, bounded
  /// position pool, exact re-score). One block of BatchTopKInto.
  void BatchBlock(const tensor::Tensor& queries, std::size_t q0,
                  std::size_t k, BatchTopKScratch::Chunk* chunk,
                  std::vector<std::vector<ScoredEntity>>* out) const;

  /// Sorts the heap contents into `*out` (best first).
  static void DrainHeap(TopKScratch* scratch, std::vector<ScoredEntity>* out);

  tensor::Tensor embeddings_;
  std::vector<kb::EntityId> ids_;
  /// Int8 rows, row-major [size, dim]; empty until Quantize().
  std::vector<std::int8_t> q_rows_;
  /// Per-row dequantization scales.
  std::vector<float> q_scales_;
};

}  // namespace metablink::retrieval

#endif  // METABLINK_RETRIEVAL_DENSE_INDEX_H_
