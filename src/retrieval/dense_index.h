#ifndef METABLINK_RETRIEVAL_DENSE_INDEX_H_
#define METABLINK_RETRIEVAL_DENSE_INDEX_H_

#include <cstddef>
#include <vector>

#include "kb/entity.h"
#include "tensor/tensor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace metablink::retrieval {

/// One retrieval hit.
struct ScoredEntity {
  kb::EntityId id = kb::kInvalidEntityId;
  float score = 0.0f;
};

/// Caller-reusable buffers for TopKInto. Reusing one scratch across calls
/// makes the hot selection path allocation-free after the first query.
struct TopKScratch {
  /// Bounded selection heap (at most k+1 live entries).
  std::vector<ScoredEntity> heap;
  /// Blocked score tile used by BatchTopK.
  std::vector<float> scores;
};

/// Exact top-k dense retrieval over an entity embedding matrix (stage 1 of
/// the two-stage protocol). Inner-product scores; embeddings are typically
/// L2-normalized so this is cosine ranking. Brute force — exact by
/// construction, which keeps R@64 measurements free of ANN artifacts — but
/// engineered for throughput: selection uses a bounded heap (no O(N)
/// score materialization or partial_sort), batch scoring is blocked
/// query×entity GEMM tiles for cache locality, and queries parallelize
/// over an optional thread pool.
class DenseIndex {
 public:
  DenseIndex() = default;

  /// Builds the index. `embeddings` row i is the vector of `ids[i]`.
  /// Pre: embeddings.rows() == ids.size().
  util::Status Build(tensor::Tensor embeddings, std::vector<kb::EntityId> ids);

  std::size_t size() const { return ids_.size(); }
  std::size_t dim() const { return embeddings_.cols(); }
  bool built() const { return !ids_.empty(); }

  /// Top-k by inner product for one query of length dim(), appending the
  /// hits (best first; ties broken by ascending id) to `*out` after
  /// clearing it. Allocation-free when `scratch` and `out` are reused.
  void TopKInto(const float* query, std::size_t k, TopKScratch* scratch,
                std::vector<ScoredEntity>* out) const;

  /// Convenience wrapper around TopKInto with one-shot buffers.
  std::vector<ScoredEntity> TopK(const float* query, std::size_t k) const;

  /// Top-k for every row of `queries` ([n, dim]); parallelized over `pool`
  /// when provided. Scores are computed in blocked query×entity tiles.
  std::vector<std::vector<ScoredEntity>> BatchTopK(
      const tensor::Tensor& queries, std::size_t k,
      util::ThreadPool* pool = nullptr) const;

  /// The raw stored embedding row for position `i` (test/diagnostic use).
  const float* EmbeddingAt(std::size_t i) const {
    return embeddings_.row_data(i);
  }

 private:
  /// Offers entities [e_begin, e_begin + count) with the given scores to
  /// the bounded selection heap in `scratch`.
  void OfferBlock(const float* scores, std::size_t e_begin,
                  std::size_t count, std::size_t k,
                  TopKScratch* scratch) const;

  /// Sorts the heap contents into `*out` (best first).
  static void DrainHeap(TopKScratch* scratch, std::vector<ScoredEntity>* out);

  tensor::Tensor embeddings_;
  std::vector<kb::EntityId> ids_;
};

}  // namespace metablink::retrieval

#endif  // METABLINK_RETRIEVAL_DENSE_INDEX_H_
