#ifndef METABLINK_RETRIEVAL_SCORE_KERNEL_H_
#define METABLINK_RETRIEVAL_SCORE_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace metablink::retrieval::internal {

/// Fills tile[i * en + j] = <queries row i, entities row j> for a qn×en
/// inner-product tile over row-major fp32 panels (query rows stride d,
/// entity rows stride d). Every element is written by assignment, never
/// accumulated, so callers do not pre-zero the tile.
///
/// Selection-grade numerics: scores are accumulated in fp32 with a
/// SIMD-friendly order that differs from tensor::Dot's double-chain sum.
/// Callers that surface scores re-score their survivors with tensor::Dot
/// (the same approximate-scan → exact-re-score protocol as the int8 path),
/// so returned scores carry no kernel-dependent error. The kernel is
/// deterministic on a given machine: one implementation is selected at
/// process start and used for every call, so serial and pooled scans
/// produce identical tiles.
void ScoreTileF32(const float* queries, const float* entities, float* tile,
                  std::size_t qn, std::size_t d, std::size_t en);

/// True when the runtime-dispatched AVX2+FMA tile kernel is active (x86
/// with AVX2/FMA support); false on the portable scalar fallback.
bool ScoreTileUsesSimd();

/// Exact int8 inner product: sum of a[p] * b[p] widened to int32. Both the
/// SIMD and scalar implementations compute the identical integer (widening
/// products cannot overflow int16*2 -> int32 for any d <= 2^16), so the
/// quantized candidate pool is bit-identical whichever kernel is dispatched
/// — the same contract the clustered-index probe and TopKQuantized rely on.
std::int32_t DotInt8(const std::int8_t* a, const std::int8_t* b,
                     std::size_t d);

/// True when the runtime-dispatched AVX2 int8 dot kernel is active; false
/// on the portable scalar fallback.
bool DotInt8UsesSimd();

/// ADC (asymmetric distance computation) strip for a product-quantized
/// inverted list: out[i] = base + sum_m lut[m * 256 + codes[i * m_sub + m]],
/// where `lut` holds the per-query partial inner products of each subspace
/// codebook entry and `base` is the query·centroid term shared by every
/// entry of the list. Codes are 8-bit (256 entries per subspace table).
///
/// Selection-grade numerics, same contract as ScoreTileF32: the AVX2 path
/// (table gathers + one vector accumulator) sums in a different order than
/// the scalar loop, so the two may differ in final-ulp rounding — callers
/// re-score survivors with tensor::Dot before surfacing scores. One
/// implementation is dispatched per process, so serial, pooled, and
/// sharded scans over the same codes produce bit-identical strips.
void PqAdcScores(const float* lut, const std::uint8_t* codes,
                 std::size_t count, std::size_t m_sub, float base,
                 float* out);

/// True when the runtime-dispatched AVX2 gather ADC kernel is active; false
/// on the portable scalar fallback.
bool PqAdcUsesSimd();

}  // namespace metablink::retrieval::internal

#endif  // METABLINK_RETRIEVAL_SCORE_KERNEL_H_
