#include "retrieval/dense_index.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "util/string_util.h"

namespace metablink::retrieval {

namespace {

// Strict total order on hits: higher score first, ascending id on ties.
// With distinct ids this is a total order, so heap selection and the old
// full partial_sort pick exactly the same k hits in the same order.
bool Better(const ScoredEntity& a, const ScoredEntity& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

// Entities scored per tile; 512 rows of a 128-dim float matrix is 256 KiB,
// sized to stay L2-resident while a query block streams over it.
constexpr std::size_t kEntityBlock = 512;
// Queries per tile in BatchTopK.
constexpr std::size_t kQueryBlock = 8;

}  // namespace

util::Status DenseIndex::Build(tensor::Tensor embeddings,
                               std::vector<kb::EntityId> ids) {
  if (embeddings.rows() != ids.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "embedding rows (%zu) != id count (%zu)", embeddings.rows(),
        ids.size()));
  }
  if (ids.empty()) {
    return util::Status::InvalidArgument("cannot build an empty index");
  }
  embeddings_ = std::move(embeddings);
  ids_ = std::move(ids);
  return util::Status::OK();
}

void DenseIndex::OfferBlock(const float* scores, std::size_t e_begin,
                            std::size_t count, std::size_t k,
                            TopKScratch* scratch) const {
  // Bounded min-heap under Better: the root is the worst retained hit, so
  // a candidate only costs O(log k) when it actually displaces something.
  std::vector<ScoredEntity>& heap = scratch->heap;
  for (std::size_t i = 0; i < count; ++i) {
    const ScoredEntity cand{ids_[e_begin + i], scores[i]};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), Better);
    } else if (Better(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), Better);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), Better);
    }
  }
}

void DenseIndex::DrainHeap(TopKScratch* scratch,
                           std::vector<ScoredEntity>* out) {
  std::sort_heap(scratch->heap.begin(), scratch->heap.end(), Better);
  out->assign(scratch->heap.begin(), scratch->heap.end());
  scratch->heap.clear();
}

void DenseIndex::TopKInto(const float* query, std::size_t k,
                          TopKScratch* scratch,
                          std::vector<ScoredEntity>* out) const {
  out->clear();
  k = std::min(k, ids_.size());
  if (k == 0) return;
  scratch->heap.clear();
  const std::size_t d = embeddings_.cols();
  const std::size_t total = ids_.size();
  scratch->scores.resize(std::min(kEntityBlock, total));
  for (std::size_t e0 = 0; e0 < total; e0 += kEntityBlock) {
    const std::size_t count = std::min(kEntityBlock, total - e0);
    for (std::size_t i = 0; i < count; ++i) {
      scratch->scores[i] =
          tensor::Dot(query, embeddings_.row_data(e0 + i), d);
    }
    OfferBlock(scratch->scores.data(), e0, count, k, scratch);
  }
  DrainHeap(scratch, out);
}

std::vector<ScoredEntity> DenseIndex::TopK(const float* query,
                                           std::size_t k) const {
  TopKScratch scratch;
  std::vector<ScoredEntity> out;
  TopKInto(query, k, &scratch, &out);
  return out;
}

std::vector<std::vector<ScoredEntity>> DenseIndex::BatchTopK(
    const tensor::Tensor& queries, std::size_t k,
    util::ThreadPool* pool) const {
  const std::size_t nq = queries.rows();
  std::vector<std::vector<ScoredEntity>> out(nq);
  if (nq == 0) return out;
  const std::size_t d = embeddings_.cols();
  const std::size_t total = ids_.size();
  const std::size_t kk = std::min(k, total);
  const std::size_t nblocks = (nq + kQueryBlock - 1) / kQueryBlock;

  // One query×entity score tile per block, computed as a small transposed
  // GEMM so each entity panel is read once per query block instead of once
  // per query.
  auto process_block = [&](std::size_t q0, std::vector<TopKScratch>& scr,
                           std::vector<float>& tile) {
    const std::size_t qn = std::min(kQueryBlock, nq - q0);
    for (std::size_t qi = 0; qi < qn; ++qi) scr[qi].heap.clear();
    for (std::size_t e0 = 0; e0 < total; e0 += kEntityBlock) {
      const std::size_t en = std::min(kEntityBlock, total - e0);
      tile.assign(qn * en, 0.0f);
      tensor::GemmTransposeBRaw(queries.row_data(q0),
                                embeddings_.row_data(e0), tile.data(), qn,
                                d, en);
      for (std::size_t qi = 0; qi < qn; ++qi) {
        OfferBlock(tile.data() + qi * en, e0, en, kk, &scr[qi]);
      }
    }
    for (std::size_t qi = 0; qi < qn; ++qi) {
      DrainHeap(&scr[qi], &out[q0 + qi]);
    }
  };

  if (pool != nullptr && nblocks >= 2) {
    pool->ParallelForChunks(
        nblocks, 0,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          std::vector<TopKScratch> scr(kQueryBlock);
          std::vector<float> tile;
          for (std::size_t b = begin; b < end; ++b) {
            process_block(b * kQueryBlock, scr, tile);
          }
        });
  } else {
    std::vector<TopKScratch> scr(kQueryBlock);
    std::vector<float> tile;
    for (std::size_t b = 0; b < nblocks; ++b) {
      process_block(b * kQueryBlock, scr, tile);
    }
  }
  return out;
}

}  // namespace metablink::retrieval
