#include "retrieval/dense_index.h"

#include <algorithm>

#include "util/string_util.h"

namespace metablink::retrieval {

util::Status DenseIndex::Build(tensor::Tensor embeddings,
                               std::vector<kb::EntityId> ids) {
  if (embeddings.rows() != ids.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "embedding rows (%zu) != id count (%zu)", embeddings.rows(),
        ids.size()));
  }
  if (ids.empty()) {
    return util::Status::InvalidArgument("cannot build an empty index");
  }
  embeddings_ = std::move(embeddings);
  ids_ = std::move(ids);
  return util::Status::OK();
}

std::vector<ScoredEntity> DenseIndex::TopK(const float* query,
                                           std::size_t k) const {
  k = std::min(k, ids_.size());
  // Max-heap-free selection: keep a sorted partial list via nth_element on
  // the full score array (n is modest; exactness matters more than speed).
  std::vector<ScoredEntity> scored(ids_.size());
  const std::size_t d = embeddings_.cols();
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    scored[i].id = ids_[i];
    scored[i].score = tensor::Dot(query, embeddings_.row_data(i), d);
  }
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const ScoredEntity& a, const ScoredEntity& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;  // deterministic tie-break
                    });
  scored.resize(k);
  return scored;
}

std::vector<std::vector<ScoredEntity>> DenseIndex::BatchTopK(
    const tensor::Tensor& queries, std::size_t k,
    util::ThreadPool* pool) const {
  std::vector<std::vector<ScoredEntity>> out(queries.rows());
  auto run = [&](std::size_t i) { out[i] = TopK(queries.row_data(i), k); };
  if (pool != nullptr) {
    pool->ParallelFor(queries.rows(), run);
  } else {
    for (std::size_t i = 0; i < queries.rows(); ++i) run(i);
  }
  return out;
}

}  // namespace metablink::retrieval
