#include "retrieval/dense_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "retrieval/score_kernel.h"
#include "store/checkpoint.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace metablink::retrieval {

namespace {

// Strict total order on hits: higher score first, ascending id on ties.
// With distinct ids this is a total order, so heap selection and the old
// full partial_sort pick exactly the same k hits in the same order.
bool Better(const ScoredEntity& a, const ScoredEntity& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

// Entities scored per tile; 512 rows of a 128-dim float matrix is 256 KiB,
// sized to stay L2-resident while a query block streams over it.
constexpr std::size_t kEntityBlock = 512;
// Queries per tile in BatchTopK. 16 query rows of d=128 floats are 8 KiB —
// small enough to stay L1-resident while the entity panel streams past,
// and twice the panel reuse of the previous 8-query tile.
constexpr std::size_t kQueryBlock = 16;

// Candidates beyond k kept per query by the approximate fp32 tile scan
// before exact re-scoring. The fp32 kernel's error relative to the double
// Dot sum is ~1 fp32 ulp of the score, so a true top-k member can only be
// displaced below the pool boundary by candidates within that error band —
// a 16-deep margin puts the boundary far outside it.
constexpr std::size_t kRescoreMargin = 16;

constexpr std::uint32_t kIndexTag = 0x44584e49u;  // "INXD"

// Bounded-heap selection keyed by row POSITION (ascending position breaks
// exact ties), shared by the batch scan and the int8 scan so both pools
// are insertion-order independent: under a strict total order the surviving
// pool is the global top-`cap` regardless of visit order.
void OfferPositions(const float* scores, std::size_t e_begin,
                    std::size_t count, std::size_t cap,
                    std::vector<ScoredEntity>* pool) {
  for (std::size_t i = 0; i < count; ++i) {
    const ScoredEntity cand{static_cast<kb::EntityId>(e_begin + i),
                            scores[i]};
    if (pool->size() < cap) {
      pool->push_back(cand);
      std::push_heap(pool->begin(), pool->end(), Better);
    } else if (Better(cand, pool->front())) {
      std::pop_heap(pool->begin(), pool->end(), Better);
      pool->back() = cand;
      std::push_heap(pool->begin(), pool->end(), Better);
    }
  }
}

}  // namespace

util::Status DenseIndex::Build(tensor::Tensor embeddings,
                               std::vector<kb::EntityId> ids) {
  if (embeddings.rows() != ids.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "embedding rows (%zu) != id count (%zu)", embeddings.rows(),
        ids.size()));
  }
  if (ids.empty()) {
    return util::Status::InvalidArgument("cannot build an empty index");
  }
  embeddings_ = std::move(embeddings);
  ids_ = std::move(ids);
  q_rows_.clear();
  q_scales_.clear();
  return util::Status::OK();
}

void DenseIndex::OfferBlock(const float* scores, std::size_t e_begin,
                            std::size_t count, std::size_t k,
                            TopKScratch* scratch) const {
  // Bounded min-heap under Better: the root is the worst retained hit, so
  // a candidate only costs O(log k) when it actually displaces something.
  std::vector<ScoredEntity>& heap = scratch->heap;
  for (std::size_t i = 0; i < count; ++i) {
    const ScoredEntity cand{ids_[e_begin + i], scores[i]};
    if (heap.size() < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), Better);
    } else if (Better(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), Better);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), Better);
    }
  }
}

void DenseIndex::DrainHeap(TopKScratch* scratch,
                           std::vector<ScoredEntity>* out) {
  std::sort_heap(scratch->heap.begin(), scratch->heap.end(), Better);
  out->assign(scratch->heap.begin(), scratch->heap.end());
  scratch->heap.clear();
}

void DenseIndex::TopKInto(const float* query, std::size_t k,
                          TopKScratch* scratch,
                          std::vector<ScoredEntity>* out) const {
  out->clear();
  // Pinned edge cases: k > size() clamps to a full ranking; k == 0 (after
  // clamping an empty request) returns no hits without touching the data.
  k = std::min(k, ids_.size());
  if (k == 0) return;
  scratch->heap.clear();
  const std::size_t d = embeddings_.cols();
  const std::size_t total = ids_.size();
  scratch->scores.resize(std::min(kEntityBlock, total));
  for (std::size_t e0 = 0; e0 < total; e0 += kEntityBlock) {
    const std::size_t count = std::min(kEntityBlock, total - e0);
    for (std::size_t i = 0; i < count; ++i) {
      scratch->scores[i] =
          tensor::Dot(query, embeddings_.row_data(e0 + i), d);
    }
    OfferBlock(scratch->scores.data(), e0, count, k, scratch);
  }
  DrainHeap(scratch, out);
}

std::vector<ScoredEntity> DenseIndex::TopK(const float* query,
                                           std::size_t k) const {
  TopKScratch scratch;
  std::vector<ScoredEntity> out;
  TopKInto(query, k, &scratch, &out);
  return out;
}

void DenseIndex::BatchBlock(const tensor::Tensor& queries, std::size_t q0,
                            std::size_t k, BatchTopKScratch::Chunk* chunk,
                            std::vector<std::vector<ScoredEntity>>* out)
    const {
  const std::size_t nq = queries.rows();
  const std::size_t d = embeddings_.cols();
  const std::size_t total = ids_.size();
  const std::size_t qn = std::min(kQueryBlock, nq - q0);
  // Sized once per tile shape: both buffers depend only on the block
  // constants, so a reused scratch never grows again after its first block.
  if (chunk->per_query.size() < kQueryBlock) {
    chunk->per_query.resize(kQueryBlock);
  }
  if (chunk->tile.size() < kQueryBlock * kEntityBlock) {
    chunk->tile.resize(kQueryBlock * kEntityBlock);
  }
  const std::size_t pool_cap = std::min(total, k + kRescoreMargin);
  for (std::size_t qi = 0; qi < qn; ++qi) {
    chunk->per_query[qi].pool.clear();
  }
  // Phase 1: approximate fp32 tile scan. Each entity panel is read once
  // per query block instead of once per query, the tile is written by
  // assignment (never zero-filled), and selection keeps the best
  // (k + margin) row positions per query.
  for (std::size_t e0 = 0; e0 < total; e0 += kEntityBlock) {
    const std::size_t en = std::min(kEntityBlock, total - e0);
    internal::ScoreTileF32(queries.row_data(q0), embeddings_.row_data(e0),
                           chunk->tile.data(), qn, d, en);
    for (std::size_t qi = 0; qi < qn; ++qi) {
      OfferPositions(chunk->tile.data() + qi * en, e0, en, pool_cap,
                     &chunk->per_query[qi].pool);
    }
  }
  // Phase 2: exact re-score of each query's surviving positions with the
  // double-chain Dot, then final top-k selection — returned scores carry
  // no tile-kernel error and match TopKInto exactly.
  for (std::size_t qi = 0; qi < qn; ++qi) {
    TopKScratch& scr = chunk->per_query[qi];
    scr.heap.clear();
    scr.scores.resize(1);
    for (const ScoredEntity& cand : scr.pool) {
      const std::size_t position = cand.id;
      scr.scores[0] =
          tensor::Dot(queries.row_data(q0 + qi), embeddings_.row_data(position),
                      d);
      OfferBlock(scr.scores.data(), position, 1, k, &scr);
    }
    DrainHeap(&scr, &(*out)[q0 + qi]);
  }
}

void DenseIndex::BatchTopKInto(
    const tensor::Tensor& queries, std::size_t k, util::ThreadPool* pool,
    BatchTopKScratch* scratch,
    std::vector<std::vector<ScoredEntity>>* out) const {
  const std::size_t nq = queries.rows();
  out->resize(nq);
  if (nq == 0) return;
  const std::size_t kk = std::min(k, ids_.size());
  if (kk == 0) {
    // Pinned edge case: k == 0 asks for nothing — skip the scan entirely.
    for (auto& hits : *out) hits.clear();
    return;
  }
  if (nq == 1) {
    // A 1-row tile has no cross-query panel reuse to exploit; the direct
    // single-query path skips the tile entirely.
    if (scratch->chunks.empty()) scratch->chunks.resize(1);
    if (scratch->chunks[0].per_query.empty()) {
      scratch->chunks[0].per_query.resize(1);
    }
    TopKInto(queries.row_data(0), kk, &scratch->chunks[0].per_query[0],
             &(*out)[0]);
    return;
  }
  const std::size_t nblocks = (nq + kQueryBlock - 1) / kQueryBlock;

  if (pool != nullptr && nblocks >= 2) {
    // Work-stealing over query blocks: workers pull the next unclaimed
    // block from an atomic cursor, so a straggler block cannot idle the
    // other workers the way a static partition can. Each worker owns one
    // scratch chunk; block results land in disjoint `out` rows, and the
    // per-block computation is identical to the serial path, so stealing
    // order never changes the output.
    const std::size_t workers = std::min(pool->num_threads(), nblocks);
    if (scratch->chunks.size() < workers) scratch->chunks.resize(workers);
    std::atomic<std::size_t> next_block{0};
    pool->ParallelForChunks(
        workers, workers,
        [&](std::size_t chunk_id, std::size_t, std::size_t) {
          BatchTopKScratch::Chunk& chunk = scratch->chunks[chunk_id];
          for (;;) {
            const std::size_t b =
                next_block.fetch_add(1, std::memory_order_relaxed);
            if (b >= nblocks) break;
            BatchBlock(queries, b * kQueryBlock, kk, &chunk, out);
          }
        });
  } else {
    if (scratch->chunks.empty()) scratch->chunks.resize(1);
    for (std::size_t b = 0; b < nblocks; ++b) {
      BatchBlock(queries, b * kQueryBlock, kk, &scratch->chunks[0], out);
    }
  }
}

std::vector<std::vector<ScoredEntity>> DenseIndex::BatchTopK(
    const tensor::Tensor& queries, std::size_t k,
    util::ThreadPool* pool) const {
  BatchTopKScratch scratch;
  std::vector<std::vector<ScoredEntity>> out;
  BatchTopKInto(queries, k, pool, &scratch, &out);
  return out;
}

void DenseIndex::Quantize() {
  const std::size_t n = ids_.size();
  const std::size_t d = embeddings_.cols();
  q_rows_.assign(n * d, 0);
  q_scales_.assign(n, 0.0f);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = embeddings_.row_data(r);
    float max_abs = 0.0f;
    for (std::size_t j = 0; j < d; ++j) {
      max_abs = std::max(max_abs, std::fabs(row[j]));
    }
    if (max_abs == 0.0f) continue;  // all-zero row quantizes to zeros
    const float scale = max_abs / 127.0f;
    q_scales_[r] = scale;
    const float inv = 1.0f / scale;
    std::int8_t* qrow = q_rows_.data() + r * d;
    for (std::size_t j = 0; j < d; ++j) {
      const float q = std::nearbyint(row[j] * inv);
      qrow[j] = static_cast<std::int8_t>(
          std::clamp(q, -127.0f, 127.0f));
    }
  }
}

float DenseIndex::QuantizeQueryInto(const float* query,
                                    std::vector<std::int8_t>* out) const {
  const std::size_t d = embeddings_.cols();
  float qmax = 0.0f;
  for (std::size_t j = 0; j < d; ++j) {
    qmax = std::max(qmax, std::fabs(query[j]));
  }
  out->resize(d);
  if (qmax == 0.0f) {
    std::fill(out->begin(), out->end(), static_cast<std::int8_t>(0));
    return 0.0f;
  }
  const float qscale = qmax / 127.0f;
  const float inv = 1.0f / qscale;
  for (std::size_t j = 0; j < d; ++j) {
    (*out)[j] = static_cast<std::int8_t>(
        std::clamp(std::nearbyint(query[j] * inv), -127.0f, 127.0f));
  }
  return qscale;
}

void DenseIndex::TopKQuantizedInto(const float* query, std::size_t k,
                                   std::size_t pool_size,
                                   TopKScratch* scratch,
                                   std::vector<ScoredEntity>* out) const {
  METABLINK_CHECK(quantized()) << "call Quantize() before TopKQuantizedInto";
  // Small KBs lose on the int8 path: the quantize/pool/re-score fixed cost
  // dwarfs the bandwidth it saves when every fp32 row already fits in
  // cache. Below the threshold the fp32 scan is both faster and exact, so
  // dispatch there — output is identical because the re-scored quantized
  // result equals the exact scan whenever the true top-k survives the
  // pool, and the bench pins the crossover.
  if (ids_.size() < kQuantizedDispatchMinRows) {
    TopKInto(query, k, scratch, out);
    return;
  }
  out->clear();
  const std::size_t total = ids_.size();
  const std::size_t d = embeddings_.cols();
  k = std::min(k, total);
  if (k == 0) return;
  pool_size = std::clamp(pool_size, k, total);

  // Symmetric per-query quantization, same scheme as the rows.
  const float qscale = QuantizeQueryInto(query, &scratch->qquery);

  // Phase 1: integer scan. Approximate scores select a candidate pool of
  // row POSITIONS (so phase 2 can address the fp32 rows directly) via the
  // same bounded-heap selection the fp32 path uses.
  scratch->heap.clear();
  scratch->scores.resize(std::min(kEntityBlock, total));
  const std::int8_t* qq = scratch->qquery.data();
  std::vector<ScoredEntity>& pool = scratch->pool;
  pool.clear();
  for (std::size_t e0 = 0; e0 < total; e0 += kEntityBlock) {
    const std::size_t count = std::min(kEntityBlock, total - e0);
    for (std::size_t i = 0; i < count; ++i) {
      // Exact int8 dot (AVX2 when available): the approximate scores — and
      // hence the surviving pool — are bit-identical to the scalar scan.
      const std::int8_t* row = q_rows_.data() + (e0 + i) * d;
      const std::int32_t acc = internal::DotInt8(qq, row, d);
      scratch->scores[i] =
          static_cast<float>(acc) * qscale * q_scales_[e0 + i];
    }
    OfferPositions(scratch->scores.data(), e0, count, pool_size, &pool);
  }

  // Phase 2: exact fp32 re-score of the surviving positions, then final
  // top-k selection — the returned scores carry no quantization error.
  scratch->heap.clear();
  scratch->scores.resize(1);
  for (const ScoredEntity& cand : pool) {
    const std::size_t position = cand.id;
    scratch->scores[0] =
        tensor::Dot(query, embeddings_.row_data(position), d);
    OfferBlock(scratch->scores.data(), position, 1, k, scratch);
  }
  DrainHeap(scratch, out);
}

void DenseIndex::Save(util::BinaryWriter* writer) const {
  writer->WriteU32(kIndexTag);
  writer->WriteU64(ids_.size());
  writer->WriteU64(embeddings_.cols());
  writer->WriteU32Vector(ids_);
  writer->WriteFloatVector(embeddings_.data());
  writer->WriteU32(quantized() ? 1u : 0u);
  if (quantized()) {
    writer->WriteByteVector(q_rows_);
    writer->WriteFloatVector(q_scales_);
  }
}

util::Status DenseIndex::Load(util::BinaryReader* reader) {
  std::uint32_t tag = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&tag));
  if (tag != kIndexTag) {
    return util::Status::InvalidArgument("not a DenseIndex snapshot");
  }
  std::uint64_t n = 0, d = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&n));
  METABLINK_RETURN_IF_ERROR(reader->ReadU64(&d));
  std::vector<kb::EntityId> ids;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32Vector(&ids));
  std::vector<float> flat;
  METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&flat));
  if (ids.size() != n || flat.size() != n * d || n == 0) {
    return util::Status::InvalidArgument("corrupt DenseIndex snapshot");
  }
  std::uint32_t has_quant = 0;
  METABLINK_RETURN_IF_ERROR(reader->ReadU32(&has_quant));
  std::vector<std::int8_t> q_rows;
  std::vector<float> q_scales;
  if (has_quant != 0) {
    METABLINK_RETURN_IF_ERROR(reader->ReadByteVector(&q_rows));
    METABLINK_RETURN_IF_ERROR(reader->ReadFloatVector(&q_scales));
    if (q_rows.size() != n * d || q_scales.size() != n) {
      return util::Status::InvalidArgument(
          "corrupt DenseIndex quantized payload");
    }
  }
  embeddings_ = tensor::Tensor(static_cast<std::size_t>(n),
                               static_cast<std::size_t>(d), std::move(flat));
  ids_ = std::move(ids);
  q_rows_ = std::move(q_rows);
  q_scales_ = std::move(q_scales);
  return util::Status::OK();
}

util::Status DenseIndex::SaveToFile(const std::string& path) const {
  store::CheckpointWriter ckpt;
  Save(ckpt.AddSection("index"));
  return ckpt.WriteToFile(path);
}

util::Status DenseIndex::LoadFromFile(const std::string& path) {
  auto reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  std::vector<std::uint8_t> bytes;
  METABLINK_RETURN_IF_ERROR(reader->ReadBytes(reader->Remaining(), &bytes));
  if (bytes.size() >= 4) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, bytes.data(), 4);
    if (magic == store::kCheckpointMagic) {
      auto ckpt = store::CheckpointReader::Parse(std::move(bytes));
      if (!ckpt.ok()) return ckpt.status();
      auto section = ckpt->Section("index");
      if (!section.ok()) return section.status();
      return Load(&*section);
    }
  }
  // Legacy headerless format: the raw "INXD" stream.
  util::BinaryReader legacy(std::move(bytes));
  return Load(&legacy);
}

}  // namespace metablink::retrieval
