// Clustered-retrieval benchmark: measures the IVF index against the
// exhaustive scans it replaces and writes BENCH_retrieval.json (argv
// override; --smoke shrinks every dimension for the CI smoke stage).
//
// Per scale (4k / 100k / 1M entities, mixture-of-Gaussians embeddings so
// the data has cluster structure for a coarse probe to exploit):
//   build ms:        seeded k-means + inverted-list construction;
//   latency ms/q:    exhaustive fp32 TopKInto, exhaustive int8
//                    TopKQuantizedInto, clustered probe at the default
//                    nprobe, and the sharded probe over a thread pool;
//   R@64 vs nprobe:  mean overlap with the exact fp32 top-64 across a
//                    sweep of nprobe values up to probe-all.
//
// Always-on correctness gates (exit 1 on violation, any scale):
//   - probe-all (nprobe == num_clusters) is bit-identical to the
//     exhaustive fp32 scan — ids, scores, and tie order;
//   - the same holds for the PQ scan with a full re-score pool;
//   - the sharded probe is bit-identical to the serial probe, and the
//     KB-sharded index (ShardedIndex, 4 shards) is bit-identical to the
//     single index at equal nprobe, serial and pool-parallel;
//   - the int8 entry point dispatches to the exact scan below the
//     crossover size (bit-identical results there);
//   - rebuilding with the same seed yields byte-identical serialization;
//   - R@64 >= 0.98 at the default nprobe on the gate scale;
//   - PQ marginal bytes/entity (the M code bytes) <= 25% of int8's d+4.
// Full mode additionally gates the headline numbers: at 100k entities the
// clustered probe, at its cheapest nprobe meeting R@64 >= 0.98 (the
// operating point a deployment would pick from the sweep), must be >= 5x
// faster than the exhaustive int8 scan; at 100k+ the PQ index total
// bytes/entity (codes + codebooks) must be <= 25% of int8's, with an
// operating point at R@64 >= 0.98 and, at 1M, ms/query <= 1.5x the
// non-PQ clustered operating point.
//
// --pq-smoke runs the same reduced scale as --smoke; it exists as a
// separately named CI stage so a PQ gate failure is attributed to the PQ
// subsystem rather than the base retrieval stage.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "retrieval/clustered_index.h"
#include "retrieval/dense_index.h"
#include "retrieval/sharded_index.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

using namespace metablink;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Mixture-of-Gaussians rows: well-separated centers with isotropic noise
// (same recipe as the recall tests — uniform random data has no cluster
// structure for an IVF probe to exploit).
tensor::Tensor MixtureEmbeddings(std::size_t n, std::size_t d,
                                 std::size_t components, float noise,
                                 std::uint64_t seed,
                                 tensor::Tensor* centers_out) {
  util::Rng rng(seed);
  tensor::Tensor centers(components, d);
  for (float& v : centers.data()) v = rng.NextFloat(-1.0f, 1.0f);
  tensor::Tensor t(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % components;
    for (std::size_t j = 0; j < d; ++j) {
      t.at(i, j) =
          centers.at(c, j) + noise * static_cast<float>(rng.NextGaussian());
    }
  }
  if (centers_out != nullptr) *centers_out = std::move(centers);
  return t;
}

std::vector<kb::EntityId> Iota(std::size_t n) {
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<kb::EntityId>(i);
  return ids;
}

double Overlap(const std::vector<retrieval::ScoredEntity>& truth,
               const std::vector<retrieval::ScoredEntity>& got) {
  if (truth.empty()) return 1.0;
  std::size_t hit = 0;
  for (const auto& t : truth)
    for (const auto& g : got)
      if (g.id == t.id) {
        ++hit;
        break;
      }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

bool SameHits(const std::vector<retrieval::ScoredEntity>& a,
              const std::vector<retrieval::ScoredEntity>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].id != b[i].id || a[i].score != b[i].score) return false;
  return true;
}

struct SweepPoint {
  std::size_t nprobe = 0;
  double recall = 0.0;
  double ms_per_query = 0.0;
};

struct ScaleResult {
  std::size_t entities = 0;
  std::size_t dim = 0;
  std::size_t num_clusters = 0;
  std::size_t default_nprobe = 0;
  double build_ms = 0.0;
  double fp32_ms_per_query = 0.0;
  double int8_ms_per_query = 0.0;
  double clustered_ms_per_query = 0.0;
  double sharded_ms_per_query = 0.0;
  double recall_at_default = 0.0;
  double speedup_vs_int8 = 0.0;
  /// Cheapest sweep point meeting the R@64 >= 0.98 target — the operating
  /// point an IVF deployment would actually pick. The default nprobe
  /// (ceil(sqrt(kc))) is deliberately conservative; on clusterable data
  /// recall saturates well below it.
  SweepPoint operating;
  double operating_speedup_vs_int8 = 0.0;
  std::vector<SweepPoint> sweep;
  // PQ (product-quantized residual) form of the same clustered index.
  double pq_build_ms = 0.0;
  double pq_ms_per_query = 0.0;  // at the default nprobe
  double pq_recall_at_default = 0.0;
  SweepPoint pq_operating;
  std::vector<SweepPoint> pq_sweep;
  // Scan-storage cost per entity. fp32/int8 are marginal (per-row) costs;
  // pq_bytes is the TOTAL amortized cost including the shared codebooks
  // (which dominate at small n and vanish at 1M), pq_code_bytes the
  // marginal M code bytes.
  double fp32_bytes_per_entity = 0.0;
  double int8_bytes_per_entity = 0.0;
  double pq_bytes_per_entity = 0.0;
  double pq_code_bytes_per_entity = 0.0;
  // KB-sharded (ShardedIndex) probe over the PQ form, pool-parallel.
  std::size_t sharded_index_shards = 0;
  double sharded_index_ms_per_query = 0.0;
};

bool g_ok = true;

void Gate(bool ok, const char* what) {
  std::printf("  gate %-46s %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) g_ok = false;
}

constexpr std::size_t kTopK = 64;

ScaleResult RunScale(std::size_t n, std::size_t d, std::size_t num_queries,
                     std::size_t rounds, util::ThreadPool* pool,
                     bool check_determinism) {
  ScaleResult r;
  r.entities = n;
  r.dim = d;
  const std::size_t k = std::min<std::size_t>(kTopK, n);

  // World: one mixture component per ~250 rows so the true neighbors of a
  // query concentrate in a handful of coarse cells.
  const std::size_t components =
      std::max<std::size_t>(16, std::min<std::size_t>(4096, n / 250));
  tensor::Tensor centers;
  tensor::Tensor rows =
      MixtureEmbeddings(n, d, components, 0.10f, 0xB0B0 + n, &centers);
  retrieval::DenseIndex base;
  if (!base.Build(std::move(rows), Iota(n)).ok()) {
    g_ok = false;
    return r;
  }
  base.Quantize();

  // Queries: near component centers, like real mentions near real entities.
  util::Rng qrng(0xDADA + n);
  tensor::Tensor queries(num_queries, d);
  for (std::size_t i = 0; i < num_queries; ++i) {
    const std::size_t c = static_cast<std::size_t>(
        qrng.NextUint64(components));
    for (std::size_t j = 0; j < d; ++j)
      queries.at(i, j) = centers.at(c, j) +
                         0.10f * static_cast<float>(qrng.NextGaussian());
  }

  // ---- Build ---------------------------------------------------------------
  retrieval::ClusteredIndex clustered;
  {
    const auto t0 = Clock::now();
    if (!clustered.Build(base, {}, pool).ok()) {
      g_ok = false;
      return r;
    }
    r.build_ms = MsSince(t0);
  }
  r.num_clusters = clustered.num_clusters();
  r.default_nprobe = clustered.default_nprobe();

  // ---- PQ build + storage cost ----------------------------------------------
  retrieval::ClusteredIndex pq;
  {
    retrieval::ClusteredIndexOptions popts;
    popts.use_pq = true;
    const auto t0 = Clock::now();
    if (!pq.Build(base, popts, pool).ok()) {
      g_ok = false;
      return r;
    }
    r.pq_build_ms = MsSince(t0);
  }
  r.fp32_bytes_per_entity = static_cast<double>(d * sizeof(float));
  r.int8_bytes_per_entity =
      static_cast<double>(base.QuantizedMemoryBytes()) /
      static_cast<double>(n);
  r.pq_bytes_per_entity =
      static_cast<double>(pq.PqMemoryBytes()) / static_cast<double>(n);
  r.pq_code_bytes_per_entity = static_cast<double>(pq.pq_m());
  Gate(r.pq_code_bytes_per_entity <= 0.25 * r.int8_bytes_per_entity,
       "pq marginal bytes/entity <= 25% of int8");

  if (check_determinism) {
    retrieval::ClusteredIndex again;
    if (!again.Build(base, {}, nullptr).ok()) g_ok = false;
    util::BinaryWriter wa, wb;
    clustered.Save(&wa);
    again.Save(&wb);
    Gate(wa.buffer() == wb.buffer(),
         "same-seed rebuild is byte-identical (serial vs pooled)");
    retrieval::ClusteredIndexOptions popts;
    popts.use_pq = true;
    retrieval::ClusteredIndex pq_again;
    if (!pq_again.Build(base, popts, nullptr).ok()) g_ok = false;
    util::BinaryWriter pa, pb;
    pq.Save(&pa);
    pq_again.Save(&pb);
    Gate(pa.buffer() == pb.buffer(),
         "same-seed PQ rebuild is byte-identical (serial vs pooled)");
  }

  // ---- Exhaustive baselines + ground truth ---------------------------------
  retrieval::TopKScratch flat_scratch;
  std::vector<std::vector<retrieval::ScoredEntity>> truth(num_queries);
  {
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < rounds; ++it)
      for (std::size_t i = 0; i < num_queries; ++i)
        base.TopKInto(queries.row_data(i), k, &flat_scratch, &truth[i]);
    r.fp32_ms_per_query =
        MsSince(t0) / static_cast<double>(rounds * num_queries);
  }
  // Pool width matched to the clustered probe's default re-score pool so
  // the comparison isolates the scan, not the re-score budget.
  const std::size_t int8_pool = std::max<std::size_t>(2 * k, k + 64);
  std::vector<retrieval::ScoredEntity> hits;
  {
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < rounds; ++it)
      for (std::size_t i = 0; i < num_queries; ++i)
        base.TopKQuantizedInto(queries.row_data(i), k, int8_pool,
                               &flat_scratch, &hits);
    r.int8_ms_per_query =
        MsSince(t0) / static_cast<double>(rounds * num_queries);
  }
  if (n < retrieval::DenseIndex::kQuantizedDispatchMinRows) {
    // Below the crossover the int8 entry point must have answered with the
    // exact scan (the small-KB regression fix): bit-identical to fp32.
    bool same = true;
    for (std::size_t i = 0; i < num_queries; ++i) {
      base.TopKQuantizedInto(queries.row_data(i), k, int8_pool,
                             &flat_scratch, &hits);
      if (!SameHits(truth[i], hits)) same = false;
    }
    Gate(same, "int8 entry dispatches to exact below crossover");
  }

  // ---- Probe-all parity gate ------------------------------------------------
  retrieval::ClusteredScratch cscratch;
  {
    // Exact parity holds on the fp32 scan path (on a quantized base the
    // probe pools int8 candidates, and a bounded pool is allowed to miss),
    // so gate it on a dedicated fp32 index — capped at 4096 rows to keep
    // the check cheap at the million-entity scale.
    bool parity = true;
    retrieval::DenseIndex fp32_base;
    tensor::Tensor rows2 = MixtureEmbeddings(std::min<std::size_t>(n, 4096), d,
                                             components, 0.10f, 0xB0B0 + n,
                                             nullptr);
    const std::size_t n2 = rows2.rows();
    if (!fp32_base.Build(std::move(rows2), Iota(n2)).ok()) parity = false;
    retrieval::ClusteredIndex exact;
    if (parity && !exact.Build(fp32_base, {}, pool).ok()) parity = false;
    // PQ with a full re-score pool: every probed row survives to the exact
    // fp32 re-score, so probe-all must match the exhaustive scan too.
    bool pq_parity = parity;
    retrieval::ClusteredIndex pq_exact;
    {
      retrieval::ClusteredIndexOptions popts;
      popts.use_pq = true;
      popts.rescore_pool = n2;
      if (pq_parity && !pq_exact.Build(fp32_base, popts, pool).ok())
        pq_parity = false;
    }
    retrieval::TopKScratch ref_scratch;
    std::vector<retrieval::ScoredEntity> ref;
    for (std::size_t i = 0; i < num_queries && (parity || pq_parity); ++i) {
      fp32_base.TopKInto(queries.row_data(i), k, &ref_scratch, &ref);
      if (parity) {
        exact.TopKInto(queries.row_data(i), k, exact.num_clusters(),
                       &cscratch, &hits);
        parity = SameHits(ref, hits);
      }
      if (pq_parity) {
        pq_exact.TopKInto(queries.row_data(i), k, pq_exact.num_clusters(),
                          &cscratch, &hits);
        pq_parity = SameHits(ref, hits);
      }
    }
    Gate(parity, "probe-all == exhaustive fp32 (ids, scores, ties)");
    Gate(pq_parity, "pq probe-all full-pool == exhaustive fp32");
  }

  // ---- nprobe sweep ---------------------------------------------------------
  std::vector<std::size_t> nprobes = {1, 2, 4, 8, 16, 32, 64,
                                      r.default_nprobe, r.num_clusters};
  std::sort(nprobes.begin(), nprobes.end());
  nprobes.erase(std::unique(nprobes.begin(), nprobes.end()), nprobes.end());
  for (std::size_t np : nprobes) {
    if (np == 0 || np > r.num_clusters) continue;
    SweepPoint pt;
    pt.nprobe = np;
    double overlap = 0.0;
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < rounds; ++it)
      for (std::size_t i = 0; i < num_queries; ++i) {
        clustered.TopKInto(queries.row_data(i), k, np, &cscratch, &hits);
        if (it == 0) overlap += Overlap(truth[i], hits);
      }
    pt.ms_per_query = MsSince(t0) / static_cast<double>(rounds * num_queries);
    pt.recall = overlap / static_cast<double>(num_queries);
    r.sweep.push_back(pt);
    if (np == r.default_nprobe) {
      r.clustered_ms_per_query = pt.ms_per_query;
      r.recall_at_default = pt.recall;
    }
  }
  r.speedup_vs_int8 = r.clustered_ms_per_query > 0.0
                          ? r.int8_ms_per_query / r.clustered_ms_per_query
                          : 0.0;
  for (const SweepPoint& pt : r.sweep)
    if (pt.recall >= 0.98 &&
        (r.operating.nprobe == 0 ||
         pt.ms_per_query < r.operating.ms_per_query))
      r.operating = pt;
  if (r.operating.nprobe != 0 && r.operating.ms_per_query > 0.0)
    r.operating_speedup_vs_int8 =
        r.int8_ms_per_query / r.operating.ms_per_query;

  // ---- PQ nprobe sweep ------------------------------------------------------
  for (std::size_t np : nprobes) {
    if (np == 0 || np > r.num_clusters) continue;
    SweepPoint pt;
    pt.nprobe = np;
    double overlap = 0.0;
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < rounds; ++it)
      for (std::size_t i = 0; i < num_queries; ++i) {
        pq.TopKInto(queries.row_data(i), k, np, &cscratch, &hits);
        if (it == 0) overlap += Overlap(truth[i], hits);
      }
    pt.ms_per_query = MsSince(t0) / static_cast<double>(rounds * num_queries);
    pt.recall = overlap / static_cast<double>(num_queries);
    r.pq_sweep.push_back(pt);
    if (np == r.default_nprobe) {
      r.pq_ms_per_query = pt.ms_per_query;
      r.pq_recall_at_default = pt.recall;
    }
  }
  for (const SweepPoint& pt : r.pq_sweep)
    if (pt.recall >= 0.98 &&
        (r.pq_operating.nprobe == 0 ||
         pt.ms_per_query < r.pq_operating.ms_per_query))
      r.pq_operating = pt;
  Gate(r.pq_operating.nprobe != 0, "pq reaches R@64 >= 0.98 at some nprobe");

  // ---- Sharded probe: bit-for-bit + timing ----------------------------------
  {
    retrieval::ShardedScratch sh;
    std::vector<retrieval::ScoredEntity> serial;
    bool same = true;
    for (std::size_t i = 0; i < num_queries; ++i) {
      clustered.TopKInto(queries.row_data(i), k, 0, &cscratch, &serial);
      clustered.TopKSharded(queries.row_data(i), k, 0, pool, &sh, &hits);
      if (!SameHits(serial, hits)) same = false;
    }
    Gate(same, "sharded probe == serial probe bit-for-bit");
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < rounds; ++it)
      for (std::size_t i = 0; i < num_queries; ++i)
        clustered.TopKSharded(queries.row_data(i), k, 0, pool, &sh, &hits);
    r.sharded_ms_per_query =
        MsSince(t0) / static_cast<double>(rounds * num_queries);
  }

  // ---- KB-sharded index: bit-for-bit + timing -------------------------------
  {
    r.sharded_index_shards = 4;
    retrieval::ShardedIndex shards_fp32, shards_pq;
    retrieval::ShardedIndexScratch sh;
    bool same = true;
    if (!shards_fp32.Build(&clustered, r.sharded_index_shards).ok() ||
        !shards_pq.Build(&pq, r.sharded_index_shards).ok()) {
      same = false;
    }
    std::vector<retrieval::ScoredEntity> serial;
    for (std::size_t i = 0; i < num_queries && same; ++i) {
      clustered.TopKInto(queries.row_data(i), k, 0, &cscratch, &serial);
      shards_fp32.TopKInto(queries.row_data(i), k, 0, &sh, &hits);
      same = same && SameHits(serial, hits);
      shards_fp32.TopKParallel(queries.row_data(i), k, 0, pool, &sh, &hits);
      same = same && SameHits(serial, hits);
      pq.TopKInto(queries.row_data(i), k, 0, &cscratch, &serial);
      shards_pq.TopKInto(queries.row_data(i), k, 0, &sh, &hits);
      same = same && SameHits(serial, hits);
      shards_pq.TopKParallel(queries.row_data(i), k, 0, pool, &sh, &hits);
      same = same && SameHits(serial, hits);
    }
    Gate(same, "KB-sharded (4) == single index bit-for-bit");
    const auto t0 = Clock::now();
    for (std::size_t it = 0; it < rounds; ++it)
      for (std::size_t i = 0; i < num_queries; ++i)
        shards_pq.TopKParallel(queries.row_data(i), k, 0, pool, &sh, &hits);
    r.sharded_index_ms_per_query =
        MsSince(t0) / static_cast<double>(rounds * num_queries);
  }

  std::printf(
      "[%7zu x %zu]  build %8.1f ms  kc %4zu  nprobe %3zu  |  "
      "fp32 %8.3f  int8 %8.3f  clustered %8.3f  sharded %8.3f ms/q  |  "
      "R@%zu %.4f  speedup_vs_int8 %.2fx\n",
      n, d, r.build_ms, r.num_clusters, r.default_nprobe,
      r.fp32_ms_per_query, r.int8_ms_per_query, r.clustered_ms_per_query,
      r.sharded_ms_per_query, k, r.recall_at_default, r.speedup_vs_int8);
  std::printf("    operating point: nprobe %zu  R@%zu %.4f  %8.3f ms/q  "
              "speedup_vs_int8 %.2fx\n",
              r.operating.nprobe, k, r.operating.recall,
              r.operating.ms_per_query, r.operating_speedup_vs_int8);
  std::printf(
      "    pq: build %8.1f ms  M %zu  |  %8.3f ms/q  R@%zu %.4f @ default  "
      "|  op nprobe %zu  R %.4f  %8.3f ms/q  |  kb-sharded(4) %8.3f ms/q\n",
      r.pq_build_ms, pq.pq_m(), r.pq_ms_per_query, k, r.pq_recall_at_default,
      r.pq_operating.nprobe, r.pq_operating.recall,
      r.pq_operating.ms_per_query, r.sharded_index_ms_per_query);
  std::printf(
      "    bytes/entity: fp32 %.1f  int8 %.1f  pq_total %.2f  "
      "pq_marginal %.1f  (pq %.1f%% of int8)\n",
      r.fp32_bytes_per_entity, r.int8_bytes_per_entity, r.pq_bytes_per_entity,
      r.pq_code_bytes_per_entity,
      r.int8_bytes_per_entity > 0.0
          ? 100.0 * r.pq_bytes_per_entity / r.int8_bytes_per_entity
          : 0.0);
  for (const SweepPoint& pt : r.sweep)
    std::printf("    nprobe %4zu  R@%zu %.4f  %8.3f ms/q\n", pt.nprobe, k,
                pt.recall, pt.ms_per_query);
  for (const SweepPoint& pt : r.pq_sweep)
    std::printf("    pq nprobe %4zu  R@%zu %.4f  %8.3f ms/q\n", pt.nprobe, k,
                pt.recall, pt.ms_per_query);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool pq_smoke = false;
  std::string out_path = "BENCH_retrieval.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--pq-smoke") == 0) {
      smoke = true;
      pq_smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::size_t dim = smoke ? 32 : 64;
  std::vector<std::size_t> scales =
      smoke ? std::vector<std::size_t>{4000}
            : std::vector<std::size_t>{4000, 100000, 1000000};
  const std::size_t num_queries = smoke ? 16 : 32;
  util::ThreadPool pool;  // hardware concurrency

  std::printf("=== Clustered retrieval benchmark (dim %zu, %zu queries%s) "
              "===\n\n",
              dim, num_queries,
              pq_smoke ? ", pq-smoke" : (smoke ? ", smoke" : ""));

  std::vector<ScaleResult> results;
  for (std::size_t n : scales) {
    // Enough repetitions for a stable per-query time at small scales; one
    // pass at a million entities.
    const std::size_t rounds =
        std::max<std::size_t>(1, std::min<std::size_t>(20, 200000 / n));
    results.push_back(
        RunScale(n, dim, num_queries, rounds, &pool,
                 /*check_determinism=*/n == scales.front()));
    std::printf("\n");
  }

  // Headline gates: recall on every scale; the 5x-vs-int8 latency gate on
  // the 100k scale (full mode only — the smoke scale is too small for the
  // probe to amortize the centroid pass, and CI boxes are noisy).
  const ScaleResult* gate_scale = nullptr;
  for (const ScaleResult& r : results)
    if (r.entities == 100000) gate_scale = &r;
  for (const ScaleResult& r : results)
    Gate(r.recall_at_default >= 0.98,
         "R@64 >= 0.98 at default nprobe");
  if (gate_scale != nullptr)
    Gate(gate_scale->operating_speedup_vs_int8 >= 5.0,
         "clustered >= 5x exhaustive int8 @ 100k (R@64 >= 0.98)");
  // PQ memory gate: at 100k+ the shared codebooks amortize away and the
  // TOTAL PQ bytes/entity must undercut int8 by 4x. The latency guardrail
  // binds at the memory-bound 1M scale.
  for (const ScaleResult& r : results) {
    if (r.entities >= 100000)
      Gate(r.pq_bytes_per_entity <= 0.25 * r.int8_bytes_per_entity,
           "pq total bytes/entity <= 25% of int8 @ 100k+");
    if (r.entities >= 1000000)
      Gate(r.pq_operating.nprobe != 0 && r.operating.nprobe != 0 &&
               r.pq_operating.ms_per_query <=
                   1.5 * r.operating.ms_per_query,
           "pq operating ms/q <= 1.5x clustered operating @ 1M");
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"dim\": %zu, \"queries\": %zu, \"k\": %zu, "
               "\"smoke\": %s},\n",
               dim, num_queries, kTopK, smoke ? "true" : "false");
  std::fprintf(f, "  \"scales\": [\n");
  for (std::size_t s = 0; s < results.size(); ++s) {
    const ScaleResult& r = results[s];
    std::fprintf(f,
                 "    {\"entities\": %zu, \"num_clusters\": %zu, "
                 "\"default_nprobe\": %zu, \"build_ms\": %.1f,\n"
                 "     \"fp32_ms_per_query\": %.4f, "
                 "\"int8_ms_per_query\": %.4f, "
                 "\"clustered_ms_per_query\": %.4f, "
                 "\"sharded_ms_per_query\": %.4f,\n"
                 "     \"recall_at_64\": %.4f, \"speedup_vs_int8\": %.2f,\n"
                 "     \"operating_point\": {\"nprobe\": %zu, "
                 "\"recall\": %.4f, \"ms_per_query\": %.4f, "
                 "\"speedup_vs_int8\": %.2f},\n"
                 "     \"recall_vs_nprobe\": [",
                 r.entities, r.num_clusters, r.default_nprobe, r.build_ms,
                 r.fp32_ms_per_query, r.int8_ms_per_query,
                 r.clustered_ms_per_query, r.sharded_ms_per_query,
                 r.recall_at_default, r.speedup_vs_int8, r.operating.nprobe,
                 r.operating.recall, r.operating.ms_per_query,
                 r.operating_speedup_vs_int8);
    for (std::size_t i = 0; i < r.sweep.size(); ++i)
      std::fprintf(f, "%s{\"nprobe\": %zu, \"recall\": %.4f, "
                   "\"ms_per_query\": %.4f}",
                   i == 0 ? "" : ", ", r.sweep[i].nprobe, r.sweep[i].recall,
                   r.sweep[i].ms_per_query);
    std::fprintf(f,
                 "],\n     \"bytes_per_entity\": {\"fp32\": %.1f, "
                 "\"int8\": %.1f, \"pq_total\": %.3f, "
                 "\"pq_marginal\": %.1f},\n"
                 "     \"pq\": {\"build_ms\": %.1f, "
                 "\"ms_per_query\": %.4f, \"recall_at_64\": %.4f,\n"
                 "            \"operating_point\": {\"nprobe\": %zu, "
                 "\"recall\": %.4f, \"ms_per_query\": %.4f},\n"
                 "            \"recall_vs_nprobe\": [",
                 r.fp32_bytes_per_entity, r.int8_bytes_per_entity,
                 r.pq_bytes_per_entity, r.pq_code_bytes_per_entity,
                 r.pq_build_ms, r.pq_ms_per_query, r.pq_recall_at_default,
                 r.pq_operating.nprobe, r.pq_operating.recall,
                 r.pq_operating.ms_per_query);
    for (std::size_t i = 0; i < r.pq_sweep.size(); ++i)
      std::fprintf(f, "%s{\"nprobe\": %zu, \"recall\": %.4f, "
                   "\"ms_per_query\": %.4f}",
                   i == 0 ? "" : ", ", r.pq_sweep[i].nprobe,
                   r.pq_sweep[i].recall, r.pq_sweep[i].ms_per_query);
    std::fprintf(f,
                 "]},\n     \"sharded_index\": {\"num_shards\": %zu, "
                 "\"ms_per_query\": %.4f}}%s\n",
                 r.sharded_index_shards, r.sharded_index_ms_per_query,
                 s + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gates_ok\": %s\n", g_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return g_ok ? 0 : 1;
}
