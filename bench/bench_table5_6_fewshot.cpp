// Reproduces Tables V and VI: few-shot entity linking on the four test
// domains. For every method the paper compares, trains the corresponding
// configuration and reports R@64 / N.Acc / U.Acc on the held-out test split.
//
// Paper reference values (U.Acc): see the "reference" column, copied from
// Tables V and VI. Absolute numbers differ (synthetic corpus, feature
// encoders); the reproduction target is the METHOD ORDERING per domain:
//   NameMatching < BLINK(Seed) ~ BLINK(Syn) < BLINK(Syn+Seed) ~ DL4EL
//     < MetaBLINK(Syn+Seed) <= MetaBLINK(Syn*+Seed).

#include <cstdio>
#include <vector>

#include "experiment_common.h"
#include "util/string_util.h"

using namespace metablink;

namespace {
struct PaperRef {
  const char* domain;
  const char* name_matching;
  const char* blink_seed;
  const char* blink_syn;
  const char* blink_syn_seed;
  const char* dl4el;
  const char* meta_syn;
  const char* meta_syn_star;
};
// U.Acc values from Tables V and VI.
const PaperRef kRefs[] = {
    {"forgotten_realms", "paper U.Acc 19.64", "paper 20.82", "paper 25.74",
     "paper 36.11", "paper 36.09", "paper 38.82", "paper 39.14"},
    {"lego", "paper U.Acc 12.37", "paper 24.02", "paper 20.83", "paper 36.85",
     "paper 36.65", "paper 39.04", "paper 39.59"},
    {"star_trek", "paper U.Acc 12.12", "paper 8.00", "paper 11.85",
     "paper 19.23", "paper 19.26", "paper 21.08", "paper 21.27"},
    {"yugioh", "paper U.Acc 7.88", "paper 13.20", "paper 12.74",
     "paper 21.32", "paper 20.79", "paper 22.82", "paper 23.30"},
};
}  // namespace

int main() {
  bench::ExperimentWorld world(bench::ExperimentScale(),
                               bench::ExperimentSeed());
  for (const PaperRef& ref : kRefs) {
    bench::DomainContext ctx = world.MakeDomainContext(ref.domain);
    const auto& seed = ctx.split.train;
    const auto& test = ctx.split.test;
    std::vector<data::LinkingExample> syn_seed = ctx.syn;
    syn_seed.insert(syn_seed.end(), seed.begin(), seed.end());

    bench::PrintHeader(std::string("Table V/VI: ") + ref.domain +
                       util::StrFormat(" (syn pairs=%zu, test=%zu)",
                                       ctx.syn.size(), test.size()));
    bench::PrintScalarRow("Name Matching", "-",
                          bench::RunNameMatching(world, ref.domain, test),
                          ref.name_matching);
    bench::PrintRow("BLINK", "Seed",
                    bench::RunBlink(world, ref.domain, seed, test),
                    ref.blink_seed);
    bench::PrintRow("BLINK", "Syn",
                    bench::RunBlink(world, ref.domain, ctx.syn, test),
                    ref.blink_syn);
    bench::PrintRow("BLINK", "Syn+Seed",
                    bench::RunBlink(world, ref.domain, syn_seed, test),
                    ref.blink_syn_seed);
    bench::PrintRow("DL4EL", "Syn+Seed",
                    bench::RunDl4el(world, ref.domain, syn_seed, test),
                    ref.dl4el);
    bench::PrintRow("MetaBLINK", "Syn+Seed",
                    bench::RunMetaBlink(world, ref.domain, ctx.syn, seed,
                                        test),
                    ref.meta_syn);
    bench::PrintRow("MetaBLINK", "Syn*+Seed",
                    bench::RunMetaBlink(world, ref.domain, ctx.syn_star, seed,
                                        test),
                    ref.meta_syn_star);
  }
  return 0;
}
