// google-benchmark microbenchmarks for the substrates: autodiff ops,
// embedding-bag forward/backward, dense retrieval top-k, tokenizer +
// feature hashing, ROUGE, and the meta reweighting step.

#include <benchmark/benchmark.h>

#include "data/generator.h"
#include "model/bi_encoder.h"
#include "retrieval/dense_index.h"
#include "tensor/graph.h"
#include "text/feature_hashing.h"
#include "text/rouge.h"
#include "text/tokenizer.h"
#include "train/meta_trainer.h"
#include "util/rng.h"

namespace {

using namespace metablink;

void BM_MatMul(benchmark::State& state) {
  const std::size_t n = state.range(0);
  util::Rng rng(1);
  tensor::ParameterStore store;
  tensor::Parameter* w = store.CreateXavier("w", n, n, &rng);
  tensor::Tensor x(n, n);
  for (float& v : x.data()) v = rng.NextFloat(-1, 1);
  for (auto _ : state) {
    tensor::Graph g;
    auto out = g.MatMul(g.Input(x), g.Param(w));
    benchmark::DoNotOptimize(g.value(out).data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_EmbeddingBagForwardBackward(benchmark::State& state) {
  const std::size_t bags = state.range(0);
  util::Rng rng(2);
  tensor::ParameterStore store;
  tensor::Parameter* table = store.CreateEmbedding("t", 16384, 64, 0.1f, &rng);
  std::vector<std::vector<std::uint32_t>> bag_ids(bags);
  for (auto& bag : bag_ids) {
    for (int i = 0; i < 300; ++i) {
      bag.push_back(static_cast<std::uint32_t>(rng.NextUint64(16384)));
    }
  }
  for (auto _ : state) {
    tensor::Graph g;
    auto loss = g.Mean(g.Tanh(g.EmbeddingBagMean(table, bag_ids)));
    store.ZeroGrads();
    g.Backward(loss);
    benchmark::DoNotOptimize(table->grad.data().data());
  }
  state.SetItemsProcessed(state.iterations() * bags * 300);
}
BENCHMARK(BM_EmbeddingBagForwardBackward)->Arg(8)->Arg(32);

void BM_RetrievalTopK(benchmark::State& state) {
  const std::size_t n = state.range(0);
  util::Rng rng(3);
  tensor::Tensor emb(n, 64);
  for (float& v : emb.data()) v = rng.NextFloat(-1, 1);
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<kb::EntityId>(i);
  retrieval::DenseIndex index;
  (void)index.Build(std::move(emb), std::move(ids));
  std::vector<float> q(64);
  for (float& v : q) v = rng.NextFloat(-1, 1);
  for (auto _ : state) {
    auto top = index.TopK(q.data(), 64);
    benchmark::DoNotOptimize(top.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RetrievalTopK)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_TokenizeAndHash(benchmark::State& state) {
  text::Tokenizer tokenizer;
  text::FeatureHasher hasher;
  const std::string doc =
      "the curse of the golden master is the fourth episode of the third "
      "season which was aired on april sixteen and features the player";
  for (auto _ : state) {
    auto tokens = tokenizer.Tokenize(doc);
    auto ids = hasher.HashTokens(tokens, 7);
    benchmark::DoNotOptimize(ids.data());
  }
  state.SetItemsProcessed(state.iterations() * 25);
}
BENCHMARK(BM_TokenizeAndHash);

void BM_Rouge1(benchmark::State& state) {
  std::vector<std::string> a = {"the", "fourth", "episode", "of", "season"};
  std::vector<std::string> b = {"fourth", "episode"};
  for (auto _ : state) {
    auto s = text::RougeN(b, a, 1);
    benchmark::DoNotOptimize(s.f1);
  }
}
BENCHMARK(BM_Rouge1);

void BM_MetaReweightStep(benchmark::State& state) {
  const std::size_t batch = state.range(0);
  data::GeneratorOptions gopts;
  gopts.seed = 4;
  gopts.shared_vocab_size = 300;
  gopts.domain_vocab_size = 150;
  data::ZeshelLikeGenerator gen(gopts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "d";
  specs[0].num_entities = 100;
  specs[0].num_examples = 200;
  auto corpus = gen.Generate(specs);
  model::BiEncoderConfig cfg;
  util::Rng rng(5);
  model::BiEncoder model(cfg, &rng);
  const auto& ex = corpus->ExamplesIn("d");
  std::vector<data::LinkingExample> syn(ex.begin(), ex.begin() + batch);
  std::vector<data::LinkingExample> seed(ex.begin() + batch,
                                         ex.begin() + batch + 16);
  const kb::KnowledgeBase* kb = &corpus->kb;
  model::BiEncoder* m = &model;
  train::MetaReweightTrainer meta(
      train::MetaTrainOptions{}, model.params(),
      [m, kb](tensor::Graph* g, const std::vector<data::LinkingExample>& b) {
        return m->InBatchLoss(g, b, *kb);
      });
  for (auto _ : state) {
    auto w = meta.Step(syn, seed);
    benchmark::DoNotOptimize(w->data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MetaReweightStep)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
