// Reproduces Table VIII: the "gap" between the general domain and each test
// domain, measured as the U.Acc improvement from fine-tuning the
// general-domain BLINK on 500 in-domain samples. The paper uses this gap to
// explain why MetaBLINK helps more on Lego/YuGiOh (large gap) than on
// Forgotten Realms/Star Trek (small gap).
//
// This bench builds its own corpus variant with enough in-domain examples
// for the 500-sample fine-tuning split.

#include <cstdio>

#include "experiment_common.h"

using namespace metablink;

namespace {
struct PaperRef {
  const char* domain;
  double paper_gap;
};
const PaperRef kRefs[] = {
    {"forgotten_realms", 3.36},
    {"star_trek", 2.55},
    {"lego", 6.67},
    {"yugioh", 7.47},
};
}  // namespace

int main() {
  const double scale = bench::ExperimentScale();
  // Enlarge test-domain example pools so 500 fine-tuning samples exist.
  data::GeneratorOptions gopts;
  gopts.seed = bench::ExperimentSeed();
  auto specs = data::ZeshelLikeGenerator::PaperDomains(scale);
  for (auto& s : specs) {
    for (const auto& t : data::ZeshelLikeGenerator::TestDomainNames()) {
      if (s.name == t) s.num_examples = 800;
    }
  }
  data::ZeshelLikeGenerator generator(gopts);
  auto corpus_result = generator.Generate(specs);
  if (!corpus_result.ok()) {
    std::fprintf(stderr, "%s\n", corpus_result.status().ToString().c_str());
    return 1;
  }

  // Wrap in an ExperimentWorld-compatible flow: reuse the runner helpers by
  // constructing a world and swapping its corpus is not possible, so run
  // the pipelines directly here.
  std::printf("=== Table VIII: domain gap (U.Acc of BLINK vs BLINK+FT500) ===\n");
  std::printf("%-20s %8s %8s %8s   %s\n", "domain", "BLINK", "BLINK+FT",
              "GAP", "paper gap");

  const data::Corpus& corpus = *corpus_result;
  std::vector<data::LinkingExample> general;
  for (const auto& d : data::ZeshelLikeGenerator::TrainDomainNames()) {
    const auto& ex = corpus.ExamplesIn(d);
    general.insert(general.end(), ex.begin(), ex.end());
  }

  core::PipelineConfig config;
  config.seed = bench::ExperimentSeed() ^ 0xBEEF;

  // Train the general model once and checkpoint it; each domain restores it
  // for the base evaluation and for the 500-sample fine-tune.
  const char* ckpt = "/tmp/metablink_table8_general";
  {
    core::MetaBlinkPipeline base(config);
    auto s = base.TrainSupervised(corpus.kb, general);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (auto save = base.Save(ckpt); !save.ok()) {
      std::fprintf(stderr, "%s\n", save.ToString().c_str());
      return 1;
    }
  }

  for (const PaperRef& ref : kRefs) {
    const auto& all = corpus.ExamplesIn(ref.domain);
    const std::size_t ft_n = std::min<std::size_t>(500, all.size() / 2);
    std::vector<data::LinkingExample> ft(all.begin(), all.begin() + ft_n);
    std::vector<data::LinkingExample> test(all.begin() + ft_n, all.end());

    // BLINK trained on general data only.
    core::MetaBlinkPipeline base(config);
    if (auto s = base.Load(ckpt); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto r_base = base.Evaluate(corpus.kb, ref.domain, test);

    // The general model fine-tuned on 500 in-domain samples.
    core::MetaBlinkPipeline tuned(config);
    if (auto s = tuned.Load(ckpt); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto s2 = tuned.TrainSupervised(corpus.kb, ft);
    if (!s2.ok()) {
      std::fprintf(stderr, "%s\n", s2.ToString().c_str());
      return 1;
    }
    auto r_tuned = tuned.Evaluate(corpus.kb, ref.domain, test);

    const double base_acc = 100.0 * r_base->unnormalized_acc;
    const double tuned_acc = 100.0 * r_tuned->unnormalized_acc;
    std::printf("%-20s %8.2f %8.2f %8.2f   paper %.2f\n", ref.domain,
                base_acc, tuned_acc, tuned_acc - base_acc, ref.paper_gap);
  }
  std::printf(
      "\nexpected shape: gap(lego), gap(yugioh) > gap(forgotten_realms), "
      "gap(star_trek)\n");
  return 0;
}
