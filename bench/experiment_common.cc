#include "experiment_common.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace metablink::bench {

double ExperimentScale() {
  const char* env = std::getenv("METABLINK_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.5;
}

std::uint64_t ExperimentSeed() {
  const char* env = std::getenv("METABLINK_SEED");
  if (env != nullptr) return std::strtoull(env, nullptr, 10);
  return 42;
}

data::Corpus BuildPaperCorpus(double scale, std::uint64_t seed) {
  data::GeneratorOptions opts;
  opts.seed = seed;
  data::ZeshelLikeGenerator generator(opts);
  auto corpus =
      generator.Generate(data::ZeshelLikeGenerator::PaperDomains(scale));
  METABLINK_CHECK(corpus.ok()) << corpus.status();
  return std::move(*corpus);
}

ExperimentWorld::ExperimentWorld(double scale, std::uint64_t seed)
    : seed_(seed), corpus_(BuildPaperCorpus(scale, seed)) {}

core::PipelineConfig ExperimentWorld::DefaultConfig() const {
  core::PipelineConfig config;
  config.seed = seed_ ^ 0xBEEF;
  return config;
}

std::unique_ptr<core::MetaBlinkPipeline> ExperimentWorld::MakePipeline()
    const {
  auto pipeline = std::make_unique<core::MetaBlinkPipeline>(DefaultConfig());
  auto status = pipeline->TrainRewriter(
      corpus_, data::ZeshelLikeGenerator::TrainDomainNames());
  METABLINK_CHECK(status.ok()) << status;
  return pipeline;
}

DomainContext ExperimentWorld::MakeDomainContext(const std::string& domain) {
  DomainContext ctx;
  ctx.domain = domain;
  ctx.split = data::MakeFewShotSplit(corpus_.ExamplesIn(domain), 50, 50,
                                     seed_ ^ 0x5711);
  auto pipeline = MakePipeline();
  ctx.exact = pipeline->BuildExactMatchData(corpus_, domain);
  auto syn = pipeline->BuildSyntheticData(corpus_, domain,
                                          /*adapt_to_domain=*/false);
  METABLINK_CHECK(syn.ok()) << syn.status();
  ctx.syn = std::move(*syn);
  auto syn_star = pipeline->BuildSyntheticData(corpus_, domain,
                                               /*adapt_to_domain=*/true);
  METABLINK_CHECK(syn_star.ok()) << syn_star.status();
  ctx.syn_star = std::move(*syn_star);
  return ctx;
}

std::vector<data::LinkingExample> ExperimentWorld::GeneralData() const {
  std::vector<data::LinkingExample> out;
  for (const auto& domain : data::ZeshelLikeGenerator::TrainDomainNames()) {
    const auto& ex = corpus_.ExamplesIn(domain);
    out.insert(out.end(), ex.begin(), ex.end());
  }
  return out;
}

eval::EvalResult RunBlink(const ExperimentWorld& world,
                          const std::string& domain,
                          const std::vector<data::LinkingExample>&
                              training_data,
                          const std::vector<data::LinkingExample>& test) {
  core::MetaBlinkPipeline pipeline(world.DefaultConfig());
  auto status = pipeline.TrainSupervised(world.corpus().kb, training_data);
  METABLINK_CHECK(status.ok()) << status;
  auto result = pipeline.Evaluate(world.corpus().kb, domain, test);
  METABLINK_CHECK(result.ok()) << result.status();
  return *result;
}

eval::EvalResult RunDl4el(const ExperimentWorld& world,
                          const std::string& domain,
                          const std::vector<data::LinkingExample>&
                              training_data,
                          const std::vector<data::LinkingExample>& test) {
  core::MetaBlinkPipeline pipeline(world.DefaultConfig());
  train::Dl4elOptions dl4el;
  dl4el.train = world.DefaultConfig().bi_train;
  auto status =
      pipeline.TrainDl4el(world.corpus().kb, training_data, dl4el);
  METABLINK_CHECK(status.ok()) << status;
  auto result = pipeline.Evaluate(world.corpus().kb, domain, test);
  METABLINK_CHECK(result.ok()) << result.status();
  return *result;
}

eval::EvalResult RunMetaBlink(const ExperimentWorld& world,
                              const std::string& domain,
                              const std::vector<data::LinkingExample>&
                                  synthetic,
                              const std::vector<data::LinkingExample>&
                                  seed_set,
                              const std::vector<data::LinkingExample>& test,
                              const std::vector<data::LinkingExample>&
                                  pretrain) {
  core::MetaBlinkPipeline pipeline(world.DefaultConfig());
  if (!pretrain.empty()) {
    auto status = pipeline.TrainSupervised(world.corpus().kb, pretrain);
    METABLINK_CHECK(status.ok()) << status;
  }
  auto status = pipeline.TrainMeta(world.corpus().kb, synthetic, seed_set);
  METABLINK_CHECK(status.ok()) << status;
  auto result = pipeline.Evaluate(world.corpus().kb, domain, test);
  METABLINK_CHECK(result.ok()) << result.status();
  return *result;
}

double RunNameMatching(const ExperimentWorld& world, const std::string& domain,
                       const std::vector<data::LinkingExample>& test) {
  util::Rng rng(world.seed() ^ 0x4E4D);
  return eval::NameMatchingAccuracy(world.corpus().kb, domain, test, &rng);
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-28s %-20s %7s %7s %7s   %s\n", "method", "data", "R@64",
              "N.Acc", "U.Acc", "reference");
}

void PrintRow(const std::string& method, const std::string& data,
              const eval::EvalResult& r, const char* paper_note) {
  std::printf("%-28s %-20s %7.2f %7.2f %7.2f   %s\n", method.c_str(),
              data.c_str(), 100.0 * r.recall_at_k, 100.0 * r.normalized_acc,
              100.0 * r.unnormalized_acc,
              paper_note != nullptr ? paper_note : "");
}

void PrintScalarRow(const std::string& method, const std::string& data,
                    double value, const char* paper_note) {
  std::printf("%-28s %-20s %7s %7s %7.2f   %s\n", method.c_str(),
              data.c_str(), "-", "-", 100.0 * value,
              paper_note != nullptr ? paper_note : "");
}

}  // namespace metablink::bench
