// Reproduces Figure 1: the accuracy of a standard (BLINK-style) model
// degrades dramatically as in-domain training data shrinks. Trains BLINK on
// n in-domain gold examples for growing n and reports the U.Acc series on a
// fixed held-out test set of the YuGiOh domain.

#include <algorithm>
#include <cstdio>

#include "experiment_common.h"

using namespace metablink;

int main() {
  bench::ExperimentWorld world(bench::ExperimentScale(),
                               bench::ExperimentSeed());
  const std::string domain = "yugioh";
  const auto& all = world.corpus().ExamplesIn(domain);
  // Hold out the last 40% as the fixed test set.
  const std::size_t test_start = all.size() * 3 / 5;
  std::vector<data::LinkingExample> pool(all.begin(),
                                         all.begin() + test_start);
  std::vector<data::LinkingExample> test(all.begin() + test_start,
                                         all.end());

  std::printf("=== Fig. 1: U.Acc vs in-domain training-set size (%s) ===\n",
              domain.c_str());
  std::printf("%10s %8s %8s %8s   (paper: full-transformer accuracy drops\n",
              "n_train", "R@64", "N.Acc", "U.Acc");
  std::printf("%45s\n", "steeply once in-domain data is scarce)");

  const std::size_t sizes[] = {2, 10, 25, 50, 100, 250, pool.size()};
  for (std::size_t n : sizes) {
    n = std::min(n, pool.size());
    std::vector<data::LinkingExample> train(pool.begin(), pool.begin() + n);
    auto r = bench::RunBlink(world, domain, train, test);
    std::printf("%10zu %8.2f %8.2f %8.2f\n", n, 100.0 * r.recall_at_k,
                100.0 * r.normalized_acc, 100.0 * r.unnormalized_acc);
    if (n == pool.size()) break;
  }
  return 0;
}
