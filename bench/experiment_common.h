#ifndef METABLINK_BENCH_EXPERIMENT_COMMON_H_
#define METABLINK_BENCH_EXPERIMENT_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/example.h"
#include "data/generator.h"
#include "eval/evaluator.h"

namespace metablink::bench {

/// Experiment scale factor, from METABLINK_SCALE (default 0.5). All entity
/// and example counts of the paper-shaped corpus multiply by this.
double ExperimentScale();

/// Base RNG seed, from METABLINK_SEED (default 42).
std::uint64_t ExperimentSeed();

/// Generates the 16-domain paper corpus at `scale`.
data::Corpus BuildPaperCorpus(double scale, std::uint64_t seed);

/// Everything the experiment benches need about one target domain.
struct DomainContext {
  std::string domain;
  data::DomainSplit split;  // 50 train (seed) / 50 dev / rest test
  std::vector<data::LinkingExample> exact;     // exact-match pairs
  std::vector<data::LinkingExample> syn;       // rewritten (eq. 2)
  std::vector<data::LinkingExample> syn_star;  // domain-adapted rewrites
};

/// Shared state across a bench binary: the corpus and a rewriter trained on
/// the 8 source domains.
class ExperimentWorld {
 public:
  /// Builds the corpus at scale/seed and trains the mention rewriter on the
  /// paper's 8 training domains.
  ExperimentWorld(double scale, std::uint64_t seed);

  const data::Corpus& corpus() const { return corpus_; }

  /// Builds the context (split + weak supervision data) for one domain.
  DomainContext MakeDomainContext(const std::string& domain);

  /// Gold examples of the 8 training domains pooled ("general" data).
  std::vector<data::LinkingExample> GeneralData() const;

  /// A fresh pipeline with default experiment configuration.
  std::unique_ptr<core::MetaBlinkPipeline> MakePipeline() const;

  core::PipelineConfig DefaultConfig() const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  data::Corpus corpus_;
};

// ---- Method runners. All evaluate on `test` with the two-stage protocol. --

/// Plain BLINK: supervised bi+cross on `training_data`.
eval::EvalResult RunBlink(const ExperimentWorld& world,
                          const std::string& domain,
                          const std::vector<data::LinkingExample>&
                              training_data,
                          const std::vector<data::LinkingExample>& test);

/// DL4EL baseline on `training_data`.
eval::EvalResult RunDl4el(const ExperimentWorld& world,
                          const std::string& domain,
                          const std::vector<data::LinkingExample>&
                              training_data,
                          const std::vector<data::LinkingExample>& test);

/// MetaBLINK: Algorithm 1/2 with `synthetic` reweighted under `seed_set`.
/// When `pretrain` is non-empty the encoders are first trained supervised
/// on it (used by the zero-shot transfer experiments: pretrain = general).
eval::EvalResult RunMetaBlink(const ExperimentWorld& world,
                              const std::string& domain,
                              const std::vector<data::LinkingExample>&
                                  synthetic,
                              const std::vector<data::LinkingExample>&
                                  seed_set,
                              const std::vector<data::LinkingExample>& test,
                              const std::vector<data::LinkingExample>&
                                  pretrain = {});

/// Name Matching baseline accuracy (U.Acc equivalent).
double RunNameMatching(const ExperimentWorld& world, const std::string& domain,
                       const std::vector<data::LinkingExample>& test);

// ---- Table formatting ------------------------------------------------------

/// Prints "name    R@64  N.Acc  U.Acc   (paper: ...)" style rows.
void PrintHeader(const std::string& title);
void PrintRow(const std::string& method, const std::string& data,
              const eval::EvalResult& r, const char* paper_note = nullptr);
void PrintScalarRow(const std::string& method, const std::string& data,
                    double value, const char* paper_note = nullptr);

}  // namespace metablink::bench

#endif  // METABLINK_BENCH_EXPERIMENT_COMMON_H_
