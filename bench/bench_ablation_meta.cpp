// Ablation bench (beyond the paper): design choices of the meta-learning
// stage called out in DESIGN.md.
//   (a) weight normalization (eq. 13-14) on vs. off,
//   (b) seed-warmup epochs (0 vs. default),
//   (c) meta batch size m.
// Reports U.Acc on the YuGiOh few-shot task plus the Fig.4-style selection
// gap between normal and injected-bad synthetic data.

#include <cstdio>

#include "experiment_common.h"
#include "gen/bad_data.h"
#include "train/bi_trainer.h"
#include "train/meta_trainer.h"

using namespace metablink;

namespace {

struct AblationConfig {
  const char* name;
  bool normalize = true;
  std::size_t warmup_epochs = 4;
  std::size_t meta_batch = 16;
};

}  // namespace

int main() {
  bench::ExperimentWorld world(bench::ExperimentScale(),
                               bench::ExperimentSeed());
  const std::string domain = "yugioh";
  bench::DomainContext ctx = world.MakeDomainContext(domain);
  util::Rng bad_rng(world.seed() ^ 0xAB1A);
  auto bad = gen::InjectBadData(world.corpus().kb, ctx.syn,
                                ctx.syn.size() / 2, &bad_rng);
  std::vector<data::LinkingExample> mixture = ctx.syn;
  mixture.insert(mixture.end(), bad.begin(), bad.end());

  const AblationConfig configs[] = {
      {"default (norm, warm=4, m=16)", true, 4, 16},
      {"no weight normalization", false, 4, 16},
      {"no seed warmup", true, 0, 16},
      {"meta batch m=4", true, 4, 4},
      {"meta batch m=32", true, 4, 32},
  };

  std::printf("=== Ablation: meta-learning design choices (%s) ===\n",
              domain.c_str());
  std::printf("%-32s %8s %10s %10s %8s\n", "config", "U.Acc", "sel(norm)",
              "sel(bad)", "gap");
  for (const AblationConfig& ab : configs) {
    core::PipelineConfig config = world.DefaultConfig();
    config.meta_bi.normalize_weights = ab.normalize;
    config.meta_bi.meta_batch_size = ab.meta_batch;
    config.meta_warmup_epochs = ab.warmup_epochs;
    core::MetaBlinkPipeline pipeline(config);
    auto status =
        pipeline.TrainMeta(world.corpus().kb, mixture, ctx.split.train);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    auto result =
        pipeline.Evaluate(world.corpus().kb, domain, ctx.split.test);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const auto& sel = pipeline.last_meta_bi_result().selection;
    double norm_ratio = 0.0, bad_ratio = 0.0;
    if (auto it = sel.find(data::ExampleSource::kRewritten); it != sel.end()) {
      norm_ratio = it->second.SelectedRatio();
    }
    if (auto it = sel.find(data::ExampleSource::kInjectedBad);
        it != sel.end()) {
      bad_ratio = it->second.SelectedRatio();
    }
    std::printf("%-32s %8.2f %9.1f%% %9.1f%% %+7.1f%%\n", ab.name,
                100.0 * result->unnormalized_acc, 100.0 * norm_ratio,
                100.0 * bad_ratio, 100.0 * (norm_ratio - bad_ratio));
  }
  return 0;
}
