// Serving benchmark: times end-to-end Link (encode -> retrieve -> rerank)
// under three serving strategies over the same request stream and writes
// BENCH_serving.json (argv override; --smoke shrinks every dimension for
// the CI smoke stage).
//
//   tape_single:     one request at a time through the autodiff-tape
//                    forward paths (Graph-building EmbedMentions + Score),
//                    against a prebuilt domain index. This is the serving
//                    cost of the training code paths.
//   tapefree_single: one request at a time through the tape-free kernels
//                    (EncodeMentionsInference + ScoreInference).
//   server_batched:  LinkingServer micro-batching scheduler, 8 concurrent
//                    client threads (plus an int8-retrieval variant).
//
// Also verifies the serving-path contracts the speedup is not allowed to
// buy with accuracy: tape vs tape-free scores match to 1e-6 and int8
// retrieval reproduces the exact fp32 top-64.
//
// Encoders are randomly initialized: serving cost does not depend on
// trained weights, only on shapes and sparsity.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "model/bi_encoder.h"
#include "model/cross_encoder.h"
#include "retrieval/dense_index.h"
#include "serve/linking_server.h"
#include "util/rng.h"

using namespace metablink;

namespace {

double g_sink = 0.0;

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(v.size() - 1, std::ceil(p * v.size()) - 1));
  return v[idx];
}

struct ModeResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

ModeResult Summarize(const std::vector<double>& latencies, double wall_ms) {
  ModeResult r;
  r.p50_ms = Percentile(latencies, 0.50);
  r.p99_ms = Percentile(latencies, 0.99);
  r.qps = wall_ms > 0.0 ? 1000.0 * latencies.size() / wall_ms : 0.0;
  return r;
}

struct BenchScale {
  std::size_t num_entities = 4000;
  std::size_t distinct_requests = 256;
  std::size_t total_requests = 2000;
  std::size_t retrieve_k = 64;
  std::size_t client_threads = 8;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  BenchScale scale;
  if (smoke) {
    scale.num_entities = 250;
    scale.distinct_requests = 24;
    scale.total_requests = 96;
    scale.retrieve_k = 16;
  }

  // ---- World: one domain, its examples as the request pool. ----------------
  data::GeneratorOptions gopts;
  gopts.seed = 404;
  gopts.shared_vocab_size = 600;
  gopts.domain_vocab_size = 300;
  data::ZeshelLikeGenerator gen(gopts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "serving";
  specs[0].num_entities = scale.num_entities;
  specs[0].num_examples = std::max<std::size_t>(scale.distinct_requests, 64);
  specs[0].num_documents = 32;
  data::Corpus corpus = std::move(*gen.Generate(specs));
  const kb::KnowledgeBase& kb = corpus.kb;
  const auto& pool_examples = corpus.ExamplesIn("serving");

  model::BiEncoderConfig bi_cfg;
  bi_cfg.features.hasher.num_buckets = 16384;
  bi_cfg.dim = 64;
  model::CrossEncoderConfig cross_cfg;
  cross_cfg.features.hasher.num_buckets = 16384;
  cross_cfg.dim = 64;
  cross_cfg.hidden = 64;
  util::Rng bi_rng(11), cross_rng(12);
  model::BiEncoder bi(bi_cfg, &bi_rng);
  model::CrossEncoder cross(cross_cfg, &cross_rng);

  // The request stream: total_requests drawn round-robin from a pool of
  // distinct mentions (a zipf-free stand-in for repeated production
  // queries; repeats are what the LRU cache monetizes).
  std::vector<data::LinkingExample> requests;
  requests.reserve(scale.total_requests);
  for (std::size_t i = 0; i < scale.total_requests; ++i) {
    requests.push_back(pool_examples[i % scale.distinct_requests]);
  }
  const std::size_t k = scale.retrieve_k;

  // Prebuilt index shared by the single-query modes (the server builds its
  // own identical one).
  retrieval::DenseIndex index;
  {
    const auto& ids = kb.EntitiesInDomain("serving");
    std::vector<kb::Entity> entities;
    entities.reserve(ids.size());
    for (kb::EntityId id : ids) entities.push_back(kb.entity(id));
    model::EncodeScratch scratch;
    tensor::Tensor emb;
    bi.EncodeEntitiesInference(entities, &scratch, &emb);
    auto status = index.Build(std::move(emb), ids);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::printf("=== Serving benchmark (%zu entities, %zu requests, k=%zu) ===\n\n",
              scale.num_entities, scale.total_requests, k);

  // ---- Mode 1: single-query, tape forward paths. ---------------------------
  retrieval::TopKScratch topk_scratch;
  std::vector<retrieval::ScoredEntity> hits;
  std::vector<kb::Entity> candidates;
  std::vector<double> tape_lat;
  tape_lat.reserve(requests.size());
  const auto tape_t0 = Clock::now();
  for (const auto& ex : requests) {
    const auto q0 = Clock::now();
    tensor::Tensor q = bi.EmbedMentions({ex});
    index.TopKInto(q.row_data(0), k, &topk_scratch, &hits);
    candidates.clear();
    for (const auto& h : hits) candidates.push_back(kb.entity(h.id));
    const std::vector<float> scores = cross.Score(ex, candidates);
    g_sink += scores[0];
    tape_lat.push_back(MsSince(q0));
  }
  const ModeResult tape = Summarize(tape_lat, MsSince(tape_t0));
  std::printf("[tape_single]      p50 %7.3f ms  p99 %7.3f ms  %8.1f qps\n",
              tape.p50_ms, tape.p99_ms, tape.qps);

  // ---- Mode 2: single-query, tape-free kernels. ----------------------------
  model::EncodeScratch encode_scratch;
  model::CrossScoreScratch cross_scratch;
  tensor::Tensor q_free;
  std::vector<float> free_scores;
  std::vector<double> free_lat;
  free_lat.reserve(requests.size());
  const auto free_t0 = Clock::now();
  for (const auto& ex : requests) {
    const auto q0 = Clock::now();
    bi.EncodeMentionsInference({ex}, &encode_scratch, &q_free);
    index.TopKInto(q_free.row_data(0), k, &topk_scratch, &hits);
    candidates.clear();
    for (const auto& h : hits) candidates.push_back(kb.entity(h.id));
    cross.ScoreInference(ex, candidates, &cross_scratch, &free_scores);
    g_sink += free_scores[0];
    free_lat.push_back(MsSince(q0));
  }
  const ModeResult tapefree = Summarize(free_lat, MsSince(free_t0));
  std::printf("[tapefree_single]  p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  (%.2fx)\n",
              tapefree.p50_ms, tapefree.p99_ms, tapefree.qps,
              tapefree.qps / tape.qps);

  // ---- Parity: tape vs tape-free scores over the distinct pool. ------------
  double max_score_diff = 0.0;
  for (std::size_t i = 0; i < scale.distinct_requests; ++i) {
    const auto& ex = pool_examples[i];
    tensor::Tensor qt = bi.EmbedMentions({ex});
    bi.EncodeMentionsInference({ex}, &encode_scratch, &q_free);
    for (std::size_t j = 0; j < qt.cols(); ++j) {
      max_score_diff = std::max<double>(
          max_score_diff, std::fabs(qt.at(0, j) - q_free.at(0, j)));
    }
    index.TopKInto(q_free.row_data(0), k, &topk_scratch, &hits);
    candidates.clear();
    for (const auto& h : hits) candidates.push_back(kb.entity(h.id));
    const std::vector<float> st = cross.Score(ex, candidates);
    cross.ScoreInference(ex, candidates, &cross_scratch, &free_scores);
    for (std::size_t c = 0; c < st.size(); ++c) {
      max_score_diff = std::max<double>(max_score_diff,
                                        std::fabs(st[c] - free_scores[c]));
    }
  }
  std::printf("[parity]           max |tape - tapefree| = %.2e\n",
              max_score_diff);

  // ---- Parity: int8 retrieval reproduces the fp32 top-64. ------------------
  index.Quantize();
  double int8_overlap = 0.0;
  {
    std::vector<retrieval::ScoredEntity> exact, quant;
    std::size_t agree = 0, total = 0;
    const std::size_t probes = std::min<std::size_t>(64, index.size());
    for (std::size_t i = 0; i < scale.distinct_requests; ++i) {
      bi.EncodeMentionsInference({pool_examples[i]}, &encode_scratch, &q_free);
      index.TopKInto(q_free.row_data(0), probes, &topk_scratch, &exact);
      index.TopKQuantizedInto(q_free.row_data(0), probes, 4096, &topk_scratch,
                              &quant);
      std::set<kb::EntityId> a, b;
      for (const auto& e : exact) a.insert(e.id);
      for (const auto& e : quant) b.insert(e.id);
      for (kb::EntityId id : a) agree += b.count(id);
      total += a.size();
    }
    int8_overlap = total > 0 ? static_cast<double>(agree) / total : 0.0;
  }
  std::printf("[parity]           int8 R@64 overlap vs fp32 = %.4f\n\n",
              int8_overlap);

  // ---- Mode 3: micro-batching server, concurrent clients. ------------------
  auto RunServer = [&](bool use_quantized, serve::ServerStats* stats_out)
      -> ModeResult {
    serve::ServerOptions sopts;
    sopts.max_batch = 16;
    sopts.flush_deadline_us = 500;
    sopts.retrieve_k = k;
    sopts.use_quantized = use_quantized;
    sopts.quantized_pool = 4096;
    sopts.cache_capacity = 1024;
    auto server = serve::LinkingServer::Create(&bi, &cross, &kb, "serving",
                                               sopts);
    if (!server.ok()) {
      std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
      std::exit(1);
    }
    const std::size_t per_thread = requests.size() / scale.client_threads;
    std::atomic<std::size_t> failures{0};
    std::vector<std::vector<double>> lat(scale.client_threads);
    const auto t0 = Clock::now();
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < scale.client_threads; ++t) {
      clients.emplace_back([&, t] {
        lat[t].reserve(per_thread);
        for (std::size_t r = 0; r < per_thread; ++r) {
          const auto& ex = requests[t * per_thread + r];
          const auto q0 = Clock::now();
          auto got = (*server)->Link(ex.mention, ex.left_context,
                                     ex.right_context, 5);
          if (!got.ok() || got->empty()) {
            failures.fetch_add(1);
            continue;
          }
          g_sink += (*got)[0].score;
          lat[t].push_back(MsSince(q0));
        }
      });
    }
    for (auto& c : clients) c.join();
    const double wall_ms = MsSince(t0);
    if (failures.load() != 0) {
      std::fprintf(stderr, "%zu server requests failed\n", failures.load());
      std::exit(1);
    }
    std::vector<double> all;
    for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    *stats_out = (*server)->Stats();
    return Summarize(all, wall_ms);
  };

  serve::ServerStats stats, stats_int8;
  const ModeResult server = RunServer(false, &stats);
  std::printf("[server_batched]   p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  (%.2fx)\n",
              server.p50_ms, server.p99_ms, server.qps, server.qps / tape.qps);
  const ModeResult server_int8 = RunServer(true, &stats_int8);
  std::printf("[server_int8]      p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  (%.2fx)\n",
              server_int8.p50_ms, server_int8.p99_ms, server_int8.qps,
              server_int8.qps / tape.qps);
  const double cache_hit_rate =
      stats.cache_hits + stats.cache_misses > 0
          ? static_cast<double>(stats.cache_hits) /
                (stats.cache_hits + stats.cache_misses)
          : 0.0;
  std::printf("  batches=%llu cache_hit_rate=%.2f encode=%.1fms retrieve=%.1fms "
              "rerank=%.1fms\n",
              static_cast<unsigned long long>(stats.batches), cache_hit_rate,
              stats.encode_ms, stats.retrieve_ms, stats.rerank_ms);

  const double speedup = server.qps / tape.qps;
  const bool parity_ok = max_score_diff <= 1e-6 && int8_overlap == 1.0;
  if (smoke) {
    // The smoke scale is too small for throughput numbers to mean
    // anything; only the parity gate is enforced (via the exit code).
    std::printf("\n  smoke parity gate: %s\n", parity_ok ? "PASS" : "FAIL");
  } else {
    std::printf("\n  acceptance (>= 5x batched tape-free vs tape, parity): %s\n",
                (speedup >= 5.0 && parity_ok) ? "PASS" : "FAIL");
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"entities\": %zu, \"distinct_requests\": %zu, "
               "\"total_requests\": %zu, \"retrieve_k\": %zu, "
               "\"client_threads\": %zu, \"smoke\": %s},\n",
               scale.num_entities, scale.distinct_requests,
               scale.total_requests, k, scale.client_threads,
               smoke ? "true" : "false");
  std::fprintf(f,
               "  \"tape_single\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"qps\": %.1f},\n",
               tape.p50_ms, tape.p99_ms, tape.qps);
  std::fprintf(f,
               "  \"tapefree_single\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"qps\": %.1f},\n",
               tapefree.p50_ms, tapefree.p99_ms, tapefree.qps);
  std::fprintf(f,
               "  \"server_batched\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"qps\": %.1f, \"batches\": %llu, \"cache_hit_rate\": %.4f, "
               "\"encode_ms\": %.3f, \"retrieve_ms\": %.3f, "
               "\"rerank_ms\": %.3f},\n",
               server.p50_ms, server.p99_ms, server.qps,
               static_cast<unsigned long long>(stats.batches), cache_hit_rate,
               stats.encode_ms, stats.retrieve_ms, stats.rerank_ms);
  std::fprintf(f,
               "  \"server_batched_int8\": {\"p50_ms\": %.4f, \"p99_ms\": "
               "%.4f, \"qps\": %.1f},\n",
               server_int8.p50_ms, server_int8.p99_ms, server_int8.qps);
  std::fprintf(f,
               "  \"parity\": {\"max_score_diff\": %.3e, "
               "\"int8_r64_overlap\": %.6f},\n",
               max_score_diff, int8_overlap);
  std::fprintf(f, "  \"speedup_batched_vs_tape\": %.2f,\n", speedup);
  std::fprintf(f, "  \"meets_5x\": %s,\n",
               (speedup >= 5.0 && parity_ok) ? "true" : "false");
  std::fprintf(f, "  \"checksum\": %.6f\n", g_sink);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return (smoke && !parity_ok) ? 1 : 0;
}
