// Serving benchmark: times end-to-end Link (encode -> retrieve -> rerank)
// under several serving strategies over the same request stream and writes
// BENCH_serving.json (argv override; --smoke shrinks every dimension for
// the CI smoke stage; --cascade-smoke runs only the cascade gates).
//
//   tape_single:     one request at a time through the autodiff-tape
//                    forward paths (Graph-building EmbedMentions + Score),
//                    against a prebuilt domain index. This is the serving
//                    cost of the training code paths.
//   tapefree_single: one request at a time through the tape-free kernels
//                    (EncodeMentionsInference + ScoreInference).
//   server_batched:  LinkingServer micro-batching scheduler, 8 concurrent
//                    client threads (plus an int8-retrieval variant).
//   server_cascade:  the batched server with the calibrated three-tier
//                    rerank cascade (early exit / distilled / partial full
//                    rerank), reported with per-tier counts and the
//                    exact-match accuracy delta vs full rerank.
//
// Also verifies the serving-path contracts the speedup is not allowed to
// buy with accuracy: tape vs tape-free scores match to 1e-6 and int8
// retrieval reproduces the exact fp32 top-64 at a full candidate pool.
//
// Unlike earlier revisions, the encoders are briefly TRAINED first (bi on
// in-batch negatives, cross on mined candidate lists). Serving cost still
// depends only on shapes, but the cascade's margin gate and the
// accuracy-delta acceptance are only meaningful when retrieval and rerank
// are correlated, which random weights do not provide.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "load/workload.h"
#include "model/bi_encoder.h"
#include "model/cascade.h"
#include "model/cross_encoder.h"
#include "retrieval/dense_index.h"
#include "serve/linking_server.h"
#include "train/bi_trainer.h"
#include "train/cascade_distiller.h"
#include "train/cross_trainer.h"
#include "util/rng.h"

using namespace metablink;

namespace {

double g_sink = 0.0;

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(v.size() - 1, std::ceil(p * v.size()) - 1));
  return v[idx];
}

struct ModeResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

ModeResult Summarize(const std::vector<double>& latencies, double wall_ms) {
  ModeResult r;
  r.p50_ms = Percentile(latencies, 0.50);
  r.p99_ms = Percentile(latencies, 0.99);
  r.qps = wall_ms > 0.0 ? 1000.0 * latencies.size() / wall_ms : 0.0;
  return r;
}

struct BenchScale {
  std::size_t num_entities = 4000;
  std::size_t distinct_requests = 256;
  std::size_t total_requests = 2000;
  std::size_t retrieve_k = 64;
  std::size_t client_threads = 8;
  /// At full scale the encoders train until margins are meaningful — the
  /// cascade's whole premise is that margin predicts correctness, and a
  /// half-trained bi-encoder's margins are noise. The smoke scales train
  /// less so calibration keeps all three tiers populated (fully trained
  /// encoders on the tiny world exit everything, leaving the distilled
  /// tier unexercised).
  std::size_t train_epochs = 4;
};

/// Bounded candidate pool for the TIMED int8 serving row. The old value
/// (4096 >= the whole index) made the int8 path do strictly more work than
/// fp32 — an int8 scan of every row PLUS an fp32 re-score of every row —
/// which is why server_batched_int8 regressed vs fp32 in earlier runs. A
/// bounded pool is the configuration the int8 scan exists for; exactness
/// at the full pool is still asserted by the parity gate below, and the
/// measured overlap at this bounded pool is reported in the JSON.
constexpr std::size_t kInt8ServePool = 256;

/// One fully-served request stream: per-request latencies plus the
/// exact-match count against each request's gold entity.
struct StreamResult {
  ModeResult mode;
  serve::ServerStats stats;
  std::size_t correct = 0;
  /// Top-1 (entity id, score) per request, in stream order; used by the
  /// byte-identity gates.
  std::vector<kb::EntityId> top1_id;
  std::vector<float> top1_score;
};

/// Drives `total` requests from `requests` through `server` with
/// `threads` concurrent clients (thread t owns the contiguous slice
/// [t*per, (t+1)*per), so top1 vectors are comparable across runs).
StreamResult DriveServer(serve::LinkingServer* server,
                         const std::vector<data::LinkingExample>& requests,
                         std::size_t threads) {
  StreamResult out;
  const std::size_t per_thread = requests.size() / threads;
  const std::size_t total = per_thread * threads;
  out.top1_id.assign(total, kb::kInvalidEntityId);
  out.top1_score.assign(total, 0.0f);
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> correct{0};
  std::vector<std::vector<double>> lat(threads);
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      lat[t].reserve(per_thread);
      for (std::size_t r = 0; r < per_thread; ++r) {
        const std::size_t idx = t * per_thread + r;
        const auto& ex = requests[idx];
        const auto q0 = Clock::now();
        auto got = server->Link(ex.mention, ex.left_context, ex.right_context,
                                5);
        if (!got.ok() || got->empty()) {
          failures.fetch_add(1);
          continue;
        }
        out.top1_id[idx] = (*got)[0].entity_id;
        out.top1_score[idx] = (*got)[0].score;
        if ((*got)[0].entity_id == ex.entity_id) correct.fetch_add(1);
        g_sink += (*got)[0].score;
        lat[t].push_back(MsSince(q0));
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall_ms = MsSince(t0);
  if (failures.load() != 0) {
    std::fprintf(stderr, "%zu server requests failed\n", failures.load());
    std::exit(1);
  }
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  out.mode = Summarize(all, wall_ms);
  out.stats = server->Stats();
  out.correct = correct.load();
  return out;
}

bool SameTop1(const StreamResult& a, const StreamResult& b) {
  return a.top1_id == b.top1_id &&
         std::memcmp(a.top1_score.data(), b.top1_score.data(),
                     a.top1_score.size() * sizeof(float)) == 0;
}

bool TiersSum(const serve::ServerStats& s) {
  return s.rerank_exited + s.rerank_distilled + s.rerank_full == s.requests;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool cascade_smoke = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--cascade-smoke") == 0) {
      cascade_smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  BenchScale scale;
  if (smoke || cascade_smoke) {
    scale.num_entities = 250;
    scale.distinct_requests = 24;
    scale.total_requests = 96;
    scale.retrieve_k = 16;
    scale.train_epochs = 2;
  }

  // ---- World: one domain, its examples as the request pool. ----------------
  data::GeneratorOptions gopts;
  gopts.seed = 404;
  gopts.shared_vocab_size = 600;
  gopts.domain_vocab_size = 300;
  data::ZeshelLikeGenerator gen(gopts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "serving";
  specs[0].num_entities = scale.num_entities;
  specs[0].num_examples = std::max<std::size_t>(scale.distinct_requests, 64);
  specs[0].num_documents = 32;
  data::Corpus corpus = std::move(*gen.Generate(specs));
  const kb::KnowledgeBase& kb = corpus.kb;
  const auto& pool_examples = corpus.ExamplesIn("serving");

  model::BiEncoderConfig bi_cfg;
  bi_cfg.features.hasher.num_buckets = 16384;
  bi_cfg.dim = 64;
  model::CrossEncoderConfig cross_cfg;
  cross_cfg.features.hasher.num_buckets = 16384;
  cross_cfg.dim = 64;
  cross_cfg.hidden = 64;
  util::Rng bi_rng(11), cross_rng(12);
  model::BiEncoder bi(bi_cfg, &bi_rng);
  model::CrossEncoder cross(cross_cfg, &cross_rng);

  // The request stream, drawn through the load subsystem's generators. The
  // timed and gated modes use kRoundRobin, which reproduces the historical
  // `i % distinct` replay byte for byte (repeats are what the LRU cache
  // monetizes); the full run adds a Zipf-skewed stream below to show the
  // cascade's tier mix under realistic popularity.
  auto MakeRequests = [&](load::MixKind kind,
                          std::uint64_t seed) {
    load::WorkloadConfig wl;
    wl.kind = kind;
    wl.pool_size = scale.distinct_requests;
    wl.seed = seed;
    auto stream = load::RequestStream::Make(wl);
    if (!stream.ok()) {
      std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
      std::exit(1);
    }
    std::vector<data::LinkingExample> out;
    out.reserve(scale.total_requests);
    for (std::size_t i = 0; i < scale.total_requests; ++i) {
      out.push_back(pool_examples[stream->Next()]);
    }
    return out;
  };
  const std::vector<data::LinkingExample> requests =
      MakeRequests(load::MixKind::kRoundRobin, 1);
  const std::size_t k = scale.retrieve_k;

  // ---- Brief supervised training so retrieval and rerank correlate. --------
  {
    train::TrainOptions bopts;
    bopts.epochs = scale.train_epochs;
    train::BiEncoderTrainer bi_trainer(bopts);
    auto trained = bi_trainer.Train(&bi, kb, pool_examples);
    if (!trained.ok()) {
      std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
      return 1;
    }
  }

  // Prebuilt index shared by the single-query modes (the server builds its
  // own identical one). Built after bi training so every mode serves the
  // same weights.
  retrieval::DenseIndex index;
  {
    const auto& ids = kb.EntitiesInDomain("serving");
    std::vector<kb::Entity> entities;
    entities.reserve(ids.size());
    for (kb::EntityId id : ids) entities.push_back(kb.entity(id));
    model::EncodeScratch scratch;
    tensor::Tensor emb;
    bi.EncodeEntitiesInference(entities, &scratch, &emb);
    auto status = index.Build(std::move(emb), ids);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Cross-encoder training on candidates mined from the trained retriever
  // (the BLINK protocol: train the ranker on the retriever's output
  // distribution).
  {
    model::EncodeScratch scratch;
    retrieval::TopKScratch topk_scratch;
    tensor::Tensor q;
    std::vector<std::vector<retrieval::ScoredEntity>> lists(
        pool_examples.size());
    for (std::size_t i = 0; i < pool_examples.size(); ++i) {
      bi.EncodeMentionsInference({pool_examples[i]}, &scratch, &q);
      index.TopKInto(q.row_data(0), std::min<std::size_t>(k, index.size()),
                     &topk_scratch, &lists[i]);
    }
    const auto instances = train::MineCrossTrainingSet(pool_examples, lists,
                                                       16);
    train::TrainOptions copts;
    copts.epochs = scale.train_epochs;
    train::CrossEncoderTrainer cross_trainer(copts);
    auto trained = cross_trainer.Train(&cross, kb, instances);
    if (!trained.ok()) {
      std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
      return 1;
    }
  }

  // ---- Cascade calibration (offline, on the request pool's domain). --------
  train::CascadeCalibrationOptions calib_opts;
  calib_opts.retrieve_k = k;
  train::CascadeCalibrationReport calib_report;
  auto calibrated = train::CalibrateCascade(bi, cross, kb, "serving",
                                            pool_examples, calib_opts,
                                            &calib_report);
  if (!calibrated.ok()) {
    std::fprintf(stderr, "%s\n", calibrated.status().ToString().c_str());
    return 1;
  }
  const model::CascadeModel cascade = *std::move(calibrated);

  serve::ServerOptions base_opts;
  base_opts.max_batch = 16;
  base_opts.flush_deadline_us = 500;
  base_opts.retrieve_k = k;
  base_opts.cache_capacity = 1024;

  auto MakeServer = [&](const serve::ServerOptions& sopts) {
    auto server = serve::LinkingServer::Create(&bi, &cross, &kb, "serving",
                                               sopts);
    if (!server.ok()) {
      std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*server);
  };

  auto PrintCalibration = [&] {
    std::printf("[calibrate]  margin_tau=%.4g distill_tau=%.4g "
                "band=%.4g head_k=%zu exit=%zu/%zu distill=%zu mse=%.3e\n",
                cascade.config.margin_tau, cascade.config.distill_tau,
                cascade.config.band_epsilon, calib_report.head_k,
                calib_report.exit_eligible, calib_report.examples,
                calib_report.distill_eligible, calib_report.distill_mse);
  };

  if (cascade_smoke) {
    // ---- Reduced cascade gate run (check.sh stage 9): no timings, only
    // the correctness contracts of the cascade.
    std::printf("=== Cascade smoke gates (%zu entities, %zu requests, "
                "k=%zu) ===\n\n",
                scale.num_entities, scale.total_requests, k);
    PrintCalibration();

    // Serial single-client streams so responses are position-comparable.
    const auto base = DriveServer(MakeServer(base_opts).get(), requests, 1);

    serve::ServerOptions off_opts = base_opts;
    off_opts.cascade = &cascade;  // present but disabled
    const auto off = DriveServer(MakeServer(off_opts).get(), requests, 1);

    // Cascade machinery forced to "never exit, full head": must reproduce
    // the full-rerank responses byte for byte through the cascade code
    // path itself.
    model::CascadeModel fullhead;
    fullhead.config.rerank_head_k = k;
    serve::ServerOptions fullhead_opts = base_opts;
    fullhead_opts.use_cascade = true;
    fullhead_opts.cascade = &fullhead;
    const auto full =
        DriveServer(MakeServer(fullhead_opts).get(), requests, 1);

    serve::ServerOptions on_opts = base_opts;
    on_opts.use_cascade = true;
    on_opts.cascade = &cascade;
    const auto on_serial = DriveServer(MakeServer(on_opts).get(), requests, 1);
    const auto on_pooled =
        DriveServer(MakeServer(on_opts).get(), requests,
                    scale.client_threads);

    const bool gate_off_identical = SameTop1(base, off);
    const bool gate_fullhead_identical = SameTop1(base, full);
    const bool gate_counters = TiersSum(on_serial.stats) &&
                               TiersSum(on_pooled.stats) &&
                               TiersSum(base.stats) &&
                               base.stats.rerank_full == base.stats.requests;
    const bool gate_deterministic =
        SameTop1(on_serial, on_pooled) &&
        on_serial.stats.rerank_exited == on_pooled.stats.rerank_exited &&
        on_serial.stats.rerank_distilled == on_pooled.stats.rerank_distilled &&
        on_serial.stats.rerank_full == on_pooled.stats.rerank_full;
    const double acc_full =
        static_cast<double>(base.correct) / requests.size();
    const double acc_cascade =
        static_cast<double>(on_serial.correct) / requests.size();
    const double delta_pts = (acc_full - acc_cascade) * 100.0;
    const bool gate_accuracy = delta_pts <= 0.2;

    std::printf("[gate] cascade-off byte-identical:      %s\n",
                gate_off_identical ? "PASS" : "FAIL");
    std::printf("[gate] forced-full-head byte-identical: %s\n",
                gate_fullhead_identical ? "PASS" : "FAIL");
    std::printf("[gate] tier counters sum to requests:   %s "
                "(exited=%llu distilled=%llu full=%llu)\n",
                gate_counters ? "PASS" : "FAIL",
                static_cast<unsigned long long>(on_serial.stats.rerank_exited),
                static_cast<unsigned long long>(
                    on_serial.stats.rerank_distilled),
                static_cast<unsigned long long>(on_serial.stats.rerank_full));
    std::printf("[gate] serial == pooled (tiers+bytes):  %s\n",
                gate_deterministic ? "PASS" : "FAIL");
    std::printf("[gate] accuracy delta <= 0.2 pts:       %s "
                "(full=%.4f cascade=%.4f delta=%.3f pts)\n",
                gate_accuracy ? "PASS" : "FAIL", acc_full, acc_cascade,
                delta_pts);

    const bool ok = gate_off_identical && gate_fullhead_identical &&
                    gate_counters && gate_deterministic && gate_accuracy;
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "{\n");
      std::fprintf(f,
                   "  \"cascade_smoke\": {\"off_identical\": %s, "
                   "\"fullhead_identical\": %s, \"counters_ok\": %s, "
                   "\"deterministic\": %s, \"accuracy_full\": %.4f, "
                   "\"accuracy_cascade\": %.4f, \"accuracy_delta_pts\": "
                   "%.4f, \"exited\": %llu, \"distilled\": %llu, "
                   "\"full\": %llu},\n",
                   gate_off_identical ? "true" : "false",
                   gate_fullhead_identical ? "true" : "false",
                   gate_counters ? "true" : "false",
                   gate_deterministic ? "true" : "false", acc_full,
                   acc_cascade, delta_pts,
                   static_cast<unsigned long long>(
                       on_serial.stats.rerank_exited),
                   static_cast<unsigned long long>(
                       on_serial.stats.rerank_distilled),
                   static_cast<unsigned long long>(
                       on_serial.stats.rerank_full));
      std::fprintf(f, "  \"pass\": %s\n", ok ? "true" : "false");
      std::fprintf(f, "}\n");
      std::fclose(f);
    }
    std::printf("\n  cascade smoke gates: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  std::printf("=== Serving benchmark (%zu entities, %zu requests, k=%zu) ===\n\n",
              scale.num_entities, scale.total_requests, k);
  PrintCalibration();

  // ---- Mode 1: single-query, tape forward paths. ---------------------------
  retrieval::TopKScratch topk_scratch;
  std::vector<retrieval::ScoredEntity> hits;
  std::vector<kb::Entity> candidates;
  std::vector<double> tape_lat;
  tape_lat.reserve(requests.size());
  const auto tape_t0 = Clock::now();
  for (const auto& ex : requests) {
    const auto q0 = Clock::now();
    tensor::Tensor q = bi.EmbedMentions({ex});
    index.TopKInto(q.row_data(0), k, &topk_scratch, &hits);
    candidates.clear();
    for (const auto& h : hits) candidates.push_back(kb.entity(h.id));
    const std::vector<float> scores = cross.Score(ex, candidates);
    g_sink += scores[0];
    tape_lat.push_back(MsSince(q0));
  }
  const ModeResult tape = Summarize(tape_lat, MsSince(tape_t0));
  std::printf("[tape_single]      p50 %7.3f ms  p99 %7.3f ms  %8.1f qps\n",
              tape.p50_ms, tape.p99_ms, tape.qps);

  // ---- Mode 2: single-query, tape-free kernels. ----------------------------
  model::EncodeScratch encode_scratch;
  model::CrossScoreScratch cross_scratch;
  tensor::Tensor q_free;
  std::vector<float> free_scores;
  std::vector<double> free_lat;
  free_lat.reserve(requests.size());
  const auto free_t0 = Clock::now();
  for (const auto& ex : requests) {
    const auto q0 = Clock::now();
    bi.EncodeMentionsInference({ex}, &encode_scratch, &q_free);
    index.TopKInto(q_free.row_data(0), k, &topk_scratch, &hits);
    candidates.clear();
    for (const auto& h : hits) candidates.push_back(kb.entity(h.id));
    cross.ScoreInference(ex, candidates, &cross_scratch, &free_scores);
    g_sink += free_scores[0];
    free_lat.push_back(MsSince(q0));
  }
  const ModeResult tapefree = Summarize(free_lat, MsSince(free_t0));
  std::printf("[tapefree_single]  p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  (%.2fx)\n",
              tapefree.p50_ms, tapefree.p99_ms, tapefree.qps,
              tapefree.qps / tape.qps);

  // ---- Parity: tape vs tape-free scores over the distinct pool. ------------
  double max_score_diff = 0.0;
  for (std::size_t i = 0; i < scale.distinct_requests; ++i) {
    const auto& ex = pool_examples[i];
    tensor::Tensor qt = bi.EmbedMentions({ex});
    bi.EncodeMentionsInference({ex}, &encode_scratch, &q_free);
    for (std::size_t j = 0; j < qt.cols(); ++j) {
      max_score_diff = std::max<double>(
          max_score_diff, std::fabs(qt.at(0, j) - q_free.at(0, j)));
    }
    index.TopKInto(q_free.row_data(0), k, &topk_scratch, &hits);
    candidates.clear();
    for (const auto& h : hits) candidates.push_back(kb.entity(h.id));
    const std::vector<float> st = cross.Score(ex, candidates);
    cross.ScoreInference(ex, candidates, &cross_scratch, &free_scores);
    for (std::size_t c = 0; c < st.size(); ++c) {
      max_score_diff = std::max<double>(max_score_diff,
                                        std::fabs(st[c] - free_scores[c]));
    }
  }
  std::printf("[parity]           max |tape - tapefree| = %.2e\n",
              max_score_diff);

  // ---- Parity: int8 retrieval reproduces the fp32 top-64. ------------------
  // Exactness gate at the full pool (pool >= index size guarantees the
  // true top-k survives the int8 scan) plus the measured overlap at the
  // bounded pool the timed serving row actually uses.
  index.Quantize();
  double int8_overlap = 0.0;
  double int8_overlap_serve_pool = 0.0;
  {
    std::vector<retrieval::ScoredEntity> exact, quant, quant_served;
    std::size_t agree = 0, agree_served = 0, total = 0;
    const std::size_t probes = std::min<std::size_t>(64, index.size());
    for (std::size_t i = 0; i < scale.distinct_requests; ++i) {
      bi.EncodeMentionsInference({pool_examples[i]}, &encode_scratch, &q_free);
      index.TopKInto(q_free.row_data(0), probes, &topk_scratch, &exact);
      index.TopKQuantizedInto(q_free.row_data(0), probes, index.size(),
                              &topk_scratch, &quant);
      index.TopKQuantizedInto(q_free.row_data(0), probes, kInt8ServePool,
                              &topk_scratch, &quant_served);
      std::set<kb::EntityId> a, b, c;
      for (const auto& e : exact) a.insert(e.id);
      for (const auto& e : quant) b.insert(e.id);
      for (const auto& e : quant_served) c.insert(e.id);
      for (kb::EntityId id : a) {
        agree += b.count(id);
        agree_served += c.count(id);
      }
      total += a.size();
    }
    int8_overlap = total > 0 ? static_cast<double>(agree) / total : 0.0;
    int8_overlap_serve_pool =
        total > 0 ? static_cast<double>(agree_served) / total : 0.0;
  }
  std::printf("[parity]           int8 R@64 overlap vs fp32 = %.4f "
              "(pool=%zu: %.4f)\n\n",
              int8_overlap, kInt8ServePool, int8_overlap_serve_pool);

  // ---- Mode 3: micro-batching server, concurrent clients. ------------------
  const StreamResult server = DriveServer(MakeServer(base_opts).get(),
                                          requests, scale.client_threads);
  std::printf("[server_batched]   p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  (%.2fx)\n",
              server.mode.p50_ms, server.mode.p99_ms, server.mode.qps,
              server.mode.qps / tape.qps);

  serve::ServerOptions int8_opts = base_opts;
  int8_opts.use_quantized = true;
  int8_opts.quantized_pool = kInt8ServePool;
  const StreamResult server_int8 = DriveServer(MakeServer(int8_opts).get(),
                                               requests,
                                               scale.client_threads);
  std::printf("[server_int8]      p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  (%.2fx)\n",
              server_int8.mode.p50_ms, server_int8.mode.p99_ms,
              server_int8.mode.qps, server_int8.mode.qps / tape.qps);

  const serve::ServerStats& stats = server.stats;
  const double cache_hit_rate =
      stats.cache_hits + stats.cache_misses > 0
          ? static_cast<double>(stats.cache_hits) /
                (stats.cache_hits + stats.cache_misses)
          : 0.0;
  std::printf("  batches=%llu cache_hit_rate=%.2f encode=%.1fms retrieve=%.1fms "
              "rerank=%.1fms queue_hw=%zu accepted=%llu\n",
              static_cast<unsigned long long>(stats.batches), cache_hit_rate,
              stats.encode_ms, stats.retrieve_ms, stats.rerank_ms,
              stats.queue_depth_high_water,
              static_cast<unsigned long long>(stats.accepted));

  // ---- Mode 4: the batched server behind the calibrated cascade. -----------
  serve::ServerOptions cascade_opts = base_opts;
  cascade_opts.use_cascade = true;
  cascade_opts.cascade = &cascade;
  const StreamResult server_cascade =
      DriveServer(MakeServer(cascade_opts).get(), requests,
                  scale.client_threads);
  const double acc_full =
      static_cast<double>(server.correct) / requests.size();
  const double acc_cascade =
      static_cast<double>(server_cascade.correct) / requests.size();
  const double accuracy_delta_pts = (acc_full - acc_cascade) * 100.0;
  const double cascade_speedup = server.mode.qps > 0.0
                                     ? server_cascade.mode.qps /
                                           server.mode.qps
                                     : 0.0;
  std::printf("[server_cascade]   p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  "
              "(%.2fx over full rerank)\n",
              server_cascade.mode.p50_ms, server_cascade.mode.p99_ms,
              server_cascade.mode.qps, cascade_speedup);
  std::printf("  tiers: exited=%llu distilled=%llu full=%llu | "
              "accuracy full=%.4f cascade=%.4f delta=%.3f pts\n",
              static_cast<unsigned long long>(
                  server_cascade.stats.rerank_exited),
              static_cast<unsigned long long>(
                  server_cascade.stats.rerank_distilled),
              static_cast<unsigned long long>(
                  server_cascade.stats.rerank_full),
              acc_full, acc_cascade, accuracy_delta_pts);

  // ---- Mode 5: the cascade under a Zipf-skewed request stream. -------------
  // Same server configuration, same pool, but requests drawn Zipf(0.99)
  // instead of round-robin: the tier mix and the cache hit rate shift
  // because hot mentions dominate (and repeat within LRU reach).
  const std::vector<data::LinkingExample> zipf_requests =
      MakeRequests(load::MixKind::kZipfian, 7);
  const StreamResult cascade_zipf =
      DriveServer(MakeServer(cascade_opts).get(), zipf_requests,
                  scale.client_threads);
  const double zipf_hit_rate =
      cascade_zipf.stats.cache_hits + cascade_zipf.stats.cache_misses > 0
          ? static_cast<double>(cascade_zipf.stats.cache_hits) /
                (cascade_zipf.stats.cache_hits +
                 cascade_zipf.stats.cache_misses)
          : 0.0;
  std::printf("[cascade_zipf]     p50 %7.3f ms  p99 %7.3f ms  %8.1f qps  "
              "(theta=0.99)\n",
              cascade_zipf.mode.p50_ms, cascade_zipf.mode.p99_ms,
              cascade_zipf.mode.qps);
  std::printf("  tiers: exited=%llu distilled=%llu full=%llu | "
              "cache_hit_rate=%.2f (uniform %.2f)\n",
              static_cast<unsigned long long>(
                  cascade_zipf.stats.rerank_exited),
              static_cast<unsigned long long>(
                  cascade_zipf.stats.rerank_distilled),
              static_cast<unsigned long long>(cascade_zipf.stats.rerank_full),
              zipf_hit_rate, cache_hit_rate);

  const double speedup = server.mode.qps / tape.qps;
  const bool parity_ok = max_score_diff <= 1e-6 && int8_overlap == 1.0;
  const bool counters_ok = TiersSum(server_cascade.stats) &&
                           TiersSum(server.stats) &&
                           server.stats.rerank_full == server.stats.requests;
  const bool cascade_ok = counters_ok && accuracy_delta_pts <= 0.2;
  if (smoke) {
    // The smoke scale is too small for throughput numbers to mean
    // anything; only the parity + cascade gates are enforced (exit code).
    std::printf("\n  smoke parity gate: %s\n",
                (parity_ok && cascade_ok) ? "PASS" : "FAIL");
  } else {
    std::printf("\n  acceptance (>= 5x batched tape-free vs tape, parity): %s\n",
                (speedup >= 5.0 && parity_ok) ? "PASS" : "FAIL");
    std::printf("  acceptance (cascade >= 2x batched full rerank, "
                "delta <= 0.2 pts): %s\n",
                (cascade_speedup >= 2.0 && cascade_ok) ? "PASS" : "FAIL");
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"entities\": %zu, \"distinct_requests\": %zu, "
               "\"total_requests\": %zu, \"retrieve_k\": %zu, "
               "\"client_threads\": %zu, \"smoke\": %s},\n",
               scale.num_entities, scale.distinct_requests,
               scale.total_requests, k, scale.client_threads,
               smoke ? "true" : "false");
  std::fprintf(f,
               "  \"tape_single\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"qps\": %.1f},\n",
               tape.p50_ms, tape.p99_ms, tape.qps);
  std::fprintf(f,
               "  \"tapefree_single\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"qps\": %.1f},\n",
               tapefree.p50_ms, tapefree.p99_ms, tapefree.qps);
  std::fprintf(f,
               "  \"server_batched\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"qps\": %.1f, \"batches\": %llu, \"cache_hit_rate\": %.4f, "
               "\"encode_ms\": %.3f, \"retrieve_ms\": %.3f, "
               "\"rerank_ms\": %.3f, \"accepted\": %llu, "
               "\"queue_depth_high_water\": %zu, \"oldest_wait_us\": %.1f},\n",
               server.mode.p50_ms, server.mode.p99_ms, server.mode.qps,
               static_cast<unsigned long long>(stats.batches), cache_hit_rate,
               stats.encode_ms, stats.retrieve_ms, stats.rerank_ms,
               static_cast<unsigned long long>(stats.accepted),
               stats.queue_depth_high_water, stats.oldest_wait_us);
  std::fprintf(f,
               "  \"server_batched_int8\": {\"p50_ms\": %.4f, \"p99_ms\": "
               "%.4f, \"qps\": %.1f, \"quantized_pool\": %zu},\n",
               server_int8.mode.p50_ms, server_int8.mode.p99_ms,
               server_int8.mode.qps, kInt8ServePool);
  std::fprintf(f,
               "  \"server_cascade\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"qps\": %.1f, \"rerank_exited\": %llu, "
               "\"rerank_distilled\": %llu, \"rerank_full\": %llu, "
               "\"margin_tau\": %.6g, \"distill_tau\": %.6g, "
               "\"band_epsilon\": %.6g, \"rerank_head_k\": %zu, "
               "\"accuracy_full\": %.4f, \"accuracy_cascade\": %.4f, "
               "\"accuracy_delta_pts\": %.4f},\n",
               server_cascade.mode.p50_ms, server_cascade.mode.p99_ms,
               server_cascade.mode.qps,
               static_cast<unsigned long long>(
                   server_cascade.stats.rerank_exited),
               static_cast<unsigned long long>(
                   server_cascade.stats.rerank_distilled),
               static_cast<unsigned long long>(
                   server_cascade.stats.rerank_full),
               cascade.config.margin_tau, cascade.config.distill_tau,
               cascade.config.band_epsilon, cascade.config.rerank_head_k,
               acc_full, acc_cascade, accuracy_delta_pts);
  std::fprintf(f,
               "  \"server_cascade_zipf\": {\"theta\": 0.99, \"p50_ms\": "
               "%.4f, \"p99_ms\": %.4f, \"qps\": %.1f, "
               "\"rerank_exited\": %llu, \"rerank_distilled\": %llu, "
               "\"rerank_full\": %llu, \"cache_hit_rate\": %.4f, "
               "\"cache_hit_rate_uniform\": %.4f},\n",
               cascade_zipf.mode.p50_ms, cascade_zipf.mode.p99_ms,
               cascade_zipf.mode.qps,
               static_cast<unsigned long long>(
                   cascade_zipf.stats.rerank_exited),
               static_cast<unsigned long long>(
                   cascade_zipf.stats.rerank_distilled),
               static_cast<unsigned long long>(
                   cascade_zipf.stats.rerank_full),
               zipf_hit_rate, cache_hit_rate);
  std::fprintf(f,
               "  \"parity\": {\"max_score_diff\": %.3e, "
               "\"int8_r64_overlap\": %.6f, "
               "\"int8_r64_overlap_serve_pool\": %.6f},\n",
               max_score_diff, int8_overlap, int8_overlap_serve_pool);
  std::fprintf(f, "  \"speedup_batched_vs_tape\": %.2f,\n", speedup);
  std::fprintf(f, "  \"speedup_cascade_vs_batched\": %.2f,\n",
               cascade_speedup);
  std::fprintf(f, "  \"meets_5x\": %s,\n",
               (speedup >= 5.0 && parity_ok) ? "true" : "false");
  std::fprintf(f, "  \"meets_cascade_2x\": %s,\n",
               (cascade_speedup >= 2.0 && cascade_ok) ? "true" : "false");
  std::fprintf(f, "  \"checksum\": %.6f\n", g_sink);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return (smoke && !(parity_ok && cascade_ok)) ? 1 : 0;
}
