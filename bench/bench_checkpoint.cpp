// Checkpoint & hot-swap benchmark: measures the store subsystem's three
// costs and writes BENCH_checkpoint.json (argv override; --smoke shrinks
// every dimension for the CI smoke stage).
//
//   save/load MB/s:  framed-container write (serialize + CRC + atomic
//                    temp/fsync/rename) and read (parse + CRC verify +
//                    parameter load) throughput over a full encoder
//                    checkpoint.
//   bundle ms:       packaging a complete serving bundle (encoders, KB,
//                    index, rerank cache + manifest) and loading it back.
//   swap stall p99:  Link() latency p99 observed by concurrent clients
//                    while SwapModel publishes new versions under load —
//                    the number that proves a swap never stalls serving.
//
// Always-on correctness gates (exit 1 on violation, any scale):
//   - checkpoint round trip is bit-identical (ValuesCrc32 equality);
//   - a killed + resumed meta-reweight run finishes bit-identical to an
//     uninterrupted one;
//   - every Link during the swap hammer succeeds and every swap publishes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "model/bi_encoder.h"
#include "model/cross_encoder.h"
#include "retrieval/dense_index.h"
#include "serve/linking_server.h"
#include "store/checkpoint.h"
#include "store/model_bundle.h"
#include "train/meta_trainer.h"
#include "util/rng.h"

using namespace metablink;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(v.size() - 1, std::ceil(p * v.size()) - 1));
  return v[idx];
}

struct BenchScale {
  std::size_t num_buckets = 32768;
  std::size_t dim = 64;
  std::size_t num_entities = 2000;
  std::size_t save_load_iters = 5;
  std::size_t swaps = 6;
  std::size_t client_threads = 4;
  std::size_t requests_per_thread = 120;
  std::size_t meta_steps = 16;
};

bool g_ok = true;

void Gate(bool ok, const char* what) {
  std::printf("  gate %-38s %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) g_ok = false;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_checkpoint.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  BenchScale scale;
  if (smoke) {
    scale.num_buckets = 4096;
    scale.dim = 32;
    scale.num_entities = 200;
    scale.save_load_iters = 2;
    scale.swaps = 3;
    scale.requests_per_thread = 24;
    scale.meta_steps = 8;
  }
  const std::string tmp = "/tmp/metablink-bench-checkpoint";

  // ---- World ---------------------------------------------------------------
  data::GeneratorOptions gopts;
  gopts.seed = 505;
  gopts.shared_vocab_size = 600;
  gopts.domain_vocab_size = 300;
  data::ZeshelLikeGenerator gen(gopts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "serving";
  specs[0].num_entities = scale.num_entities;
  specs[0].num_examples = 160;
  specs[0].num_documents = 32;
  data::Corpus corpus = std::move(*gen.Generate(specs));
  const kb::KnowledgeBase& kb = corpus.kb;
  const auto& examples = corpus.ExamplesIn("serving");

  model::BiEncoderConfig bi_cfg;
  bi_cfg.features.hasher.num_buckets = scale.num_buckets;
  bi_cfg.dim = scale.dim;
  model::CrossEncoderConfig cross_cfg;
  cross_cfg.features.hasher.num_buckets = scale.num_buckets;
  cross_cfg.dim = scale.dim;
  cross_cfg.hidden = scale.dim;
  util::Rng bi_rng(21), cross_rng(22);
  model::BiEncoder bi(bi_cfg, &bi_rng);
  model::CrossEncoder cross(cross_cfg, &cross_rng);

  std::printf("=== Checkpoint benchmark (%zu buckets, dim %zu, %zu entities"
              "%s) ===\n\n",
              scale.num_buckets, scale.dim, scale.num_entities,
              smoke ? ", smoke" : "");

  // ---- Save / load throughput ----------------------------------------------
  const std::string ckpt_path = tmp + "-encoder.ckpt";
  double save_ms = 0.0, load_ms = 0.0;
  std::size_t ckpt_bytes = 0;
  {
    store::CheckpointWriter probe;
    bi.SaveCheckpoint(&probe);
    ckpt_bytes = probe.Serialize().size();
  }
  util::Rng reload_rng(23);
  model::BiEncoder reloaded(bi_cfg, &reload_rng);
  for (std::size_t it = 0; it < scale.save_load_iters; ++it) {
    const auto s0 = Clock::now();
    store::CheckpointWriter ckpt;
    bi.SaveCheckpoint(&ckpt);
    if (!ckpt.WriteToFile(ckpt_path).ok()) return 1;
    save_ms += MsSince(s0);
    const auto l0 = Clock::now();
    auto reader = store::CheckpointReader::FromFile(ckpt_path);
    if (!reader.ok() || !reloaded.LoadCheckpoint(*reader).ok()) return 1;
    load_ms += MsSince(l0);
  }
  save_ms /= scale.save_load_iters;
  load_ms /= scale.save_load_iters;
  const double mb = static_cast<double>(ckpt_bytes) / (1024.0 * 1024.0);
  const double save_mbps = save_ms > 0.0 ? 1000.0 * mb / save_ms : 0.0;
  const double load_mbps = load_ms > 0.0 ? 1000.0 * mb / load_ms : 0.0;
  std::printf("[checkpoint]  %.2f MB  save %7.2f ms (%7.1f MB/s)  "
              "load %7.2f ms (%7.1f MB/s)\n",
              mb, save_ms, save_mbps, load_ms, load_mbps);
  Gate(bi.params()->ValuesCrc32() == reloaded.params()->ValuesCrc32(),
       "checkpoint round trip bit-identical");

  // ---- Kill/resume bit-identity (meta-reweight) ----------------------------
  {
    const std::string meta_path = tmp + "-meta.ckpt";
    std::remove(meta_path.c_str());
    const std::vector<data::LinkingExample> synthetic(examples.begin(),
                                                      examples.begin() + 96);
    const std::vector<data::LinkingExample> seed_set(examples.begin() + 96,
                                                     examples.begin() + 128);
    train::MetaTrainOptions mopts;
    mopts.steps = scale.meta_steps;
    mopts.batch_size = 8;
    mopts.meta_batch_size = 4;
    mopts.seed = 77;
    const auto make_model = [&] {
      util::Rng rng(88);
      return model::BiEncoder(bi_cfg, &rng);
    };
    const auto loss_for = [&](model::BiEncoder* m) {
      return [m, &kb](tensor::Graph* g,
                      const std::vector<data::LinkingExample>& batch) {
        return m->InBatchLoss(g, batch, kb);
      };
    };
    model::BiEncoder straight = make_model();
    train::MetaReweightTrainer ref(mopts, straight.params(),
                                   loss_for(&straight));
    if (!ref.Train(synthetic, seed_set).ok()) return 1;

    model::BiEncoder resumed = make_model();
    train::MetaTrainOptions killed = mopts;
    killed.steps = scale.meta_steps / 2;
    killed.checkpoint_path = meta_path;
    killed.checkpoint_every = 4;
    {
      train::MetaReweightTrainer t(killed, resumed.params(),
                                   loss_for(&resumed));
      if (!t.Train(synthetic, seed_set).ok()) return 1;
    }
    train::MetaTrainOptions full = mopts;
    full.checkpoint_path = meta_path;
    full.checkpoint_every = 4;
    train::MetaReweightTrainer t2(full, resumed.params(), loss_for(&resumed));
    if (!t2.Train(synthetic, seed_set).ok()) return 1;
    Gate(straight.params()->ValuesCrc32() == resumed.params()->ValuesCrc32(),
         "kill/resume bit-identical");
    std::remove(meta_path.c_str());
  }

  // ---- Bundle package / load -----------------------------------------------
  const std::string dir_a = tmp + "-bundle-a";
  const std::string dir_b = tmp + "-bundle-b";
  double bundle_save_ms = 0.0, bundle_load_ms = 0.0;
  {
    const auto& ids = kb.EntitiesInDomain("serving");
    retrieval::DenseIndex index;
    std::vector<kb::Entity> entities;
    entities.reserve(ids.size());
    for (kb::EntityId id : ids) entities.push_back(kb.entity(id));
    model::EncodeScratch scratch;
    tensor::Tensor emb;
    bi.EncodeEntitiesInference(entities, &scratch, &emb);
    if (!index.Build(std::move(emb), ids).ok()) return 1;
    model::CrossEntityCache cache;
    cross.PrecomputeEntities(entities, &cache);

    store::ModelBundleParts parts;
    parts.domain = "serving";
    parts.bi = &bi;
    parts.cross = &cross;
    parts.kb = &kb;
    parts.index = &index;
    parts.rerank_cache = &cache;
    parts.model_version = 1;
    const auto b0 = Clock::now();
    if (!store::SaveModelBundle(parts, dir_a).ok()) return 1;
    bundle_save_ms = MsSince(b0);
    // Version 2 = the same world under a differently-initialized model, so
    // a swap genuinely changes answers.
    util::Rng rng_b(31), rng_bc(32);
    model::BiEncoder bi_b(bi_cfg, &rng_b);
    model::CrossEncoder cross_b(cross_cfg, &rng_bc);
    retrieval::DenseIndex index_b;
    bi_b.EncodeEntitiesInference(entities, &scratch, &emb);
    if (!index_b.Build(std::move(emb), ids).ok()) return 1;
    model::CrossEntityCache cache_b;
    cross_b.PrecomputeEntities(entities, &cache_b);
    parts.bi = &bi_b;
    parts.cross = &cross_b;
    parts.index = &index_b;
    parts.rerank_cache = &cache_b;
    parts.model_version = 2;
    if (!store::SaveModelBundle(parts, dir_b).ok()) return 1;

    const auto l0 = Clock::now();
    auto loaded = store::LoadModelBundle(dir_a);
    if (!loaded.ok()) return 1;
    bundle_load_ms = MsSince(l0);
    std::printf("[bundle]      save %7.2f ms  load+validate %7.2f ms\n",
                bundle_save_ms, bundle_load_ms);
  }

  // ---- Swap stall under load -----------------------------------------------
  serve::ServerOptions sopts;
  sopts.max_batch = 16;
  sopts.flush_deadline_us = 500;
  sopts.retrieve_k = std::min<std::size_t>(64, scale.num_entities);
  sopts.cache_capacity = 0;  // every request exercises the full pipeline
  auto server = serve::LinkingServer::FromBundle(dir_a, sopts);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  std::atomic<std::size_t> link_failures{0};
  std::vector<std::vector<double>> lat(scale.client_threads);
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < scale.client_threads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t r = 0; r < scale.requests_per_thread; ++r) {
        const auto& ex = examples[(t * 7 + r) % examples.size()];
        const auto q0 = Clock::now();
        auto got = (*server)->Link(ex.mention, ex.left_context,
                                   ex.right_context, 5);
        if (!got.ok() || got->empty()) {
          link_failures.fetch_add(1);
          continue;
        }
        lat[t].push_back(MsSince(q0));
      }
    });
  }
  std::vector<double> swap_ms;
  std::size_t swap_failures = 0;
  for (std::size_t s = 0; s < scale.swaps; ++s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::string& dir = (s % 2 == 0) ? dir_b : dir_a;
    const auto s0 = Clock::now();
    if (!(*server)->SwapModel(dir).ok()) ++swap_failures;
    swap_ms.push_back(MsSince(s0));
  }
  for (auto& c : clients) c.join();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  const double link_p50 = Percentile(all, 0.50);
  const double link_p99 = Percentile(all, 0.99);
  const double swap_p99 = Percentile(swap_ms, 0.99);
  const serve::ServerStats stats = (*server)->Stats();
  std::printf("[swap]        %zu swaps under load  publish p99 %7.2f ms  "
              "Link p50 %7.3f ms  p99 %7.3f ms\n\n",
              scale.swaps, swap_p99, link_p50, link_p99);
  Gate(link_failures.load() == 0, "every Link during swaps succeeded");
  Gate(swap_failures == 0 && stats.swaps == scale.swaps,
       "every swap published");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"num_buckets\": %zu, \"dim\": %zu, "
               "\"entities\": %zu, \"swaps\": %zu, \"client_threads\": %zu, "
               "\"smoke\": %s},\n",
               scale.num_buckets, scale.dim, scale.num_entities, scale.swaps,
               scale.client_threads, smoke ? "true" : "false");
  std::fprintf(f,
               "  \"checkpoint\": {\"size_mb\": %.3f, \"save_ms\": %.3f, "
               "\"save_mb_per_s\": %.1f, \"load_ms\": %.3f, "
               "\"load_mb_per_s\": %.1f},\n",
               mb, save_ms, save_mbps, load_ms, load_mbps);
  std::fprintf(f,
               "  \"bundle\": {\"save_ms\": %.3f, \"load_ms\": %.3f},\n",
               bundle_save_ms, bundle_load_ms);
  std::fprintf(f,
               "  \"swap\": {\"count\": %zu, \"publish_p99_ms\": %.3f, "
               "\"link_p50_ms\": %.4f, \"link_p99_ms\": %.4f, "
               "\"final_model_version\": %llu},\n",
               scale.swaps, swap_p99, link_p50, link_p99,
               static_cast<unsigned long long>(stats.model_version));
  std::fprintf(f, "  \"gates_ok\": %s\n", g_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return g_ok ? 0 : 1;
}
