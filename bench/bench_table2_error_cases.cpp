// Reproduces Table II qualitatively: errors made by a model trained on
// "Exact Match" data that a model trained on rewritten (Syn) data fixes.
// The exact-match model learns the surface-matching shortcut, so on Low
// Overlap mentions it retrieves surface-similar but wrong entities; the
// syn-trained model uses context/description semantics instead.

#include <cstdio>

#include "core/pipeline.h"
#include "experiment_common.h"

using namespace metablink;

int main() {
  bench::ExperimentWorld world(bench::ExperimentScale(),
                               bench::ExperimentSeed());
  const std::string domain = "yugioh";
  bench::DomainContext ctx = world.MakeDomainContext(domain);

  core::MetaBlinkPipeline exact_model(world.DefaultConfig());
  auto s1 = exact_model.TrainSupervised(world.corpus().kb, ctx.exact);
  core::MetaBlinkPipeline syn_model(world.DefaultConfig());
  auto s2 = syn_model.TrainSupervised(world.corpus().kb, ctx.syn);
  if (!s1.ok() || !s2.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  std::printf("=== Table II: errors of the Exact-Match model fixed by Syn ===\n");
  int shown = 0;
  for (const auto& ex : ctx.split.test) {
    if (shown >= 5) break;
    auto exact_pred =
        exact_model.Link(world.corpus().kb, domain, ex, 1);
    auto syn_pred = syn_model.Link(world.corpus().kb, domain, ex, 1);
    if (!exact_pred.ok() || !syn_pred.ok()) continue;
    if (exact_pred->empty() || syn_pred->empty()) continue;
    const kb::EntityId exact_top = (*exact_pred)[0].id;
    const kb::EntityId syn_top = (*syn_pred)[0].id;
    if (exact_top != ex.entity_id && syn_top == ex.entity_id) {
      ++shown;
      std::printf("\n[case %d]\n", shown);
      std::printf("  mention      : %s\n", ex.mention.c_str());
      std::printf("  context      : ...%.60s...\n", ex.left_context.c_str());
      std::printf("  gold entity  : %s\n",
                  world.corpus().kb.entity(ex.entity_id).title.c_str());
      std::printf("  ExactMatch ->: %s   (WRONG)\n",
                  world.corpus().kb.entity(exact_top).title.c_str());
      std::printf("  Syn        ->: %s   (correct)\n",
                  world.corpus().kb.entity(syn_top).title.c_str());
    }
  }
  if (shown == 0) {
    std::printf("(no qualifying cases found at this scale/seed)\n");
  }
  return 0;
}
