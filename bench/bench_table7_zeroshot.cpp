// Reproduces Table VII: zero-shot domain transfer. The model is trained on
// the 8 source domains; no in-domain labels exist, so the seed set is built
// with the paper's heuristics (rule-filtered synthetic + self-match).
// Rows: BLINK (general only), BLINK fine-tuned on the heuristic seed, and
// MetaBLINK (general pretraining + Algorithm 1 on syn under heuristic seed).
//
// The general model is trained once and restored from a checkpoint for each
// row/domain (it is identical across them).

#include <cstdio>

#include "experiment_common.h"
#include "gen/seed_selector.h"
#include "util/string_util.h"

using namespace metablink;

namespace {
struct PaperRef {
  const char* domain;
  const char* blink;
  const char* blink_seed;
  const char* meta;
};
const PaperRef kRefs[] = {
    {"forgotten_realms", "paper 84.11", "paper 84.60", "paper 84.81"},
    {"star_trek", "paper 74.45", "paper 74.51", "paper 74.54"},
    {"lego", "paper 72.22", "paper 73.51", "paper 74.11"},
    {"yugioh", "paper 66.30", "paper 68.80", "paper 69.50"},
};
constexpr const char* kCkpt = "/tmp/metablink_table7_general";
}  // namespace

int main() {
  bench::ExperimentWorld world(bench::ExperimentScale(),
                               bench::ExperimentSeed());
  const auto general = world.GeneralData();

  // Train the general (8-domain) BLINK once and checkpoint it.
  {
    core::MetaBlinkPipeline base(world.DefaultConfig());
    auto s = base.TrainSupervised(world.corpus().kb, general);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (auto save = base.Save(kCkpt); !save.ok()) {
      std::fprintf(stderr, "%s\n", save.ToString().c_str());
      return 1;
    }
  }
  auto load_general = [&](core::MetaBlinkPipeline* p) {
    auto s = p->Load(kCkpt);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
  };

  for (const PaperRef& ref : kRefs) {
    bench::DomainContext ctx = world.MakeDomainContext(ref.domain);
    // Zero-shot: ignore the gold split.train; build heuristic seeds instead.
    auto seeds =
        gen::HeuristicSeeds(world.corpus().kb, ref.domain, ctx.syn, 50);
    const auto& test = ctx.split.test;
    bench::PrintHeader(std::string("Table VII: ") + ref.domain +
                       util::StrFormat(" (heuristic seeds=%zu)",
                                       seeds.size()));
    {
      core::MetaBlinkPipeline p(world.DefaultConfig());
      load_general(&p);
      auto r = p.Evaluate(world.corpus().kb, ref.domain, test);
      bench::PrintRow("BLINK", "-", *r, ref.blink);
    }
    {
      // Fine-tune the general model on the heuristic seed.
      core::MetaBlinkPipeline p(world.DefaultConfig());
      load_general(&p);
      auto s = p.TrainSupervised(world.corpus().kb, seeds);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      auto r = p.Evaluate(world.corpus().kb, ref.domain, test);
      bench::PrintRow("BLINK", "Seed", *r, ref.blink_seed);
    }
    {
      // MetaBLINK starting from the general model.
      core::MetaBlinkPipeline p(world.DefaultConfig());
      load_general(&p);
      auto s = p.TrainMeta(world.corpus().kb, ctx.syn, seeds);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      auto r = p.Evaluate(world.corpus().kb, ref.domain, test);
      bench::PrintRow("MetaBLINK", "Syn+Seed", *r, ref.meta);
    }
  }
  std::remove((std::string(kCkpt) + ".bi").c_str());
  std::remove((std::string(kCkpt) + ".cross").c_str());
  return 0;
}
