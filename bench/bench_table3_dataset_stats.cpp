// Reproduces Table III (Zeshel dataset statistics) and Table IV (few-shot
// split sizes) on the synthetic corpus, plus the overlap-category mix per
// test domain (the Sec. VI-A taxonomy).

#include <cstdio>

#include "experiment_common.h"
#include "text/string_metrics.h"

using namespace metablink;

int main() {
  const double scale = bench::ExperimentScale();
  bench::ExperimentWorld world(scale, bench::ExperimentSeed());
  const auto& corpus = world.corpus();

  std::printf("=== Table III: dataset statistics (scale=%.2f) ===\n", scale);
  std::printf("%-10s %-20s %10s %10s %10s\n", "split", "domain", "entities",
              "examples", "documents");
  auto print_group = [&](const char* name,
                         const std::vector<std::string>& domains) {
    for (const auto& d : domains) {
      std::printf("%-10s %-20s %10zu %10zu %10zu\n", name, d.c_str(),
                  corpus.kb.EntitiesInDomain(d).size(),
                  corpus.ExamplesIn(d).size(), corpus.DocumentsIn(d).size());
    }
  };
  print_group("train", data::ZeshelLikeGenerator::TrainDomainNames());
  print_group("dev", data::ZeshelLikeGenerator::DevDomainNames());
  print_group("test", data::ZeshelLikeGenerator::TestDomainNames());

  std::printf("\n=== Table IV: few-shot split (50 train / 50 dev / rest) ===\n");
  std::printf("%-20s %8s %8s %8s\n", "domain", "#train", "#dev", "#test");
  for (const auto& d : data::ZeshelLikeGenerator::TestDomainNames()) {
    auto split = data::MakeFewShotSplit(corpus.ExamplesIn(d), 50, 50,
                                        bench::ExperimentSeed() ^ 0x5711);
    std::printf("%-20s %8zu %8zu %8zu\n", d.c_str(), split.train.size(),
                split.dev.size(), split.test.size());
  }

  std::printf("\n=== Overlap-category mix per test domain (Sec. VI-A) ===\n");
  std::printf("%-20s %8s %8s %8s %8s\n", "domain", "high", "multi", "substr",
              "low");
  for (const auto& d : data::ZeshelLikeGenerator::TestDomainNames()) {
    auto hist = data::CategoryHistogram(corpus.ExamplesIn(d), corpus.kb);
    const double n = static_cast<double>(corpus.ExamplesIn(d).size());
    std::printf("%-20s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", d.c_str(),
                100.0 * hist[text::OverlapCategory::kHighOverlap] / n,
                100.0 * hist[text::OverlapCategory::kMultipleCategories] / n,
                100.0 * hist[text::OverlapCategory::kAmbiguousSubstring] / n,
                100.0 * hist[text::OverlapCategory::kLowOverlap] / n);
  }
  return 0;
}
