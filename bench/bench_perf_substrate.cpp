// Performance-substrate benchmark: times the blocked GEMM kernels, one
// meta-reweighting Step() under each gradient strategy, and batched dense
// retrieval, then writes the measurements as JSON (default
// BENCH_perf_substrate.json in the current directory, argv[1] overrides).
//
// The headline number is the meta Step speedup of the fast path (JVP +
// 8-thread pool) over the baseline configuration that mirrors the original
// implementation (per-example backward passes, dense tape traversal,
// serial); the ISSUE acceptance bar is >= 3x.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "data/generator.h"
#include "model/bi_encoder.h"
#include "retrieval/dense_index.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "train/meta_trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace metablink;

namespace {

double g_sink = 0.0;  // defeats dead-code elimination across timed regions

template <typename Fn>
double BestOfMs(int reps, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

tensor::Tensor RandomTensor(std::size_t rows, std::size_t cols,
                            util::Rng* rng) {
  tensor::Tensor t(rows, cols);
  for (float& v : t.data()) v = rng->NextFloat(-1.0f, 1.0f);
  return t;
}

// ---- Section 1: kernel GEMM ------------------------------------------------

struct GemmTimes {
  double naive_ms = 0.0;
  double kernel_ms = 0.0;
  double pooled_ms = 0.0;
};

GemmTimes BenchGemm(util::ThreadPool* pool) {
  const std::size_t n = 384, k = 384, m = 384;
  util::Rng rng(101);
  tensor::Tensor a = RandomTensor(n, k, &rng);
  tensor::Tensor b = RandomTensor(k, m, &rng);
  tensor::Tensor out(n, m);

  GemmTimes t;
  t.naive_ms = BestOfMs(3, [&] {
    out.SetZero();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += a.at(i, p) * b.at(p, j);
        out.at(i, j) = acc;
      }
    }
    g_sink += out.at(0, 0);
  });
  t.kernel_ms = BestOfMs(5, [&] {
    out.SetZero();
    tensor::Gemm(a, b, &out, nullptr);
    g_sink += out.at(0, 0);
  });
  t.pooled_ms = BestOfMs(5, [&] {
    out.SetZero();
    tensor::Gemm(a, b, &out, pool);
    g_sink += out.at(0, 0);
  });
  return t;
}

// ---- Section 2: meta Step --------------------------------------------------

struct MetaBench {
  data::Corpus corpus;
  model::BiEncoder model;
  std::vector<float> initial;
  std::vector<data::LinkingExample> syn;
  std::vector<data::LinkingExample> seed;

  explicit MetaBench(util::Rng* rng)
      : corpus(MakeCorpus()), model(Config(), rng) {
    initial = model.params()->FlattenValues();
    const auto& examples = corpus.ExamplesIn("d");
    syn.assign(examples.begin(), examples.begin() + 64);
    seed.assign(examples.begin() + 64, examples.begin() + 80);
  }

  static model::BiEncoderConfig Config() {
    model::BiEncoderConfig cfg;
    cfg.features.hasher.num_buckets = 16384;
    cfg.dim = 64;
    return cfg;
  }

  static data::Corpus MakeCorpus() {
    data::GeneratorOptions opts;
    opts.seed = 202;
    opts.shared_vocab_size = 600;
    opts.domain_vocab_size = 300;
    data::ZeshelLikeGenerator gen(opts);
    std::vector<data::DomainSpec> specs(1);
    specs[0].name = "d";
    specs[0].num_entities = 120;
    specs[0].num_examples = 480;
    specs[0].num_documents = 120;
    return std::move(*gen.Generate(specs));
  }

  double TimeStep(train::MetaGrad mode, bool sparse, util::ThreadPool* pool,
                  int reps = 5) {
    train::MetaTrainOptions opts;
    opts.meta_grad = mode;
    opts.sparse_backward = sparse;
    opts.pool = pool;
    model::BiEncoder* m = &model;
    const kb::KnowledgeBase* kb = &corpus.kb;
    train::MetaReweightTrainer meta(
        opts, model.params(),
        [m, kb](tensor::Graph* g,
                const std::vector<data::LinkingExample>& batch) {
          return m->InBatchLoss(g, batch, *kb);
        });
    // Warm up once (allocators, feature caches), then time from identical
    // starting weights each rep: Step takes an optimizer step, so reload
    // outside the timed region.
    (void)model.params()->LoadValues(initial);
    (void)meta.Step(syn, seed);
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
      (void)model.params()->LoadValues(initial);
      const auto t0 = std::chrono::steady_clock::now();
      auto w = meta.Step(syn, seed);
      const auto t1 = std::chrono::steady_clock::now();
      if (!w.ok()) {
        std::fprintf(stderr, "meta step failed: %s\n",
                     w.status().ToString().c_str());
        std::exit(1);
      }
      g_sink += (*w)[0];
      best = std::min(
          best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return best;
  }
};

// ---- Section 3: retrieval --------------------------------------------------

struct TopKTimes {
  double old_style_ms = 0.0;
  double batch_serial_ms = 0.0;
  double batch_pooled_ms = 0.0;
};

TopKTimes BenchTopK(util::ThreadPool* pool) {
  const std::size_t n = 20000, d = 128, nq = 128, k = 64;
  util::Rng rng(303);
  tensor::Tensor embeddings = RandomTensor(n, d, &rng);
  tensor::Tensor queries = RandomTensor(nq, d, &rng);
  std::vector<kb::EntityId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<kb::EntityId>(i);

  retrieval::DenseIndex index;
  {
    tensor::Tensor copy = embeddings;
    auto status = index.Build(std::move(copy), ids);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(1);
    }
  }

  TopKTimes t;
  // The pre-optimization retrieval loop: per query, allocate and fill an
  // O(N) score vector, then partial_sort.
  t.old_style_ms = BestOfMs(3, [&] {
    for (std::size_t q = 0; q < nq; ++q) {
      std::vector<retrieval::ScoredEntity> scored(n);
      for (std::size_t i = 0; i < n; ++i) {
        scored[i].id = ids[i];
        scored[i].score =
            tensor::Dot(queries.row_data(q), embeddings.row_data(i), d);
      }
      std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                        [](const retrieval::ScoredEntity& a,
                           const retrieval::ScoredEntity& b) {
                          if (a.score != b.score) return a.score > b.score;
                          return a.id < b.id;
                        });
      g_sink += scored[0].score;
    }
  });
  t.batch_serial_ms = BestOfMs(3, [&] {
    auto hits = index.BatchTopK(queries, k, nullptr);
    g_sink += hits[0][0].score;
  });
  t.batch_pooled_ms = BestOfMs(3, [&] {
    auto hits = index.BatchTopK(queries, k, pool);
    g_sink += hits[0][0].score;
  });
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_perf_substrate.json";
  util::ThreadPool pool(8);

  std::printf("=== Performance substrate benchmark ===\n\n");

  const GemmTimes gemm = BenchGemm(&pool);
  std::printf("[gemm 384x384x384]\n");
  std::printf("  naive triple loop   %8.2f ms\n", gemm.naive_ms);
  std::printf("  blocked kernel      %8.2f ms  (%.2fx vs naive)\n",
              gemm.kernel_ms, gemm.naive_ms / gemm.kernel_ms);
  std::printf("  blocked + pool(8)   %8.2f ms  (%.2fx vs naive)\n\n",
              gemm.pooled_ms, gemm.naive_ms / gemm.pooled_ms);

  util::Rng model_rng(9);
  MetaBench meta(&model_rng);
  const double base_ms =
      meta.TimeStep(train::MetaGrad::kPerExample, false, nullptr);
  const double sparse_ms =
      meta.TimeStep(train::MetaGrad::kPerExample, true, nullptr);
  const double par_ms =
      meta.TimeStep(train::MetaGrad::kPerExample, true, &pool);
  const double jvp_ms = meta.TimeStep(train::MetaGrad::kJvp, true, nullptr);
  const double jvp_pool_ms = meta.TimeStep(train::MetaGrad::kJvp, true, &pool);
  const double meta_speedup = base_ms / jvp_pool_ms;
  std::printf("[meta step, n=64 synthetic / m=16 seed, dim=64]\n");
  std::printf("  baseline (per-example, dense, serial) %8.2f ms\n", base_ms);
  std::printf("  + sparsity-aware backward             %8.2f ms  (%.2fx)\n",
              sparse_ms, base_ms / sparse_ms);
  std::printf("  + pool(8) per-example passes          %8.2f ms  (%.2fx)\n",
              par_ms, base_ms / par_ms);
  std::printf("  JVP fast path (serial)                %8.2f ms  (%.2fx)\n",
              jvp_ms, base_ms / jvp_ms);
  std::printf("  JVP + pool(8)                         %8.2f ms  (%.2fx)\n",
              jvp_pool_ms, meta_speedup);
  std::printf("  acceptance (>= 3x): %s\n\n",
              meta_speedup >= 3.0 ? "PASS" : "FAIL");

  const TopKTimes topk = BenchTopK(&pool);
  std::printf("[retrieval, 128 queries x 20000 entities x d=128, k=64]\n");
  std::printf("  old per-query alloc + partial_sort    %8.2f ms\n",
              topk.old_style_ms);
  std::printf("  blocked BatchTopK (serial)            %8.2f ms  (%.2fx)\n",
              topk.batch_serial_ms, topk.old_style_ms / topk.batch_serial_ms);
  std::printf("  blocked BatchTopK + pool(8)           %8.2f ms  (%.2fx)\n\n",
              topk.batch_pooled_ms, topk.old_style_ms / topk.batch_pooled_ms);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"gemm_384\": {\"naive_ms\": %.3f, \"kernel_ms\": %.3f, "
               "\"pooled_ms\": %.3f},\n",
               gemm.naive_ms, gemm.kernel_ms, gemm.pooled_ms);
  std::fprintf(
      f,
      "  \"meta_step\": {\"baseline_ms\": %.3f, \"sparse_ms\": %.3f, "
      "\"parallel_ms\": %.3f, \"jvp_ms\": %.3f, \"jvp_pool8_ms\": %.3f, "
      "\"speedup_jvp_pool8_vs_baseline\": %.2f, \"meets_3x\": %s},\n",
      base_ms, sparse_ms, par_ms, jvp_ms, jvp_pool_ms, meta_speedup,
      meta_speedup >= 3.0 ? "true" : "false");
  std::fprintf(f,
               "  \"batch_topk\": {\"old_style_ms\": %.3f, "
               "\"batch_serial_ms\": %.3f, \"batch_pool8_ms\": %.3f, "
               "\"speedup_serial\": %.2f},\n",
               topk.old_style_ms, topk.batch_serial_ms, topk.batch_pooled_ms,
               topk.old_style_ms / topk.batch_serial_ms);
  std::fprintf(f, "  \"checksum\": %.6f\n", g_sink);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
