// Reproduces Table X: the effectiveness of mention rewriting. Trains BLINK
// on Exact Match data, on Syn (rewritten) data, and on Syn* (domain-adapted
// rewrites) per test domain, reporting stage-1 R@64 and stage-2 N.Acc.
//
// Expected shape (paper): Syn > Exact Match on both metrics; Syn* >= Syn in
// most cases.

#include <cstdio>

#include "experiment_common.h"

using namespace metablink;

namespace {
struct PaperRef {
  const char* domain;
  double exact_r, exact_n;
  double syn_r, syn_n;
  double star_r, star_n;
};
const PaperRef kRefs[] = {
    {"lego", 72.07, 25.76, 72.88, 28.59, 73.21, 29.03},
    {"yugioh", 49.54, 20.56, 55.77, 22.84, 56.32, 23.36},
    {"forgotten_realms", 60.08, 38.46, 63.82, 40.33, 64.61, 40.20},
    {"star_trek", 54.22, 20.74, 55.61, 21.31, 55.71, 21.36},
};
}  // namespace

int main() {
  bench::ExperimentWorld world(bench::ExperimentScale(),
                               bench::ExperimentSeed());
  std::printf("=== Table X: effectiveness of mention rewriting ===\n");
  std::printf("%-20s %-12s %8s %8s   %s\n", "domain", "data", "R@64",
              "N.Acc", "paper (R@64 / N.Acc)");
  for (const PaperRef& ref : kRefs) {
    bench::DomainContext ctx = world.MakeDomainContext(ref.domain);
    const auto& test = ctx.split.test;
    auto print = [&](const char* data,
                     const std::vector<data::LinkingExample>& train,
                     double pr, double pn) {
      auto r = bench::RunBlink(world, ref.domain, train, test);
      std::printf("%-20s %-12s %8.2f %8.2f   paper %.2f / %.2f\n", ref.domain,
                  data, 100.0 * r.recall_at_k, 100.0 * r.normalized_acc, pr,
                  pn);
    };
    print("ExactMatch", ctx.exact, ref.exact_r, ref.exact_n);
    print("Syn", ctx.syn, ref.syn_r, ref.syn_n);
    print("Syn*", ctx.syn_star, ref.star_r, ref.star_n);
  }
  return 0;
}
