// Reproduces Table XI: ROUGE-1 F1 between golden mentions of each test
// domain and the mentions produced by each weak-supervision source. The
// paper's claim: T5-generated (Syn) mentions are closer to the gold mention
// distribution than Exact Match mentions, and Syn* is closer still.

#include <algorithm>
#include <cstdio>

#include "experiment_common.h"
#include "text/rouge.h"
#include "text/tokenizer.h"

using namespace metablink;

namespace {
struct PaperRef {
  const char* domain;
  double exact, syn, star;
};
const PaperRef kRefs[] = {
    {"lego", 33.70, 42.91, 43.96},
    {"yugioh", 38.01, 45.90, 46.56},
    {"forgotten_realms", 40.18, 42.26, 42.98},
    {"star_trek", 28.85, 33.98, 34.03},
};

// Corpus-level ROUGE-1 F1 of candidate mentions against the gold mentions
// of the same entity (averaged over candidates with a gold counterpart).
double MentionRouge(const std::vector<data::LinkingExample>& candidates,
                    const std::vector<data::LinkingExample>& gold) {
  text::Tokenizer tok;
  // Index gold mentions by entity.
  std::unordered_map<kb::EntityId, std::vector<std::vector<std::string>>>
      gold_by_entity;
  for (const auto& g : gold) {
    gold_by_entity[g.entity_id].push_back(tok.Tokenize(g.mention));
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& c : candidates) {
    auto it = gold_by_entity.find(c.entity_id);
    if (it == gold_by_entity.end()) continue;
    const auto cand_tokens = tok.Tokenize(c.mention);
    // Best F1 against any gold mention of the entity (mentions vary).
    double best = 0.0;
    for (const auto& ref : it->second) {
      best = std::max(best, text::RougeN(cand_tokens, ref, 1).f1);
    }
    sum += best;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}
}  // namespace

int main() {
  bench::ExperimentWorld world(bench::ExperimentScale(),
                               bench::ExperimentSeed());
  std::printf("=== Table XI: ROUGE-1 F1 of generated vs golden mentions ===\n");
  std::printf("%-20s %10s %10s %10s   %s\n", "domain", "ExactMatch", "Syn",
              "Syn*", "paper (EM / Syn / Syn*)");
  for (const PaperRef& ref : kRefs) {
    bench::DomainContext ctx = world.MakeDomainContext(ref.domain);
    const auto& gold = world.corpus().ExamplesIn(ref.domain);
    std::printf("%-20s %10.2f %10.2f %10.2f   paper %.2f / %.2f / %.2f\n",
                ref.domain, 100.0 * MentionRouge(ctx.exact, gold),
                100.0 * MentionRouge(ctx.syn, gold),
                100.0 * MentionRouge(ctx.syn_star, gold), ref.exact, ref.syn,
                ref.star);
  }
  std::printf("\nexpected shape: Syn > ExactMatch, Syn* >= Syn\n");
  return 0;
}
