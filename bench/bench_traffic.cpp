// Traffic benchmark: exercises the src/load subsystem end to end and
// writes BENCH_traffic.json (argv override; --smoke shrinks the world and
// skips the timed latency-under-load sweep for the CI traffic stage).
//
// Four instrument groups, each with its own hard gates:
//
//   generators:  seeded workload streams (uniform / Zipf / scrambled /
//                read-latest / hot-shift) are deterministic per seed,
//                differ across seeds, and Zipf(0.99) concentrates mass on
//                the head like it says on the tin.
//   lru_sim:     a pure index-space LRU simulation shows WHY skew matters:
//                Zipf hit rate strictly above uniform at equal pool and
//                capacity, and hot-range shifts churn the working set.
//   pacing:      the open-loop driver's arrival schedule is deterministic,
//                exact for fixed intervals, and achieves its target QPS
//                against a no-op issue function.
//   server:      admission control on a real LinkingServer — max_queue=0
//                responses byte-identical to a huge-bound server that never
//                sheds (the pre-admission-control serving path), both shed
//                policies reconcile their books under an 8-thread hammer,
//                and (full mode) an open-loop QPS sweep shows bounded p99
//                with shedding vs. unbounded queue growth without, plus
//                real-server LRU hit rates under uniform / Zipf / hot-shift
//                streams.
//
// The full run measures closed-loop saturation first, then sweeps
// {0.5, 0.75, 1.0, 1.5, 2.0}x saturation against a bounded (shedding)
// server and {0.5, 1.0, 2.0}x against an unbounded one. Latency is
// recorded from the SCHEDULED arrival (coordinated-omission corrected), so
// an overloaded unbounded server shows its queueing collapse honestly.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <list>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/generator.h"
#include "load/histogram.h"
#include "load/open_loop.h"
#include "load/workload.h"
#include "model/bi_encoder.h"
#include "model/cross_encoder.h"
#include "serve/linking_server.h"
#include "train/bi_trainer.h"
#include "util/rng.h"

using namespace metablink;

namespace {

double g_sink = 0.0;

struct TrafficScale {
  std::size_t num_entities = 2000;
  std::size_t pool_size = 256;
  std::size_t stream_len = 2000;
  std::size_t retrieve_k = 64;
  std::size_t cache_capacity = 64;  // < pool_size: misses are possible
  std::size_t client_threads = 8;
  std::size_t train_epochs = 2;
};

load::WorkloadConfig MakeConfig(load::MixKind kind, std::size_t pool,
                                std::uint64_t seed) {
  load::WorkloadConfig cfg;
  cfg.kind = kind;
  cfg.pool_size = pool;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::size_t> Draw(const load::WorkloadConfig& cfg,
                              std::size_t n) {
  auto stream = load::RequestStream::Make(cfg);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<std::size_t> out;
  stream->Fill(n, &out);
  return out;
}

/// Fraction of draws served from an LRU of `capacity` pool indices — the
/// pure-simulation form of the serving cache, so the skew-vs-hit-rate
/// relationship can be gated without timing noise.
double SimulatedLruHitRate(const std::vector<std::size_t>& draws,
                           std::size_t capacity) {
  std::list<std::size_t> order;  // front = most recent
  std::unordered_map<std::size_t, std::list<std::size_t>::iterator> where;
  std::size_t hits = 0;
  for (std::size_t idx : draws) {
    auto it = where.find(idx);
    if (it != where.end()) {
      ++hits;
      order.erase(it->second);
    } else if (where.size() >= capacity) {
      where.erase(order.back());
      order.pop_back();
    }
    order.push_front(idx);
    where[idx] = order.begin();
  }
  return draws.empty() ? 0.0
                       : static_cast<double>(hits) / draws.size();
}

/// Top-1 responses of one serial (single-client) pass of `stream_idx`
/// through `server`; position-comparable across servers because the order
/// is the stream order.
struct SerialReplay {
  std::vector<kb::EntityId> top1_id;
  std::vector<float> top1_score;
  serve::ServerStats stats;
};

SerialReplay ReplaySerial(serve::LinkingServer* server,
                          const std::vector<data::LinkingExample>& pool,
                          const std::vector<std::size_t>& stream_idx) {
  SerialReplay out;
  out.top1_id.reserve(stream_idx.size());
  out.top1_score.reserve(stream_idx.size());
  for (std::size_t idx : stream_idx) {
    const auto& ex = pool[idx];
    auto got = server->Link(ex.mention, ex.left_context, ex.right_context, 5);
    if (!got.ok() || got->empty()) {
      std::fprintf(stderr, "serial replay Link failed: %s\n",
                   got.ok() ? "empty" : got.status().ToString().c_str());
      std::exit(1);
    }
    out.top1_id.push_back((*got)[0].entity_id);
    out.top1_score.push_back((*got)[0].score);
    g_sink += (*got)[0].score;
  }
  out.stats = server->Stats();
  return out;
}

bool SameReplay(const SerialReplay& a, const SerialReplay& b) {
  return a.top1_id == b.top1_id && a.top1_score.size() == b.top1_score.size() &&
         std::memcmp(a.top1_score.data(), b.top1_score.data(),
                     a.top1_score.size() * sizeof(float)) == 0;
}

/// Closed-loop drive: `threads` clients each replay their contiguous slice
/// as fast as the server allows. Returns ok-QPS and the final stats.
struct ClosedLoopResult {
  double qps = 0.0;
  double cache_hit_rate = 0.0;
  serve::ServerStats stats;
};

ClosedLoopResult DriveClosed(serve::LinkingServer* server,
                             const std::vector<data::LinkingExample>& pool,
                             const std::vector<std::size_t>& stream_idx,
                             std::size_t threads) {
  using Clock = std::chrono::steady_clock;
  const std::size_t per = stream_idx.size() / threads;
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t r = 0; r < per; ++r) {
        const auto& ex = pool[stream_idx[t * per + r]];
        auto got =
            server->Link(ex.mention, ex.left_context, ex.right_context, 5);
        if (got.ok() && !got->empty()) g_sink += (*got)[0].score;
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  ClosedLoopResult out;
  out.stats = server->Stats();
  out.qps = wall_s > 0.0 ? per * threads / wall_s : 0.0;
  const auto probes = out.stats.cache_hits + out.stats.cache_misses;
  out.cache_hit_rate =
      probes > 0 ? static_cast<double>(out.stats.cache_hits) / probes : 0.0;
  return out;
}

/// One open-loop measurement point against a live server.
struct LoadPoint {
  double qps_frac = 0.0;    // fraction of measured saturation
  double target_qps = 0.0;
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_start_lag_ms = 0.0;
  double achieved_qps = 0.0;
};

double QuantMs(const load::LatencyHistogram& h, double q) {
  return h.ValueAtQuantile(q) / 1e6;
}

LoadPoint MeasureLoadPoint(serve::LinkingServer* server,
                           const std::vector<data::LinkingExample>& pool,
                           const std::vector<std::size_t>& stream_idx,
                           double frac, double saturation_qps) {
  LoadPoint p;
  p.qps_frac = frac;
  p.target_qps = std::max(1.0, frac * saturation_qps);
  p.total = static_cast<std::size_t>(
      std::clamp(p.target_qps * 2.0, 600.0, 4000.0));
  load::OpenLoopOptions opts;
  opts.target_qps = p.target_qps;
  opts.total_requests = p.total;
  opts.poisson = true;
  opts.seed = 99;
  // The driver can't have more requests outstanding than clients, so the
  // client pool must comfortably exceed the bounded server's
  // max_queue + max_batch or the queue bound would be unreachable and no
  // overload would ever shed — but not by so much that the client threads
  // themselves thrash the scheduler on small machines and pollute the
  // bounded run's p99 with driver-side lag.
  opts.max_clients = 96;
  const auto result = load::OpenLoopDriver::Run(opts, [&](std::size_t i) {
    const auto& ex = pool[stream_idx[i % stream_idx.size()]];
    auto got = server->Link(ex.mention, ex.left_context, ex.right_context, 5);
    if (got.ok()) {
      if (!got->empty()) g_sink += (*got)[0].score;
      return load::IssueOutcome::kOk;
    }
    return got.status().code() == util::StatusCode::kUnavailable
               ? load::IssueOutcome::kShed
               : load::IssueOutcome::kError;
  });
  p.ok = result.ok;
  p.shed = result.shed;
  p.errors = result.errors;
  p.shed_rate = result.issued > 0
                    ? static_cast<double>(result.shed) / result.issued
                    : 0.0;
  p.p50_ms = QuantMs(result.latency_ns, 0.50);
  p.p90_ms = QuantMs(result.latency_ns, 0.90);
  p.p99_ms = QuantMs(result.latency_ns, 0.99);
  p.p999_ms = QuantMs(result.latency_ns, 0.999);
  p.max_start_lag_ms = result.max_start_lag_ms;
  p.achieved_qps = result.achieved_qps;
  return p;
}

void PrintLoadPoint(const char* tag, const LoadPoint& p) {
  std::printf("[%s] %.2fx (%7.0f qps, n=%4zu)  p50 %8.2f  p90 %8.2f  "
              "p99 %8.2f  p999 %8.2f ms  shed %.3f  lag %8.2f ms\n",
              tag, p.qps_frac, p.target_qps, p.total, p.p50_ms, p.p90_ms,
              p.p99_ms, p.p999_ms, p.shed_rate, p.max_start_lag_ms);
}

void JsonLoadPoint(FILE* f, const LoadPoint& p, bool last) {
  std::fprintf(f,
               "    {\"qps_frac\": %.2f, \"target_qps\": %.1f, \"total\": "
               "%zu, \"ok\": %zu, \"shed\": %zu, \"errors\": %zu, "
               "\"shed_rate\": %.4f, \"p50_ms\": %.3f, \"p90_ms\": %.3f, "
               "\"p99_ms\": %.3f, \"p999_ms\": %.3f, \"max_start_lag_ms\": "
               "%.3f, \"achieved_qps\": %.1f}%s\n",
               p.qps_frac, p.target_qps, p.total, p.ok, p.shed, p.errors,
               p.shed_rate, p.p50_ms, p.p90_ms, p.p99_ms, p.p999_ms,
               p.max_start_lag_ms, p.achieved_qps, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_traffic.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  TrafficScale scale;
  if (smoke) {
    scale.num_entities = 200;
    scale.pool_size = 24;
    scale.stream_len = 120;
    scale.retrieve_k = 16;
    scale.cache_capacity = 8;
    scale.train_epochs = 0;  // admission gates don't need trained weights
  }
  std::printf("=== Traffic benchmark (%zu entities, pool %zu, %s) ===\n\n",
              scale.num_entities, scale.pool_size,
              smoke ? "smoke" : "full");

  // ---- Group 1: generator determinism + skew. ------------------------------
  // Gate pool is deliberately small-ish so the skew contrast is visible in
  // few draws; the kinds cover every MixKind except the legacy round-robin
  // (whose bit-compatibility is a unit-test concern).
  const std::size_t gen_pool = 64;
  const load::MixKind kinds[] = {
      load::MixKind::kUniform, load::MixKind::kZipfian,
      load::MixKind::kScrambledZipfian, load::MixKind::kReadLatest,
      load::MixKind::kHotShift};
  bool same_seed_identical = true;
  bool diff_seed_differs = true;
  for (load::MixKind kind : kinds) {
    const auto a = Draw(MakeConfig(kind, gen_pool, 42), 512);
    const auto b = Draw(MakeConfig(kind, gen_pool, 42), 512);
    const auto c = Draw(MakeConfig(kind, gen_pool, 43), 512);
    same_seed_identical = same_seed_identical && a == b;
    diff_seed_differs = diff_seed_differs && a != c;
  }
  double zipf_top_share = 0.0, uniform_top_share = 0.0;
  {
    const std::size_t n = 8192;
    auto TopShare = [&](load::MixKind kind) {
      std::vector<std::size_t> freq(gen_pool, 0);
      for (std::size_t idx : Draw(MakeConfig(kind, gen_pool, 7), n))
        ++freq[idx];
      return static_cast<double>(*std::max_element(freq.begin(), freq.end())) /
             n;
    };
    zipf_top_share = TopShare(load::MixKind::kZipfian);
    uniform_top_share = TopShare(load::MixKind::kUniform);
  }
  const bool skew_ok = zipf_top_share > 3.0 * uniform_top_share;
  std::printf("[generators] same-seed identical: %s  diff-seed differs: %s\n",
              same_seed_identical ? "PASS" : "FAIL",
              diff_seed_differs ? "PASS" : "FAIL");
  std::printf("[generators] top-rank share: zipf %.3f vs uniform %.3f "
              "(>3x: %s)\n",
              zipf_top_share, uniform_top_share, skew_ok ? "PASS" : "FAIL");

  // ---- Group 2: simulated LRU — skew is what caches monetize. --------------
  const std::size_t sim_pool = 256, sim_cap = 64, sim_draws = 20000;
  const double lru_uniform = SimulatedLruHitRate(
      Draw(MakeConfig(load::MixKind::kUniform, sim_pool, 5), sim_draws),
      sim_cap);
  const double lru_zipf = SimulatedLruHitRate(
      Draw(MakeConfig(load::MixKind::kZipfian, sim_pool, 5), sim_draws),
      sim_cap);
  load::WorkloadConfig shift_cfg =
      MakeConfig(load::MixKind::kHotShift, sim_pool, 5);
  shift_cfg.shift_every = 2000;
  shift_cfg.shift_step = 64;
  const double lru_shift =
      SimulatedLruHitRate(Draw(shift_cfg, sim_draws), sim_cap);
  const bool lru_zipf_gt_uniform = lru_zipf > lru_uniform;
  const bool lru_shift_churns = lru_shift < lru_zipf;
  std::printf("[lru_sim] cap %zu / pool %zu: uniform %.3f  zipf %.3f  "
              "hot-shift %.3f  (zipf>uniform: %s, shift churns: %s)\n",
              sim_cap, sim_pool, lru_uniform, lru_zipf, lru_shift,
              lru_zipf_gt_uniform ? "PASS" : "FAIL",
              lru_shift_churns ? "PASS" : "FAIL");

  // ---- Group 3: open-loop pacing sanity. -----------------------------------
  bool fixed_offsets_exact = true;
  {
    load::OpenLoopOptions fopts;
    fopts.target_qps = 2000.0;
    fopts.total_requests = 16;
    fopts.poisson = false;
    const auto offsets = load::OpenLoopDriver::ArrivalOffsetsNs(fopts);
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      fixed_offsets_exact =
          fixed_offsets_exact && offsets[i] == i * std::uint64_t{500000};
    }
  }
  bool poisson_deterministic = false;
  {
    load::OpenLoopOptions popts;
    popts.target_qps = 10000.0;
    popts.total_requests = 4096;
    popts.poisson = true;
    popts.seed = 21;
    poisson_deterministic = load::OpenLoopDriver::ArrivalOffsetsNs(popts) ==
                            load::OpenLoopDriver::ArrivalOffsetsNs(popts);
  }
  double pacing_ratio = 0.0;
  {
    load::OpenLoopOptions ropts;
    ropts.target_qps = 2000.0;
    ropts.total_requests = 1000;
    ropts.poisson = false;
    const auto run = load::OpenLoopDriver::Run(
        ropts, [](std::size_t) { return load::IssueOutcome::kOk; });
    pacing_ratio = run.achieved_qps / ropts.target_qps;
  }
  const bool pacing_ok = fixed_offsets_exact && poisson_deterministic &&
                         pacing_ratio > 0.7 && pacing_ratio < 1.3;
  std::printf("[pacing] fixed offsets exact: %s  poisson deterministic: %s  "
              "no-op achieved/target %.3f  -> %s\n\n",
              fixed_offsets_exact ? "PASS" : "FAIL",
              poisson_deterministic ? "PASS" : "FAIL", pacing_ratio,
              pacing_ok ? "PASS" : "FAIL");

  // ---- World + server factory (shared by every server-side gate). ----------
  data::GeneratorOptions gopts;
  gopts.seed = 505;
  gopts.shared_vocab_size = 600;
  gopts.domain_vocab_size = 300;
  data::ZeshelLikeGenerator gen(gopts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "traffic";
  specs[0].num_entities = scale.num_entities;
  specs[0].num_examples = std::max<std::size_t>(scale.pool_size, 64);
  specs[0].num_documents = 32;
  data::Corpus corpus = std::move(*gen.Generate(specs));
  const kb::KnowledgeBase& kb = corpus.kb;
  const auto& pool = corpus.ExamplesIn("traffic");

  model::BiEncoderConfig bi_cfg;
  bi_cfg.features.hasher.num_buckets = 16384;
  bi_cfg.dim = 64;
  model::CrossEncoderConfig cross_cfg;
  cross_cfg.features.hasher.num_buckets = 16384;
  cross_cfg.dim = 64;
  cross_cfg.hidden = 64;
  util::Rng bi_rng(31), cross_rng(32);
  model::BiEncoder bi(bi_cfg, &bi_rng);
  model::CrossEncoder cross(cross_cfg, &cross_rng);
  if (scale.train_epochs > 0) {
    train::TrainOptions bopts;
    bopts.epochs = scale.train_epochs;
    train::BiEncoderTrainer trainer(bopts);
    auto trained = trainer.Train(&bi, kb, pool);
    if (!trained.ok()) {
      std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
      return 1;
    }
  }

  serve::ServerOptions base_opts;
  base_opts.max_batch = 16;
  base_opts.flush_deadline_us = 500;
  base_opts.retrieve_k = scale.retrieve_k;
  base_opts.cache_capacity = scale.cache_capacity;
  auto MakeServer = [&](const serve::ServerOptions& sopts) {
    auto server =
        serve::LinkingServer::Create(&bi, &cross, &kb, "traffic", sopts);
    if (!server.ok()) {
      std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*server);
  };

  // ---- Group 4a: max_queue=0 byte-identity. --------------------------------
  // The unbounded default (pre-PR serving path: admission is counters-only)
  // must answer a skewed stream byte-identically to a bounded server whose
  // queue bound is never reached — and replaying the same stream twice
  // through unbounded servers must be deterministic.
  const auto ident_stream = Draw(
      MakeConfig(load::MixKind::kZipfian, scale.pool_size, 11),
      scale.stream_len);
  const auto replay_unbounded_a =
      ReplaySerial(MakeServer(base_opts).get(), pool, ident_stream);
  const auto replay_unbounded_b =
      ReplaySerial(MakeServer(base_opts).get(), pool, ident_stream);
  serve::ServerOptions bounded_opts = base_opts;
  bounded_opts.max_queue = std::size_t{1} << 20;
  const auto replay_bounded =
      ReplaySerial(MakeServer(bounded_opts).get(), pool, ident_stream);
  const bool ident_deterministic =
      SameReplay(replay_unbounded_a, replay_unbounded_b);
  const bool ident_bounded = SameReplay(replay_unbounded_a, replay_bounded) &&
                             replay_bounded.stats.rejected == 0 &&
                             replay_bounded.stats.shed == 0;
  std::printf("[identity] unbounded replay deterministic: %s  "
              "huge-bound byte-identical: %s\n",
              ident_deterministic ? "PASS" : "FAIL",
              ident_bounded ? "PASS" : "FAIL");

  // ---- Group 4b: shed policies reconcile under an 8-thread hammer. ---------
  // max_batch=1 + immediate flush makes service slow relative to 8
  // submitting threads and max_queue=2, so both policies must actually
  // shed, and afterwards every ledger identity must hold exactly.
  struct HammerResult {
    std::uint64_t ok = 0;
    std::uint64_t unavailable = 0;
    serve::ServerStats stats;
    bool reconciled = false;
  };
  auto Hammer = [&](serve::LoadShedPolicy policy) {
    serve::ServerOptions hopts = base_opts;
    hopts.max_batch = 1;
    hopts.flush_deadline_us = 0;
    hopts.max_queue = 2;
    hopts.shed_policy = policy;
    hopts.cache_capacity = 0;  // every request pays full service cost
    auto server = MakeServer(hopts);
    const std::size_t threads = scale.client_threads, per = 25;
    std::vector<std::uint64_t> ok(threads, 0), unavail(threads, 0);
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        for (std::size_t r = 0; r < per; ++r) {
          const auto& ex = pool[(t * per + r) % scale.pool_size];
          auto got =
              server->Link(ex.mention, ex.left_context, ex.right_context, 5);
          if (got.ok()) {
            ++ok[t];
          } else if (got.status().code() == util::StatusCode::kUnavailable) {
            ++unavail[t];
          }
        }
      });
    }
    for (auto& c : clients) c.join();
    HammerResult r;
    r.stats = server->Stats();
    for (std::size_t t = 0; t < threads; ++t) {
      r.ok += ok[t];
      r.unavailable += unavail[t];
    }
    const std::uint64_t issued = threads * per;
    r.reconciled = r.ok + r.unavailable == issued &&
                   r.stats.accepted + r.stats.rejected == issued &&
                   r.stats.accepted == r.stats.requests + r.stats.shed &&
                   r.unavailable == r.stats.rejected + r.stats.shed &&
                   r.stats.queue_depth == 0 && r.stats.in_flight == 0 &&
                   r.stats.queue_depth_high_water <= 2 &&
                   r.stats.rejected + r.stats.shed > 0;
    return r;
  };
  const HammerResult reject_new = Hammer(serve::LoadShedPolicy::kRejectNew);
  const HammerResult drop_oldest =
      Hammer(serve::LoadShedPolicy::kDropOldest);
  std::printf("[shed] reject-new: ok=%llu rejected=%llu -> %s   "
              "drop-oldest: ok=%llu shed=%llu -> %s\n\n",
              static_cast<unsigned long long>(reject_new.ok),
              static_cast<unsigned long long>(reject_new.stats.rejected),
              reject_new.reconciled ? "PASS" : "FAIL",
              static_cast<unsigned long long>(drop_oldest.ok),
              static_cast<unsigned long long>(drop_oldest.stats.shed),
              drop_oldest.reconciled ? "PASS" : "FAIL");

  // ---- Full mode only: real-server LRU rates + latency-under-load. ---------
  double srv_hit_uniform = 0.0, srv_hit_zipf = 0.0, srv_hit_shift = 0.0;
  bool srv_lru_ok = true;
  double saturation_qps = 0.0;
  std::vector<LoadPoint> bounded_curve, unbounded_curve;
  bool load_gates_ok = true;
  double p99_bounded_2x = 0.0, p99_unbounded_2x = 0.0;
  if (!smoke) {
    // Real-server cache hit rates: same server config, three stream
    // shapes, cache_capacity < pool so uniform traffic misses often.
    auto ServedHitRate = [&](const load::WorkloadConfig& cfg) {
      const auto r = DriveClosed(MakeServer(base_opts).get(), pool,
                                 Draw(cfg, scale.stream_len),
                                 scale.client_threads);
      return r.cache_hit_rate;
    };
    srv_hit_uniform = ServedHitRate(
        MakeConfig(load::MixKind::kUniform, scale.pool_size, 13));
    srv_hit_zipf = ServedHitRate(
        MakeConfig(load::MixKind::kZipfian, scale.pool_size, 13));
    load::WorkloadConfig srv_shift =
        MakeConfig(load::MixKind::kHotShift, scale.pool_size, 13);
    srv_shift.shift_every = scale.stream_len / 8;
    srv_shift.shift_step = scale.pool_size / 4;
    srv_hit_shift = ServedHitRate(srv_shift);
    srv_lru_ok = srv_hit_zipf > srv_hit_uniform;
    std::printf("[server_lru] cap %zu / pool %zu: uniform %.3f  zipf %.3f  "
                "hot-shift %.3f  (zipf>uniform: %s)\n",
                scale.cache_capacity, scale.pool_size, srv_hit_uniform,
                srv_hit_zipf, srv_hit_shift, srv_lru_ok ? "PASS" : "FAIL");

    // Saturation: closed-loop throughput of the swept configuration.
    const auto sat_stream = Draw(
        MakeConfig(load::MixKind::kZipfian, scale.pool_size, 17),
        scale.stream_len);
    saturation_qps = DriveClosed(MakeServer(base_opts).get(), pool,
                                 sat_stream, scale.client_threads)
                         .qps;
    std::printf("[saturation] closed-loop %zu clients: %.0f qps\n",
                scale.client_threads, saturation_qps);

    // The sweep. Bounded: small queue + reject-new keeps admitted latency
    // bounded and sheds the excess. Unbounded: the pre-PR behavior —
    // everything queues, and the coordinated-omission-corrected latency
    // shows the backlog growing for as long as the overload lasts.
    serve::ServerOptions shed_opts = base_opts;
    shed_opts.max_queue = 32;
    shed_opts.shed_policy = serve::LoadShedPolicy::kRejectNew;
    for (double frac : {0.5, 0.75, 1.0, 1.5, 2.0}) {
      auto server = MakeServer(shed_opts);
      bounded_curve.push_back(MeasureLoadPoint(server.get(), pool,
                                               sat_stream, frac,
                                               saturation_qps));
      PrintLoadPoint("bounded  ", bounded_curve.back());
    }
    for (double frac : {0.5, 1.0, 2.0}) {
      auto server = MakeServer(base_opts);
      unbounded_curve.push_back(MeasureLoadPoint(server.get(), pool,
                                                 sat_stream, frac,
                                                 saturation_qps));
      PrintLoadPoint("unbounded", unbounded_curve.back());
    }
    p99_bounded_2x = bounded_curve.back().p99_ms;
    p99_unbounded_2x = unbounded_curve.back().p99_ms;
    const bool bounded_beats_unbounded = p99_unbounded_2x > p99_bounded_2x;
    const bool shed_at_2x = bounded_curve.back().shed > 0;
    const bool quiet_at_half = bounded_curve.front().shed_rate < 0.01;
    load_gates_ok = bounded_beats_unbounded && shed_at_2x && quiet_at_half;
    std::printf("[load gates] p99@2x bounded %.1f ms < unbounded %.1f ms: "
                "%s  shed@2x>0: %s  shed@0.5x~0: %s\n",
                p99_bounded_2x, p99_unbounded_2x,
                bounded_beats_unbounded ? "PASS" : "FAIL",
                shed_at_2x ? "PASS" : "FAIL",
                quiet_at_half ? "PASS" : "FAIL");
  }

  const bool pass = same_seed_identical && diff_seed_differs && skew_ok &&
                    lru_zipf_gt_uniform && lru_shift_churns && pacing_ok &&
                    ident_deterministic && ident_bounded &&
                    reject_new.reconciled && drop_oldest.reconciled &&
                    srv_lru_ok && load_gates_ok;
  std::printf("\n  traffic gates: %s\n", pass ? "PASS" : "FAIL");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"entities\": %zu, \"pool_size\": %zu, "
               "\"stream_len\": %zu, \"retrieve_k\": %zu, "
               "\"cache_capacity\": %zu, \"client_threads\": %zu, "
               "\"smoke\": %s},\n",
               scale.num_entities, scale.pool_size, scale.stream_len,
               scale.retrieve_k, scale.cache_capacity, scale.client_threads,
               smoke ? "true" : "false");
  std::fprintf(f,
               "  \"generator_gates\": {\"same_seed_identical\": %s, "
               "\"diff_seed_differs\": %s, \"zipf_top_share\": %.4f, "
               "\"uniform_top_share\": %.4f, \"skew_ok\": %s},\n",
               same_seed_identical ? "true" : "false",
               diff_seed_differs ? "true" : "false", zipf_top_share,
               uniform_top_share, skew_ok ? "true" : "false");
  std::fprintf(f,
               "  \"lru_sim\": {\"pool\": %zu, \"capacity\": %zu, "
               "\"uniform_hit\": %.4f, \"zipf_hit\": %.4f, "
               "\"hot_shift_hit\": %.4f, \"zipf_gt_uniform\": %s, "
               "\"shift_churns\": %s},\n",
               sim_pool, sim_cap, lru_uniform, lru_zipf, lru_shift,
               lru_zipf_gt_uniform ? "true" : "false",
               lru_shift_churns ? "true" : "false");
  std::fprintf(f,
               "  \"pacing\": {\"fixed_offsets_exact\": %s, "
               "\"poisson_deterministic\": %s, \"noop_achieved_over_target\": "
               "%.4f, \"pacing_ok\": %s},\n",
               fixed_offsets_exact ? "true" : "false",
               poisson_deterministic ? "true" : "false", pacing_ratio,
               pacing_ok ? "true" : "false");
  std::fprintf(f,
               "  \"byte_identity\": {\"unbounded_deterministic\": %s, "
               "\"huge_bound_identical\": %s},\n",
               ident_deterministic ? "true" : "false",
               ident_bounded ? "true" : "false");
  std::fprintf(f,
               "  \"shed_policies\": {\"reject_new\": {\"ok\": %llu, "
               "\"rejected\": %llu, \"shed\": %llu, \"reconciled\": %s}, "
               "\"drop_oldest\": {\"ok\": %llu, \"rejected\": %llu, "
               "\"shed\": %llu, \"reconciled\": %s}},\n",
               static_cast<unsigned long long>(reject_new.ok),
               static_cast<unsigned long long>(reject_new.stats.rejected),
               static_cast<unsigned long long>(reject_new.stats.shed),
               reject_new.reconciled ? "true" : "false",
               static_cast<unsigned long long>(drop_oldest.ok),
               static_cast<unsigned long long>(drop_oldest.stats.rejected),
               static_cast<unsigned long long>(drop_oldest.stats.shed),
               drop_oldest.reconciled ? "true" : "false");
  if (!smoke) {
    std::fprintf(f,
                 "  \"server_lru\": {\"capacity\": %zu, \"pool\": %zu, "
                 "\"uniform_hit\": %.4f, \"zipf_hit\": %.4f, "
                 "\"hot_shift_hit\": %.4f, \"zipf_gt_uniform\": %s},\n",
                 scale.cache_capacity, scale.pool_size, srv_hit_uniform,
                 srv_hit_zipf, srv_hit_shift, srv_lru_ok ? "true" : "false");
    std::fprintf(f, "  \"saturation_qps\": %.1f,\n", saturation_qps);
    std::fprintf(f, "  \"latency_under_load_bounded\": [\n");
    for (std::size_t i = 0; i < bounded_curve.size(); ++i)
      JsonLoadPoint(f, bounded_curve[i], i + 1 == bounded_curve.size());
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"latency_under_load_unbounded\": [\n");
    for (std::size_t i = 0; i < unbounded_curve.size(); ++i)
      JsonLoadPoint(f, unbounded_curve[i], i + 1 == unbounded_curve.size());
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"load_gates\": {\"p99_bounded_2x_ms\": %.3f, "
                 "\"p99_unbounded_2x_ms\": %.3f, "
                 "\"bounded_p99_below_unbounded\": %s, \"shed_at_2x\": %s, "
                 "\"no_shed_at_half\": %s},\n",
                 p99_bounded_2x, p99_unbounded_2x,
                 p99_unbounded_2x > p99_bounded_2x ? "true" : "false",
                 bounded_curve.empty() || bounded_curve.back().shed > 0
                     ? "true"
                     : "false",
                 bounded_curve.empty() ||
                         bounded_curve.front().shed_rate < 0.01
                     ? "true"
                     : "false");
  }
  std::fprintf(f, "  \"checksum\": %.6f,\n", g_sink);
  std::fprintf(f, "  \"pass\": %s\n", pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
