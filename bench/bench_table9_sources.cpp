// Reproduces Table IX: zero-shot domain transfer on Lego and YuGiOh with
// different training sources. Shows that general-domain data and synthetic
// data both improve transfer, and combining every source is best. The
// general-pretrained model is checkpointed once and reused across rows.

#include <cstdio>

#include "experiment_common.h"
#include "gen/seed_selector.h"

using namespace metablink;

namespace {
struct PaperRef {
  const char* data;
  double lego;
  double yugioh;
};
const PaperRef kRefs[] = {
    {"-", 72.22, 66.30},
    {"Seed", 73.51, 68.80},
    {"Syn+Seed", 74.11, 69.50},
    {"General+Seed", 74.82, 68.90},
    {"General+Syn+Seed", 74.90, 69.52},
    {"General+Syn*+Seed", 74.90, 69.55},
};
constexpr const char* kCkpt = "/tmp/metablink_table9_general";
}  // namespace

int main() {
  bench::ExperimentWorld world(bench::ExperimentScale(),
                               bench::ExperimentSeed());
  const auto general = world.GeneralData();

  {
    core::MetaBlinkPipeline base(world.DefaultConfig());
    auto s = base.TrainSupervised(world.corpus().kb, general);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (auto save = base.Save(kCkpt); !save.ok()) {
      std::fprintf(stderr, "%s\n", save.ToString().c_str());
      return 1;
    }
  }
  auto fresh = [&](bool with_general) {
    auto p = std::make_unique<core::MetaBlinkPipeline>(world.DefaultConfig());
    if (with_general) {
      auto s = p->Load(kCkpt);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    return p;
  };

  for (const char* domain : {"lego", "yugioh"}) {
    bench::DomainContext ctx = world.MakeDomainContext(domain);
    auto seeds = gen::HeuristicSeeds(world.corpus().kb, domain, ctx.syn, 50);
    const auto& test = ctx.split.test;
    const bool is_lego = std::string(domain) == "lego";
    const kb::KnowledgeBase& kb = world.corpus().kb;

    bench::PrintHeader(std::string("Table IX: ") + domain);
    char note[8][32];
    for (int i = 0; i < 6; ++i) {
      std::snprintf(note[i], sizeof(note[i]), "paper %.2f",
                    is_lego ? kRefs[i].lego : kRefs[i].yugioh);
    }

    {  // BLINK on general only.
      auto p = fresh(true);
      bench::PrintRow("BLINK", "-", *p->Evaluate(kb, domain, test), note[0]);
    }
    {  // BLINK general + seed fine-tuning.
      auto p = fresh(true);
      (void)p->TrainSupervised(kb, seeds);
      bench::PrintRow("BLINK", "Seed", *p->Evaluate(kb, domain, test),
                      note[1]);
    }
    {  // MetaBLINK from scratch on syn.
      auto p = fresh(false);
      (void)p->TrainMeta(kb, ctx.syn, seeds);
      bench::PrintRow("MetaBLINK", "Syn+Seed", *p->Evaluate(kb, domain, test),
                      note[2]);
    }
    {  // MetaBLINK from the general model, D_f = general data.
      auto p = fresh(true);
      (void)p->TrainMeta(kb, general, seeds);
      bench::PrintRow("MetaBLINK", "General+Seed",
                      *p->Evaluate(kb, domain, test), note[3]);
    }
    {  // MetaBLINK from the general model, D_f = syn.
      auto p = fresh(true);
      (void)p->TrainMeta(kb, ctx.syn, seeds);
      bench::PrintRow("MetaBLINK", "General+Syn+Seed",
                      *p->Evaluate(kb, domain, test), note[4]);
    }
    {  // MetaBLINK from the general model, D_f = syn*.
      auto p = fresh(true);
      (void)p->TrainMeta(kb, ctx.syn_star, seeds);
      bench::PrintRow("MetaBLINK", "General+Syn*+Seed",
                      *p->Evaluate(kb, domain, test), note[5]);
    }
  }
  std::remove((std::string(kCkpt) + ".bi").c_str());
  std::remove((std::string(kCkpt) + ".cross").c_str());
  return 0;
}
