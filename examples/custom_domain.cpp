// Building a linker for YOUR OWN entity dictionary, without the synthetic
// generator: hand-authored entities (a company-project dictionary, one of
// the paper's motivating domains), raw unlabeled documents, and a handful
// of labeled seed mentions. Demonstrates the lower-level pipeline API:
// knowledge-base construction, fact triples, weak supervision, meta
// training, and end-to-end linking.

#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "data/example.h"

using namespace metablink;

namespace {

kb::EntityId MustAdd(kb::KnowledgeBase* kb, const std::string& title,
                     const std::string& description) {
  kb::Entity e;
  e.title = title;
  e.description = description;
  e.domain = "projects";
  auto id = kb->AddEntity(std::move(e));
  if (!id.ok()) {
    std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    std::abort();
  }
  return *id;
}

data::LinkingExample Seed(const std::string& mention, const std::string& left,
                          const std::string& right, kb::EntityId id) {
  data::LinkingExample ex;
  ex.mention = mention;
  ex.left_context = left;
  ex.right_context = right;
  ex.entity_id = id;
  ex.domain = "projects";
  return ex;
}

}  // namespace

int main() {
  data::Corpus corpus;
  auto& kb = corpus.kb;

  // --- The target dictionary: internal project entities.
  auto atlas = MustAdd(&kb, "project atlas",
                       "project atlas is the cloud migration program moving "
                       "billing and invoicing services to the new platform "
                       "also known as the migration effort atlas");
  auto borealis = MustAdd(&kb, "borealis",
                          "borealis is the machine learning recommendation "
                          "engine powering search ranking and discovery "
                          "sometimes called the ranking engine");
  auto cascade = MustAdd(&kb, "cascade (pipeline)",
                         "cascade is the data pipeline rebuilding ingestion "
                         "of telemetry events into the warehouse");
  auto cascade_ui = MustAdd(&kb, "cascade (dashboard)",
                            "cascade is the dashboard suite visualizing "
                            "pipeline health metrics for operators");
  MustAdd(&kb, "quill", "quill is the documentation toolchain generating "
                        "the developer portal from source comments");

  // Facts (G = {E,R,T}): project dependencies.
  kb::RelationId depends = kb.AddRelation("depends_on");
  (void)kb.AddTriple(cascade_ui, depends, cascade);
  (void)kb.AddTriple(borealis, depends, cascade);

  // --- Unlabeled internal documents (meeting notes, tickets).
  corpus.documents["projects"] = {
      "the quarterly review covered project atlas and the billing cutover "
      "timeline before discussing borealis ranking regressions",
      "oncall report cascade (pipeline) ingestion lag reached two hours "
      "while the cascade (dashboard) showed stale health metrics",
      "quill publish job failed again blocking the developer portal "
      "refresh for project atlas documentation",
      "search ranking experiments on borealis improved discovery clicks "
      "while cascade (pipeline) backfilled telemetry events",
  };

  // --- A handful of labeled seed mentions (what a team can afford).
  std::vector<data::LinkingExample> seeds = {
      Seed("the migration effort", "finance asked when", "finishes moving "
           "invoicing to the platform", atlas),
      Seed("ranking engine", "relevance regressions in the",
           "were traced to stale features", borealis),
      Seed("cascade", "operators watched the", "health metrics dashboard "
           "during the incident", cascade_ui),
      Seed("cascade", "telemetry ingestion through", "was delayed by the "
           "warehouse maintenance", cascade),
  };

  // --- Source-domain supervision for the rewriter: reuse the seeds (tiny
  // worlds can self-train; with real data, pass any labeled sibling domain).
  core::PipelineConfig config;
  config.seed = 7;
  // Tiny world: shrink training schedules accordingly.
  config.meta_bi.steps = 120;
  config.meta_cross.steps = 40;
  config.eval.k = 3;
  core::MetaBlinkPipeline pipeline(config);
  corpus.examples["projects"] = seeds;
  if (auto s = pipeline.TrainRewriter(corpus, {"projects"}); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto syn = pipeline.BuildSyntheticData(corpus, "projects", /*adapt=*/true);
  if (!syn.ok()) {
    std::fprintf(stderr, "%s\n", syn.status().ToString().c_str());
    return 1;
  }
  std::printf("weak supervision found %zu synthetic pairs in %zu documents\n",
              syn->size(), corpus.documents["projects"].size());
  for (const auto& pair : *syn) {
    std::printf("  [%s] \"%s\" <- ...%s\n",
                kb.entity(pair.entity_id).title.c_str(),
                pair.mention.c_str(),
                pair.left_context.substr(0, 30).c_str());
  }

  if (auto s = pipeline.TrainMeta(kb, *syn, seeds); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // --- Link new mentions.
  struct Probe {
    const char* mention;
    const char* left;
    const char* right;
  };
  const Probe probes[] = {
      {"atlas", "billing asked whether", "migration slips to next quarter"},
      {"the ranking engine", "clicks dropped after", "deployed new features"},
      {"cascade", "ingestion lag alarms from", "paged the data team"},
  };
  std::printf("\nlinking new mentions:\n");
  for (const Probe& p : probes) {
    data::LinkingExample ex;
    ex.mention = p.mention;
    ex.left_context = p.left;
    ex.right_context = p.right;
    ex.domain = "projects";
    auto ranked = pipeline.Link(kb, "projects", ex, 2);
    if (!ranked.ok()) {
      std::fprintf(stderr, "%s\n", ranked.status().ToString().c_str());
      continue;
    }
    std::printf("  \"%s\"\n", p.mention);
    for (const auto& c : *ranked) {
      std::printf("    -> %-24s score=%.3f\n", kb.entity(c.id).title.c_str(),
                  c.score);
    }
  }

  // Fact lookups still work alongside linking.
  std::printf("\ndependencies of '%s':\n", kb.entity(cascade_ui).title.c_str());
  for (const auto& t : kb.TriplesFrom(cascade_ui)) {
    std::printf("  %s -> %s\n", kb.RelationName(t.relation).c_str(),
                kb.entity(t.tail).title.c_str());
  }
  return 0;
}
