// Few-shot linking on the paper's Lego domain (the workload the paper's
// intro motivates: a specialized entity dictionary with almost no labels).
// Compares plain BLINK fine-tuning against MetaBLINK on the same 50-example
// budget, then links a few held-out mentions with the winning model.

#include <cstdio>

#include "core/pipeline.h"
#include "data/generator.h"
#include "util/string_util.h"

using namespace metablink;

int main() {
  // A reduced paper corpus: the 8 source domains plus Lego.
  data::GeneratorOptions gopts;
  gopts.seed = 2026;
  auto specs = data::ZeshelLikeGenerator::PaperDomains(0.35);
  data::ZeshelLikeGenerator generator(gopts);
  auto corpus = generator.Generate(specs);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto split = data::MakeFewShotSplit(corpus->ExamplesIn("lego"), 50, 50, 7);
  std::printf("lego: %zu entities, %zu seed examples, %zu test mentions\n",
              corpus->kb.EntitiesInDomain("lego").size(), split.train.size(),
              split.test.size());

  core::PipelineConfig config;
  config.seed = 99;

  // --- Baseline: BLINK fine-tuned on the 50 seeds only.
  core::MetaBlinkPipeline blink(config);
  if (auto s = blink.TrainSupervised(corpus->kb, split.train); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto blink_result = blink.Evaluate(corpus->kb, "lego", split.test);

  // --- MetaBLINK: weak supervision + meta reweighting under the same seeds.
  core::MetaBlinkPipeline meta(config);
  if (auto s = meta.TrainRewriter(
          *corpus, data::ZeshelLikeGenerator::TrainDomainNames());
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto syn = meta.BuildSyntheticData(*corpus, "lego", /*adapt=*/true);
  if (!syn.ok()) {
    std::fprintf(stderr, "%s\n", syn.status().ToString().c_str());
    return 1;
  }
  if (auto s = meta.TrainMeta(corpus->kb, *syn, split.train); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto meta_result = meta.Evaluate(corpus->kb, "lego", split.test);

  std::printf("\n%-12s %8s %8s %8s\n", "method", "R@64", "N.Acc", "U.Acc");
  std::printf("%-12s %8.2f %8.2f %8.2f\n", "BLINK",
              100.0 * blink_result->recall_at_k,
              100.0 * blink_result->normalized_acc,
              100.0 * blink_result->unnormalized_acc);
  std::printf("%-12s %8.2f %8.2f %8.2f   (syn pairs: %zu)\n", "MetaBLINK",
              100.0 * meta_result->recall_at_k,
              100.0 * meta_result->normalized_acc,
              100.0 * meta_result->unnormalized_acc, syn->size());

  std::printf("\nsample links (MetaBLINK):\n");
  for (std::size_t i = 0; i < 3 && i < split.test.size(); ++i) {
    const auto& ex = split.test[i];
    auto ranked = meta.Link(corpus->kb, "lego", ex, 1);
    if (!ranked.ok() || ranked->empty()) continue;
    const auto& top = corpus->kb.entity((*ranked)[0].id);
    std::printf("  \"%s\" -> %s %s\n", ex.mention.c_str(), top.title.c_str(),
                (*ranked)[0].id == ex.entity_id ? "[correct]" : "[wrong]");
  }
  return 0;
}
