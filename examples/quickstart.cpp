// Quickstart: train a few-shot entity linker on a synthetic world and link
// a mention. This is the five-minute tour of the public API:
//
//   1. generate (or load) a corpus: a knowledge base + labeled source
//      domains + an unlabeled target domain,
//   2. FewShotLinker::Fit — runs the whole MetaBLINK recipe (rewriter ->
//      synthetic data -> meta-training) with 50 seed examples,
//   3. Evaluate on held-out mentions and Link a single mention.

#include <cstdio>

#include "core/few_shot_linker.h"
#include "data/generator.h"

using metablink::core::FewShotLinker;
using metablink::core::PipelineConfig;
using metablink::data::DomainSpec;
using metablink::data::MakeFewShotSplit;
using metablink::data::ZeshelLikeGenerator;

int main() {
  // --- 1. Build a small world: two labeled source domains and one target
  // domain with only unlabeled documents plus a handful of labels.
  ZeshelLikeGenerator generator;
  std::vector<DomainSpec> specs(3);
  specs[0].name = "starships";
  specs[0].num_entities = 200;
  specs[0].num_examples = 400;
  specs[1].name = "castles";
  specs[1].num_entities = 200;
  specs[1].num_examples = 400;
  specs[2].name = "minifigs";  // the few-shot target domain
  specs[2].num_entities = 250;
  specs[2].num_examples = 500;
  specs[2].num_documents = 400;
  specs[2].gap = 0.5;

  auto corpus = generator.Generate(specs);
  if (!corpus.ok()) {
    std::fprintf(stderr, "generate: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // Table IV protocol: 50 train (the seed), 50 dev, rest test.
  auto split = MakeFewShotSplit(corpus->ExamplesIn("minifigs"), 50, 50, 99);

  // --- 2. Fit MetaBLINK for the target domain.
  PipelineConfig config;
  FewShotLinker linker(config);
  auto status = linker.Fit(*corpus, {"starships", "castles"}, "minifigs",
                           split.train);
  if (!status.ok()) {
    std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("fitted: %zu synthetic pairs, %zu seeds\n",
              linker.num_synthetic(), linker.num_seeds());

  // --- 3. Evaluate on the held-out test mentions.
  auto result = linker.Evaluate(split.test);
  if (!result.ok()) {
    std::fprintf(stderr, "evaluate: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("test mentions: %zu\n", result->num_examples);
  std::printf("R@64   : %.2f%%\n", 100.0 * result->recall_at_k);
  std::printf("N.Acc. : %.2f%%\n", 100.0 * result->normalized_acc);
  std::printf("U.Acc. : %.2f%%\n", 100.0 * result->unnormalized_acc);

  // --- 4. Link one mention end-to-end.
  const auto& probe = split.test.front();
  auto predictions =
      linker.Link(probe.mention, probe.left_context, probe.right_context, 3);
  if (!predictions.ok()) {
    std::fprintf(stderr, "link: %s\n",
                 predictions.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmention: \"%s\"\n", probe.mention.c_str());
  std::printf("gold   : %s\n",
              corpus->kb.entity(probe.entity_id).title.c_str());
  for (const auto& p : *predictions) {
    std::printf("  -> %-30s score=%.3f\n", p.title.c_str(), p.score);
  }
  return 0;
}
