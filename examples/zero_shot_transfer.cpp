// Zero-shot domain transfer (Sec. VI-C): no labeled data exists for the
// target domain at all. The seed set for meta-learning is constructed with
// the paper's heuristics — rule-filtered synthetic pairs plus self-match
// mentions mined from disambiguated entity descriptions.

#include <cstdio>

#include "core/few_shot_linker.h"
#include "data/generator.h"

using namespace metablink;

int main() {
  data::GeneratorOptions gopts;
  gopts.seed = 515;
  data::ZeshelLikeGenerator generator(gopts);
  auto corpus = generator.Generate(
      data::ZeshelLikeGenerator::PaperDomains(0.35));
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // FewShotLinker with an EMPTY seed list triggers the zero-shot path.
  core::PipelineConfig config;
  config.seed = 31337;
  core::FewShotLinker linker(config);
  auto status =
      linker.Fit(*corpus, data::ZeshelLikeGenerator::TrainDomainNames(),
                 "yugioh", /*seed_examples=*/{},
                 /*max_heuristic_seeds=*/50);
  if (!status.ok()) {
    std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("zero-shot fit on yugioh: %zu synthetic pairs, %zu heuristic "
              "seeds (no human labels used)\n",
              linker.num_synthetic(), linker.num_seeds());

  auto split = data::MakeFewShotSplit(corpus->ExamplesIn("yugioh"), 0, 0, 7);
  auto result = linker.Evaluate(split.test);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("test mentions: %zu\n", result->num_examples);
  std::printf("R@64 %.2f%%  N.Acc %.2f%%  U.Acc %.2f%%\n",
              100.0 * result->recall_at_k, 100.0 * result->normalized_acc,
              100.0 * result->unnormalized_acc);

  const auto& probe = split.test.front();
  auto pred = linker.Link(probe.mention, probe.left_context,
                          probe.right_context, 3);
  if (pred.ok()) {
    std::printf("\nmention \"%s\" (gold: %s)\n", probe.mention.c_str(),
                corpus->kb.entity(probe.entity_id).title.c_str());
    for (const auto& p : *pred) {
      std::printf("  -> %-30s %.3f\n", p.title.c_str(), p.score);
    }
  }
  return 0;
}
