#include <gtest/gtest.h>

#include <numeric>

#include "data/generator.h"
#include "gen/bad_data.h"
#include "train/bi_trainer.h"
#include "train/cross_trainer.h"
#include "train/dl4el_trainer.h"
#include "train/meta_trainer.h"

namespace metablink::train {
namespace {

model::BiEncoderConfig SmallBiConfig() {
  model::BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 1024;
  cfg.dim = 16;
  return cfg;
}

model::CrossEncoderConfig SmallCrossConfig() {
  model::CrossEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 1024;
  cfg.dim = 16;
  cfg.hidden = 16;
  return cfg;
}

class TrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions opts;
    opts.seed = 77;
    opts.shared_vocab_size = 300;
    opts.domain_vocab_size = 150;
    data::ZeshelLikeGenerator gen(opts);
    std::vector<data::DomainSpec> specs(1);
    specs[0].name = "d";
    specs[0].num_entities = 60;
    specs[0].num_examples = 240;
    specs[0].num_documents = 60;
    corpus_ = std::make_unique<data::Corpus>(
        std::move(*gen.Generate(specs)));
  }

  std::unique_ptr<data::Corpus> corpus_;
};

// ---- BiEncoderTrainer ------------------------------------------------------

TEST_F(TrainTest, BiTrainerReducesLoss) {
  util::Rng rng(1);
  model::BiEncoder model(SmallBiConfig(), &rng);
  TrainOptions opts;
  opts.epochs = 4;
  opts.batch_size = 16;
  BiEncoderTrainer trainer(opts);
  auto result = trainer.Train(&model, corpus_->kb, corpus_->ExamplesIn("d"));
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->epoch_losses.size(), 2u);
  EXPECT_LT(result->epoch_losses.back(), result->epoch_losses.front());
  EXPECT_GT(result->steps, 0u);
}

TEST_F(TrainTest, BiTrainerRejectsEmptyAndMisalignedWeights) {
  util::Rng rng(1);
  model::BiEncoder model(SmallBiConfig(), &rng);
  BiEncoderTrainer trainer;
  EXPECT_FALSE(trainer.Train(&model, corpus_->kb, {}).ok());
  EXPECT_FALSE(trainer
                   .Train(&model, corpus_->kb, corpus_->ExamplesIn("d"),
                          {1.0f, 2.0f})
                   .ok());
}

TEST_F(TrainTest, BiTrainerZeroWeightsLeaveModelUntouched) {
  util::Rng rng(1);
  model::BiEncoder model(SmallBiConfig(), &rng);
  auto before = model.params()->FlattenValues();
  std::vector<float> weights(corpus_->ExamplesIn("d").size(), 0.0f);
  BiEncoderTrainer trainer;
  ASSERT_TRUE(trainer
                  .Train(&model, corpus_->kb, corpus_->ExamplesIn("d"),
                         weights)
                  .ok());
  EXPECT_EQ(model.params()->FlattenValues(), before);
}

TEST_F(TrainTest, BiTrainerMaxStepsCap) {
  util::Rng rng(1);
  model::BiEncoder model(SmallBiConfig(), &rng);
  TrainOptions opts;
  opts.epochs = 100;
  opts.max_steps = 3;
  BiEncoderTrainer trainer(opts);
  auto result = trainer.Train(&model, corpus_->kb, corpus_->ExamplesIn("d"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps, 3u);
}

// ---- MineCrossTrainingSet --------------------------------------------------

TEST(MineCrossTest, KeepsGoldAndDropsMisses) {
  std::vector<data::LinkingExample> examples(2);
  examples[0].entity_id = 7;
  examples[1].entity_id = 99;  // never retrieved
  std::vector<std::vector<retrieval::ScoredEntity>> lists = {
      {{3, 1.0f}, {7, 0.9f}, {5, 0.8f}},
      {{3, 1.0f}, {5, 0.9f}},
  };
  auto mined = MineCrossTrainingSet(examples, lists, 8);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined[0].candidates.size(), 3u);
  EXPECT_EQ(mined[0].gold_index, 1u);
  EXPECT_EQ(mined[0].candidates[1], 7u);
}

TEST(MineCrossTest, TruncationPreservesGold) {
  std::vector<data::LinkingExample> examples(1);
  examples[0].entity_id = 9;
  std::vector<std::vector<retrieval::ScoredEntity>> lists = {
      {{1, 1.0f}, {2, 0.9f}, {3, 0.8f}, {9, 0.7f}},
  };
  auto mined = MineCrossTrainingSet(examples, lists, 2);
  ASSERT_EQ(mined.size(), 1u);
  ASSERT_EQ(mined[0].candidates.size(), 2u);
  EXPECT_EQ(mined[0].candidates[mined[0].gold_index], 9u);
}

// ---- CrossEncoderTrainer ---------------------------------------------------

TEST_F(TrainTest, CrossTrainerReducesLoss) {
  util::Rng rng(2);
  model::CrossEncoder model(SmallCrossConfig(), &rng);
  // Build instances: gold + 3 random negatives per example.
  util::Rng neg_rng(3);
  std::vector<CrossInstance> instances;
  const auto& pool = corpus_->kb.EntitiesInDomain("d");
  for (const auto& ex : corpus_->ExamplesIn("d")) {
    CrossInstance inst;
    inst.example = ex;
    inst.candidates.push_back(ex.entity_id);
    inst.gold_index = 0;
    for (int i = 0; i < 3; ++i) {
      inst.candidates.push_back(pool[neg_rng.NextUint64(pool.size())]);
    }
    instances.push_back(std::move(inst));
    if (instances.size() >= 60) break;
  }
  TrainOptions opts;
  opts.epochs = 3;
  CrossEncoderTrainer trainer(opts);
  auto result = trainer.Train(&model, corpus_->kb, instances);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->epoch_losses.back(), result->epoch_losses.front());
}

TEST_F(TrainTest, CrossTrainerRejectsEmpty) {
  util::Rng rng(2);
  model::CrossEncoder model(SmallCrossConfig(), &rng);
  CrossEncoderTrainer trainer;
  EXPECT_FALSE(trainer.Train(&model, corpus_->kb, {}).ok());
}

// ---- MetaReweightTrainer ---------------------------------------------------

TEST_F(TrainTest, MetaStepWeightsNormalized) {
  util::Rng rng(4);
  model::BiEncoder model(SmallBiConfig(), &rng);
  const kb::KnowledgeBase* kb = &corpus_->kb;
  model::BiEncoder* m = &model;
  MetaTrainOptions opts;
  MetaReweightTrainer meta(opts, model.params(),
                           [m, kb](tensor::Graph* g,
                                   const std::vector<data::LinkingExample>&
                                       batch) {
                             return m->InBatchLoss(g, batch, *kb);
                           });
  const auto& examples = corpus_->ExamplesIn("d");
  std::vector<data::LinkingExample> syn(examples.begin(),
                                        examples.begin() + 12);
  std::vector<data::LinkingExample> seed(examples.begin() + 12,
                                         examples.begin() + 20);
  auto weights = meta.Step(syn, seed);
  ASSERT_TRUE(weights.ok());
  ASSERT_EQ(weights->size(), 12u);
  float total = std::accumulate(weights->begin(), weights->end(), 0.0f);
  for (float w : *weights) EXPECT_GE(w, 0.0f);
  EXPECT_TRUE(std::abs(total - 1.0f) < 1e-4 || total == 0.0f);
  EXPECT_EQ(meta.result().steps, 1u);
}

TEST_F(TrainTest, MetaRejectsDegenerateInputs) {
  util::Rng rng(4);
  model::BiEncoder model(SmallBiConfig(), &rng);
  MetaReweightTrainer meta(
      MetaTrainOptions{}, model.params(),
      [](tensor::Graph*, const std::vector<data::LinkingExample>&) {
        return tensor::Var{};
      });
  const auto& examples = corpus_->ExamplesIn("d");
  std::vector<data::LinkingExample> one(examples.begin(),
                                        examples.begin() + 1);
  std::vector<data::LinkingExample> some(examples.begin(),
                                         examples.begin() + 4);
  EXPECT_FALSE(meta.Step(one, some).ok());
  EXPECT_FALSE(meta.Step(some, {}).ok());
  EXPECT_FALSE(meta.Train(one, some).ok());
  EXPECT_FALSE(meta.Train(some, {}).ok());
}

TEST_F(TrainTest, MetaDownweightsInjectedBadData) {
  // The Fig. 4 property in miniature: after warming up on the trusted seed
  // and meta-training on a mixture of gold-consistent and deliberately
  // mislabeled synthetic data, the bad population must receive a lower
  // selection ratio. Needs a roomy hash space: heavy collisions destroy
  // the per-example gradient signal.
  data::GeneratorOptions gopts;
  gopts.seed = 77;
  gopts.shared_vocab_size = 300;
  gopts.domain_vocab_size = 150;
  data::ZeshelLikeGenerator gen(gopts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "d";
  specs[0].num_entities = 150;
  specs[0].num_examples = 600;
  auto corpus = gen.Generate(specs);
  ASSERT_TRUE(corpus.ok());

  model::BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 4096;
  cfg.dim = 32;
  util::Rng rng(5);
  model::BiEncoder model(cfg, &rng);
  const auto& examples = corpus->ExamplesIn("d");
  std::vector<data::LinkingExample> good(examples.begin(),
                                         examples.begin() + 400);
  for (auto& g : good) g.source = data::ExampleSource::kRewritten;
  std::vector<data::LinkingExample> seed(examples.begin() + 400,
                                         examples.begin() + 450);
  util::Rng bad_rng(6);
  auto bad = gen::InjectBadData(corpus->kb, good, 200, &bad_rng);
  std::vector<data::LinkingExample> synthetic = good;
  synthetic.insert(synthetic.end(), bad.begin(), bad.end());

  // Warm up on the trusted seed so gradients are informative.
  TrainOptions warm;
  warm.epochs = 4;
  BiEncoderTrainer warm_trainer(warm);
  ASSERT_TRUE(warm_trainer.Train(&model, corpus->kb, seed).ok());

  const kb::KnowledgeBase* kb = &corpus->kb;
  model::BiEncoder* m = &model;
  MetaTrainOptions opts;
  opts.steps = 120;
  opts.batch_size = 16;
  MetaReweightTrainer meta(opts, model.params(),
                           [m, kb](tensor::Graph* g,
                                   const std::vector<data::LinkingExample>&
                                       batch) {
                             return m->InBatchLoss(g, batch, *kb);
                           });
  auto result = meta.Train(synthetic, seed);
  ASSERT_TRUE(result.ok());
  const auto& sel = result->selection;
  ASSERT_TRUE(sel.count(data::ExampleSource::kRewritten));
  ASSERT_TRUE(sel.count(data::ExampleSource::kInjectedBad));
  const double good_ratio =
      sel.at(data::ExampleSource::kRewritten).SelectedRatio();
  const double bad_ratio =
      sel.at(data::ExampleSource::kInjectedBad).SelectedRatio();
  EXPECT_GT(good_ratio, bad_ratio + 0.05)
      << "good=" << good_ratio << " bad=" << bad_ratio;
}

// ---- Dl4elTrainer ----------------------------------------------------------

TEST(Dl4elTest, SelectionWeightsSumToOneAndFavorLowLoss) {
  Dl4elOptions opts;
  opts.noise_ratio = 0.5;
  opts.kl_mix = 0.2f;
  Dl4elTrainer trainer(opts);
  std::vector<float> losses = {0.1f, 5.0f, 0.2f, 4.0f};
  auto w = trainer.SelectionWeights(losses);
  ASSERT_EQ(w.size(), 4u);
  float total = std::accumulate(w.begin(), w.end(), 0.0f);
  EXPECT_NEAR(total, 1.0f, 1e-5);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[2], w[3]);
}

TEST(Dl4elTest, FullKlMixIsUniform) {
  Dl4elOptions opts;
  opts.kl_mix = 1.0f;
  Dl4elTrainer trainer(opts);
  auto w = trainer.SelectionWeights({1.0f, 2.0f, 3.0f, 4.0f});
  for (float v : w) EXPECT_NEAR(v, 0.25f, 1e-5);
}

TEST(Dl4elTest, EmptyLossesHandled) {
  Dl4elTrainer trainer;
  EXPECT_TRUE(trainer.SelectionWeights({}).empty());
}

TEST_F(TrainTest, Dl4elTrainsEndToEnd) {
  util::Rng rng(7);
  model::BiEncoder model(SmallBiConfig(), &rng);
  Dl4elOptions opts;
  opts.train.epochs = 2;
  Dl4elTrainer trainer(opts);
  auto result = trainer.Train(&model, corpus_->kb, corpus_->ExamplesIn("d"));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->steps, 0u);
  EXPECT_FALSE(trainer.Train(&model, corpus_->kb, {}).ok());
}

// ---- parameterized: meta weight normalization ablation ----------------------

class MetaNormalizationSweep : public ::testing::TestWithParam<bool> {};

TEST_P(MetaNormalizationSweep, WeightsRespectMode) {
  data::GeneratorOptions gopts;
  gopts.seed = 9;
  gopts.shared_vocab_size = 200;
  gopts.domain_vocab_size = 100;
  data::ZeshelLikeGenerator gen(gopts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "d";
  specs[0].num_entities = 40;
  specs[0].num_examples = 60;
  auto corpus = gen.Generate(specs);
  ASSERT_TRUE(corpus.ok());

  util::Rng rng(10);
  model::BiEncoder model(SmallBiConfig(), &rng);
  MetaTrainOptions opts;
  opts.normalize_weights = GetParam();
  const kb::KnowledgeBase* kb = &corpus->kb;
  model::BiEncoder* m = &model;
  MetaReweightTrainer meta(opts, model.params(),
                           [m, kb](tensor::Graph* g,
                                   const std::vector<data::LinkingExample>&
                                       batch) {
                             return m->InBatchLoss(g, batch, *kb);
                           });
  const auto& ex = corpus->ExamplesIn("d");
  std::vector<data::LinkingExample> syn(ex.begin(), ex.begin() + 10);
  std::vector<data::LinkingExample> seed(ex.begin() + 10, ex.begin() + 18);
  auto weights = meta.Step(syn, seed);
  ASSERT_TRUE(weights.ok());
  float total = std::accumulate(weights->begin(), weights->end(), 0.0f);
  if (GetParam()) {
    EXPECT_LE(total, 1.0f + 1e-4);
  }
  for (float w : *weights) EXPECT_GE(w, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Modes, MetaNormalizationSweep, ::testing::Bool());

}  // namespace
}  // namespace metablink::train
