#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "load/histogram.h"
#include "load/open_loop.h"
#include "load/workload.h"

namespace metablink::load {
namespace {

std::vector<std::size_t> Draw(const WorkloadConfig& config, std::size_t n) {
  auto stream = RequestStream::Make(config);
  EXPECT_TRUE(stream.ok()) << stream.status();
  std::vector<std::size_t> out;
  stream->Fill(n, &out);
  return out;
}

std::vector<std::size_t> Frequencies(const std::vector<std::size_t>& draws,
                                     std::size_t pool) {
  std::vector<std::size_t> freq(pool, 0);
  for (std::size_t d : draws) {
    EXPECT_LT(d, pool);
    ++freq[d];
  }
  return freq;
}

TEST(ZipfianGeneratorTest, ZetaMatchesDirectSum) {
  double direct = 0.0;
  for (int i = 1; i <= 100; ++i) direct += 1.0 / std::pow(i, 0.99);
  EXPECT_NEAR(ZipfianGenerator::Zeta(100, 0.99), direct, 1e-12);
}

TEST(ZipfianGeneratorTest, RanksInRangeAndHeadHeavy) {
  const std::size_t pool = 64;
  ZipfianGenerator zipf(pool);
  util::Rng rng(7);
  std::vector<std::size_t> freq(pool, 0);
  const std::size_t draws = 20000;
  for (std::size_t i = 0; i < draws; ++i) {
    const std::size_t r = zipf.Next(&rng);
    ASSERT_LT(r, pool);
    ++freq[r];
  }
  // Rank 0 carries ~1/zeta(64, .99) ≈ 20% of the mass — far above the
  // 1/64 ≈ 1.6% a uniform draw would give it.
  EXPECT_GT(freq[0], draws / 10);
  EXPECT_GT(freq[0], freq[8]);
  EXPECT_GT(freq[0], freq[32]);
  // The head dominates: top 8 ranks take most of the stream.
  const std::size_t head = std::accumulate(freq.begin(), freq.begin() + 8,
                                           std::size_t{0});
  EXPECT_GT(head, draws / 2);
}

TEST(RequestStreamTest, SameSeedSameStreamDifferentSeedDiffers) {
  for (MixKind kind : {MixKind::kUniform, MixKind::kZipfian,
                       MixKind::kScrambledZipfian, MixKind::kReadLatest,
                       MixKind::kHotShift}) {
    WorkloadConfig config;
    config.kind = kind;
    config.pool_size = 128;
    config.seed = 42;
    config.shift_every = 100;
    const auto a = Draw(config, 2048);
    const auto b = Draw(config, 2048);
    EXPECT_EQ(a, b) << MixKindName(kind);
    config.seed = 43;
    const auto c = Draw(config, 2048);
    EXPECT_NE(a, c) << MixKindName(kind);
  }
}

TEST(RequestStreamTest, RoundRobinMatchesModulo) {
  WorkloadConfig config;
  config.kind = MixKind::kRoundRobin;
  config.pool_size = 24;
  const auto draws = Draw(config, 100);
  for (std::size_t i = 0; i < draws.size(); ++i) {
    EXPECT_EQ(draws[i], i % config.pool_size);
  }
}

TEST(RequestStreamTest, UniformCoversPool) {
  WorkloadConfig config;
  config.kind = MixKind::kUniform;
  config.pool_size = 32;
  const auto freq = Frequencies(Draw(config, 8000), config.pool_size);
  for (std::size_t f : freq) {
    EXPECT_GT(f, 8000 / 32 / 3);  // every item drawn a fair share
  }
}

TEST(RequestStreamTest, ScrambledZipfianSpreadsTheHotItems) {
  WorkloadConfig config;
  config.kind = MixKind::kScrambledZipfian;
  config.pool_size = 128;
  const std::size_t draws = 20000;
  const auto freq = Frequencies(Draw(config, draws), config.pool_size);
  const std::size_t hottest =
      static_cast<std::size_t>(std::max_element(freq.begin(), freq.end()) -
                               freq.begin());
  // Frequencies stay zipfian (hashing permutes, it does not flatten) ...
  EXPECT_GT(freq[hottest], draws / 10);
  // ... but the hottest item is no longer index 0 (Fnv64(0) % 128 != 0).
  EXPECT_NE(hottest, 0u);
}

TEST(RequestStreamTest, HotShiftRotatesTheHotSet) {
  WorkloadConfig config;
  config.kind = MixKind::kHotShift;
  config.pool_size = 16;
  config.shift_every = 1000;
  config.shift_step = 8;
  auto stream = RequestStream::Make(config);
  ASSERT_TRUE(stream.ok());
  auto TopOfWindow = [&] {
    std::vector<std::size_t> freq(config.pool_size, 0);
    for (std::size_t i = 0; i < 1000; ++i) ++freq[stream->Next()];
    return static_cast<std::size_t>(
        std::max_element(freq.begin(), freq.end()) - freq.begin());
  };
  // Rank 0 dominates each window; the rotation moves it by shift_step.
  EXPECT_EQ(TopOfWindow(), 0u);
  EXPECT_EQ(TopOfWindow(), 8u);
  EXPECT_EQ(TopOfWindow(), 0u);  // wrapped around
}

TEST(RequestStreamTest, ReadLatestConcentratesBehindTheMovingHead) {
  WorkloadConfig config;
  config.kind = MixKind::kReadLatest;
  config.pool_size = 64;
  config.advance_every = 4;
  auto stream = RequestStream::Make(config);
  ASSERT_TRUE(stream.ok());
  std::size_t head = 0;
  double total_distance = 0.0;
  const std::size_t draws = 8000;
  for (std::size_t i = 1; i <= draws; ++i) {
    const std::size_t idx = stream->Next();
    if (i % config.advance_every == 0) head = (head + 1) % config.pool_size;
    // Circular distance behind the head this draw saw.
    total_distance += static_cast<double>(
        (head + config.pool_size - idx) % config.pool_size);
  }
  // Zipf-over-recency keeps the mean distance well under uniform's ~32.
  EXPECT_LT(total_distance / draws, 16.0);
}

TEST(RequestStreamTest, MakeValidatesConfig) {
  WorkloadConfig config;
  config.pool_size = 0;
  EXPECT_FALSE(RequestStream::Make(config).ok());
  config.pool_size = 10;
  config.kind = MixKind::kZipfian;
  config.theta = 1.0;
  EXPECT_FALSE(RequestStream::Make(config).ok());
  config.theta = -0.5;
  EXPECT_FALSE(RequestStream::Make(config).ok());
  config.theta = 0.99;
  EXPECT_TRUE(RequestStream::Make(config).ok());
  // Round-robin ignores theta entirely.
  config.kind = MixKind::kRoundRobin;
  config.theta = 7.0;
  EXPECT_TRUE(RequestStream::Make(config).ok());
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram hist;
  for (std::uint64_t v = 0; v < 100; ++v) hist.Record(v);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 99u);
  EXPECT_EQ(hist.ValueAtQuantile(0.5), 49u);
  EXPECT_EQ(hist.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(hist.ValueAtQuantile(1.0), 99u);
  EXPECT_NEAR(hist.Mean(), 49.5, 1e-9);
}

TEST(LatencyHistogramTest, LargeValuesWithinRelativeError) {
  LatencyHistogram hist;
  const std::uint64_t value = 123456789;  // ~123 ms in ns
  for (int i = 0; i < 10; ++i) hist.Record(value);
  const std::uint64_t got = hist.ValueAtQuantile(0.99);
  EXPECT_GE(got, value);
  EXPECT_LE(static_cast<double>(got),
            static_cast<double>(value) * (1.0 + 1.0 / 64.0));
}

TEST(LatencyHistogramTest, BucketMappingIsMonotoneAndConsistent) {
  std::size_t prev_index = 0;
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{255}, std::uint64_t{256},
        std::uint64_t{100000}, std::uint64_t{1} << 40,
        (std::uint64_t{1} << 40) + 12345}) {
    const std::size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::kNumBuckets);
    EXPECT_GE(index, prev_index);
    // The value maps into a bucket whose upper bound covers it.
    EXPECT_LE(v, LatencyHistogram::BucketUpperBound(index));
    // ... and the upper bound maps back to the same bucket.
    EXPECT_EQ(LatencyHistogram::BucketIndex(
                  LatencyHistogram::BucketUpperBound(index)),
              index);
    prev_index = index;
  }
}

TEST(LatencyHistogramTest, MergeAndResetBehave) {
  LatencyHistogram a, b;
  a.Record(10);
  a.Record(2000);
  b.Record(50);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 2000u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.ValueAtQuantile(0.5), 0u);
}

TEST(LatencyHistogramTest, QuantilesAreMonotone) {
  LatencyHistogram hist;
  util::Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    hist.Record(rng.NextUint64(10'000'000));
  }
  std::uint64_t prev = 0;
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t v = hist.ValueAtQuantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(hist.ValueAtQuantile(1.0), hist.max());
}

TEST(OpenLoopDriverTest, FixedIntervalOffsetsAreExact) {
  OpenLoopOptions options;
  options.target_qps = 2000.0;
  options.total_requests = 100;
  options.poisson = false;
  const auto offsets = OpenLoopDriver::ArrivalOffsetsNs(options);
  ASSERT_EQ(offsets.size(), 100u);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], i * 500000u);  // 0.5 ms apart
  }
}

TEST(OpenLoopDriverTest, PoissonOffsetsDeterministicMonotoneRightMean) {
  OpenLoopOptions options;
  options.target_qps = 10000.0;
  options.total_requests = 4000;
  options.poisson = true;
  options.seed = 5;
  const auto a = OpenLoopDriver::ArrivalOffsetsNs(options);
  const auto b = OpenLoopDriver::ArrivalOffsetsNs(options);
  EXPECT_EQ(a, b);
  options.seed = 6;
  EXPECT_NE(OpenLoopDriver::ArrivalOffsetsNs(options), a);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  // Mean gap ≈ 1/qps = 100 µs.
  const double mean_gap_ns =
      static_cast<double>(a.back()) / static_cast<double>(a.size() - 1);
  EXPECT_NEAR(mean_gap_ns, 100000.0, 20000.0);
}

TEST(OpenLoopDriverTest, RunCountsOutcomesAndRecordsLatencies) {
  OpenLoopOptions options;
  options.target_qps = 20000.0;
  options.total_requests = 400;
  options.poisson = false;
  options.max_clients = 8;
  const OpenLoopResult result =
      OpenLoopDriver::Run(options, [](std::size_t i) {
        if (i % 4 == 1) return IssueOutcome::kShed;
        if (i % 400 == 7) return IssueOutcome::kError;
        return IssueOutcome::kOk;
      });
  EXPECT_EQ(result.issued, 400u);
  EXPECT_EQ(result.shed, 100u);
  EXPECT_EQ(result.errors, 1u);
  EXPECT_EQ(result.ok, 299u);
  EXPECT_EQ(result.latency_ns.count(), result.ok);
  EXPECT_GT(result.wall_ms, 0.0);
  EXPECT_GT(result.achieved_qps, 0.0);
}

}  // namespace
}  // namespace metablink::load
