// Property-based suites (parameterized sweeps over seeds and sizes) for
// cross-module invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "data/generator.h"
#include "model/bi_encoder.h"
#include "retrieval/dense_index.h"
#include "tensor/graph.h"
#include "text/rouge.h"
#include "text/string_metrics.h"
#include "train/dl4el_trainer.h"
#include "util/rng.h"

namespace metablink {
namespace {

// ---- Softmax cross entropy vs. manual computation across shapes ------------

class SoftmaxProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(SoftmaxProperty, MatchesManualLogSumExp) {
  auto [rows, cols, seed] = GetParam();
  util::Rng rng(seed);
  tensor::Tensor logits(rows, cols);
  for (float& v : logits.data()) v = rng.NextFloat(-5, 5);
  std::vector<std::size_t> targets(rows);
  for (auto& t : targets) t = rng.NextUint64(cols);

  tensor::Graph g;
  auto loss = g.SoftmaxCrossEntropy(g.Input(logits), targets);
  for (int r = 0; r < rows; ++r) {
    double mx = logits.at(r, 0);
    for (int c = 1; c < cols; ++c) mx = std::max<double>(mx, logits.at(r, c));
    double lse = 0;
    for (int c = 0; c < cols; ++c) lse += std::exp(logits.at(r, c) - mx);
    double manual = std::log(lse) + mx - logits.at(r, targets[r]);
    EXPECT_NEAR(g.value(loss).at(r, 0), manual, 1e-4);
    EXPECT_GE(g.value(loss).at(r, 0), -1e-5);  // CE is non-negative
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SoftmaxProperty,
    ::testing::Values(std::make_tuple(1, 2, 1), std::make_tuple(3, 7, 2),
                      std::make_tuple(8, 64, 3), std::make_tuple(2, 128, 4)));

// ---- Retrieval: top-k is the true top-k for any k ---------------------------

class TopKProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopKProperty, ContainsTrueMaxima) {
  const std::size_t k = GetParam();
  util::Rng rng(k * 131 + 7);
  const std::size_t n = 64, d = 8;
  tensor::Tensor emb(n, d);
  for (float& v : emb.data()) v = rng.NextFloat(-1, 1);
  std::vector<kb::EntityId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  retrieval::DenseIndex index;
  ASSERT_TRUE(index.Build(emb, ids).ok());

  std::vector<float> q(d);
  for (float& v : q) v = rng.NextFloat(-1, 1);
  auto top = index.TopK(q.data(), k);
  ASSERT_EQ(top.size(), std::min(k, n));
  // Every returned score >= every non-returned score.
  std::set<kb::EntityId> returned;
  for (const auto& s : top) returned.insert(s.id);
  float min_returned = top.back().score;
  for (std::size_t i = 0; i < n; ++i) {
    if (returned.count(static_cast<kb::EntityId>(i))) continue;
    float s = tensor::Dot(q.data(), emb.row_data(i), d);
    EXPECT_LE(s, min_returned + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKProperty,
                         ::testing::Values(1, 2, 5, 16, 63, 64, 100));

// ---- Generator: invariants across seeds and gaps ----------------------------

class GeneratorProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(GeneratorProperty, WorldIsInternallyConsistent) {
  auto [seed, gap] = GetParam();
  data::GeneratorOptions opts;
  opts.seed = seed;
  opts.shared_vocab_size = 250;
  opts.domain_vocab_size = 120;
  data::ZeshelLikeGenerator gen(opts);
  std::vector<data::DomainSpec> specs(1);
  specs[0].name = "p";
  specs[0].num_entities = 70;
  specs[0].num_examples = 140;
  specs[0].num_documents = 30;
  specs[0].gap = gap;
  auto corpus = gen.Generate(specs);
  ASSERT_TRUE(corpus.ok());

  // Titles unique within the domain; descriptions non-empty and contain the
  // base title prefix.
  std::set<std::string> titles;
  for (kb::EntityId id : corpus->kb.EntitiesInDomain("p")) {
    const auto& e = corpus->kb.entity(id);
    EXPECT_TRUE(titles.insert(e.title).second) << "duplicate " << e.title;
    EXPECT_GT(e.description.size(), e.title.size());
  }
  // Every example's gold entity exists and is in-domain; contexts non-empty.
  for (const auto& ex : corpus->ExamplesIn("p")) {
    ASSERT_LT(ex.entity_id, corpus->kb.num_entities());
    EXPECT_EQ(corpus->kb.entity(ex.entity_id).domain, "p");
    EXPECT_FALSE(ex.left_context.empty());
    EXPECT_FALSE(ex.right_context.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndGaps, GeneratorProperty,
    ::testing::Combine(::testing::Values(1u, 17u, 333u),
                       ::testing::Values(0.1, 0.5, 0.9)));

// ---- Bi-encoder: score symmetry/normalization across batch sizes ------------

class BiEncoderBatchProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BiEncoderBatchProperty, ScoresAreBoundedCosines) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  model::BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 512;
  cfg.dim = 16;
  model::BiEncoder model(cfg, &rng);

  std::vector<data::LinkingExample> examples(n);
  std::vector<kb::Entity> entities(n);
  for (std::size_t i = 0; i < n; ++i) {
    examples[i].mention = "mention" + std::to_string(i * 31);
    examples[i].left_context = "ctx" + std::to_string(i);
    entities[i].title = "title" + std::to_string(i * 17);
    entities[i].description = "desc words " + std::to_string(i);
  }
  tensor::Graph g;
  auto m = model.EncodeMentions(&g, examples);
  auto e = model.EncodeEntities(&g, entities);
  auto scores = g.MatMulTransposeB(m, e);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float s = g.value(scores).at(i, j);
      EXPECT_LE(std::abs(s), 1.0f + 1e-5) << "cosine out of range";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, BiEncoderBatchProperty,
                         ::testing::Values(1, 2, 5, 16, 33));

// ---- DL4EL selection weights: distribution properties over random losses ----

class Dl4elProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Dl4elProperty, WeightsFormDistributionAndRankInversely) {
  util::Rng rng(GetParam());
  train::Dl4elOptions opts;
  opts.noise_ratio = 0.3;
  train::Dl4elTrainer trainer(opts);
  for (int iter = 0; iter < 20; ++iter) {
    std::size_t n = 2 + rng.NextUint64(30);
    std::vector<float> losses(n);
    for (float& l : losses) l = rng.NextFloat(0.0f, 8.0f);
    auto w = trainer.SelectionWeights(losses);
    ASSERT_EQ(w.size(), n);
    float total = std::accumulate(w.begin(), w.end(), 0.0f);
    EXPECT_NEAR(total, 1.0f, 1e-4);
    // The min-loss example never gets less weight than the max-loss one.
    std::size_t lo = std::min_element(losses.begin(), losses.end()) -
                     losses.begin();
    std::size_t hi = std::max_element(losses.begin(), losses.end()) -
                     losses.begin();
    EXPECT_GE(w[lo], w[hi] - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Dl4elProperty, ::testing::Values(5, 6, 7));

// ---- ROUGE: metric properties -----------------------------------------------

class RougeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RougeProperty, BoundedSymmetricF1) {
  util::Rng rng(GetParam());
  auto random_seq = [&rng]() {
    std::vector<std::string> s;
    std::size_t len = 1 + rng.NextUint64(8);
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(std::string(1, static_cast<char>('a' + rng.NextUint64(5))));
    }
    return s;
  };
  for (int iter = 0; iter < 30; ++iter) {
    auto a = random_seq(), b = random_seq();
    auto ab = text::RougeN(a, b, 1);
    auto ba = text::RougeN(b, a, 1);
    EXPECT_GE(ab.f1, 0.0);
    EXPECT_LE(ab.f1, 1.0);
    // F1 is symmetric (precision/recall swap).
    EXPECT_NEAR(ab.f1, ba.f1, 1e-9);
    EXPECT_NEAR(ab.precision, ba.recall, 1e-9);
    // Self-comparison is perfect.
    EXPECT_DOUBLE_EQ(text::RougeN(a, a, 1).f1, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RougeProperty, ::testing::Values(11, 12, 13));

// ---- Overlap classifier: exhaustive consistency ------------------------------

class OverlapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlapProperty, CategoriesArePartition) {
  util::Rng rng(GetParam());
  auto word = [&rng]() {
    std::string w;
    for (int i = 0; i < 3; ++i) {
      w += static_cast<char>('a' + rng.NextUint64(6));
    }
    return w;
  };
  for (int iter = 0; iter < 60; ++iter) {
    std::string base = word() + " " + word();
    // Build titles/mentions in all four regimes and verify classification.
    EXPECT_EQ(text::ClassifyOverlap(base, base),
              text::OverlapCategory::kHighOverlap);
    EXPECT_EQ(text::ClassifyOverlap(base, base + " (" + word() + ")"),
              text::OverlapCategory::kMultipleCategories);
    std::string first_word = base.substr(0, base.find(' '));
    auto cat = text::ClassifyOverlap(first_word, base);
    // A single word of a two-word title is a substring (or, if both words
    // are identical, an exact match).
    EXPECT_TRUE(cat == text::OverlapCategory::kAmbiguousSubstring ||
                cat == text::OverlapCategory::kHighOverlap);
    std::string unrelated = "zzz qqq www";
    EXPECT_EQ(text::ClassifyOverlap(unrelated, base),
              text::OverlapCategory::kLowOverlap);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapProperty, ::testing::Values(21, 22));

}  // namespace
}  // namespace metablink
