#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <set>

#include "util/logging.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace metablink::util {
namespace {

// ---- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing entity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing entity");
  EXPECT_EQ(s.ToString(), "NotFound: missing entity");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IoError("x"), Status::IoError("x"));
  EXPECT_FALSE(Status::IoError("x") == Status::IoError("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status FailingHelper() { return Status::Internal("boom"); }
Status PropagatingHelper() {
  METABLINK_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kInternal);
}

// ---- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextUint64InBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfFavorsSmallRanks) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) counts[rng.NextZipf(10, 1.2)]++;
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(17);
  auto s = rng.SampleIndices(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleIndicesMoreThanNReturnsAll) {
  Rng rng(17);
  auto s = rng.SampleIndices(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, WeightedSamplingRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextWeighted(w), 1u);
}

TEST(RngTest, WeightedSamplingAllZeroFallsBackUniform) {
  Rng rng(19);
  std::vector<double> w = {0.0, 0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextWeighted(w));
  EXPECT_GT(seen.size(), 1u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// ---- string_util -----------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitSkipEmpty) {
  auto parts = Split("a,,b,", ',', /*skip_empty=*/true);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  hello \t world\n");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ToLowerAndTrim) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringUtilTest, ContainsAndReplaceFirst) {
  EXPECT_TRUE(Contains("abcdef", "cde"));
  EXPECT_FALSE(Contains("abc", "x"));
  std::string s = "one two one";
  EXPECT_TRUE(ReplaceFirst(&s, "one", "1"));
  EXPECT_EQ(s, "1 two one");
  EXPECT_FALSE(ReplaceFirst(&s, "zzz", "x"));
}

// ---- serialize -------------------------------------------------------------

TEST(SerializeTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.WriteU32(7);
  w.WriteU64(1ull << 40);
  w.WriteI64(-5);
  w.WriteF32(1.5f);
  w.WriteF64(2.25);
  w.WriteString("hello");
  w.WriteFloatVector({1.0f, 2.0f, 3.0f});
  w.WriteU32Vector({9, 8});

  BinaryReader r(w.buffer());
  std::uint32_t u32;
  std::uint64_t u64;
  std::int64_t i64;
  float f32;
  double f64;
  std::string s;
  std::vector<float> fv;
  std::vector<std::uint32_t> uv;
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadF32(&f32).ok());
  ASSERT_TRUE(r.ReadF64(&f64).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadFloatVector(&fv).ok());
  ASSERT_TRUE(r.ReadU32Vector(&uv).ok());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i64, -5);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, 2.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(fv, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(uv, (std::vector<std::uint32_t>{9, 8}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedInputFailsGracefully) {
  BinaryWriter w;
  w.WriteString("hello world");
  auto buf = w.buffer();
  buf.resize(buf.size() - 4);  // chop the tail
  BinaryReader r(std::move(buf));
  std::string s;
  Status st = r.ReadString(&s);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, ReadPastEndFails) {
  BinaryReader r({});
  std::uint32_t v;
  EXPECT_FALSE(r.ReadU32(&v).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  BinaryWriter w;
  w.WriteString("persisted");
  const std::string path = "/tmp/metablink_serialize_test.bin";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  auto r = BinaryReader::FromFile(path);
  ASSERT_TRUE(r.ok());
  std::string s;
  ASSERT_TRUE(r->ReadString(&s).ok());
  EXPECT_EQ(s, "persisted");
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  auto r = BinaryReader::FromFile("/nonexistent/dir/file.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

// ---- ParallelForChunks edge cases ------------------------------------------
//
// Each test asserts the partition property directly: every index in [0, n)
// visited exactly once, chunk ids dense in [0, used).

TEST(ThreadPoolTest, ParallelForChunksEmptyRangeRunsNothing) {
  ThreadPool pool(3);
  const std::size_t used = pool.ParallelForChunks(
      0, 4, [](std::size_t, std::size_t, std::size_t) { FAIL(); });
  EXPECT_EQ(used, 0u);
}

TEST(ThreadPoolTest, ParallelForChunksFewerItemsThanWorkers) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(2);
  const std::size_t used = pool.ParallelForChunks(
      2, 0, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
  EXPECT_GE(used, 1u);
  EXPECT_LE(used, 2u);  // never more chunks than items
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksIndivisibleSplitCoversExactlyOnce) {
  ThreadPool pool(3);
  // 257 items into 7 requested chunks: 257 = 7*36 + 5, so the final chunk
  // is short — the classic off-by-one breeding ground.
  std::vector<std::atomic<int>> hits(257);
  std::set<std::size_t> chunk_ids;
  std::mutex mu;
  const std::size_t used = pool.ParallelForChunks(
      257, 7, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        {
          std::lock_guard<std::mutex> lock(mu);
          chunk_ids.insert(chunk);
        }
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(chunk_ids.size(), used);
  for (std::size_t c = 0; c < used; ++c) EXPECT_TRUE(chunk_ids.count(c));
}

TEST(ThreadPoolTest, ParallelForChunksNestedCallDegradesSerially) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<std::size_t> inner_used{99};
  std::atomic<bool> was_on_worker{false};
  pool.Submit([&] {
    was_on_worker = pool.OnWorkerThread();
    // Nested call from a worker must not deadlock; it degrades to one
    // serial chunk covering the whole range.
    inner_used = pool.ParallelForChunks(
        64, 8, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          EXPECT_EQ(chunk, 0u);
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
  });
  pool.Wait();
  EXPECT_TRUE(was_on_worker.load());
  EXPECT_EQ(inner_used.load(), 1u);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---- logging ---------------------------------------------------------------

TEST(LoggingTest, LevelFiltering) {
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  METABLINK_LOG(kInfo) << "suppressed (not visible in test output)";
  SetLogLevel(old);
}

TEST(LoggingDeathTest, CheckPrintsConditionAndStreamedDetail) {
  EXPECT_DEATH(METABLINK_CHECK(2 + 2 == 5) << "arithmetic drifted",
               "Check failed: 2 \\+ 2 == 5.*arithmetic drifted");
}

TEST(LoggingDeathTest, CheckPrintsFailingFileAndLine) {
  // The [FATAL file:line] prefix must point at the METABLINK_CHECK use
  // site (this file), not at logging.h — that is what makes a release-mode
  // abort report actionable.
  EXPECT_DEATH(METABLINK_CHECK(false), "util_test\\.cc:[0-9]+");
}

TEST(LoggingTest, CheckPairsCorrectlyUnderDanglingElse) {
  // Regression guard: METABLINK_CHECK expands to an if/else, so an
  // unbraced `if (...) METABLINK_CHECK(...); else ...` must keep the outer
  // else paired with the outer if.
  if (true)
    METABLINK_CHECK(true) << "passing check inside unbraced if";
  else
    FAIL() << "outer else got captured by the macro's expansion";
  SUCCEED();
}

}  // namespace
}  // namespace metablink::util
