#include <gtest/gtest.h>

#include <cstdio>

#include "core/few_shot_linker.h"
#include "core/pipeline.h"
#include "data/generator.h"

namespace metablink::core {
namespace {

// Small, fast pipeline configuration for integration tests.
PipelineConfig TestConfig() {
  PipelineConfig config;
  config.seed = 4242;
  config.bi.features.hasher.num_buckets = 4096;
  config.bi.dim = 32;
  config.cross.features.hasher.num_buckets = 4096;
  config.cross.dim = 32;
  config.cross.hidden = 32;
  config.meta_bi.steps = 80;
  config.meta_cross.steps = 30;
  config.eval.k = 16;
  config.eval.num_threads = 2;
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions opts;
    opts.seed = 99;
    opts.shared_vocab_size = 400;
    opts.domain_vocab_size = 200;
    data::ZeshelLikeGenerator gen(opts);
    std::vector<data::DomainSpec> specs(3);
    specs[0].name = "src_a";
    specs[0].num_entities = 100;
    specs[0].num_examples = 250;
    specs[1].name = "src_b";
    specs[1].num_entities = 100;
    specs[1].num_examples = 250;
    specs[2].name = "target";
    specs[2].num_entities = 150;
    specs[2].num_examples = 300;
    specs[2].num_documents = 250;
    specs[2].gap = 0.5;
    corpus_ = std::make_unique<data::Corpus>(std::move(*gen.Generate(specs)));
    split_ = data::MakeFewShotSplit(corpus_->ExamplesIn("target"), 50, 50, 3);
  }

  std::unique_ptr<data::Corpus> corpus_;
  data::DomainSplit split_;
};

TEST_F(PipelineTest, SyntheticDataRequiresTrainedRewriter) {
  MetaBlinkPipeline pipeline(TestConfig());
  auto syn = pipeline.BuildSyntheticData(*corpus_, "target", false);
  ASSERT_FALSE(syn.ok());
  EXPECT_EQ(syn.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(PipelineTest, ExactMatchDataComesFromDocuments) {
  MetaBlinkPipeline pipeline(TestConfig());
  auto exact = pipeline.BuildExactMatchData(*corpus_, "target");
  ASSERT_FALSE(exact.empty());
  for (const auto& ex : exact) {
    EXPECT_EQ(ex.source, data::ExampleSource::kExactMatch);
    EXPECT_EQ(corpus_->kb.entity(ex.entity_id).domain, "target");
  }
}

TEST_F(PipelineTest, FullMetaPipelineBeatsSeedOnlyBlink) {
  // The paper's headline claim at integration-test scale: MetaBLINK with
  // synthetic data beats BLINK trained on the seed alone.
  MetaBlinkPipeline blink(TestConfig());
  ASSERT_TRUE(blink.TrainSupervised(corpus_->kb, split_.train).ok());
  auto blink_result = blink.Evaluate(corpus_->kb, "target", split_.test);
  ASSERT_TRUE(blink_result.ok());

  MetaBlinkPipeline meta(TestConfig());
  ASSERT_TRUE(meta.TrainRewriter(*corpus_, {"src_a", "src_b"}).ok());
  auto syn = meta.BuildSyntheticData(*corpus_, "target", true);
  ASSERT_TRUE(syn.ok());
  EXPECT_GT(syn->size(), 50u);
  ASSERT_TRUE(meta.TrainMeta(corpus_->kb, *syn, split_.train).ok());
  auto meta_result = meta.Evaluate(corpus_->kb, "target", split_.test);
  ASSERT_TRUE(meta_result.ok());

  EXPECT_GT(meta_result->recall_at_k, blink_result->recall_at_k);
  EXPECT_GT(meta_result->unnormalized_acc, blink_result->unnormalized_acc);
  // Meta selection statistics were recorded.
  EXPECT_GT(meta.last_meta_bi_result().steps, 0u);
}

TEST_F(PipelineTest, LinkReturnsRankedCandidates) {
  MetaBlinkPipeline pipeline(TestConfig());
  ASSERT_TRUE(pipeline.TrainSupervised(corpus_->kb, split_.train).ok());
  auto ranked =
      pipeline.Link(corpus_->kb, "target", split_.test.front(), 5);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 5u);
  for (std::size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].score, (*ranked)[i].score);
  }
}

TEST_F(PipelineTest, SaveLoadRoundTrip) {
  MetaBlinkPipeline pipeline(TestConfig());
  ASSERT_TRUE(pipeline.TrainSupervised(corpus_->kb, split_.train).ok());
  const std::string prefix = "/tmp/metablink_pipeline_test";
  ASSERT_TRUE(pipeline.Save(prefix).ok());

  MetaBlinkPipeline restored(TestConfig());
  ASSERT_TRUE(restored.Load(prefix).ok());
  auto a = pipeline.Evaluate(corpus_->kb, "target", split_.dev);
  auto b = restored.Evaluate(corpus_->kb, "target", split_.dev);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->unnormalized_acc, b->unnormalized_acc);
  EXPECT_DOUBLE_EQ(a->recall_at_k, b->recall_at_k);
  std::remove((prefix + ".bi").c_str());
  std::remove((prefix + ".cross").c_str());
}

TEST_F(PipelineTest, ResetModelsChangesPredictions) {
  MetaBlinkPipeline pipeline(TestConfig());
  ASSERT_TRUE(pipeline.TrainSupervised(corpus_->kb, split_.train).ok());
  auto before = pipeline.Evaluate(corpus_->kb, "target", split_.dev);
  pipeline.ResetModels();
  auto after = pipeline.Evaluate(corpus_->kb, "target", split_.dev);
  ASSERT_TRUE(before.ok() && after.ok());
  // Untrained fresh models should not coincide with the trained ones.
  EXPECT_NE(before->recall_at_k, after->recall_at_k);
}

TEST_F(PipelineTest, TrainMetaValidatesInputs) {
  MetaBlinkPipeline pipeline(TestConfig());
  EXPECT_FALSE(pipeline.TrainMeta(corpus_->kb, {}, split_.train).ok());
  std::vector<data::LinkingExample> two(split_.train.begin(),
                                        split_.train.begin() + 2);
  EXPECT_FALSE(pipeline.TrainMeta(corpus_->kb, two, {}).ok());
}

// ---- FewShotLinker facade ---------------------------------------------------

TEST_F(PipelineTest, FewShotLinkerEndToEnd) {
  core::FewShotLinker linker(TestConfig());
  EXPECT_FALSE(linker.fitted());
  EXPECT_FALSE(linker.Link("x", "", "").ok());  // not fitted yet
  EXPECT_FALSE(linker.Evaluate(split_.test).ok());

  ASSERT_TRUE(linker
                  .Fit(*corpus_, {"src_a", "src_b"}, "target", split_.train)
                  .ok());
  EXPECT_TRUE(linker.fitted());
  EXPECT_GT(linker.num_synthetic(), 0u);
  EXPECT_EQ(linker.num_seeds(), split_.train.size());

  const auto& probe = split_.test.front();
  auto pred = linker.Link(probe.mention, probe.left_context,
                          probe.right_context, 3);
  ASSERT_TRUE(pred.ok());
  ASSERT_EQ(pred->size(), 3u);
  EXPECT_FALSE((*pred)[0].title.empty());

  auto result = linker.Evaluate(split_.test);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->recall_at_k, 0.2);
}

TEST_F(PipelineTest, FewShotLinkerZeroShotHeuristicSeeds) {
  core::FewShotLinker linker(TestConfig());
  ASSERT_TRUE(
      linker.Fit(*corpus_, {"src_a", "src_b"}, "target", {}, 40).ok());
  EXPECT_GT(linker.num_seeds(), 0u);
  EXPECT_LE(linker.num_seeds(), 40u);
}

TEST_F(PipelineTest, FewShotLinkerRejectsUnknownDomain) {
  core::FewShotLinker linker(TestConfig());
  auto status = linker.Fit(*corpus_, {"src_a"}, "nonexistent", split_.train);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace metablink::core
