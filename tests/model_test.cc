#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "data/generator.h"
#include "model/bi_encoder.h"
#include "model/cross_encoder.h"
#include "model/features.h"
#include "tensor/optimizer.h"

namespace metablink::model {
namespace {

data::LinkingExample MakeExample(const std::string& mention,
                                 const std::string& left,
                                 const std::string& right,
                                 kb::EntityId id = 0) {
  data::LinkingExample ex;
  ex.mention = mention;
  ex.left_context = left;
  ex.right_context = right;
  ex.entity_id = id;
  ex.domain = "d";
  return ex;
}

kb::Entity MakeEntity(const std::string& title, const std::string& desc) {
  kb::Entity e;
  e.title = title;
  e.description = desc;
  e.domain = "d";
  return e;
}

// ---- Featurizer ------------------------------------------------------------

TEST(FeaturizerTest, MentionBagNonEmptyAndBounded) {
  Featurizer f;
  auto bag = f.MentionBag(MakeExample("hero", "the great", "of the realm"));
  EXPECT_FALSE(bag.empty());
  for (auto id : bag) EXPECT_LT(id, f.num_buckets());
}

TEST(FeaturizerTest, MentionVsTitleFieldsSeparated) {
  // The same word as mention vs. as title must hash differently.
  Featurizer f;
  auto mention_bag = f.MentionBag(MakeExample("hero", "", ""));
  auto entity_bag = f.EntityBag(MakeEntity("hero", ""));
  EXPECT_NE(mention_bag, entity_bag);
}

TEST(FeaturizerTest, ContextContributes) {
  Featurizer f;
  auto without = f.MentionBag(MakeExample("hero", "", ""));
  auto with = f.MentionBag(MakeExample("hero", "castle", ""));
  EXPECT_GT(with.size(), without.size());
}

TEST(FeaturizerTest, OverlapFeaturesHighOverlap) {
  Featurizer f;
  auto feats = f.OverlapFeatures(MakeExample("red dragon", "a", "b"),
                                 MakeEntity("Red Dragon", "fire beast"));
  ASSERT_EQ(feats.size(), kNumOverlapFeatures);
  EXPECT_EQ(feats[0], 1.0f);  // exact match flag
  EXPECT_EQ(feats[2], 1.0f);  // token jaccard
}

TEST(FeaturizerTest, OverlapFeaturesDisjoint) {
  Featurizer f;
  auto feats = f.OverlapFeatures(MakeExample("zzz", "aaa", "bbb"),
                                 MakeEntity("Red Dragon", "fire beast"));
  EXPECT_EQ(feats[0], 0.0f);
  EXPECT_EQ(feats[2], 0.0f);
  EXPECT_EQ(feats[4], 0.0f);
}

TEST(FeaturizerTest, MentionInDescriptionFraction) {
  Featurizer f;
  auto feats =
      f.OverlapFeatures(MakeExample("fire beast", "", ""),
                        MakeEntity("Red Dragon", "a fire beast of legend"));
  EXPECT_FLOAT_EQ(feats[4], 1.0f);
}

// ---- BiEncoder -------------------------------------------------------------

class BiEncoderTest : public ::testing::Test {
 protected:
  BiEncoderTest() : rng_(3), model_(MakeConfig(), &rng_) {
    for (int i = 0; i < 4; ++i) {
      kb_.AddEntity(MakeEntity("entity" + std::to_string(i),
                               "description of number " + std::to_string(i)));
    }
  }

  static BiEncoderConfig MakeConfig() {
    BiEncoderConfig cfg;
    cfg.features.hasher.num_buckets = 512;
    cfg.dim = 16;
    return cfg;
  }

  util::Rng rng_;
  BiEncoder model_;
  kb::KnowledgeBase kb_;
};

TEST_F(BiEncoderTest, EncodingsAreUnitRows) {
  tensor::Graph g;
  std::vector<data::LinkingExample> examples = {
      MakeExample("a", "x y", "z"), MakeExample("b", "", "w")};
  tensor::Var m = model_.EncodeMentions(&g, examples);
  const auto& t = g.value(m);
  ASSERT_EQ(t.rows(), 2u);
  ASSERT_EQ(t.cols(), 16u);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    float norm2 = tensor::Dot(t.row_data(r), t.row_data(r), t.cols());
    EXPECT_NEAR(norm2, 1.0f, 1e-5);
  }
}

TEST_F(BiEncoderTest, InBatchLossShapeAndFinite) {
  std::vector<data::LinkingExample> batch;
  for (kb::EntityId i = 0; i < 4; ++i) {
    batch.push_back(MakeExample("m" + std::to_string(i), "ctx", "ctx", i));
  }
  tensor::Graph g;
  tensor::Var loss = model_.InBatchLoss(&g, batch, kb_);
  ASSERT_EQ(g.value(loss).rows(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(g.value(loss).at(i, 0)));
    EXPECT_GT(g.value(loss).at(i, 0), 0.0f);
  }
}

TEST_F(BiEncoderTest, TrainingStepReducesLoss) {
  // Distinct mention/context words so the batch is separable (heavy char
  // n-gram sharing between "mention0".."mention3" makes the 4-way task
  // nearly degenerate otherwise).
  static const char* kMentions[] = {"kordal", "fenwip", "zubrak", "mivolo"};
  static const char* kContexts[] = {"harbor tide", "ember forge",
                                    "glade moss", "dune spire"};
  std::vector<data::LinkingExample> batch;
  for (kb::EntityId i = 0; i < 4; ++i) {
    batch.push_back(MakeExample(kMentions[i], kContexts[i], "", i));
  }
  tensor::AdamOptimizer opt(0.02f);
  float first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    tensor::Graph g;
    tensor::Var loss = model_.InBatchLoss(&g, batch, kb_);
    float total = 0;
    for (std::size_t i = 0; i < 4; ++i) total += g.value(loss).at(i, 0);
    if (step == 0) first = total;
    last = total;
    model_.params()->ZeroGrads();
    g.Backward(loss);
    opt.Step(model_.params());
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST_F(BiEncoderTest, EmbedApisMatchGraphEncoding) {
  std::vector<data::LinkingExample> examples = {MakeExample("a", "b", "c", 1)};
  tensor::Tensor direct = model_.EmbedMentions(examples);
  tensor::Graph g;
  const auto& via_graph = g.value(model_.EncodeMentions(&g, examples));
  ASSERT_EQ(direct.size(), via_graph.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_FLOAT_EQ(direct.data()[i], via_graph.data()[i]);
  }
  tensor::Tensor ents = model_.EmbedEntityIds({0, 1}, kb_);
  EXPECT_EQ(ents.rows(), 2u);
}

TEST_F(BiEncoderTest, SaveLoadPreservesEmbeddings) {
  const std::string path = "/tmp/metablink_bi_test.bin";
  ASSERT_TRUE(model_.SaveToFile(path).ok());
  util::Rng rng2(777);  // different init
  BiEncoder other(MakeConfig(), &rng2);
  std::vector<data::LinkingExample> ex = {MakeExample("a", "b", "c")};
  tensor::Tensor before = other.EmbedMentions(ex);
  ASSERT_TRUE(other.LoadFromFile(path).ok());
  tensor::Tensor after = other.EmbedMentions(ex);
  tensor::Tensor original = model_.EmbedMentions(ex);
  bool changed = false;
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_FLOAT_EQ(after.data()[i], original.data()[i]);
    if (after.data()[i] != before.data()[i]) changed = true;
  }
  EXPECT_TRUE(changed);
  std::remove(path.c_str());
}

TEST_F(BiEncoderTest, LoadFromMissingFileFails) {
  EXPECT_FALSE(model_.LoadFromFile("/nonexistent/ckpt.bin").ok());
}

// ---- CrossEncoder ----------------------------------------------------------

class CrossEncoderTest : public ::testing::Test {
 protected:
  CrossEncoderTest() : rng_(5), model_(MakeConfig(), &rng_) {}

  static CrossEncoderConfig MakeConfig() {
    CrossEncoderConfig cfg;
    cfg.features.hasher.num_buckets = 512;
    cfg.dim = 16;
    cfg.hidden = 16;
    return cfg;
  }

  util::Rng rng_;
  CrossEncoder model_;
};

TEST_F(CrossEncoderTest, ScoresOnePerCandidate) {
  auto ex = MakeExample("hero", "brave", "fights");
  std::vector<kb::Entity> candidates = {
      MakeEntity("hero", "a brave fighter"),
      MakeEntity("villain", "an evil schemer"),
      MakeEntity("castle", "a big building")};
  auto scores = model_.Score(ex, candidates);
  ASSERT_EQ(scores.size(), 3u);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_F(CrossEncoderTest, RankingLossTrainsTowardGold) {
  auto ex = MakeExample("kresto", "vanor belem kresto sign", "vanor ruled");
  std::vector<kb::Entity> candidates = {
      MakeEntity("alpha one", "vanor belem kresto the king sign"),
      MakeEntity("beta two", "melko dran forest wild"),
      MakeEntity("gamma three", "ocean tide water deep")};
  tensor::AdamOptimizer opt(0.05f);
  for (int step = 0; step < 40; ++step) {
    tensor::Graph g;
    tensor::Var loss = model_.RankingLoss(&g, ex, candidates, 0);
    model_.params()->ZeroGrads();
    g.Backward(loss);
    opt.Step(model_.params());
  }
  auto scores = model_.Score(ex, candidates);
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[0], scores[2]);
}

TEST_F(CrossEncoderTest, SaveLoadPreservesScores) {
  const std::string path = "/tmp/metablink_cross_test.bin";
  ASSERT_TRUE(model_.SaveToFile(path).ok());
  util::Rng rng2(888);
  CrossEncoder other(MakeConfig(), &rng2);
  ASSERT_TRUE(other.LoadFromFile(path).ok());
  auto ex = MakeExample("a", "b", "c");
  std::vector<kb::Entity> cands = {MakeEntity("x", "y z")};
  EXPECT_FLOAT_EQ(model_.Score(ex, cands)[0], other.Score(ex, cands)[0]);
  std::remove(path.c_str());
}

// ---- parameterized: dims sweep ---------------------------------------------

class BiEncoderDimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BiEncoderDimSweep, UnitNormAtAnyDim) {
  BiEncoderConfig cfg;
  cfg.features.hasher.num_buckets = 256;
  cfg.dim = GetParam();
  util::Rng rng(1);
  BiEncoder model(cfg, &rng);
  tensor::Graph g;
  auto v = model.EncodeMentions(&g, {MakeExample("word", "some ctx", "")});
  const auto& t = g.value(v);
  ASSERT_EQ(t.cols(), GetParam());
  EXPECT_NEAR(tensor::Dot(t.row_data(0), t.row_data(0), t.cols()), 1.0f,
              1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, BiEncoderDimSweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

}  // namespace
}  // namespace metablink::model
