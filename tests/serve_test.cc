#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/few_shot_linker.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "serve/linking_server.h"

namespace metablink::serve {
namespace {

core::PipelineConfig TestConfig() {
  core::PipelineConfig config;
  config.seed = 4242;
  config.bi.features.hasher.num_buckets = 4096;
  config.bi.dim = 32;
  config.cross.features.hasher.num_buckets = 4096;
  config.cross.dim = 32;
  config.cross.hidden = 32;
  config.meta_bi.steps = 80;
  config.meta_cross.steps = 30;
  config.eval.k = 16;
  config.eval.num_threads = 2;
  return config;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions opts;
    opts.seed = 77;
    opts.shared_vocab_size = 400;
    opts.domain_vocab_size = 200;
    data::ZeshelLikeGenerator gen(opts);
    std::vector<data::DomainSpec> specs(2);
    specs[0].name = "source";
    specs[0].num_entities = 80;
    specs[0].num_examples = 200;
    specs[1].name = "target";
    specs[1].num_entities = 120;
    specs[1].num_examples = 240;
    specs[1].num_documents = 200;
    specs[1].gap = 0.5;
    corpus_ = std::make_unique<data::Corpus>(std::move(*gen.Generate(specs)));
    split_ = data::MakeFewShotSplit(corpus_->ExamplesIn("target"), 40, 40, 3);
    // Randomly initialized (untrained) encoders: parity and serving-path
    // behavior do not depend on trained weights.
    pipeline_ = std::make_unique<core::MetaBlinkPipeline>(TestConfig());
  }

  std::unique_ptr<data::Corpus> corpus_;
  data::DomainSplit split_;
  std::unique_ptr<core::MetaBlinkPipeline> pipeline_;
};

// ---- Tape vs tape-free parity ----------------------------------------------

TEST_F(ServeTest, TapeFreeMentionEncodeMatchesTape) {
  const model::BiEncoder* bi = pipeline_->bi_encoder();
  const std::vector<data::LinkingExample> batch(split_.test.begin(),
                                                split_.test.begin() + 20);
  tensor::Tensor tape = bi->EmbedMentions(batch);
  model::EncodeScratch scratch;
  tensor::Tensor free;
  bi->EncodeMentionsInference(batch, &scratch, &free);
  ASSERT_EQ(free.rows(), tape.rows());
  ASSERT_EQ(free.cols(), tape.cols());
  for (std::size_t i = 0; i < tape.rows(); ++i) {
    for (std::size_t j = 0; j < tape.cols(); ++j) {
      EXPECT_EQ(tape.at(i, j), free.at(i, j))
          << "mention row " << i << " col " << j;
    }
  }
  // Scratch reuse across differently-sized batches stays correct.
  const std::vector<data::LinkingExample> one(split_.test.begin(),
                                              split_.test.begin() + 1);
  tensor::Tensor tape1 = bi->EmbedMentions(one);
  bi->EncodeMentionsInference(one, &scratch, &free);
  ASSERT_EQ(free.rows(), 1u);
  for (std::size_t j = 0; j < tape1.cols(); ++j) {
    EXPECT_EQ(tape1.at(0, j), free.at(0, j));
  }
}

TEST_F(ServeTest, TapeFreeEntityEncodeMatchesTape) {
  const model::BiEncoder* bi = pipeline_->bi_encoder();
  const auto& ids = corpus_->kb.EntitiesInDomain("target");
  std::vector<kb::EntityId> some(ids.begin(), ids.begin() + 30);
  tensor::Tensor tape = bi->EmbedEntityIds(some, corpus_->kb);
  std::vector<kb::Entity> entities;
  for (kb::EntityId id : some) entities.push_back(corpus_->kb.entity(id));
  model::EncodeScratch scratch;
  tensor::Tensor free;
  bi->EncodeEntitiesInference(entities, &scratch, &free);
  ASSERT_EQ(free.rows(), tape.rows());
  for (std::size_t i = 0; i < tape.rows(); ++i) {
    for (std::size_t j = 0; j < tape.cols(); ++j) {
      EXPECT_EQ(tape.at(i, j), free.at(i, j));
    }
  }
}

TEST_F(ServeTest, TapeFreeCrossScoreMatchesTape) {
  const model::CrossEncoder* cross = pipeline_->cross_encoder();
  const auto& ids = corpus_->kb.EntitiesInDomain("target");
  std::vector<kb::Entity> candidates;
  for (std::size_t i = 0; i < 16; ++i) {
    candidates.push_back(corpus_->kb.entity(ids[i]));
  }
  model::CrossScoreScratch scratch;
  std::vector<float> free_scores;
  for (std::size_t e = 0; e < 10; ++e) {
    const auto& ex = split_.test[e];
    const std::vector<float> tape_scores = cross->Score(ex, candidates);
    cross->ScoreInference(ex, candidates, &scratch, &free_scores);
    ASSERT_EQ(free_scores.size(), tape_scores.size());
    for (std::size_t c = 0; c < tape_scores.size(); ++c) {
      EXPECT_EQ(tape_scores[c], free_scores[c]) << "example " << e
                                                << " candidate " << c;
    }
  }
}

// ---- LinkingServer ---------------------------------------------------------

TEST_F(ServeTest, ServerMatchesPipelineLink) {
  ServerOptions opts;
  opts.retrieve_k = 16;  // same stage-1 k as the pipeline's eval config
  auto server =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(server.ok());
  for (std::size_t e = 0; e < 5; ++e) {
    const auto& ex = split_.test[e];
    auto got = (*server)->Link(ex.mention, ex.left_context, ex.right_context,
                               /*top_k=*/5);
    ASSERT_TRUE(got.ok());
    data::LinkingExample probe = ex;
    probe.entity_id = kb::kInvalidEntityId;
    auto want = pipeline_->Link(corpus_->kb, "target", probe, 5);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->size(), want->size());
    for (std::size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*got)[i].entity_id, (*want)[i].id);
      EXPECT_NEAR((*got)[i].score, (*want)[i].score, 1e-6);
    }
  }
}

TEST_F(ServeTest, QuantizedServerMatchesFp32Server) {
  ServerOptions fp32;
  fp32.retrieve_k = 16;
  ServerOptions int8 = fp32;
  int8.use_quantized = true;
  int8.quantized_pool = 4096;  // clamps to the index size: exact pool
  auto a = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", fp32);
  auto b = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", int8);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t e = 0; e < 5; ++e) {
    const auto& ex = split_.test[e];
    auto ra = (*a)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    auto rb = (*b)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (std::size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].entity_id, (*rb)[i].entity_id);
      EXPECT_EQ((*ra)[i].score, (*rb)[i].score);
    }
  }
}

TEST_F(ServeTest, ServerCachesRepeatedRequests) {
  ServerOptions opts;
  opts.retrieve_k = 8;
  opts.cache_capacity = 64;
  auto server =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(server.ok());
  const auto& ex = split_.test.front();
  auto first = (*server)->Link(ex.mention, ex.left_context, ex.right_context);
  auto second = (*server)->Link(ex.mention, ex.left_context, ex.right_context);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].entity_id, (*second)[i].entity_id);
    EXPECT_EQ((*first)[i].score, (*second)[i].score);
  }
  const ServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 2u);
}

TEST_F(ServeTest, EightThreadHammer) {
  // The acceptance test for the scheduler: 8 concurrent client threads,
  // repeated mentions (exercises the LRU), every request answered, and
  // identical mentions get identical answers. Run under
  // METABLINK_SANITIZE=thread this vets the queue/stats/scratch locking.
  ServerOptions opts;
  opts.retrieve_k = 8;
  opts.max_batch = 8;
  opts.flush_deadline_us = 200;
  opts.cache_capacity = 32;
  auto server =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(server.ok());

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20;
  std::atomic<std::size_t> failures{0};
  std::vector<std::vector<kb::EntityId>> best(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < kPerThread; ++r) {
        // A small rotating pool of distinct mentions shared across threads.
        const auto& ex = split_.test[(t + 3 * r) % 10];
        auto got =
            (*server)->Link(ex.mention, ex.left_context, ex.right_context, 3);
        if (!got.ok() || got->empty()) {
          failures.fetch_add(1);
          continue;
        }
        best[t].push_back((*got)[0].entity_id);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  const ServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_EQ((*server)->LatenciesMs().size(), kThreads * kPerThread);

  // Determinism across threads: the same probe index always links to the
  // same top entity.
  std::vector<kb::EntityId> canonical(10, kb::kInvalidEntityId);
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(best[t].size(), kPerThread);
    for (std::size_t r = 0; r < kPerThread; ++r) {
      const std::size_t probe = (t + 3 * r) % 10;
      if (canonical[probe] == kb::kInvalidEntityId) {
        canonical[probe] = best[t][r];
      }
      EXPECT_EQ(best[t][r], canonical[probe]);
    }
  }
}

TEST_F(ServeTest, CreateValidatesInputs) {
  EXPECT_FALSE(LinkingServer::Create(nullptr, pipeline_->cross_encoder(),
                                     &corpus_->kb, "target")
                   .ok());
  auto missing =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "no_such_domain");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST_F(ServeTest, FromLinkerRequiresFit) {
  core::FewShotLinker linker(TestConfig());
  auto server = LinkingServer::FromLinker(linker);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), util::StatusCode::kFailedPrecondition);
}

// ---- Fitted-linker integration: edge cases + concurrent const Link ---------

TEST_F(ServeTest, FittedLinkerEdgeCasesAndConcurrentLink) {
  core::FewShotLinker linker(TestConfig());
  ASSERT_TRUE(
      linker.Fit(*corpus_, {"source"}, "target", split_.train).ok());

  // top_k far beyond the KB clamps to the stage-1 candidate count.
  const auto& probe = split_.test.front();
  auto big = linker.Link(probe.mention, probe.left_context,
                         probe.right_context, 100000);
  ASSERT_TRUE(big.ok());
  EXPECT_LE(big->size(),
            corpus_->kb.EntitiesInDomain("target").size());
  EXPECT_GT(big->size(), 0u);

  // Empty mention / empty context: no features on one side is still a
  // servable request, not a crash.
  auto no_mention = linker.Link("", probe.left_context, probe.right_context);
  ASSERT_TRUE(no_mention.ok());
  EXPECT_GT(no_mention->size(), 0u);
  auto no_context = linker.Link(probe.mention, "", "");
  ASSERT_TRUE(no_context.ok());
  EXPECT_GT(no_context->size(), 0u);

  // Concurrent const Link on the shared linker: 8 threads hammering the
  // same fitted instance (TSan-checked in the sanitizer matrix).
  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  const core::FewShotLinker& shared = linker;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < 4; ++r) {
        const auto& ex = split_.test[(t + r) % split_.test.size()];
        auto got = shared.Link(ex.mention, ex.left_context, ex.right_context);
        if (!got.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  // FromLinker serves the same answers the linker computes directly (same
  // stage-1 k so both rerank the same candidate set).
  ServerOptions opts;
  opts.retrieve_k = TestConfig().eval.k;
  auto server = LinkingServer::FromLinker(linker, opts);
  ASSERT_TRUE(server.ok());
  auto direct = linker.Link(probe.mention, probe.left_context,
                            probe.right_context, 5);
  auto served = (*server)->Link(probe.mention, probe.left_context,
                                probe.right_context, 5);
  ASSERT_TRUE(direct.ok() && served.ok());
  ASSERT_EQ(direct->size(), served->size());
  for (std::size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*direct)[i].entity_id, (*served)[i].entity_id);
    EXPECT_NEAR((*direct)[i].score, (*served)[i].score, 1e-6);
  }
}

}  // namespace
}  // namespace metablink::serve
