#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/few_shot_linker.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "serve/linking_server.h"
#include "store/model_bundle.h"

namespace metablink::serve {
namespace {

core::PipelineConfig TestConfig() {
  core::PipelineConfig config;
  config.seed = 4242;
  config.bi.features.hasher.num_buckets = 4096;
  config.bi.dim = 32;
  config.cross.features.hasher.num_buckets = 4096;
  config.cross.dim = 32;
  config.cross.hidden = 32;
  config.meta_bi.steps = 80;
  config.meta_cross.steps = 30;
  config.eval.k = 16;
  config.eval.num_threads = 2;
  return config;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GeneratorOptions opts;
    opts.seed = 77;
    opts.shared_vocab_size = 400;
    opts.domain_vocab_size = 200;
    data::ZeshelLikeGenerator gen(opts);
    std::vector<data::DomainSpec> specs(2);
    specs[0].name = "source";
    specs[0].num_entities = 80;
    specs[0].num_examples = 200;
    specs[1].name = "target";
    specs[1].num_entities = 120;
    specs[1].num_examples = 240;
    specs[1].num_documents = 200;
    specs[1].gap = 0.5;
    corpus_ = std::make_unique<data::Corpus>(std::move(*gen.Generate(specs)));
    split_ = data::MakeFewShotSplit(corpus_->ExamplesIn("target"), 40, 40, 3);
    // Randomly initialized (untrained) encoders: parity and serving-path
    // behavior do not depend on trained weights.
    pipeline_ = std::make_unique<core::MetaBlinkPipeline>(TestConfig());
  }

  /// Packages one pipeline's components as an artifact bundle under `dir`.
  /// `with_pq` ships the clustered artifact in its PQ form; `num_shards`
  /// is recorded in the manifest (0 = unsharded).
  void SaveBundle(const core::MetaBlinkPipeline& pipeline,
                  const std::string& dir, std::uint64_t version,
                  bool with_clustered = false, bool with_pq = false,
                  std::uint32_t num_shards = 0) {
    const auto& ids = corpus_->kb.EntitiesInDomain("target");
    retrieval::DenseIndex index;
    ASSERT_TRUE(index
                    .Build(pipeline.bi_encoder()->EmbedEntityIds(
                               ids, corpus_->kb),
                           ids)
                    .ok());
    std::vector<kb::Entity> entities;
    for (kb::EntityId id : ids) entities.push_back(corpus_->kb.entity(id));
    model::CrossEntityCache cache;
    pipeline.cross_encoder()->PrecomputeEntities(entities, &cache);
    store::ModelBundleParts parts;
    parts.model_version = version;
    parts.domain = "target";
    parts.bi = pipeline.bi_encoder();
    parts.cross = pipeline.cross_encoder();
    parts.kb = &corpus_->kb;
    parts.index = &index;
    parts.rerank_cache = &cache;
    retrieval::ClusteredIndex clustered;
    if (with_clustered) {
      retrieval::ClusteredIndexOptions copts;
      copts.use_pq = with_pq;
      ASSERT_TRUE(clustered.Build(index, copts).ok());
      parts.clustered = &clustered;
    }
    parts.num_shards = num_shards;
    ASSERT_TRUE(store::SaveModelBundle(parts, dir).ok());
  }

  /// Asserts both servers answer the first `n` test probes identically:
  /// same entities, bit-identical fp32 scores.
  void ExpectSameServing(LinkingServer* a, LinkingServer* b,
                         std::size_t n = 5) {
    for (std::size_t e = 0; e < n; ++e) {
      const auto& ex = split_.test[e];
      auto ra = a->Link(ex.mention, ex.left_context, ex.right_context, 5);
      auto rb = b->Link(ex.mention, ex.left_context, ex.right_context, 5);
      ASSERT_TRUE(ra.ok() && rb.ok());
      ASSERT_EQ(ra->size(), rb->size()) << "probe " << e;
      for (std::size_t i = 0; i < ra->size(); ++i) {
        EXPECT_EQ((*ra)[i].entity_id, (*rb)[i].entity_id)
            << "probe " << e << " rank " << i;
        EXPECT_EQ((*ra)[i].score, (*rb)[i].score)
            << "probe " << e << " rank " << i;
      }
    }
  }

  std::unique_ptr<data::Corpus> corpus_;
  data::DomainSplit split_;
  std::unique_ptr<core::MetaBlinkPipeline> pipeline_;
};

// ---- Tape vs tape-free parity ----------------------------------------------

TEST_F(ServeTest, TapeFreeMentionEncodeMatchesTape) {
  const model::BiEncoder* bi = pipeline_->bi_encoder();
  const std::vector<data::LinkingExample> batch(split_.test.begin(),
                                                split_.test.begin() + 20);
  tensor::Tensor tape = bi->EmbedMentions(batch);
  model::EncodeScratch scratch;
  tensor::Tensor free;
  bi->EncodeMentionsInference(batch, &scratch, &free);
  ASSERT_EQ(free.rows(), tape.rows());
  ASSERT_EQ(free.cols(), tape.cols());
  for (std::size_t i = 0; i < tape.rows(); ++i) {
    for (std::size_t j = 0; j < tape.cols(); ++j) {
      EXPECT_EQ(tape.at(i, j), free.at(i, j))
          << "mention row " << i << " col " << j;
    }
  }
  // Scratch reuse across differently-sized batches stays correct.
  const std::vector<data::LinkingExample> one(split_.test.begin(),
                                              split_.test.begin() + 1);
  tensor::Tensor tape1 = bi->EmbedMentions(one);
  bi->EncodeMentionsInference(one, &scratch, &free);
  ASSERT_EQ(free.rows(), 1u);
  for (std::size_t j = 0; j < tape1.cols(); ++j) {
    EXPECT_EQ(tape1.at(0, j), free.at(0, j));
  }
}

TEST_F(ServeTest, TapeFreeEntityEncodeMatchesTape) {
  const model::BiEncoder* bi = pipeline_->bi_encoder();
  const auto& ids = corpus_->kb.EntitiesInDomain("target");
  std::vector<kb::EntityId> some(ids.begin(), ids.begin() + 30);
  tensor::Tensor tape = bi->EmbedEntityIds(some, corpus_->kb);
  std::vector<kb::Entity> entities;
  for (kb::EntityId id : some) entities.push_back(corpus_->kb.entity(id));
  model::EncodeScratch scratch;
  tensor::Tensor free;
  bi->EncodeEntitiesInference(entities, &scratch, &free);
  ASSERT_EQ(free.rows(), tape.rows());
  for (std::size_t i = 0; i < tape.rows(); ++i) {
    for (std::size_t j = 0; j < tape.cols(); ++j) {
      EXPECT_EQ(tape.at(i, j), free.at(i, j));
    }
  }
}

TEST_F(ServeTest, TapeFreeCrossScoreMatchesTape) {
  const model::CrossEncoder* cross = pipeline_->cross_encoder();
  const auto& ids = corpus_->kb.EntitiesInDomain("target");
  std::vector<kb::Entity> candidates;
  for (std::size_t i = 0; i < 16; ++i) {
    candidates.push_back(corpus_->kb.entity(ids[i]));
  }
  model::CrossScoreScratch scratch;
  std::vector<float> free_scores;
  for (std::size_t e = 0; e < 10; ++e) {
    const auto& ex = split_.test[e];
    const std::vector<float> tape_scores = cross->Score(ex, candidates);
    cross->ScoreInference(ex, candidates, &scratch, &free_scores);
    ASSERT_EQ(free_scores.size(), tape_scores.size());
    for (std::size_t c = 0; c < tape_scores.size(); ++c) {
      EXPECT_EQ(tape_scores[c], free_scores[c]) << "example " << e
                                                << " candidate " << c;
    }
  }
}

// ---- LinkingServer ---------------------------------------------------------

TEST_F(ServeTest, ServerMatchesPipelineLink) {
  ServerOptions opts;
  opts.retrieve_k = 16;  // same stage-1 k as the pipeline's eval config
  auto server =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(server.ok());
  for (std::size_t e = 0; e < 5; ++e) {
    const auto& ex = split_.test[e];
    auto got = (*server)->Link(ex.mention, ex.left_context, ex.right_context,
                               /*top_k=*/5);
    ASSERT_TRUE(got.ok());
    data::LinkingExample probe = ex;
    probe.entity_id = kb::kInvalidEntityId;
    auto want = pipeline_->Link(corpus_->kb, "target", probe, 5);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(got->size(), want->size());
    for (std::size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*got)[i].entity_id, (*want)[i].id);
      EXPECT_NEAR((*got)[i].score, (*want)[i].score, 1e-6);
    }
  }
}

TEST_F(ServeTest, QuantizedServerMatchesFp32Server) {
  ServerOptions fp32;
  fp32.retrieve_k = 16;
  ServerOptions int8 = fp32;
  int8.use_quantized = true;
  int8.quantized_pool = 4096;  // clamps to the index size: exact pool
  auto a = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", fp32);
  auto b = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", int8);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t e = 0; e < 5; ++e) {
    const auto& ex = split_.test[e];
    auto ra = (*a)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    auto rb = (*b)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (std::size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].entity_id, (*rb)[i].entity_id);
      EXPECT_EQ((*ra)[i].score, (*rb)[i].score);
    }
  }
}

TEST_F(ServeTest, ClusteredServerProbeAllMatchesFp32Server) {
  // With nprobe clamped up to num_clusters the probe path visits every row,
  // so a clustered server's responses are bit-identical to the exhaustive
  // server's — the serving-level form of the probe-all parity invariant.
  ServerOptions plain;
  plain.retrieve_k = 16;
  ServerOptions ivf = plain;
  ivf.use_clustered = true;
  ivf.nprobe = 1u << 20;  // clamps to num_clusters: probe-all
  auto a = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", plain);
  auto b = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", ivf);
  ASSERT_TRUE(a.ok() && b.ok());
  for (std::size_t e = 0; e < 5; ++e) {
    const auto& ex = split_.test[e];
    auto ra = (*a)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    auto rb = (*b)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (std::size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].entity_id, (*rb)[i].entity_id);
      EXPECT_EQ((*ra)[i].score, (*rb)[i].score);
    }
  }
  // At the default nprobe the clustered server still answers every request
  // (recall quality is gated in bench_retrieval, not here).
  ServerOptions probe = plain;
  probe.use_clustered = true;
  auto c = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", probe);
  ASSERT_TRUE(c.ok());
  const auto& ex = split_.test[0];
  auto rc = (*c)->Link(ex.mention, ex.left_context, ex.right_context, 5);
  ASSERT_TRUE(rc.ok());
  EXPECT_FALSE(rc->empty());
}

TEST_F(ServeTest, ClusteredBundleRoundTripServes) {
  // A bundle shipping the "clustered" artifact serves through the adopted
  // clustering (re-attached after the bundle move) and, at probe-all,
  // matches a plain server loaded from the same weights.
  const std::string dir = "/tmp/metablink_serve_clustered_bundle";
  SaveBundle(*pipeline_, dir, /*version=*/9, /*with_clustered=*/true);
  ServerOptions plain;
  plain.retrieve_k = 16;
  ServerOptions ivf = plain;
  ivf.use_clustered = true;
  ivf.nprobe = 1u << 20;
  auto a = LinkingServer::FromBundle(dir, plain);
  auto b = LinkingServer::FromBundle(dir, ivf);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  EXPECT_EQ((*b)->Stats().model_version, 9u);
  for (std::size_t e = 0; e < 5; ++e) {
    const auto& ex = split_.test[e];
    auto ra = (*a)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    auto rb = (*b)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ASSERT_EQ(ra->size(), rb->size());
    for (std::size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].entity_id, (*rb)[i].entity_id);
      EXPECT_EQ((*ra)[i].score, (*rb)[i].score);
    }
  }
}

TEST_F(ServeTest, ShardedServerMatchesSingleIndexServer) {
  // num_shards splits the probe path into contiguous entity slices scanned
  // in parallel; the deterministic re-offer merge keeps every response
  // bit-identical to the single-index server at equal nprobe. Sharding is
  // a memory/parallelism knob, never a quality knob — for both the fp32
  // clustered scan and the PQ scan.
  ServerOptions single;
  single.retrieve_k = 16;
  single.use_clustered = true;
  ServerOptions sharded = single;
  sharded.num_shards = 4;
  auto a = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", single);
  auto b = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", sharded);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->Stats().num_shards, 1u);
  EXPECT_EQ((*b)->Stats().num_shards, 4u);
  ExpectSameServing((*a).get(), (*b).get());

  ServerOptions pq_single = single;
  pq_single.use_pq = true;
  ServerOptions pq_sharded = pq_single;
  pq_sharded.num_shards = 4;
  auto c = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", pq_single);
  auto d = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", pq_sharded);
  ASSERT_TRUE(c.ok() && d.ok());
  EXPECT_TRUE((*c)->Stats().pq_active);
  EXPECT_EQ((*d)->Stats().num_shards, 4u);
  ExpectSameServing((*c).get(), (*d).get());
}

TEST_F(ServeTest, PqBundleAdoptionAndPqFreeServing) {
  // A bundle shipping the PQ form of the clustered artifact is adopted
  // as-is under use_pq (no retrain); the test KB is small enough that the
  // rescore pool covers the whole domain, so probe-all PQ serving is
  // bit-identical to the exhaustive server. The same bundle served with
  // use_pq=false drops the shipped PQ form and matches a server built from
  // a PQ-free clustered bundle, byte for byte.
  const std::string pq_dir = ::testing::TempDir() + "metablink_serve_pq";
  const std::string ivf_dir = ::testing::TempDir() + "metablink_serve_ivf";
  SaveBundle(*pipeline_, pq_dir, /*version=*/12, /*with_clustered=*/true,
             /*with_pq=*/true);
  SaveBundle(*pipeline_, ivf_dir, /*version=*/12, /*with_clustered=*/true);

  ServerOptions plain;
  plain.retrieve_k = 16;
  ServerOptions pq = plain;
  pq.use_pq = true;
  pq.nprobe = 1u << 20;  // clamps to num_clusters: probe-all
  auto exhaustive = LinkingServer::FromBundle(pq_dir, plain);
  auto adopted = LinkingServer::FromBundle(pq_dir, pq);
  ASSERT_TRUE(exhaustive.ok()) << exhaustive.status().message();
  ASSERT_TRUE(adopted.ok()) << adopted.status().message();
  EXPECT_TRUE((*adopted)->Stats().pq_active);
  EXPECT_FALSE((*exhaustive)->Stats().pq_active);
  ExpectSameServing((*exhaustive).get(), (*adopted).get());

  ServerOptions ivf = plain;
  ivf.use_clustered = true;
  auto dropped = LinkingServer::FromBundle(pq_dir, ivf);
  auto pq_free = LinkingServer::FromBundle(ivf_dir, ivf);
  ASSERT_TRUE(dropped.ok() && pq_free.ok());
  EXPECT_FALSE((*dropped)->Stats().pq_active);
  ExpectSameServing((*dropped).get(), (*pq_free).get());

  // use_pq against a bundle whose clustered artifact has no PQ codes:
  // the server rebuilds the PQ index instead of adopting, and still serves.
  auto rebuilt = LinkingServer::FromBundle(ivf_dir, pq);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();
  EXPECT_TRUE((*rebuilt)->Stats().pq_active);
  ExpectSameServing((*exhaustive).get(), (*rebuilt).get());
}

TEST_F(ServeTest, ManifestShardCountAdoptedAndOverridable) {
  // A bundle saved with num_shards=4 shards the serving epoch by default;
  // ServerOptions::num_shards=1 overrides the manifest back to a single
  // index. Both serve bit-identically.
  const std::string dir = ::testing::TempDir() + "metablink_serve_manifest4";
  SaveBundle(*pipeline_, dir, /*version=*/13, /*with_clustered=*/true,
             /*with_pq=*/false, /*num_shards=*/4);
  ServerOptions ivf;
  ivf.retrieve_k = 16;
  ivf.use_clustered = true;  // num_shards=0: adopt the manifest count
  ServerOptions forced = ivf;
  forced.num_shards = 1;
  auto sharded = LinkingServer::FromBundle(dir, ivf);
  auto single = LinkingServer::FromBundle(dir, forced);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  ASSERT_TRUE(single.ok()) << single.status().message();
  EXPECT_EQ((*sharded)->Stats().num_shards, 4u);
  EXPECT_EQ((*single)->Stats().num_shards, 1u);
  ExpectSameServing((*sharded).get(), (*single).get());
}

TEST_F(ServeTest, ServerCachesRepeatedRequests) {
  ServerOptions opts;
  opts.retrieve_k = 8;
  opts.cache_capacity = 64;
  auto server =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(server.ok());
  const auto& ex = split_.test.front();
  auto first = (*server)->Link(ex.mention, ex.left_context, ex.right_context);
  auto second = (*server)->Link(ex.mention, ex.left_context, ex.right_context);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].entity_id, (*second)[i].entity_id);
    EXPECT_EQ((*first)[i].score, (*second)[i].score);
  }
  const ServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 2u);
}

TEST_F(ServeTest, EightThreadHammer) {
  // The acceptance test for the scheduler: 8 concurrent client threads,
  // repeated mentions (exercises the LRU), every request answered, and
  // identical mentions get identical answers. Run under
  // METABLINK_SANITIZE=thread this vets the queue/stats/scratch locking.
  ServerOptions opts;
  opts.retrieve_k = 8;
  opts.max_batch = 8;
  opts.flush_deadline_us = 200;
  opts.cache_capacity = 32;
  auto server =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(server.ok());

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20;
  std::atomic<std::size_t> failures{0};
  std::vector<std::vector<kb::EntityId>> best(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < kPerThread; ++r) {
        // A small rotating pool of distinct mentions shared across threads.
        const auto& ex = split_.test[(t + 3 * r) % 10];
        auto got =
            (*server)->Link(ex.mention, ex.left_context, ex.right_context, 3);
        if (!got.ok() || got->empty()) {
          failures.fetch_add(1);
          continue;
        }
        best[t].push_back((*got)[0].entity_id);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  const ServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_EQ((*server)->LatenciesMs().size(), kThreads * kPerThread);

  // Determinism across threads: the same probe index always links to the
  // same top entity.
  std::vector<kb::EntityId> canonical(10, kb::kInvalidEntityId);
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(best[t].size(), kPerThread);
    for (std::size_t r = 0; r < kPerThread; ++r) {
      const std::size_t probe = (t + 3 * r) % 10;
      if (canonical[probe] == kb::kInvalidEntityId) {
        canonical[probe] = best[t][r];
      }
      EXPECT_EQ(best[t][r], canonical[probe]);
    }
  }
}

// ---- Admission control & backpressure --------------------------------------

TEST_F(ServeTest, BoundedQueueRejectNewIsDeterministic) {
  // A scheduler that cannot flush (huge batch, far-off deadline) lets the
  // test fill the queue to exactly max_queue, making the admission
  // decision deterministic: the next Link must be rejected.
  ServerOptions opts;
  opts.retrieve_k = 4;
  opts.max_batch = 64;
  opts.flush_deadline_us = 10'000'000;  // drained at shutdown, not by timer
  opts.max_queue = 3;
  opts.shed_policy = LoadShedPolicy::kRejectNew;
  auto server =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(server.ok());

  std::vector<std::thread> clients;
  std::atomic<std::size_t> ok_count{0};
  for (std::size_t i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      const auto& ex = split_.test[i];
      auto got =
          (*server)->Link(ex.mention, ex.left_context, ex.right_context, 3);
      if (got.ok()) ok_count.fetch_add(1);
    });
    // Admit strictly one at a time so the fill order is known.
    while ((*server)->Stats().queue_depth < i + 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  const auto& extra = split_.test[5];
  auto refused = (*server)->Link(extra.mention, extra.left_context,
                                 extra.right_context, 3);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kUnavailable);

  const ServerStats before = (*server)->Stats();
  EXPECT_EQ(before.accepted, 3u);
  EXPECT_EQ(before.rejected, 1u);
  EXPECT_EQ(before.shed, 0u);
  EXPECT_EQ(before.queue_depth, 3u);
  EXPECT_EQ(before.queue_depth_high_water, 3u);
  EXPECT_EQ(before.in_flight, 0u);
  EXPECT_EQ(before.requests, 0u);
  EXPECT_GT(before.oldest_wait_us, 0.0);

  // Shutdown drains the queue: every admitted request still completes.
  server->reset();
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok_count.load(), 3u);
}

TEST_F(ServeTest, BoundedQueueDropOldestShedsTheOldest) {
  ServerOptions opts;
  opts.retrieve_k = 4;
  opts.max_batch = 64;
  opts.flush_deadline_us = 10'000'000;
  opts.max_queue = 3;
  opts.shed_policy = LoadShedPolicy::kDropOldest;
  auto server =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(server.ok());

  std::vector<std::thread> clients;
  std::vector<util::Status> statuses(4, util::Status::OK());
  for (std::size_t i = 0; i < 4; ++i) {
    clients.emplace_back([&, i] {
      const auto& ex = split_.test[i];
      auto got =
          (*server)->Link(ex.mention, ex.left_context, ex.right_context, 3);
      statuses[i] = got.status();
    });
    if (i < 3) {
      while ((*server)->Stats().queue_depth < i + 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  // The fourth arrival evicted the first-enqueued request, which completes
  // with kUnavailable immediately — before any batch runs.
  clients[0].join();
  EXPECT_EQ(statuses[0].code(), util::StatusCode::kUnavailable);

  const ServerStats before = (*server)->Stats();
  EXPECT_EQ(before.accepted, 4u);
  EXPECT_EQ(before.rejected, 0u);
  EXPECT_EQ(before.shed, 1u);
  EXPECT_EQ(before.queue_depth, 3u);
  EXPECT_EQ(before.requests, 0u);

  server->reset();
  for (std::size_t i = 1; i < 4; ++i) {
    clients[i].join();
    EXPECT_TRUE(statuses[i].ok()) << "client " << i << ": " << statuses[i];
  }
}

TEST_F(ServeTest, UnboundedAdmissionPathIsByteIdentical) {
  // max_queue=0 must serve exactly like a bound that never triggers: the
  // admission bookkeeping cannot perturb responses.
  ServerOptions unbounded;
  unbounded.retrieve_k = 8;
  ServerOptions bounded = unbounded;
  bounded.max_queue = std::size_t{1} << 20;
  auto a = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", unbounded);
  auto b = LinkingServer::Create(pipeline_->bi_encoder(),
                                 pipeline_->cross_encoder(), &corpus_->kb,
                                 "target", bounded);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectSameServing(a->get(), b->get(), 8);
  const ServerStats sa = (*a)->Stats();
  const ServerStats sb = (*b)->Stats();
  for (const ServerStats* s : {&sa, &sb}) {
    EXPECT_EQ(s->accepted, 8u);
    EXPECT_EQ(s->rejected, 0u);
    EXPECT_EQ(s->shed, 0u);
    EXPECT_EQ(s->requests, 8u);
    EXPECT_EQ(s->queue_depth, 0u);
    EXPECT_EQ(s->in_flight, 0u);
  }
}

TEST_F(ServeTest, OverloadHammerStatsReconcile) {
  // 8 threads hammer a 2-deep queue served one request at a time, so
  // shedding fires constantly. Under METABLINK_SANITIZE=thread this vets
  // the admission path's locking; in every build the books must balance:
  // every attempt is accepted or rejected, every accepted request is
  // completed or shed, and the caller-visible outcomes match the counters
  // exactly.
  for (const LoadShedPolicy policy :
       {LoadShedPolicy::kRejectNew, LoadShedPolicy::kDropOldest}) {
    ServerOptions opts;
    opts.retrieve_k = 4;
    opts.max_batch = 1;
    opts.flush_deadline_us = 0;
    opts.max_queue = 2;
    opts.shed_policy = policy;
    opts.cache_capacity = 16;
    auto server = LinkingServer::Create(pipeline_->bi_encoder(),
                                        pipeline_->cross_encoder(),
                                        &corpus_->kb, "target", opts);
    ASSERT_TRUE(server.ok());

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 25;
    std::atomic<std::size_t> ok_count{0};
    std::atomic<std::size_t> unavailable{0};
    std::atomic<std::size_t> other{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t r = 0; r < kPerThread; ++r) {
          const auto& ex = split_.test[(t + 3 * r) % 10];
          auto got = (*server)->Link(ex.mention, ex.left_context,
                                     ex.right_context, 3);
          if (got.ok()) {
            ok_count.fetch_add(1);
          } else if (got.status().code() == util::StatusCode::kUnavailable) {
            unavailable.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();

    const ServerStats stats = (*server)->Stats();
    EXPECT_EQ(other.load(), 0u);
    EXPECT_EQ(stats.accepted + stats.rejected, kThreads * kPerThread);
    EXPECT_EQ(stats.accepted, stats.requests + stats.shed);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.in_flight, 0u);
    EXPECT_EQ(ok_count.load(), stats.requests);
    EXPECT_EQ(unavailable.load(), stats.rejected + stats.shed);
    EXPECT_EQ(stats.rerank_exited + stats.rerank_distilled + stats.rerank_full,
              stats.requests);
    EXPECT_LE(stats.queue_depth_high_water, opts.max_queue);
    // The whole point of the bound: overload actually shed something.
    EXPECT_GT(stats.rejected + stats.shed, 0u);
    if (policy == LoadShedPolicy::kRejectNew) {
      EXPECT_EQ(stats.shed, 0u);
    } else {
      EXPECT_EQ(stats.rejected, 0u);
    }
  }
}

TEST_F(ServeTest, CreateValidatesInputs) {
  EXPECT_FALSE(LinkingServer::Create(nullptr, pipeline_->cross_encoder(),
                                     &corpus_->kb, "target")
                   .ok());
  auto missing =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "no_such_domain");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST_F(ServeTest, FromLinkerRequiresFit) {
  core::FewShotLinker linker(TestConfig());
  auto server = LinkingServer::FromLinker(linker);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), util::StatusCode::kFailedPrecondition);
}

// ---- Fitted-linker integration: edge cases + concurrent const Link ---------

TEST_F(ServeTest, FittedLinkerEdgeCasesAndConcurrentLink) {
  core::FewShotLinker linker(TestConfig());
  ASSERT_TRUE(
      linker.Fit(*corpus_, {"source"}, "target", split_.train).ok());

  // top_k far beyond the KB clamps to the stage-1 candidate count.
  const auto& probe = split_.test.front();
  auto big = linker.Link(probe.mention, probe.left_context,
                         probe.right_context, 100000);
  ASSERT_TRUE(big.ok());
  EXPECT_LE(big->size(),
            corpus_->kb.EntitiesInDomain("target").size());
  EXPECT_GT(big->size(), 0u);

  // Empty mention / empty context: no features on one side is still a
  // servable request, not a crash.
  auto no_mention = linker.Link("", probe.left_context, probe.right_context);
  ASSERT_TRUE(no_mention.ok());
  EXPECT_GT(no_mention->size(), 0u);
  auto no_context = linker.Link(probe.mention, "", "");
  ASSERT_TRUE(no_context.ok());
  EXPECT_GT(no_context->size(), 0u);

  // Concurrent const Link on the shared linker: 8 threads hammering the
  // same fitted instance (TSan-checked in the sanitizer matrix).
  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  const core::FewShotLinker& shared = linker;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < 4; ++r) {
        const auto& ex = split_.test[(t + r) % split_.test.size()];
        auto got = shared.Link(ex.mention, ex.left_context, ex.right_context);
        if (!got.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  // FromLinker serves the same answers the linker computes directly (same
  // stage-1 k so both rerank the same candidate set).
  ServerOptions opts;
  opts.retrieve_k = TestConfig().eval.k;
  auto server = LinkingServer::FromLinker(linker, opts);
  ASSERT_TRUE(server.ok());
  auto direct = linker.Link(probe.mention, probe.left_context,
                            probe.right_context, 5);
  auto served = (*server)->Link(probe.mention, probe.left_context,
                                probe.right_context, 5);
  ASSERT_TRUE(direct.ok() && served.ok());
  ASSERT_EQ(direct->size(), served->size());
  for (std::size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*direct)[i].entity_id, (*served)[i].entity_id);
    EXPECT_NEAR((*direct)[i].score, (*served)[i].score, 1e-6);
  }
}

// ---- Bundles & hot swap ----------------------------------------------------

TEST_F(ServeTest, FromBundleMatchesCreate) {
  const std::string dir = ::testing::TempDir() + "metablink_serve_bundle_a";
  SaveBundle(*pipeline_, dir, /*version=*/11);
  ServerOptions opts;
  opts.retrieve_k = 16;
  auto from_bundle = LinkingServer::FromBundle(dir, opts);
  ASSERT_TRUE(from_bundle.ok()) << from_bundle.status().message();
  auto direct =
      LinkingServer::Create(pipeline_->bi_encoder(), pipeline_->cross_encoder(),
                            &corpus_->kb, "target", opts);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*from_bundle)->index_size(), (*direct)->index_size());
  EXPECT_EQ((*from_bundle)->Stats().model_version, 11u);
  EXPECT_EQ((*direct)->Stats().model_version, 0u);
  for (std::size_t e = 0; e < 5; ++e) {
    const auto& ex = split_.test[e];
    auto a = (*from_bundle)->Link(ex.mention, ex.left_context,
                                  ex.right_context, 5);
    auto b = (*direct)->Link(ex.mention, ex.left_context, ex.right_context, 5);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].entity_id, (*b)[i].entity_id);
      EXPECT_EQ((*a)[i].score, (*b)[i].score);
      EXPECT_EQ((*a)[i].title, (*b)[i].title);
    }
  }
}

TEST_F(ServeTest, SwapModelServesTheNewModel) {
  // Two differently-initialized models over the same KB.
  core::PipelineConfig other_config = TestConfig();
  other_config.seed = 999;
  core::MetaBlinkPipeline other(other_config);
  const std::string dir_a = ::testing::TempDir() + "metablink_serve_swap_a";
  const std::string dir_b = ::testing::TempDir() + "metablink_serve_swap_b";
  SaveBundle(*pipeline_, dir_a, /*version=*/1);
  SaveBundle(other, dir_b, /*version=*/2);

  ServerOptions opts;
  opts.retrieve_k = 16;
  auto server = LinkingServer::FromBundle(dir_a, opts);
  ASSERT_TRUE(server.ok());
  auto reference_b = LinkingServer::FromBundle(dir_b, opts);
  ASSERT_TRUE(reference_b.ok());

  const auto& ex = split_.test.front();
  auto before = (*server)->Link(ex.mention, ex.left_context, ex.right_context);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*server)->SwapModel(dir_b).ok());
  const ServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.model_version, 2u);
  EXPECT_EQ(stats.swaps, 1u);

  auto after = (*server)->Link(ex.mention, ex.left_context, ex.right_context);
  auto want = (*reference_b)->Link(ex.mention, ex.left_context,
                                   ex.right_context);
  ASSERT_TRUE(after.ok() && want.ok());
  ASSERT_EQ(after->size(), want->size());
  for (std::size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*after)[i].entity_id, (*want)[i].entity_id);
    EXPECT_EQ((*after)[i].score, (*want)[i].score);
  }
}

TEST_F(ServeTest, SwapHammerEveryResponseMatchesOldOrNewModel) {
  // The hot-swap acceptance test: 8 client threads hammer Link while the
  // main thread swaps between two model versions several times. Every
  // response must exactly equal what version A or version B computes for
  // that probe — a mixed-version response (new scores over an old index,
  // stale LRU entries, torn epoch) fails the equality against both. Run
  // under METABLINK_SANITIZE=thread this also vets the epoch publication.
  core::PipelineConfig other_config = TestConfig();
  other_config.seed = 999;
  core::MetaBlinkPipeline other(other_config);
  const std::string dir_a = ::testing::TempDir() + "metablink_serve_hammer_a";
  const std::string dir_b = ::testing::TempDir() + "metablink_serve_hammer_b";
  SaveBundle(*pipeline_, dir_a, /*version=*/1);
  SaveBundle(other, dir_b, /*version=*/2);

  ServerOptions opts;
  opts.retrieve_k = 8;
  opts.max_batch = 8;
  opts.flush_deadline_us = 200;
  opts.cache_capacity = 32;

  // Per-probe reference answers from each version.
  constexpr std::size_t kProbes = 10;
  constexpr std::size_t kTopK = 3;
  std::vector<std::vector<core::LinkPrediction>> ref_a(kProbes);
  std::vector<std::vector<core::LinkPrediction>> ref_b(kProbes);
  {
    auto sa = LinkingServer::FromBundle(dir_a, opts);
    auto sb = LinkingServer::FromBundle(dir_b, opts);
    ASSERT_TRUE(sa.ok() && sb.ok());
    for (std::size_t p = 0; p < kProbes; ++p) {
      const auto& ex = split_.test[p];
      auto a = (*sa)->Link(ex.mention, ex.left_context, ex.right_context,
                           kTopK);
      auto b = (*sb)->Link(ex.mention, ex.left_context, ex.right_context,
                           kTopK);
      ASSERT_TRUE(a.ok() && b.ok());
      ref_a[p] = *std::move(a);
      ref_b[p] = *std::move(b);
      // The two versions must actually disagree somewhere for the "old or
      // new, never a mix" check to have teeth.
    }
  }
  bool versions_differ = false;
  for (std::size_t p = 0; p < kProbes && !versions_differ; ++p) {
    for (std::size_t i = 0; i < ref_a[p].size() && i < ref_b[p].size(); ++i) {
      if (ref_a[p][i].entity_id != ref_b[p][i].entity_id ||
          ref_a[p][i].score != ref_b[p][i].score) {
        versions_differ = true;
        break;
      }
    }
  }
  ASSERT_TRUE(versions_differ);

  auto server = LinkingServer::FromBundle(dir_a, opts);
  ASSERT_TRUE(server.ok());

  const auto matches = [&](const std::vector<core::LinkPrediction>& got,
                           const std::vector<core::LinkPrediction>& want) {
    if (got.size() != want.size()) return false;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].entity_id != want[i].entity_id ||
          got[i].score != want[i].score) {
        return false;
      }
    }
    return true;
  };

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 24;
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> mixed{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t r = 0; r < kPerThread; ++r) {
        const std::size_t p = (t + 3 * r) % kProbes;
        const auto& ex = split_.test[p];
        auto got = (*server)->Link(ex.mention, ex.left_context,
                                   ex.right_context, kTopK);
        if (!got.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!matches(*got, ref_a[p]) && !matches(*got, ref_b[p])) {
          mixed.fetch_add(1);
        }
      }
    });
  }
  // >= 3 swaps while the hammer runs: A -> B -> A -> B.
  std::size_t swaps_done = 0;
  for (const std::string* dir : {&dir_b, &dir_a, &dir_b}) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    ASSERT_TRUE((*server)->SwapModel(*dir).ok());
    ++swaps_done;
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mixed.load(), 0u);

  const ServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.swaps, swaps_done);
  EXPECT_EQ(stats.model_version, 2u);
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
}

TEST_F(ServeTest, CorruptBundleIsRejectedAndServingContinues) {
  const std::string dir_a = ::testing::TempDir() + "metablink_serve_keep_a";
  const std::string dir_bad = ::testing::TempDir() + "metablink_serve_keep_bad";
  SaveBundle(*pipeline_, dir_a, /*version=*/1);
  SaveBundle(*pipeline_, dir_bad, /*version=*/2);
  // Flip one byte in an artifact of the "new" bundle.
  {
    const std::string victim = dir_bad + "/cross.ckpt";
    std::vector<char> bytes;
    {
      std::ifstream in(victim, std::ios::binary);
      bytes.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] ^= 0x20;
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  ServerOptions opts;
  opts.retrieve_k = 16;
  auto server = LinkingServer::FromBundle(dir_a, opts);
  ASSERT_TRUE(server.ok());
  const auto& ex = split_.test.front();
  auto before = (*server)->Link(ex.mention, ex.left_context, ex.right_context);
  ASSERT_TRUE(before.ok());

  EXPECT_FALSE((*server)->SwapModel(dir_bad).ok());
  EXPECT_FALSE((*server)->SwapModel("/no/such/bundle").ok());

  // Old version keeps serving, unchanged.
  const ServerStats stats = (*server)->Stats();
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_EQ(stats.model_version, 1u);
  auto after = (*server)->Link(ex.mention, ex.left_context, ex.right_context);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), before->size());
  for (std::size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*after)[i].entity_id, (*before)[i].entity_id);
    EXPECT_EQ((*after)[i].score, (*before)[i].score);
  }
}

}  // namespace
}  // namespace metablink::serve
